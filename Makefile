.PHONY: all build test fmt smoke fuzz speed trace dse golden serve-bench ci clean

all: build

build:
	dune build

test:
	dune runtest

# Formatting check; skipped (with a notice) when ocamlformat is not
# installed, since the container image does not ship it.
fmt:
	@if command -v ocamlformat >/dev/null 2>&1; then \
	  dune build @fmt; \
	else \
	  echo "fmt: ocamlformat not installed, skipping"; \
	fi

# Cheap end-to-end smoke of the experiment engine: Figure 2 on a
# reduced workload set, sequentially and on 4 workers.
smoke:
	T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=1 dune exec bench/main.exe -- f2
	T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=4 dune exec bench/main.exe -- f2

# Differential fuzzing of the whole extraction/selection/simulation
# pipeline against the reference interpreter, plus checkpoint
# corruption drills.  Deterministic: a failure prints the seed and a
# shrunk reproducer under _fuzz/.
fuzz:
	dune exec bin/t1000_cli.exe -- fuzz --seed 42 --cases 200

# Full engine timing: sequential vs parallel over every paper artifact
# and ablation; writes BENCH_engine.json.
speed:
	dune exec bench/main.exe -- speed

# Design-space exploration: Pareto frontier of (geomean speedup, LUT
# area, PFU count) over the 6-axis selective configuration space, with
# dominance pruning and checkpoint/resume; writes DSE.json.
dse:
	dune exec bin/t1000_cli.exe -- dse --budget 24 --json DSE.json

# Load benchmark of the selection-as-a-service daemon: throughput and
# latency percentiles at 1/8/64 concurrent clients plus a deliberate
# overload leg (queue depth 1); writes BENCH_serve.json.
serve-bench:
	dune exec bench/main.exe -- serve

# Re-record the golden artifact snapshots under test/golden/ after an
# intentional model or rendering change.
golden:
	T1000_PROMOTE=1 T1000_GOLDEN_DIR=test/golden dune exec test/test_golden.exe

# Traced Figure 2 on a reduced suite: writes trace.json (load it in
# Perfetto or chrome://tracing) and validates it.
trace:
	T1000_WORKLOADS=unepic,g721_dec dune exec bin/t1000_cli.exe -- \
	  experiment f2 --trace trace.json
	dune exec bin/t1000_cli.exe -- trace-check trace.json

ci:
	./ci.sh

clean:
	dune clean
