(* Design-space exploration: how many PFUs does a workload deserve, and
   how sensitive is the answer to the reconfiguration penalty?

   A thin driver over lib/dse: builds a 2-axis (PFU count x penalty)
   Space around the selective defaults, scores every point with
   Engine.eval_point, prints the speedup grid the original hand-rolled
   version printed, and then the Pareto view of the same measurements —
   the kind of study an architect would run before fixing the PFU
   budget in silicon.  `t1000 dse` runs the same engine over all six
   axes with pruning, checkpointing and a worker pool. *)

let pfu_counts = [ 1; 2; 3; 4; 8 ]
let penalties = [ 0; 10; 100; 500 ]

let () =
  let name =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "gsm_dec"
  in
  let workload =
    match T1000_workloads.Registry.find name with
    | Some w -> w
    | None ->
        Format.eprintf "unknown workload %s (expected one of: %s)@." name
          (String.concat ", " T1000_workloads.Registry.names);
        exit 2
  in
  Format.printf "design space for %s (selective algorithm)@.@." name;
  let ctx = T1000.Experiment.create_ctx ~workloads:[ workload ] () in
  let point pfus penalty =
    {
      T1000_dse.Space.pfus;
      penalty;
      lut_budget = T1000_hwcost.Lut.default_budget;
      replacement = T1000_ooo.Mconfig.Lru;
      gain = 0.005;
      width = 4;
    }
  in
  Format.printf "%12s" "pfus \\ pen";
  List.iter (fun p -> Format.printf "%10d" p) penalties;
  Format.printf "@.";
  let measured = ref [] in
  List.iter
    (fun n ->
      Format.printf "%12d" n;
      List.iter
        (fun pen ->
          let m = T1000_dse.Engine.eval_point ctx (point n pen) in
          measured := m :: !measured;
          Format.printf "%10.3f" m.T1000_dse.Engine.obj.T1000_dse.Pareto.speedup)
        penalties;
      Format.printf "@.")
    pfu_counts;
  Format.printf
    "@.rows: number of PFUs; columns: reconfiguration penalty (cycles);@.";
  Format.printf
    "cells: execution-time speedup over the no-PFU superscalar.@.";
  (* The Pareto view of the very same grid: which (pfus, penalty) points
     are worth building once area and PFU count enter the tradeoff. *)
  let frontier =
    T1000_dse.Pareto.frontier
      (List.rev_map
         (fun m -> (m, m.T1000_dse.Engine.obj))
         !measured)
  in
  Format.printf "@.Pareto-optimal (speedup vs LUT area vs PFUs):@.";
  List.iter
    (fun (m, o) ->
      Format.printf "  %-32s %a@."
        (T1000_dse.Space.key m.T1000_dse.Engine.point)
        T1000_dse.Pareto.pp o)
    frontier
