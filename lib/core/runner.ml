open T1000_asm
open T1000_machine
open T1000_profile
open T1000_select
open T1000_ooo
open T1000_workloads

type method_ =
  | Baseline
  | Greedy
  | Selective

type setup = {
  method_ : method_;
  n_pfus : int option;
  penalty : int;
  replacement : Mconfig.pfu_replacement;
  extract : T1000_dfg.Extract.config;
  gain_threshold : float;
  lut_budget : int;
  ext_timing : [ `Single_cycle | `Lut_levels ];
  config_prefetch : bool;
  machine : Mconfig.t;
  selfcheck : bool;
}

let validate s =
  (match s.n_pfus with
  | Some n when n <= 0 ->
      Fault.invalid_config "n_pfus must be positive (or None for unlimited), got %d" n
  | Some _ | None -> ());
  if s.penalty < 0 then
    Fault.invalid_config "penalty must be non-negative, got %d" s.penalty;
  (* The negated comparison also catches NaN. *)
  if not (s.gain_threshold >= 0.0 && s.gain_threshold <= 1.0) then
    Fault.invalid_config "gain_threshold must be in [0, 1], got %g"
      s.gain_threshold;
  if s.lut_budget <= 0 then
    Fault.invalid_config "lut_budget must be positive, got %d" s.lut_budget

let setup ?(n_pfus = Some 2) ?(penalty = 10) ?selfcheck method_ =
  let selfcheck =
    match selfcheck with
    | Some b -> b
    | None -> Fault.getenv_bool "T1000_SELFCHECK"
  in
  let s =
    {
      method_;
      n_pfus;
      penalty;
      replacement = Mconfig.Lru;
      extract = T1000_dfg.Extract.default_config;
      gain_threshold = 0.005;
      lut_budget = T1000_hwcost.Lut.default_budget;
      ext_timing = `Single_cycle;
      config_prefetch = false;
      machine = Mconfig.default;
      selfcheck;
    }
  in
  validate s;
  s

type analysis = {
  profile : Profile.t;
  cfg : Cfg.t;
  loops : Loops.t;
  live : Liveness.t;
}

let analyze (w : Workload.t) =
  T1000_obs.Metrics.time "phase.analyze" @@ fun () ->
  let profile =
    Profile.collect ~init:(fun mem regs -> w.Workload.init mem regs)
      w.Workload.program
  in
  let cfg = Cfg.of_program w.Workload.program in
  let dom = Dominators.compute cfg in
  let loops = Loops.compute cfg dom in
  let live = Liveness.compute cfg in
  { profile; cfg; loops; live }

type run = {
  workload : Workload.t;
  used : setup;
  table : Extinstr.t;
  program : Program.t;
  stats : Stats.t;
}

let functional_output (w : Workload.t) table program =
  let mem = Memory.create () in
  let regs = Regfile.create () in
  w.Workload.init mem regs;
  let interp =
    Interp.create ~mem ~regs ~ext_eval:(Extinstr.eval table) program
  in
  ignore (Interp.run interp);
  Workload.output w mem

let verify_outputs (w : Workload.t) table rewritten =
  T1000_obs.Metrics.time "phase.verify" @@ fun () ->
  let reference = functional_output w Extinstr.empty w.Workload.program in
  let got = functional_output w table rewritten in
  if not (String.equal reference got) then
    raise
      (Fault.Error
         (Fault.Verify_mismatch
            (Printf.sprintf
               "%s: rewritten program diverges from the original"
               w.Workload.name)))

let select_table s analysis =
  validate s;
  T1000_obs.Metrics.time "phase.select" @@ fun () ->
  match s.method_ with
  | Baseline -> Extinstr.empty
  | Greedy ->
      let r =
        Greedy.select ~config:s.extract ~lut_budget:s.lut_budget analysis.cfg
          analysis.live analysis.profile
      in
      r.Greedy.table
  | Selective ->
      let params =
        {
          Selective.extract = s.extract;
          gain_threshold = s.gain_threshold;
          lut_budget = s.lut_budget;
        }
      in
      let r =
        Selective.select ~params ~n_pfus:s.n_pfus analysis.cfg analysis.loops
          analysis.live analysis.profile
      in
      r.Selective.table

let run ?analysis ?table (w : Workload.t) s =
  validate s;
  let analysis = match analysis with Some a -> a | None -> analyze w in
  let table =
    match table with Some t -> t | None -> select_table s analysis
  in
  let program =
    if Extinstr.count table = 0 then w.Workload.program
    else begin
      (* Optional cfgld hints: one per (loop, configuration) pair, at
         the first slot of the loop header (= the preheader position
         after target remapping). *)
      let prefetch =
        if not s.config_prefetch then []
        else begin
          let loop_arr = Loops.loops analysis.loops in
          List.concat_map
            (fun (e : Extinstr.entry) ->
              List.filter_map
                (fun (o : T1000_dfg.Extract.occ) ->
                  match
                    Loops.innermost_at_instr analysis.loops
                      o.T1000_dfg.Extract.root
                  with
                  | None -> None
                  | Some li ->
                      let header = loop_arr.(li).Loops.header in
                      Some
                        ( (Cfg.block analysis.cfg header).Cfg.first,
                          e.Extinstr.eid ))
                e.Extinstr.occs)
            (Extinstr.entries table)
          |> List.sort_uniq compare
        end
      in
      let r = Rewrite.apply ~prefetch w.Workload.program table in
      verify_outputs w table r.Rewrite.program;
      r.Rewrite.program
    end
  in
  let machine =
    match s.method_ with
    | Baseline -> { s.machine with Mconfig.n_pfus = Some 0 }
    | Greedy | Selective ->
        Mconfig.with_pfus ~replacement:s.replacement ~penalty:s.penalty
          s.n_pfus s.machine
  in
  let ext_latency =
    match s.ext_timing with
    | `Single_cycle -> fun eid -> (Extinstr.get table eid).Extinstr.latency
    | `Lut_levels ->
        fun eid ->
          T1000_hwcost.Lut.latency_estimate (Extinstr.get table eid).Extinstr.dfg
  in
  let stats =
    T1000_obs.Metrics.time "phase.sim" @@ fun () ->
    Sim.run ~mconfig:machine ~ext_latency ~ext_eval:(Extinstr.eval table)
      ~selfcheck:s.selfcheck
      ~init:(fun mem regs -> w.Workload.init mem regs)
      program
  in
  (* Self-check mode cross-validates the timing simulator's
     architectural results against the functional interpreter: same
     program, same inputs, so the committed-instruction count and the
     output region must agree exactly. *)
  if s.selfcheck then begin
    let mem = Memory.create () in
    let regs = Regfile.create () in
    w.Workload.init mem regs;
    let interp =
      Interp.create ~mem ~regs ~ext_eval:(Extinstr.eval table) program
    in
    let steps = Interp.run interp in
    if steps <> stats.Stats.committed then
      raise
        (Fault.Error
           (Fault.Selfcheck_failed
              (Printf.sprintf
                 "%s: simulator committed %d instructions but the \
                  functional interpreter retired %d"
                 w.Workload.name stats.Stats.committed steps)));
    let interp_out = Workload.output w mem in
    let ref_out = functional_output w Extinstr.empty w.Workload.program in
    if not (String.equal interp_out ref_out) then
      raise
        (Fault.Error
           (Fault.Selfcheck_failed
              (Printf.sprintf
                 "%s: architectural output diverges from the original \
                  program's under self-check"
                 w.Workload.name)))
  end;
  { workload = w; used = s; table; program; stats }

let speedup ~baseline r = Stats.speedup ~baseline:baseline.stats r.stats
