(** Checkpoint/resume journal for the experiment engine.

    A sweep driver records each completed (workload x point) result as
    it arrives; a re-run of the same sweep with the same journal skips
    every recorded point and recomputes only the rest, so a killed
    multi-hour sweep resumes instead of restarting from zero — and the
    resumed rows are byte-identical to an uninterrupted run (marshalled
    OCaml values round-trip exactly; the test suite asserts this).

    Robustness properties:
    - every write is a full rewrite into a temp file followed by an
      atomic [rename], so a kill at any instant leaves either the old
      or the new journal, never a torn one;
    - every record carries an MD5 checksum over its key and payload;
      records that fail the check at load time are dropped (reported
      via {!corrupt}) and their points recomputed;
    - {!record} is mutex-protected and safe to call concurrently from
      the {!Pool} workers' completion callback.

    Journals live under a directory the caller names explicitly, or the
    [T1000_CHECKPOINT_DIR] environment variable ({!default_dir}), one
    [<run>.journal] file per sweep. *)

type t

val env_var : string
(** ["T1000_CHECKPOINT_DIR"]. *)

val default_dir : unit -> string option
(** The [T1000_CHECKPOINT_DIR] environment variable, if set and
    non-empty. *)

val default_dir_validated : unit -> string option
(** {!default_dir}, additionally rejecting a value that names an
    existing non-directory (the directory itself need not exist yet —
    {!create} makes it on demand).
    @raise Fault.Error
      with [Invalid_config] if the variable points at an existing
      file. *)

val create : ?fresh:bool -> dir:string -> run:string -> unit -> t
(** Open (creating [dir] as needed) the journal for [run].  An existing
    journal is loaded, dropping corrupted records; [~fresh:true]
    discards it instead, for a from-scratch run. *)

val path : t -> string

val completed : t -> int
(** Number of valid records currently held. *)

val corrupt : t -> string list
(** One diagnostic per record dropped at load time (checksum mismatch,
    undecodable or malformed line).  Empty for a healthy journal. *)

val mem : t -> key:string -> bool

val find : t -> key:string -> 'a option
(** The recorded value for [key], if any.  The value is unmarshalled at
    the type the caller expects; as with any [Marshal] round-trip the
    caller must read at the type it wrote — the {!Experiment} drivers
    guarantee this by deriving keys from the driver id, workload and
    point label. *)

val record : t -> key:string -> 'a -> unit
(** Record (or overwrite) the value for [key] and atomically persist
    the journal. *)
