type 'v cell =
  | Pending
  | Done of 'v

type ('k, 'v) t = {
  mutex : Mutex.t;
  cond : Condition.t;
  tbl : ('k, 'v cell) Hashtbl.t;
  hits : string option;  (* Obs.Metrics counter names, when labelled *)
  misses : string option;
}

let create ?name n =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    tbl = Hashtbl.create n;
    hits = Option.map (fun n -> "memo." ^ n ^ ".hits") name;
    misses = Option.map (fun n -> "memo." ^ n ^ ".misses") name;
  }

let count = Option.iter (fun name -> T1000_obs.Metrics.incr name)

let find_or_compute t k f =
  Mutex.lock t.mutex;
  let rec claim () =
    match Hashtbl.find_opt t.tbl k with
    | Some (Done v) ->
        Mutex.unlock t.mutex;
        `Hit v
    | Some Pending ->
        Condition.wait t.cond t.mutex;
        claim ()
    | None ->
        Hashtbl.replace t.tbl k Pending;
        Mutex.unlock t.mutex;
        `Compute
  in
  match claim () with
  | `Hit v ->
      count t.hits;
      v
  | `Compute -> (
      count t.misses;
      match f () with
      | v ->
          Mutex.lock t.mutex;
          Hashtbl.replace t.tbl k (Done v);
          Condition.broadcast t.cond;
          Mutex.unlock t.mutex;
          v
      | exception e ->
          (* Clear the pending slot so waiters retry (and so a later
             call can attempt the computation again). *)
          Mutex.lock t.mutex;
          Hashtbl.remove t.tbl k;
          Condition.broadcast t.cond;
          Mutex.unlock t.mutex;
          raise e)

let find_opt t k =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.tbl k with
    | Some (Done v) -> Some v
    | Some Pending | None -> None
  in
  Mutex.unlock t.mutex;
  r

let length t =
  Mutex.lock t.mutex;
  let n =
    Hashtbl.fold
      (fun _ c acc -> match c with Done _ -> acc + 1 | Pending -> acc)
      t.tbl 0
  in
  Mutex.unlock t.mutex;
  n
