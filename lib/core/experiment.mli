(** Drivers that regenerate every table and figure of the paper, plus
    the DESIGN.md ablations.  Results come back as typed rows; use
    {!Report} to render them in the paper's units (execution-time
    speedup over the no-PFU superscalar, normalized to 1). *)

open T1000_workloads

(** Per-suite memo of analyses, baseline runs and selection tables, so
    a batch of experiments profiles and simulates each workload's
    baseline once and selects each distinct table once.  All memo
    tables are compute-once and domain-safe ({!Memo}): the sweep
    drivers below fan their (workload x configuration) points out over
    the {!Pool} worker pool ([T1000_NJOBS] workers) and still return
    exactly the rows a sequential run returns. *)
type ctx

val create_ctx : ?workloads:Workload.t list -> unit -> ctx
(** Defaults to the full 8-benchmark suite ({!Registry.all}). *)

val workloads : ctx -> Workload.t list
val analysis : ctx -> Workload.t -> Runner.analysis
val baseline : ctx -> Workload.t -> Runner.run
val baseline_stats : ctx -> Workload.t -> T1000_ooo.Stats.t

val baseline_for :
  ctx -> Workload.t -> T1000_ooo.Mconfig.t -> Runner.run
(** The workload's no-PFU baseline on an arbitrary base machine, cached
    per (workload, machine) — what lets a machine-width axis (the A5
    sweep, the {e lib/dse} width axis) compare every configured point
    against a baseline of the same width without re-simulating it per
    point.  {!baseline} is [baseline_for] at {!T1000_ooo.Mconfig.default}. *)

val selection_table :
  ctx -> Workload.t -> Runner.setup -> T1000_select.Extinstr.t
(** The setup's extended-instruction table, cached per workload on the
    selection-relevant subset of the setup ([method_], [n_pfus],
    [extract], [gain_threshold], [lut_budget]).  Two setups differing
    only in simulation parameters (penalty, replacement, timing model,
    machine, prefetch) share the {e physically same} table, so e.g. a
    penalty sweep runs instruction selection once per workload. *)

val run_setup : ctx -> Workload.t -> Runner.setup -> Runner.run
(** {!Runner.run} with the ctx's cached analysis and selection table. *)

val speedup_of : ctx -> Workload.t -> Runner.setup -> float
(** Speedup of [run_setup] over the workload's cached default-machine
    baseline. *)

(** {1 Figure 2 — greedy selection} *)

type f2_row = {
  f2_name : string;
  f2_greedy_unlimited : float;
      (** unlimited PFUs, zero reconfiguration cost *)
  f2_greedy_2pfu : float;  (** 2 PFUs, 10-cycle penalty (thrashing) *)
}

val figure2 : ctx -> f2_row list

(** {1 Section 4.1 text table — greedy instruction statistics} *)

type t41_row = {
  t41_name : string;
  t41_distinct : int;  (** distinct extended instructions (paper: 6-43) *)
  t41_shortest : int;
      (** shortest sequence length (paper: 2); 0 when the selection is
          empty *)
  t41_longest : int;
      (** longest sequence length (paper: up to 8); 0 when the
          selection is empty *)
  t41_occurrences : int;  (** static occurrence sites *)
}

val table41 : ctx -> t41_row list

(** {1 Figure 6 — selective selection} *)

type f6_row = {
  f6_name : string;
  f6_sel_2 : float;
  f6_sel_4 : float;
  f6_sel_unlimited : float;
}

val figure6 : ctx -> f6_row list

(** {1 Section 5.2 — reconfiguration-penalty sensitivity} *)

type s52_row = {
  s52_name : string;
  s52_points : (int * float * float) list;
      (** (penalty, selective 2-PFU speedup, greedy 2-PFU speedup) *)
}

val penalty_sweep : ?penalties:int list -> ctx -> s52_row list
(** Default penalties: 10, 50, 100, 250, 500 (the paper's claim covers
    up to 500). *)

(** {1 Figure 7 — hardware cost distribution} *)

type f7_result = {
  f7_costs : (string * int list) list;  (** per-benchmark LUT costs *)
  f7_histogram : T1000_hwcost.Area.t;
  f7_max : int;
}

val figure7 : ctx -> f7_result

(** {1 Ablations (DESIGN.md A1-A5)} *)

type sweep_row = {
  sweep_name : string;
  sweep_points : (string * float) list;  (** (setting label, speedup) *)
}

val pfu_count_sweep : ?counts:int list -> ctx -> sweep_row list
(** A1: selective speedup vs number of PFUs (default 1,2,3,4,6,8). *)

val width_threshold_sweep : ?widths:int list -> ctx -> sweep_row list
(** A2: greedy-unlimited speedup vs candidate bitwidth threshold
    (default 8,12,18,24,32). *)

val gain_threshold_sweep : ?thresholds:float list -> ctx -> sweep_row list
(** A3: selective 2-PFU speedup vs gain-ratio threshold
    (default 0.001, 0.005, 0.02). *)

val replacement_sweep : ctx -> sweep_row list
(** A4: selective 2-PFU speedup under LRU / FIFO / pseudo-random PFU
    replacement. *)

val machine_sweep : ctx -> sweep_row list
(** A5: selective 4-PFU speedup on narrower/wider machines
    (2-wide/RUU 32, 4-wide/RUU 64, 8-wide/RUU 128). *)

val latency_model_sweep : ctx -> sweep_row list
(** A6: selective 4-PFU speedup under the paper's single-cycle PFU
    assumption vs the LUT-level delay model
    ({!T1000_hwcost.Lut.latency_estimate}) — the varying-execution-time
    extension the paper suggests in Section 3.1. *)

val branch_predictor_sweep : ctx -> sweep_row list
(** A7: selective 4-PFU speedup under perfect branch prediction (the
    paper's assumption) vs a 2K-entry bimodal predictor, each against a
    baseline with the same predictor. *)

val prefetch_sweep : ?penalties:int list -> ctx -> sweep_row list
(** A8: selective 2-PFU speedup with and without [cfgld] configuration
    prefetching, at reconfiguration penalties where loop-entry reloads
    start to matter (default 100 and 500 cycles). *)

(** {1 Fault-isolated, checkpointed driver variants}

    Every driver above has a [*_result] twin that never lets a per-point
    exception abort the sweep: each (workload x point) task that raises
    is classified into the {!Fault} taxonomy, the affected workload's
    row is withheld, and every other row is still returned.  The plain
    drivers are strict facades that raise {!Fault.Error} on the first
    fault.

    With [?journal], completed point values are recorded in the
    {!Checkpoint} journal as they arrive and already-recorded points
    are served from it without recomputation, so re-running an
    interrupted sweep against the same journal resumes it — and yields
    rows byte-identical to an uninterrupted run.

    Test hook: when the [T1000_FAULT_INJECT] environment variable names
    a workload, every task of that workload raises
    [Fault.Injected] instead of simulating. *)

type point_fault = {
  fault_workload : string;
  fault_point : string;  (** the point's label within its sweep *)
  fault : Fault.t;
}

(** Rows for every workload whose points all succeeded, plus one
    {!point_fault} per failed (workload x point) task, in suite
    order. *)
type 'row partial = { rows : 'row list; faults : point_fault list }

val figure2_result : ?journal:Checkpoint.t -> ctx -> f2_row partial
val table41_result : ?journal:Checkpoint.t -> ctx -> t41_row partial
val figure6_result : ?journal:Checkpoint.t -> ctx -> f6_row partial

val penalty_sweep_result :
  ?journal:Checkpoint.t -> ?penalties:int list -> ctx -> s52_row partial

val figure7_result :
  ?journal:Checkpoint.t -> ctx -> f7_result * point_fault list
(** The aggregate ({!f7_result}) is computed over the workloads that
    succeeded; faulted workloads are simply absent from [f7_costs] and
    the histogram. *)

val ablation_result :
  ?journal:Checkpoint.t -> ctx -> string -> sweep_row partial option
(** The fault-isolated twin of the A1-A8 ablation sweeps, dispatched on
    the ablation id (["a1"] .. ["a8"]); [None] for an unknown id. *)
