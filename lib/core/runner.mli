(** Top-level facade: run a workload under a named T1000 configuration.

    Ties the whole system together, mirroring the paper's methodology
    (Section 3): profile the program to completion, select extended
    instructions (greedy or selective), rewrite the program, and
    simulate it on the cycle-level out-of-order core.  Speedups are
    execution-time ratios against the same machine without PFUs. *)

open T1000_asm
open T1000_profile
open T1000_select
open T1000_ooo
open T1000_workloads

(** Which instruction-selection algorithm to use. *)
type method_ =
  | Baseline  (** plain superscalar, no PFUs *)
  | Greedy  (** Section 4 *)
  | Selective  (** Section 5 *)

type setup = {
  method_ : method_;
  n_pfus : int option;  (** [None] = unlimited; ignored for [Baseline] *)
  penalty : int;  (** PFU reconfiguration cycles *)
  replacement : Mconfig.pfu_replacement;
  extract : T1000_dfg.Extract.config;
  gain_threshold : float;  (** selective filter (fraction of total time) *)
  lut_budget : int;
  ext_timing : [ `Single_cycle | `Lut_levels ];
      (** how extended instructions are timed: the paper's single-cycle
          assumption, or the {!T1000_hwcost.Lut.latency_estimate} delay
          model (the paper's suggested varying-execution-time
          extension) *)
  config_prefetch : bool;
      (** insert [cfgld] configuration-prefetch hints in the preheader
          of every loop that uses an extended instruction (our
          future-work extension; default false) *)
  machine : Mconfig.t;  (** base machine; PFU fields are overridden from
                            the fields above *)
  selfcheck : bool;
      (** opt-in self-check mode: per-commit RUU/PFU-file invariant
          audits in the simulator, plus a post-run cross-validation of
          the architectural results against the functional interpreter *)
}

val setup : ?n_pfus:int option -> ?penalty:int -> ?selfcheck:bool ->
  method_ -> setup
(** Defaults: 2 PFUs, 10-cycle penalty, LRU, paper extraction and
    selection parameters, the default machine.  [?selfcheck] defaults
    to the [T1000_SELFCHECK] environment variable (strict boolean,
    {!Fault.getenv_bool}).
    @raise Fault.Error
      with [Invalid_config] if any field is out of range
      ({!validate}). *)

val validate : setup -> unit
(** Reject nonsensical setups before any simulation runs: [n_pfus]
    [Some n] with [n <= 0], negative [penalty], [gain_threshold]
    outside [[0, 1]] (NaN included), non-positive [lut_budget].
    Called by {!setup}, {!select_table} and {!run}, so a hand-built
    record is still caught.
    @raise Fault.Error with [Invalid_config] naming the bad field. *)

(** Cached per-workload analysis (one profiling run plus the static
    analyses), reusable across setups. *)
type analysis = {
  profile : Profile.t;
  cfg : Cfg.t;
  loops : Loops.t;
  live : Liveness.t;
}

val analyze : Workload.t -> analysis

type run = {
  workload : Workload.t;
  used : setup;
  table : Extinstr.t;  (** empty for [Baseline] *)
  program : Program.t;  (** the program actually simulated *)
  stats : Stats.t;
}

val select_table : setup -> analysis -> T1000_select.Extinstr.t
(** Just the instruction-selection step of {!run}: the extended
    instruction table the setup's method picks.  Depends only on the
    setup's selection-relevant fields ([method_], [n_pfus], [extract],
    [gain_threshold], [lut_budget]) — in particular {e not} on
    [penalty] or [replacement], which is what makes the table cachable
    across a penalty or replacement sweep ({!Experiment}). *)

val run : ?analysis:analysis -> ?table:T1000_select.Extinstr.t ->
  Workload.t -> setup -> run
(** Select, rewrite, and simulate.  The functional outputs of the
    rewritten program are verified against the original's before timing
    (a safety net for the rewriter); a mismatch raises {!Fault.Error}
    with [Verify_mismatch].  [?table] supplies a precomputed selection
    (e.g. from the {!Experiment} cache), skipping the selection step;
    it must be the table {!select_table} would have produced for [s].
    With [s.selfcheck] set, the simulator audits its RUU/PFU-file
    invariants at every commit and the architectural results are
    cross-validated against the functional interpreter afterwards;
    violations raise {!Fault.Error} with [Selfcheck_failed] (or
    {!T1000_ooo.Sim.Selfcheck_violation} from inside the pipeline). *)

val speedup : baseline:run -> run -> float

val verify_outputs : Workload.t -> Extinstr.t -> Program.t -> unit
(** Run original and rewritten programs functionally and compare output
    regions byte for byte.
    @raise Fault.Error with [Verify_mismatch] on a mismatch. *)
