(** A small OCaml 5 [Domain]-based worker pool for the experiment
    engine.

    Every sweep in {!Experiment} is a bag of independent, deterministic
    (workload x configuration) simulations, so the engine fans them out
    over domains with {!parallel_map} and reassembles the results in
    input order.  Because each task is pure (no shared mutable state
    beyond the mutex-protected memo tables in {!Experiment}), parallel
    results are bit-identical to sequential ones; the test suite
    asserts this.

    The default worker count comes from the [T1000_NJOBS] environment
    variable when set, else {!Domain.recommended_domain_count}.
    [T1000_NJOBS=1] disables the pool entirely: [parallel_map] then
    degrades to a plain [List.map] on the calling domain, with no
    domains spawned. *)

val default_njobs : unit -> int
(** Worker count used when [?njobs] is not given: the value of the
    [T1000_NJOBS] environment variable if set and non-empty, else
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument
      if [T1000_NJOBS] is set to anything other than a positive
      integer (or the empty string, which counts as unset). *)

val parallel_map : ?njobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map f xs] is [List.map f xs] computed by [njobs] workers
    (the calling domain plus [njobs - 1] spawned domains) pulling tasks
    from a shared counter.  Results are returned in input order
    regardless of completion order.

    If any application of [f] raises, remaining tasks are abandoned,
    all domains are joined, and the exception raised by the
    lowest-index failing element is re-raised on the calling domain
    (deterministic even when several tasks fail).

    With [njobs = 1] (explicitly, or via [T1000_NJOBS=1]) no domain is
    spawned and the input is mapped sequentially. *)

val parallel_map_result :
  ?njobs:int ->
  ?on_result:(int -> ('b, Fault.t) result -> unit) ->
  ('a -> 'b) ->
  'a list ->
  ('b, Fault.t) result list
(** Fault-isolating variant of {!parallel_map}: every application of
    [f] that raises yields [Error (Fault.of_exn e)] {e for that element
    only} — no task is abandoned, all remaining elements still run, and
    the result list (in input order) pairs every input with either its
    value or its classified fault.  This is what lets a sweep return
    partial rows plus a fault report instead of aborting the figure.

    [?on_result] is invoked once per element, with the element's input
    index, as soon as its result is known (completion order, under an
    internal mutex — so a {!Checkpoint} journal can be appended to
    incrementally while later tasks are still running).  An exception
    escaping [on_result] itself (e.g. the journal's disk filling up) is
    not isolated: it propagates and aborts the map. *)
