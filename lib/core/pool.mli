(** A small OCaml 5 [Domain]-based worker pool for the experiment
    engine.

    Every sweep in {!Experiment} is a bag of independent, deterministic
    (workload x configuration) simulations, so the engine fans them out
    over domains with {!parallel_map} and reassembles the results in
    input order.  Because each task is pure (no shared mutable state
    beyond the mutex-protected memo tables in {!Experiment}), parallel
    results are bit-identical to sequential ones; the test suite
    asserts this.

    The default worker count comes from the [T1000_NJOBS] environment
    variable when set, else {!Domain.recommended_domain_count}.
    [T1000_NJOBS=1] disables the pool entirely: [parallel_map] then
    degrades to a plain [List.map] on the calling domain, with no
    domains spawned. *)

val default_njobs : unit -> int
(** Worker count used when [?njobs] is not given: the value of the
    [T1000_NJOBS] environment variable if set and non-empty, else
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument
      if [T1000_NJOBS] is set to anything other than a positive
      integer (or the empty string, which counts as unset). *)

val parallel_map : ?njobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map f xs] is [List.map f xs] computed by [njobs] workers
    (the calling domain plus [njobs - 1] spawned domains) pulling tasks
    from a shared counter.  Results are returned in input order
    regardless of completion order.

    If any application of [f] raises, remaining tasks are abandoned,
    all domains are joined, and the exception raised by the
    lowest-index failing element is re-raised on the calling domain
    (deterministic even when several tasks fail).

    With [njobs = 1] (explicitly, or via [T1000_NJOBS=1]) no domain is
    spawned and the input is mapped sequentially. *)

val parallel_map_result :
  ?njobs:int ->
  ?retries:int ->
  ?on_result:(int -> ('b, Fault.t) result -> unit) ->
  ('a -> 'b) ->
  'a list ->
  ('b, Fault.t) result list
(** Fault-isolating variant of {!parallel_map}: every application of
    [f] that raises yields [Error (Fault.of_exn e)] {e for that element
    only} — no task is abandoned, all remaining elements still run, and
    the result list (in input order) pairs every input with either its
    value or its classified fault.  This is what lets a sweep return
    partial rows plus a fault report instead of aborting the figure.

    [?retries] bounds how many times a {!Fault.transient} failure
    ([Injected]/[Crashed]) of one element is retried, with capped
    exponential backoff (1 ms doubling to a 50 ms cap) between
    attempts; deterministic faults are never retried.  Default: the
    [T1000_RETRIES] environment variable when set, else 10 under
    chaos mode (see below), else 0 — so a deterministic injection via
    [T1000_FAULT_INJECT] still surfaces as it did before.

    {b Chaos mode.}  Setting [T1000_CHAOS=p] (a probability in
    [\[0, 1)]) makes the pool adversarial: each task attempt fails with
    a transient [Fault.Injected] with probability [p], and with
    probability [p/2] per dequeue a worker domain "dies" mid-sweep —
    it requeues its task, spawns a replacement domain, and exits.
    Every chaos decision is a pure hash of ([T1000_CHAOS_SEED], task
    index, per-task counter), never of wall-clock or scheduling, so
    with retries available the surviving results are identical to a
    calm run at any worker count — the soak tests and [ci.sh] diff
    the two byte-for-byte.  {!chaos_events} exposes cumulative
    injection/kill counters for such assertions.

    [?on_result] is invoked once per element, with the element's input
    index, as soon as its final (post-retry) result is known
    (completion order, under an internal mutex — so a {!Checkpoint}
    journal can be appended to incrementally while later tasks are
    still running).  An exception escaping [on_result] itself (e.g.
    the journal's disk filling up) no longer aborts the map: it is
    recorded as that element's [Fault.Crashed] (prefixed
    ["on_result: "]), further notifications are suppressed, and every
    other element still completes normally. *)

val run_result :
  ?index:int -> ?retries:int -> (unit -> 'a) -> ('a, Fault.t) result
(** Request-level submission: run one task under the pool's fault
    envelope — exceptions classified into {!Fault.t}, deterministic
    chaos injection (see {!parallel_map_result}), and transient-fault
    retry with capped exponential backoff — without building a list
    map.  [?index] keys the chaos hash (pass a request sequence number
    so each request draws an independent, reproducible fate); [?retries]
    defaults exactly as in {!parallel_map_result} ([T1000_RETRIES],
    else 10 under chaos, else 0).  This is what the serve daemon's
    workers wrap every request in. *)

val chaos_kill_worker : index:int -> pops:int -> bool
(** The deterministic chaos worker-kill decision for long-lived worker
    loops outside {!parallel_map_result} (the serve daemon's domains):
    [true] with probability [p/2] keyed on ([T1000_CHAOS_SEED], [index],
    [pops]), incrementing the [pool.chaos.killed] counter when it
    fires.  [pops] should count how many times the work item has been
    dequeued, so a requeued item draws a fresh decision.  Always [false]
    when chaos is off. *)

val backoff_delay : int -> float
(** Backoff (seconds) before retry [attempt] (0-based): 1 ms doubling
    per attempt, capped at 50 ms, the whole schedule multiplied by
    [T1000_BACKOFF_SCALE] (default 1; 0 disables sleeping entirely, for
    tests and CI soak runs). *)

val env_backoff_scale : unit -> float
(** The backoff multiplier from [T1000_BACKOFF_SCALE] (1.0 when
    unset/empty; 0 allowed).
    @raise Fault.Error
      with [Invalid_config] if set to a negative or non-float value. *)

val env_chaos : unit -> float
(** The chaos probability from [T1000_CHAOS] (0.0 when unset/empty).
    @raise Fault.Error
      with [Invalid_config] if set to anything outside [\[0, 1)]. *)

val env_chaos_seed : unit -> int
(** The chaos hash seed from [T1000_CHAOS_SEED] (1 when unset/empty).
    @raise Fault.Error with [Invalid_config] if set to a non-integer. *)

val env_retries : unit -> int option
(** The retry override from [T1000_RETRIES] ([None] when unset/empty).
    @raise Fault.Error
      with [Invalid_config] if set to a negative or non-integer
      value. *)

val chaos_events : unit -> int * int
(** Cumulative ([injected], [killed]) chaos-event counters across all
    {!parallel_map_result} calls in this process; tests subtract
    before/after snapshots to assert chaos actually perturbed a run.

    The counters are backed by the [Obs.Metrics] counters
    [pool.chaos.injected] and [pool.chaos.killed] — this accessor is a
    facade over the merged metric view.  The pool also records
    [pool.maps] / [pool.tasks] / [pool.retries] counters, the
    [pool.task_wait_ms] queue-wait histogram and the [pool.busy_s] /
    [pool.wall_s] accumulators (worker utilization is
    [busy / (wall x njobs)]), and emits [pool.map] / [pool.task] spans
    when tracing is enabled. *)
