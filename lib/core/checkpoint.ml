(* Journal lines are [t1000v1 <digest> <hex key> <hex payload>], one
   record per line, last binding for a key wins.  The hex encoding keeps
   arbitrary keys and marshalled payloads newline- and space-free; the
   MD5 digest over [key NUL payload] detects truncated or corrupted
   records so a journal damaged by a crash mid-rename (or a flipped
   byte on disk) degrades to recomputing the damaged points, never to
   resuming from garbage. *)

let magic = "t1000v1"
let env_var = "T1000_CHECKPOINT_DIR"

let default_dir () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> Some s

(* The directory itself is created on demand, but pointing the variable
   at an existing *file* can only be a misconfiguration — catch it
   upfront (the CLI's validate_env) instead of failing mid-sweep when
   the first record is flushed. *)
let default_dir_validated () =
  match default_dir () with
  | Some d when Sys.file_exists d && not (Sys.is_directory d) ->
      raise
        (Fault.Error
           (Fault.Invalid_config
              (Printf.sprintf "%s points at %S, which is not a directory"
                 env_var d)))
  | o -> o

type t = {
  path : string;
  mutex : Mutex.t;
  tbl : (string, string) Hashtbl.t;  (* key -> marshalled payload *)
  corrupt : string list;  (* diagnostic per record dropped at load *)
}

let path t = t.path
let corrupt t = t.corrupt

let completed t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.tbl in
  Mutex.unlock t.mutex;
  n

let digest ~key payload = Digest.to_hex (Digest.string (key ^ "\x00" ^ payload))

let hex_encode s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let hex_decode s =
  let n = String.length s in
  if n mod 2 <> 0 then None
  else begin
    let b = Buffer.create (n / 2) in
    let ok = ref true in
    (try
       for i = 0 to (n / 2) - 1 do
         Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))
       done
     with Failure _ | Invalid_argument _ -> ok := false);
    if !ok then Some (Buffer.contents b) else None
  end

let parse_line line =
  match String.split_on_char ' ' line with
  | [ m; d; hk; hp ] when m = magic -> (
      match (hex_decode hk, hex_decode hp) with
      | Some key, Some payload when digest ~key payload = d -> `Ok (key, payload)
      | Some key, Some _ -> `Corrupt (Printf.sprintf "checksum mismatch for key %S" key)
      | _ -> `Corrupt "undecodable record")
  | _ when String.trim line = "" -> `Blank
  | _ -> `Corrupt "malformed line"

let load_file path tbl =
  let ic = open_in_bin path in
  let corrupt = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       match parse_line line with
       | `Ok (key, payload) -> Hashtbl.replace tbl key payload
       | `Blank -> ()
       | `Corrupt why ->
           corrupt := Printf.sprintf "%s:%d: %s" path !lineno why :: !corrupt
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !corrupt

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = Filename.dir_sep || Sys.file_exists dir
  then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let create ?(fresh = false) ~dir ~run () =
  mkdir_p dir;
  let path = Filename.concat dir (run ^ ".journal") in
  if fresh && Sys.file_exists path then Sys.remove path;
  let tbl = Hashtbl.create 64 in
  let corrupt = if Sys.file_exists path then load_file path tbl else [] in
  { path; mutex = Mutex.create (); tbl; corrupt }

(* Full rewrite into a temp file followed by an atomic rename: a reader
   (or a resumed run after a kill at any instant) sees either the old
   journal or the new one, never a half-written line.  Journals are a
   few KB per sweep, so the rewrite is noise next to one simulation. *)
let flush_locked t =
  let tmp = t.path ^ ".tmp" in
  let oc = open_out_bin tmp in
  let records =
    Hashtbl.fold (fun k p acc -> (k, p) :: acc) t.tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (key, payload) ->
      output_string oc
        (Printf.sprintf "%s %s %s %s\n" magic (digest ~key payload)
           (hex_encode key) (hex_encode payload)))
    records;
  close_out oc;
  Sys.rename tmp t.path

let record t ~key v =
  let payload = Marshal.to_string v [] in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      Hashtbl.replace t.tbl key payload;
      flush_locked t)

let mem t ~key =
  Mutex.lock t.mutex;
  let r = Hashtbl.mem t.tbl key in
  Mutex.unlock t.mutex;
  r

let find t ~key =
  Mutex.lock t.mutex;
  let p = Hashtbl.find_opt t.tbl key in
  Mutex.unlock t.mutex;
  T1000_obs.Metrics.incr
    (match p with
    | Some _ -> "checkpoint.hits"
    | None -> "checkpoint.misses");
  Option.map (fun payload -> Marshal.from_string payload 0) p
