(** Entry point of the [t1000] library.

    - {!Runner} — run a workload under a named configuration
      (baseline / greedy / selective x PFU count x penalty);
    - {!Experiment} — drivers that regenerate every figure and table of
      the paper, plus the ablations listed in DESIGN.md;
    - {!Report} — text rendering of experiment results;
    - {!Pool} — the [Domain]-based worker pool the experiment engine
      fans sweeps out on ([T1000_NJOBS] workers);
    - {!Memo} — the compute-once memo table backing the analysis,
      baseline and selection caches;
    - {!Fault} — the typed fault taxonomy the fault-isolated drivers
      classify per-point failures into;
    - {!Checkpoint} — the checkpoint/resume journal behind the
      [*_result] drivers' [?journal] argument;
    - {!Obs} — the deterministic telemetry subsystem (metrics, spans,
      Chrome-trace export); strictly observational, never on stdout. *)

module Runner = Runner
module Experiment = Experiment
module Report = Report
module Pool = Pool
module Memo = Memo
module Fault = Fault
module Checkpoint = Checkpoint
module Obs = T1000_obs
