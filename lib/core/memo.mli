(** A compute-once memo table safe to share across {!Pool} workers.

    [find_or_compute] guarantees each key's value is computed by
    exactly one domain; concurrent requesters for the same key block
    until the computation finishes and then share the {e same} value
    (physical equality), which is what lets {!Experiment} assert that a
    penalty sweep runs instruction selection once per workload rather
    than once per swept point. *)

type ('k, 'v) t

val create : ?name:string -> int -> ('k, 'v) t
(** [create n] is an empty table with initial capacity [n].  With
    [?name], every lookup is counted into the [Obs.Metrics] counters
    [memo.<name>.hits] / [memo.<name>.misses] (a waiter that shares a
    pending computation counts as a hit). *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_compute t k f] returns the cached value for [k], or runs
    [f ()] (outside the table lock, so independent keys compute in
    parallel) and caches it.  If another domain is already computing
    [k], the caller waits for that result instead of recomputing.  If
    [f] raises, the pending slot is cleared (a later caller may retry)
    and the exception propagates to everyone waiting. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** The cached value for [k], if its computation has already
    completed.  Never blocks (a [Pending] slot reads as [None]) and is
    not counted into the hit/miss telemetry — the serve daemon probes
    with it to label replies that were served from a warm cache. *)

val length : ('k, 'v) t -> int
(** Number of cached (completed) bindings. *)
