let default_njobs () =
  match Sys.getenv_opt "T1000_NJOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s when String.trim s = "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "T1000_NJOBS must be a positive integer, got %S" s))

let parallel_map ?njobs f xs =
  let njobs =
    match njobs with Some n -> max 1 n | None -> default_njobs ()
  in
  match xs with
  | [] -> []
  | xs when njobs = 1 -> List.map f xs
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let results = Array.make n None in
      let next = Atomic.make 0 in
      (* (index, exn) of every failed task; the lowest index wins so
         the surfaced exception does not depend on scheduling. *)
      let failures = Atomic.make [] in
      let record i e =
        let rec loop () =
          let old = Atomic.get failures in
          if not (Atomic.compare_and_set failures old ((i, e) :: old)) then
            loop ()
        in
        loop ();
        (* Abandon unclaimed tasks: workers drain on the next fetch. *)
        Atomic.set next n
      in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            match f input.(i) with
            | v -> results.(i) <- Some v
            | exception e -> record i e
        done
      in
      let domains =
        List.init (min njobs n - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      List.iter Domain.join domains;
      (match Atomic.get failures with
      | [] -> ()
      | fs ->
          let _, e =
            List.fold_left
              (fun (bi, be) (i, e) -> if i < bi then (i, e) else (bi, be))
              (List.hd fs) (List.tl fs)
          in
          raise e);
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)

let parallel_map_result ?njobs ?on_result f xs =
  let njobs =
    match njobs with Some n -> max 1 n | None -> default_njobs ()
  in
  let wrap x =
    match f x with
    | v -> Ok v
    | exception e ->
        let backtrace = Printexc.get_backtrace () in
        Error (Fault.of_exn ~backtrace e)
  in
  match xs with
  | [] -> []
  | xs when njobs = 1 ->
      List.mapi
        (fun i x ->
          let r = wrap x in
          (match on_result with None -> () | Some g -> g i r);
          r)
        xs
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let notify_mutex = Mutex.create () in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else begin
            let r = wrap input.(i) in
            results.(i) <- Some r;
            match on_result with
            | None -> ()
            | Some g ->
                Mutex.lock notify_mutex;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock notify_mutex)
                  (fun () -> g i r)
          end
        done
      in
      let domains =
        List.init (min njobs n - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      List.iter Domain.join domains;
      Array.to_list
        (Array.map
           (function Some r -> r | None -> assert false)
           results)
