module Metrics = T1000_obs.Metrics
module Tracer = T1000_obs.Tracer

let default_njobs () =
  match Sys.getenv_opt "T1000_NJOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s when String.trim s = "" -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "T1000_NJOBS must be a positive integer, got %S" s))

let parallel_map ?njobs f xs =
  let njobs =
    match njobs with Some n -> max 1 n | None -> default_njobs ()
  in
  Tracer.with_span ~cat:"pool" "pool.map" @@ fun () ->
  match xs with
  | [] -> []
  | xs when njobs = 1 -> List.map f xs
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let results = Array.make n None in
      let next = Atomic.make 0 in
      (* (index, exn) of every failed task; the lowest index wins so
         the surfaced exception does not depend on scheduling. *)
      let failures = Atomic.make [] in
      let record i e =
        let rec loop () =
          let old = Atomic.get failures in
          if not (Atomic.compare_and_set failures old ((i, e) :: old)) then
            loop ()
        in
        loop ();
        (* Abandon unclaimed tasks: workers drain on the next fetch. *)
        Atomic.set next n
      in
      let worker () =
        let continue = ref true in
        while !continue do
          let i = Atomic.fetch_and_add next 1 in
          if i >= n then continue := false
          else
            match f input.(i) with
            | v -> results.(i) <- Some v
            | exception e -> record i e
        done
      in
      let domains =
        List.init (min njobs n - 1) (fun _ -> Domain.spawn worker)
      in
      worker ();
      List.iter Domain.join domains;
      (match Atomic.get failures with
      | [] -> ()
      | fs ->
          let _, e =
            List.fold_left
              (fun (bi, be) (i, e) -> if i < bi then (i, e) else (bi, be))
              (List.hd fs) (List.tl fs)
          in
          raise e);
      Array.to_list
        (Array.map
           (function Some v -> v | None -> assert false)
           results)

(* -------- chaos configuration (T1000_CHAOS) --------

   Chaos mode randomly injects transient faults into tasks and randomly
   "kills" worker domains mid-sweep (the dying worker requeues its task
   and spawns a replacement domain before exiting).  Every decision is a
   pure hash of (chaos seed, task index, per-task counter), so the set
   of injected faults — and therefore the final per-task results — is
   identical at any worker count and on the sequential path, and a
   chaos-free rerun with the same inputs returns byte-identical rows. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

(* Deterministic float in [0, 1) from (seed, salt, a, b). *)
let hash_unit ~seed ~salt ~a ~b =
  let open Int64 in
  let h = mix64 (add (of_int b) 0x9e3779b97f4a7c15L) in
  let h = mix64 (logxor h (of_int a)) in
  let h = mix64 (logxor h (of_int salt)) in
  let h = mix64 (logxor h (of_int seed)) in
  to_float (shift_right_logical h 11) /. 9007199254740992.0

let env_chaos () =
  match Sys.getenv_opt "T1000_CHAOS" with
  | None -> 0.0
  | Some s when String.trim s = "" -> 0.0
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some p when p >= 0.0 && p < 1.0 -> p
      | Some _ | None ->
          raise
            (Fault.Error
               (Fault.Invalid_config
                  (Printf.sprintf
                     "T1000_CHAOS must be a fault probability in [0, 1), \
                      got %S"
                     s))))

let env_chaos_seed () =
  match Sys.getenv_opt "T1000_CHAOS_SEED" with
  | None -> 1
  | Some s when String.trim s = "" -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          raise
            (Fault.Error
               (Fault.Invalid_config
                  (Printf.sprintf "T1000_CHAOS_SEED must be an integer, got %S"
                     s))))

let env_retries () =
  match Sys.getenv_opt "T1000_RETRIES" with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 0 -> Some n
      | Some _ | None ->
          raise
            (Fault.Error
               (Fault.Invalid_config
                  (Printf.sprintf
                     "T1000_RETRIES must be a non-negative integer, got %S" s))))

type chaos = { p : float; seed : int }

let chaos_config () =
  let p = env_chaos () in
  if p > 0.0 then Some { p; seed = env_chaos_seed () } else None

(* Cumulative chaos-event counters now live in [Obs.Metrics] (sharded
   per domain, merged on read) alongside the rest of the pool
   telemetry; this facade keeps the historical accessor so tests and
   the fault report read the same values as before. *)
let injected_counter = "pool.chaos.injected"
let killed_counter = "pool.chaos.killed"
let chaos_events () = (Metrics.get injected_counter, Metrics.get killed_counter)

(* T1000_BACKOFF_SCALE: a multiplier on the whole backoff schedule, so
   tests and CI chaos soaks do not spend wall-clock seconds sleeping
   between retries.  0 is explicitly allowed (no sleeping at all); the
   deterministic attempt sequence is unchanged either way, because the
   scale only stretches or compresses the delays, never the decisions. *)
let env_backoff_scale () =
  match Sys.getenv_opt "T1000_BACKOFF_SCALE" with
  | None -> 1.0
  | Some s when String.trim s = "" -> 1.0
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some x when x >= 0.0 && Float.is_finite x -> x
      | Some _ | None ->
          raise
            (Fault.Error
               (Fault.Invalid_config
                  (Printf.sprintf
                     "T1000_BACKOFF_SCALE must be a non-negative finite \
                      float, got %S"
                     s))))

(* Capped exponential backoff before retrying a transient fault: 1 ms,
   2 ms, 4 ms, ... capped at 50 ms, so even a long retry chain costs
   well under a second next to one simulation.  The 50 ms cap is load-
   bearing: at the default 10 retries under chaos an element sleeps at
   most 1+2+4+8+16+32+50*5 = 313 ms, and the serve daemon's per-request
   deadline math can treat retry backoff as bounded noise.  The whole
   schedule is scaled by T1000_BACKOFF_SCALE (0 = no sleeping). *)
let backoff_delay attempt =
  env_backoff_scale ()
  *. Float.min 0.05 (0.001 *. Float.of_int (1 lsl min attempt 16))

(* How many worker kills a single map tolerates; a replacement domain
   is spawned for each, so this only bounds spawn churn. *)
let kill_cap = 16

let parallel_map_result ?njobs ?retries ?on_result f xs =
  let njobs =
    match njobs with Some n -> max 1 n | None -> default_njobs ()
  in
  let chaos = chaos_config () in
  let retries =
    match retries with
    | Some r -> max 0 r
    | None -> (
        match env_retries () with
        | Some r -> r
        | None -> if chaos = None then 0 else 10)
  in
  Tracer.with_span ~cat:"pool" "pool.map" @@ fun () ->
  let t_start = Unix.gettimeofday () in
  Metrics.incr "pool.maps";
  Metrics.set_gauge "pool.njobs" (float_of_int njobs);
  let inject_here ~index ~attempt =
    match chaos with
    | None -> false
    | Some { p; seed } -> hash_unit ~seed ~salt:1 ~a:index ~b:attempt < p
  in
  let kill_here ~index ~pops =
    match chaos with
    | None -> false
    | Some { p; seed } ->
        pops < 4 && hash_unit ~seed ~salt:2 ~a:index ~b:pops < p /. 2.0
  in
  let wrap x =
    match f x with
    | v -> Ok v
    | exception e ->
        let backtrace = Printexc.get_backtrace () in
        Error (Fault.of_exn ~backtrace e)
  in
  (* Task-level telemetry: queue wait is measured from map start to the
     task's first evaluation attempt; busy time covers every attempt.
     Both are per-domain Metrics writes, so the hot path stays
     lock-free. *)
  let attempt_task ~index ~attempt x =
    if attempt = 0 then
      Metrics.observe "pool.task_wait_ms"
        ((Unix.gettimeofday () -. t_start) *. 1e3)
    else Metrics.incr "pool.retries";
    let t0 = Unix.gettimeofday () in
    let r =
      Tracer.with_span ~cat:"pool" "pool.task" @@ fun () ->
      if inject_here ~index ~attempt then begin
        Metrics.incr injected_counter;
        Error
          (Fault.Injected
             (Printf.sprintf "chaos (T1000_CHAOS): task %d attempt %d" index
                attempt))
      end
      else wrap x
    in
    Metrics.add_float "pool.busy_s" (Unix.gettimeofday () -. t0);
    r
  in
  let result =
    match xs with
  | [] -> []
  | xs when njobs = 1 ->
      (* Sequential path: same per-task attempt sequence (and therefore
         the same final results) as the pool, no kills, no domains. *)
      let notify_dead = ref false in
      List.mapi
        (fun i x ->
          let rec go attempt =
            match attempt_task ~index:i ~attempt x with
            | Error fault when Fault.transient fault && attempt < retries ->
                Unix.sleepf (backoff_delay attempt);
                go (attempt + 1)
            | r -> r
          in
          let r = go 0 in
          Metrics.incr "pool.tasks";
          match on_result with
          | Some g when not !notify_dead -> (
              try
                g i r;
                r
              with e ->
                notify_dead := true;
                Error
                  (Fault.Crashed
                     {
                       exn = "on_result: " ^ Printexc.to_string e;
                       backtrace = Printexc.get_backtrace ();
                     }))
          | _ -> r)
        xs
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let results = Array.make n None in
      let m = Mutex.create () in
      let cv = Condition.create () in
      (* Work items are (index, attempt, pops): [attempt] counts real
         evaluation attempts (bounded by [retries]); [pops] counts how
         many times the item left the queue, which keeps the kill
         decision deterministic yet different on every requeue. *)
      let queue = Queue.create () in
      Array.iteri (fun i _ -> Queue.add (i, 0, 0) queue) input;
      let remaining = ref n in
      let spawned = ref [] in
      let kills = ref 0 in
      let notify_dead = ref false in
      let rec worker () =
        Mutex.lock m;
        worker_loop ()
      (* Invariant: called with [m] held; releases it before returning. *)
      and worker_loop () =
        if !remaining = 0 then begin
          Condition.broadcast cv;
          Mutex.unlock m
        end
        else if Queue.is_empty queue then begin
          (* Every unfinished task is in flight on some worker and will
             either finalize (remaining hits 0 -> broadcast) or requeue
             (-> signal), so this wait always ends. *)
          Condition.wait cv m;
          worker_loop ()
        end
        else begin
          let i, attempt, pops = Queue.pop queue in
          if kill_here ~index:i ~pops && !kills < kill_cap then begin
            (* This worker domain "dies" mid-sweep: requeue its task
               untouched, spawn a replacement, exit the loop.  The row
               is not lost — the replacement (or any surviving worker)
               picks it up. *)
            incr kills;
            Metrics.incr killed_counter;
            Queue.add (i, attempt, pops + 1) queue;
            spawned := Domain.spawn worker :: !spawned;
            Condition.signal cv;
            Mutex.unlock m
          end
          else begin
            Mutex.unlock m;
            match attempt_task ~index:i ~attempt input.(i) with
            | Error fault when Fault.transient fault && attempt < retries ->
                Unix.sleepf (backoff_delay attempt);
                Mutex.lock m;
                Queue.add (i, attempt + 1, pops + 1) queue;
                Condition.signal cv;
                worker_loop ()
            | r ->
                Mutex.lock m;
                let r =
                  (* An exception escaping on_result (e.g. the journal's
                     disk dying) no longer aborts the map: it surfaces
                     as this element's Crashed fault, notifications stop,
                     and every other task still completes. *)
                  match on_result with
                  | Some g when not !notify_dead -> (
                      try
                        g i r;
                        r
                      with e ->
                        notify_dead := true;
                        Error
                          (Fault.Crashed
                             {
                               exn = "on_result: " ^ Printexc.to_string e;
                               backtrace = Printexc.get_backtrace ();
                             }))
                  | _ -> r
                in
                Metrics.incr "pool.tasks";
                results.(i) <- Some r;
                decr remaining;
                if !remaining = 0 then Condition.broadcast cv;
                worker_loop ()
          end
        end
      in
      for _ = 2 to min njobs n do
        spawned := Domain.spawn worker :: !spawned
      done;
      worker ();
      (* Join every domain, including replacements spawned by chaos
         kills while we were already joining. *)
      let rec join_all () =
        Mutex.lock m;
        let ds = !spawned in
        spawned := [];
        Mutex.unlock m;
        match ds with
        | [] -> ()
        | ds ->
            List.iter Domain.join ds;
            join_all ()
      in
      join_all ();
      Array.to_list
        (Array.map
           (function Some r -> r | None -> assert false)
           results)
  in
  Metrics.add_float "pool.wall_s" (Unix.gettimeofday () -. t_start);
  result

(* -------- request-level submission (the serve daemon) --------

   A long-running server does not map over a list: requests arrive one
   at a time, each with its own sequence number.  [run_result] gives a
   single task the same envelope as one element of
   [parallel_map_result] — fault classification, deterministic chaos
   injection keyed on the caller-supplied index, and transient-retry
   with capped backoff — and [chaos_kill_worker] exposes the worker
   kill decision so long-lived worker loops (the daemon's domains) can
   die and respawn under T1000_CHAOS exactly like map workers do. *)

let run_result ?(index = 0) ?retries f =
  let chaos = chaos_config () in
  let retries =
    match retries with
    | Some r -> max 0 r
    | None -> (
        match env_retries () with
        | Some r -> r
        | None -> if chaos = None then 0 else 10)
  in
  let inject ~attempt =
    match chaos with
    | None -> false
    | Some { p; seed } -> hash_unit ~seed ~salt:3 ~a:index ~b:attempt < p
  in
  let rec go attempt =
    if attempt > 0 then Metrics.incr "pool.retries";
    let r =
      if inject ~attempt then begin
        Metrics.incr injected_counter;
        Error
          (Fault.Injected
             (Printf.sprintf "chaos (T1000_CHAOS): request %d attempt %d"
                index attempt))
      end
      else
        match f () with
        | v -> Ok v
        | exception e ->
            let backtrace = Printexc.get_backtrace () in
            Error (Fault.of_exn ~backtrace e)
    in
    match r with
    | Error fault when Fault.transient fault && attempt < retries ->
        Unix.sleepf (backoff_delay attempt);
        go (attempt + 1)
    | r -> r
  in
  Metrics.incr "pool.tasks";
  go 0

let chaos_kill_worker ~index ~pops =
  match chaos_config () with
  | None -> false
  | Some { p; seed } ->
      let kill = hash_unit ~seed ~salt:4 ~a:index ~b:pops < p /. 2.0 in
      if kill then Metrics.incr killed_counter;
      kill
