open T1000_ooo
open T1000_workloads

(* Selection-cache key: the selection-relevant subset of a
   Runner.setup.  Penalty, replacement policy, timing model, prefetch
   and machine shape all affect only the simulation, not which table
   Runner.select_table returns, so sweeps over those parameters share
   one cached table per workload. *)
type sel_key =
  | Kgreedy of T1000_dfg.Extract.config * int
  | Kselective of T1000_dfg.Extract.config * float * int * int option

let sel_key (s : Runner.setup) =
  match s.Runner.method_ with
  | Runner.Baseline -> None
  | Runner.Greedy -> Some (Kgreedy (s.Runner.extract, s.Runner.lut_budget))
  | Runner.Selective ->
      Some
        (Kselective
           ( s.Runner.extract,
             s.Runner.gain_threshold,
             s.Runner.lut_budget,
             s.Runner.n_pfus ))

type ctx = {
  suite : Workload.t list;
  analyses : (string, Runner.analysis) Memo.t;
  baselines : (string * Mconfig.t, Runner.run) Memo.t;
  tables : (string * sel_key, T1000_select.Extinstr.t) Memo.t;
}

let create_ctx ?(workloads = Registry.all) () =
  {
    suite = workloads;
    analyses = Memo.create ~name:"analysis" 8;
    baselines = Memo.create ~name:"baseline" 8;
    tables = Memo.create ~name:"tables" 32;
  }

let workloads ctx = ctx.suite

let analysis ctx (w : Workload.t) =
  Memo.find_or_compute ctx.analyses w.Workload.name (fun () -> Runner.analyze w)

let baseline_for ctx (w : Workload.t) machine =
  Memo.find_or_compute ctx.baselines
    (w.Workload.name, machine)
    (fun () ->
      Runner.run ~analysis:(analysis ctx w) w
        { (Runner.setup Runner.Baseline) with Runner.machine })

let baseline ctx (w : Workload.t) = baseline_for ctx w Mconfig.default

let baseline_stats ctx w = (baseline ctx w).Runner.stats

let selection_table ctx (w : Workload.t) s =
  match sel_key s with
  | None -> T1000_select.Extinstr.empty
  | Some k ->
      Memo.find_or_compute ctx.tables
        (w.Workload.name, k)
        (fun () -> Runner.select_table s (analysis ctx w))

let run_setup ctx (w : Workload.t) s =
  Runner.run ~analysis:(analysis ctx w) ~table:(selection_table ctx w s) w s

let speedup_of ctx w setup =
  let r = run_setup ctx w setup in
  Runner.speedup ~baseline:(baseline ctx w) r

(* -------- fault-isolated fan-out over (workload x point) tasks -------- *)

type point_fault = {
  fault_workload : string;
  fault_point : string;
  fault : Fault.t;
}

type 'row partial = { rows : 'row list; faults : point_fault list }

let chunk n xs =
  let rec take k xs acc =
    if k = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> invalid_arg "Experiment.chunk"
      | x :: tl -> take (k - 1) tl (x :: acc)
  in
  let rec go xs acc =
    match xs with
    | [] -> List.rev acc
    | _ ->
        let c, rest = take n xs [] in
        go rest (c :: acc)
  in
  go xs []

(* Test hook: T1000_FAULT_INJECT names one workload whose every task
   raises Fault.Injected before evaluating, so the fault-isolation and
   checkpoint-resume paths can be exercised end to end from the CLI and
   CI without a real bug. *)
let fault_inject_target () =
  match Sys.getenv_opt "T1000_FAULT_INJECT" with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> Some (String.trim s)

(* Evaluate [eval w p] for every workload of the suite and every point,
   fanned out over the worker pool as independent (workload x point)
   tasks, and regroup into one per-workload row in suite order.  A task
   that raises poisons only its own workload's row: the row is dropped
   and each failing point becomes a [point_fault]; every other row is
   still returned.  Determinism: every task is a pure function of
   (w, p) — the shared memo tables only change *when* a value is
   computed, never what it is — so the rows are identical at any worker
   count.

   With [?journal], completed point values are recorded (keyed on
   [id/workload/label]) as they arrive, previously recorded points are
   served from the journal without recomputation, and — because
   marshalled OCaml values round-trip exactly — a resumed run's rows
   are byte-identical to an uninterrupted one. *)
let map_partial ?journal ~id ~label ctx points eval =
  match points with
  | [] -> (List.map (fun w -> (w, [])) ctx.suite, [])
  | _ ->
      T1000_obs.Tracer.with_span ~cat:"experiment" ("experiment." ^ id)
      @@ fun () ->
      T1000_obs.Metrics.time ("experiment." ^ id)
      @@ fun () ->
      let inject = fault_inject_target () in
      let tasks =
        List.concat_map (fun w -> List.map (fun p -> (w, p)) points) ctx.suite
      in
      let key ((w : Workload.t), p) =
        Printf.sprintf "%s/%s/%s" id w.Workload.name (label p)
      in
      let eval_task ((w : Workload.t), p) =
        (match inject with
        | Some name when name = w.Workload.name ->
            raise
              (Fault.Error
                 (Fault.Injected
                    (Printf.sprintf "T1000_FAULT_INJECT=%s hit point %s" name
                       (key (w, p)))))
        | Some _ | None -> ());
        eval w p
      in
      let results =
        match journal with
        | None -> Pool.parallel_map_result eval_task tasks
        | Some j ->
            let task_arr = Array.of_list tasks in
            let out = Array.make (Array.length task_arr) None in
            let todo = ref [] in
            Array.iteri
              (fun i t ->
                match Checkpoint.find j ~key:(key t) with
                | Some v -> out.(i) <- Some (Ok v)
                | None -> todo := i :: !todo)
              task_arr;
            let todo = Array.of_list (List.rev !todo) in
            Pool.parallel_map_result
              ~on_result:(fun k r ->
                match r with
                | Ok v -> Checkpoint.record j ~key:(key task_arr.(todo.(k))) v
                | Error _ -> ())
              (fun i -> eval_task task_arr.(i))
              (Array.to_list todo)
            |> List.iteri (fun k r -> out.(todo.(k)) <- Some r);
            Array.to_list
              (Array.map
                 (function Some r -> r | None -> assert false)
                 out)
      in
      let grouped = List.combine ctx.suite (chunk (List.length points) results) in
      let faults = ref [] in
      let rows =
        List.filter_map
          (fun ((w : Workload.t), rs) ->
            if List.for_all Result.is_ok rs then
              Some (w, List.map Result.get_ok rs)
            else begin
              List.iter2
                (fun p r ->
                  match r with
                  | Ok _ -> ()
                  | Error fault ->
                      faults :=
                        {
                          fault_workload = w.Workload.name;
                          fault_point = label p;
                          fault;
                        }
                        :: !faults)
                points rs;
              None
            end)
          grouped
      in
      (rows, List.rev !faults)

(* Strict facade over a partial result: the historical drivers abort on
   the first fault, as they did when any task exception escaped. *)
let strict (p : 'row partial) =
  match p.faults with
  | [] -> p.rows
  | { fault; _ } :: _ -> raise (Fault.Error fault)

(* -------- Figure 2 -------- *)

type f2_row = {
  f2_name : string;
  f2_greedy_unlimited : float;
  f2_greedy_2pfu : float;
}

let figure2_result ?journal ctx =
  let points =
    [
      ("greedy-unlimited", Runner.setup ~n_pfus:None ~penalty:0 Runner.Greedy);
      ("greedy-2pfu", Runner.setup ~n_pfus:(Some 2) ~penalty:10 Runner.Greedy);
    ]
  in
  let rows, faults =
    map_partial ?journal ~id:"figure2" ~label:fst ctx points (fun w (_, s) ->
        speedup_of ctx w s)
  in
  {
    rows =
      List.map
        (function
          | (w : Workload.t), [ unlimited; two_pfu ] ->
              {
                f2_name = w.Workload.name;
                f2_greedy_unlimited = unlimited;
                f2_greedy_2pfu = two_pfu;
              }
          | _ -> assert false)
        rows;
    faults;
  }

let figure2 ctx = strict (figure2_result ctx)

(* -------- Section 4.1 table -------- *)

type t41_row = {
  t41_name : string;
  t41_distinct : int;
  t41_shortest : int;
  t41_longest : int;
  t41_occurrences : int;
}

let table41_result ?journal ctx =
  let rows, faults =
    map_partial ?journal ~id:"table41" ~label:fst ctx
      [ ("greedy", ()) ]
      (fun (w : Workload.t) (_, ()) ->
        let table =
          selection_table ctx w (Runner.setup ~n_pfus:None Runner.Greedy)
        in
        let entries = T1000_select.Extinstr.entries table in
        let sizes =
          List.map
            (fun e -> T1000_dfg.Dfg.size e.T1000_select.Extinstr.dfg)
            entries
        in
        {
          t41_name = w.Workload.name;
          t41_distinct = List.length entries;
          (* An empty selection has no shortest/longest sequence; report
             0 rather than the fold seeds (max_int / 0). *)
          t41_shortest =
            (match sizes with
            | [] -> 0
            | _ -> List.fold_left min max_int sizes);
          t41_longest = List.fold_left max 0 sizes;
          t41_occurrences = T1000_select.Extinstr.total_occurrences table;
        })
  in
  {
    rows =
      List.map
        (function _, [ row ] -> row | _ -> assert false)
        rows;
    faults;
  }

let table41 ctx = strict (table41_result ctx)

(* -------- Figure 6 -------- *)

type f6_row = {
  f6_name : string;
  f6_sel_2 : float;
  f6_sel_4 : float;
  f6_sel_unlimited : float;
}

let figure6_result ?journal ctx =
  let sel n = Runner.setup ~n_pfus:n ~penalty:10 Runner.Selective in
  let points =
    [ ("2", sel (Some 2)); ("4", sel (Some 4)); ("unlimited", sel None) ]
  in
  let rows, faults =
    map_partial ?journal ~id:"figure6" ~label:fst ctx points (fun w (_, s) ->
        speedup_of ctx w s)
  in
  {
    rows =
      List.map
        (function
          | (w : Workload.t), [ two; four; unlimited ] ->
              {
                f6_name = w.Workload.name;
                f6_sel_2 = two;
                f6_sel_4 = four;
                f6_sel_unlimited = unlimited;
              }
          | _ -> assert false)
        rows;
    faults;
  }

let figure6 ctx = strict (figure6_result ctx)

(* -------- Section 5.2 penalty sweep -------- *)

type s52_row = {
  s52_name : string;
  s52_points : (int * float * float) list;
}

let penalty_sweep_result ?journal ?(penalties = [ 10; 50; 100; 250; 500 ]) ctx =
  let rows, faults =
    map_partial ?journal ~id:"s52" ~label:string_of_int ctx penalties
      (fun w p ->
        ( p,
          speedup_of ctx w
            (Runner.setup ~n_pfus:(Some 2) ~penalty:p Runner.Selective),
          speedup_of ctx w
            (Runner.setup ~n_pfus:(Some 2) ~penalty:p Runner.Greedy) ))
  in
  {
    rows =
      List.map
        (fun ((w : Workload.t), points) ->
          { s52_name = w.Workload.name; s52_points = points })
        rows;
    faults;
  }

let penalty_sweep ?penalties ctx = strict (penalty_sweep_result ?penalties ctx)

(* -------- Figure 7 -------- *)

type f7_result = {
  f7_costs : (string * int list) list;
  f7_histogram : T1000_hwcost.Area.t;
  f7_max : int;
}

let figure7_result ?journal ctx =
  let rows, faults =
    map_partial ?journal ~id:"figure7" ~label:fst ctx
      [ ("costs", ()) ]
      (fun (w : Workload.t) (_, ()) ->
        let r =
          run_setup ctx w (Runner.setup ~n_pfus:(Some 4) Runner.Selective)
        in
        List.map
          (fun e -> e.T1000_select.Extinstr.lut_cost)
          (T1000_select.Extinstr.entries r.Runner.table))
  in
  let costs =
    List.map
      (function
        | (w : Workload.t), [ cs ] -> (w.Workload.name, cs)
        | _ -> assert false)
      rows
  in
  let all = List.concat_map snd costs in
  ( {
      f7_costs = costs;
      f7_histogram = T1000_hwcost.Area.histogram all;
      f7_max = List.fold_left max 0 all;
    },
    faults )

let figure7 ctx =
  let r, faults = figure7_result ctx in
  match faults with
  | [] -> r
  | { fault; _ } :: _ -> raise (Fault.Error fault)

(* -------- Ablations -------- *)

type sweep_row = {
  sweep_name : string;
  sweep_points : (string * float) list;
}

(* Sweeps that report (label, speedup) points per workload.  The point
   payload never enters the journal key — only its label does — so the
   (label, payload) pairs must have distinct labels within a sweep. *)
let sweep_partial ?journal ~id ctx points eval =
  let rows, faults =
    map_partial ?journal ~id ~label:fst ctx points (fun w (_, p) -> eval w p)
  in
  {
    rows =
      List.map
        (fun ((w : Workload.t), vs) ->
          {
            sweep_name = w.Workload.name;
            sweep_points = List.map2 (fun (l, _) v -> (l, v)) points vs;
          })
        rows;
    faults;
  }

let pfu_count_sweep_result ?journal ?(counts = [ 1; 2; 3; 4; 6; 8 ]) ctx =
  sweep_partial ?journal ~id:"a1" ctx
    (List.map (fun n -> (string_of_int n, n)) counts)
    (fun w n ->
      speedup_of ctx w (Runner.setup ~n_pfus:(Some n) Runner.Selective))

let pfu_count_sweep ?counts ctx = strict (pfu_count_sweep_result ?counts ctx)

let width_threshold_sweep_result ?journal ?(widths = [ 8; 12; 18; 24; 32 ]) ctx
    =
  sweep_partial ?journal ~id:"a2" ctx
    (List.map (fun n -> (string_of_int n, n)) widths)
    (fun w width ->
      let s = Runner.setup ~n_pfus:None ~penalty:0 Runner.Greedy in
      let s =
        {
          s with
          Runner.extract =
            { s.Runner.extract with T1000_dfg.Extract.width_threshold = width };
        }
      in
      speedup_of ctx w s)

let width_threshold_sweep ?widths ctx =
  strict (width_threshold_sweep_result ?widths ctx)

let gain_threshold_sweep_result ?journal ?(thresholds = [ 0.001; 0.005; 0.02 ])
    ctx =
  sweep_partial ?journal ~id:"a3" ctx
    (List.map (fun th -> (Printf.sprintf "%.3f" th, th)) thresholds)
    (fun w th ->
      let s = Runner.setup ~n_pfus:(Some 2) Runner.Selective in
      let s = { s with Runner.gain_threshold = th } in
      speedup_of ctx w s)

let gain_threshold_sweep ?thresholds ctx =
  strict (gain_threshold_sweep_result ?thresholds ctx)

let replacement_sweep_result ?journal ctx =
  let policies =
    [
      ("lru", Mconfig.Lru);
      ("fifo", Mconfig.Fifo);
      ("rand", Mconfig.Random_det);
    ]
  in
  sweep_partial ?journal ~id:"a4" ctx policies (fun w pol ->
      let s = Runner.setup ~n_pfus:(Some 2) Runner.Selective in
      let s = { s with Runner.replacement = pol } in
      speedup_of ctx w s)

let replacement_sweep ctx = strict (replacement_sweep_result ctx)

let machine_sweep_result ?journal ctx =
  let machines =
    [
      ( "2-wide/ruu32",
        {
          Mconfig.default with
          Mconfig.fetch_width = 2;
          decode_width = 2;
          issue_width = 2;
          commit_width = 2;
          ruu_size = 32;
          n_int_alu = 2;
          n_mem_ports = 1;
        } );
      ("4-wide/ruu64", Mconfig.default);
      ( "8-wide/ruu128",
        {
          Mconfig.default with
          Mconfig.fetch_width = 8;
          decode_width = 8;
          issue_width = 8;
          commit_width = 8;
          ruu_size = 128;
          n_int_alu = 8;
          n_mem_ports = 4;
        } );
    ]
  in
  sweep_partial ?journal ~id:"a5" ctx machines (fun w m ->
      (* Compare like with like: the no-PFU baseline must run on the
         same machine width. *)
      let sel_setup =
        {
          (Runner.setup ~n_pfus:(Some 4) Runner.Selective) with
          Runner.machine = m;
        }
      in
      let b = baseline_for ctx w m in
      let r = run_setup ctx w sel_setup in
      Runner.speedup ~baseline:b r)

let machine_sweep ctx = strict (machine_sweep_result ctx)

let latency_model_sweep_result ?journal ctx =
  let models = [ ("1-cycle", `Single_cycle); ("lut-levels", `Lut_levels) ] in
  sweep_partial ?journal ~id:"a6" ctx models (fun w m ->
      let s = Runner.setup ~n_pfus:(Some 4) Runner.Selective in
      let s = { s with Runner.ext_timing = m } in
      speedup_of ctx w s)

let latency_model_sweep ctx = strict (latency_model_sweep_result ctx)

let branch_predictor_sweep_result ?journal ctx =
  let preds =
    [ ("perfect", Mconfig.Perfect); ("bimodal-2k", Mconfig.Bimodal 2048) ]
  in
  sweep_partial ?journal ~id:"a7" ctx preds (fun w bp ->
      let machine = { Mconfig.default with Mconfig.branch_pred = bp } in
      let sel_setup =
        {
          (Runner.setup ~n_pfus:(Some 4) Runner.Selective) with
          Runner.machine;
        }
      in
      let b = baseline_for ctx w machine in
      let r = run_setup ctx w sel_setup in
      Runner.speedup ~baseline:b r)

let branch_predictor_sweep ctx = strict (branch_predictor_sweep_result ctx)

let prefetch_sweep_result ?journal ?(penalties = [ 100; 500 ]) ctx =
  let points =
    List.concat_map
      (fun pen ->
        List.map
          (fun (label, pf) -> (Printf.sprintf "%d%s" pen label, (pen, pf)))
          [ ("cyc", false); ("cyc+pf", true) ])
      penalties
  in
  sweep_partial ?journal ~id:"a8" ctx points (fun w (pen, pf) ->
      let s = Runner.setup ~n_pfus:(Some 2) ~penalty:pen Runner.Selective in
      let s = { s with Runner.config_prefetch = pf } in
      speedup_of ctx w s)

let prefetch_sweep ?penalties ctx = strict (prefetch_sweep_result ?penalties ctx)

let ablation_result ?journal ctx id =
  match id with
  | "a1" -> Some (pfu_count_sweep_result ?journal ctx)
  | "a2" -> Some (width_threshold_sweep_result ?journal ctx)
  | "a3" -> Some (gain_threshold_sweep_result ?journal ctx)
  | "a4" -> Some (replacement_sweep_result ?journal ctx)
  | "a5" -> Some (machine_sweep_result ?journal ctx)
  | "a6" -> Some (latency_model_sweep_result ?journal ctx)
  | "a7" -> Some (branch_predictor_sweep_result ?journal ctx)
  | "a8" -> Some (prefetch_sweep_result ?journal ctx)
  | _ -> None
