open T1000_ooo
open T1000_workloads

(* Selection-cache key: the selection-relevant subset of a
   Runner.setup.  Penalty, replacement policy, timing model, prefetch
   and machine shape all affect only the simulation, not which table
   Runner.select_table returns, so sweeps over those parameters share
   one cached table per workload. *)
type sel_key =
  | Kgreedy of T1000_dfg.Extract.config * int
  | Kselective of T1000_dfg.Extract.config * float * int * int option

let sel_key (s : Runner.setup) =
  match s.Runner.method_ with
  | Runner.Baseline -> None
  | Runner.Greedy -> Some (Kgreedy (s.Runner.extract, s.Runner.lut_budget))
  | Runner.Selective ->
      Some
        (Kselective
           ( s.Runner.extract,
             s.Runner.gain_threshold,
             s.Runner.lut_budget,
             s.Runner.n_pfus ))

type ctx = {
  suite : Workload.t list;
  analyses : (string, Runner.analysis) Memo.t;
  baselines : (string, Runner.run) Memo.t;
  tables : (string * sel_key, T1000_select.Extinstr.t) Memo.t;
}

let create_ctx ?(workloads = Registry.all) () =
  {
    suite = workloads;
    analyses = Memo.create 8;
    baselines = Memo.create 8;
    tables = Memo.create 32;
  }

let workloads ctx = ctx.suite

let analysis ctx (w : Workload.t) =
  Memo.find_or_compute ctx.analyses w.Workload.name (fun () -> Runner.analyze w)

let baseline ctx (w : Workload.t) =
  Memo.find_or_compute ctx.baselines w.Workload.name (fun () ->
      Runner.run ~analysis:(analysis ctx w) w (Runner.setup Runner.Baseline))

let baseline_stats ctx w = (baseline ctx w).Runner.stats

let selection_table ctx (w : Workload.t) s =
  match sel_key s with
  | None -> T1000_select.Extinstr.empty
  | Some k ->
      Memo.find_or_compute ctx.tables
        (w.Workload.name, k)
        (fun () -> Runner.select_table s (analysis ctx w))

let run_setup ctx (w : Workload.t) s =
  Runner.run ~analysis:(analysis ctx w) ~table:(selection_table ctx w s) w s

let speedup_of ctx w setup =
  let r = run_setup ctx w setup in
  Runner.speedup ~baseline:(baseline ctx w) r

(* -------- parallel fan-out over (workload x point) tasks -------- *)

let chunk n xs =
  let rec take k xs acc =
    if k = 0 then (List.rev acc, xs)
    else
      match xs with
      | [] -> invalid_arg "Experiment.chunk"
      | x :: tl -> take (k - 1) tl (x :: acc)
  in
  let rec go xs acc =
    match xs with
    | [] -> List.rev acc
    | _ ->
        let c, rest = take n xs [] in
        go rest (c :: acc)
  in
  go xs []

(* Evaluate [eval w p] for every workload of the suite and every point,
   fanned out over the worker pool as independent (workload x point)
   tasks, and regroup the results into one per-workload row in suite
   order.  Determinism: every task is a pure function of (w, p) — the
   shared memo tables only change *when* a value is computed, never
   what it is — so the rows are identical at any worker count. *)
let map_suite_points ctx points eval =
  match points with
  | [] -> List.map (fun w -> (w, [])) ctx.suite
  | _ ->
      let tasks =
        List.concat_map
          (fun w -> List.map (fun p -> (w, p)) points)
          ctx.suite
      in
      let vals = Pool.parallel_map (fun (w, p) -> eval w p) tasks in
      List.combine ctx.suite (chunk (List.length points) vals)

(* -------- Figure 2 -------- *)

type f2_row = {
  f2_name : string;
  f2_greedy_unlimited : float;
  f2_greedy_2pfu : float;
}

let figure2 ctx =
  map_suite_points ctx
    [
      Runner.setup ~n_pfus:None ~penalty:0 Runner.Greedy;
      Runner.setup ~n_pfus:(Some 2) ~penalty:10 Runner.Greedy;
    ]
    (fun w s -> speedup_of ctx w s)
  |> List.map (function
       | (w : Workload.t), [ unlimited; two_pfu ] ->
           {
             f2_name = w.Workload.name;
             f2_greedy_unlimited = unlimited;
             f2_greedy_2pfu = two_pfu;
           }
       | _ -> assert false)

(* -------- Section 4.1 table -------- *)

type t41_row = {
  t41_name : string;
  t41_distinct : int;
  t41_shortest : int;
  t41_longest : int;
  t41_occurrences : int;
}

let table41 ctx =
  Pool.parallel_map
    (fun (w : Workload.t) ->
      let table =
        selection_table ctx w (Runner.setup ~n_pfus:None Runner.Greedy)
      in
      let entries = T1000_select.Extinstr.entries table in
      let sizes =
        List.map
          (fun e -> T1000_dfg.Dfg.size e.T1000_select.Extinstr.dfg)
          entries
      in
      {
        t41_name = w.Workload.name;
        t41_distinct = List.length entries;
        (* An empty selection has no shortest/longest sequence; report 0
           rather than the fold seeds (max_int / 0). *)
        t41_shortest =
          (match sizes with
          | [] -> 0
          | _ -> List.fold_left min max_int sizes);
        t41_longest = List.fold_left max 0 sizes;
        t41_occurrences = T1000_select.Extinstr.total_occurrences table;
      })
    ctx.suite

(* -------- Figure 6 -------- *)

type f6_row = {
  f6_name : string;
  f6_sel_2 : float;
  f6_sel_4 : float;
  f6_sel_unlimited : float;
}

let figure6 ctx =
  let sel n = Runner.setup ~n_pfus:n ~penalty:10 Runner.Selective in
  map_suite_points ctx
    [ sel (Some 2); sel (Some 4); sel None ]
    (fun w s -> speedup_of ctx w s)
  |> List.map (function
       | (w : Workload.t), [ two; four; unlimited ] ->
           {
             f6_name = w.Workload.name;
             f6_sel_2 = two;
             f6_sel_4 = four;
             f6_sel_unlimited = unlimited;
           }
       | _ -> assert false)

(* -------- Section 5.2 penalty sweep -------- *)

type s52_row = {
  s52_name : string;
  s52_points : (int * float * float) list;
}

let penalty_sweep ?(penalties = [ 10; 50; 100; 250; 500 ]) ctx =
  map_suite_points ctx penalties (fun w p ->
      ( p,
        speedup_of ctx w
          (Runner.setup ~n_pfus:(Some 2) ~penalty:p Runner.Selective),
        speedup_of ctx w
          (Runner.setup ~n_pfus:(Some 2) ~penalty:p Runner.Greedy) ))
  |> List.map (fun ((w : Workload.t), points) ->
         { s52_name = w.Workload.name; s52_points = points })

(* -------- Figure 7 -------- *)

type f7_result = {
  f7_costs : (string * int list) list;
  f7_histogram : T1000_hwcost.Area.t;
  f7_max : int;
}

let figure7 ctx =
  let costs =
    Pool.parallel_map
      (fun (w : Workload.t) ->
        let r =
          run_setup ctx w (Runner.setup ~n_pfus:(Some 4) Runner.Selective)
        in
        ( w.Workload.name,
          List.map
            (fun e -> e.T1000_select.Extinstr.lut_cost)
            (T1000_select.Extinstr.entries r.Runner.table) ))
      ctx.suite
  in
  let all = List.concat_map snd costs in
  {
    f7_costs = costs;
    f7_histogram = T1000_hwcost.Area.histogram all;
    f7_max = List.fold_left max 0 all;
  }

(* -------- Ablations -------- *)

type sweep_row = {
  sweep_name : string;
  sweep_points : (string * float) list;
}

(* Sweeps that report (label, speedup) points per workload. *)
let sweep_rows ctx points eval =
  map_suite_points ctx points eval
  |> List.map (fun ((w : Workload.t), row) ->
         { sweep_name = w.Workload.name; sweep_points = row })

let pfu_count_sweep ?(counts = [ 1; 2; 3; 4; 6; 8 ]) ctx =
  sweep_rows ctx counts (fun w n ->
      ( string_of_int n,
        speedup_of ctx w (Runner.setup ~n_pfus:(Some n) Runner.Selective) ))

let width_threshold_sweep ?(widths = [ 8; 12; 18; 24; 32 ]) ctx =
  sweep_rows ctx widths (fun w width ->
      let s = Runner.setup ~n_pfus:None ~penalty:0 Runner.Greedy in
      let s =
        {
          s with
          Runner.extract =
            { s.Runner.extract with T1000_dfg.Extract.width_threshold = width };
        }
      in
      (string_of_int width, speedup_of ctx w s))

let gain_threshold_sweep ?(thresholds = [ 0.001; 0.005; 0.02 ]) ctx =
  sweep_rows ctx thresholds (fun w th ->
      let s = Runner.setup ~n_pfus:(Some 2) Runner.Selective in
      let s = { s with Runner.gain_threshold = th } in
      (Printf.sprintf "%.3f" th, speedup_of ctx w s))

let replacement_sweep ctx =
  let policies =
    [
      ("lru", Mconfig.Lru);
      ("fifo", Mconfig.Fifo);
      ("rand", Mconfig.Random_det);
    ]
  in
  sweep_rows ctx policies (fun w (label, pol) ->
      let s = Runner.setup ~n_pfus:(Some 2) Runner.Selective in
      let s = { s with Runner.replacement = pol } in
      (label, speedup_of ctx w s))

let machine_sweep ctx =
  let machines =
    [
      ( "2-wide/ruu32",
        {
          Mconfig.default with
          Mconfig.fetch_width = 2;
          decode_width = 2;
          issue_width = 2;
          commit_width = 2;
          ruu_size = 32;
          n_int_alu = 2;
          n_mem_ports = 1;
        } );
      ("4-wide/ruu64", Mconfig.default);
      ( "8-wide/ruu128",
        {
          Mconfig.default with
          Mconfig.fetch_width = 8;
          decode_width = 8;
          issue_width = 8;
          commit_width = 8;
          ruu_size = 128;
          n_int_alu = 8;
          n_mem_ports = 4;
        } );
    ]
  in
  sweep_rows ctx machines (fun w (label, m) ->
      (* Compare like with like: the no-PFU baseline must run on the
         same machine width. *)
      let base_setup =
        { (Runner.setup Runner.Baseline) with Runner.machine = m }
      in
      let sel_setup =
        {
          (Runner.setup ~n_pfus:(Some 4) Runner.Selective) with
          Runner.machine = m;
        }
      in
      let b = run_setup ctx w base_setup in
      let r = run_setup ctx w sel_setup in
      (label, Runner.speedup ~baseline:b r))

let latency_model_sweep ctx =
  let models = [ ("1-cycle", `Single_cycle); ("lut-levels", `Lut_levels) ] in
  sweep_rows ctx models (fun w (label, m) ->
      let s = Runner.setup ~n_pfus:(Some 4) Runner.Selective in
      let s = { s with Runner.ext_timing = m } in
      (label, speedup_of ctx w s))

let branch_predictor_sweep ctx =
  let preds =
    [ ("perfect", Mconfig.Perfect); ("bimodal-2k", Mconfig.Bimodal 2048) ]
  in
  sweep_rows ctx preds (fun w (label, bp) ->
      let machine = { Mconfig.default with Mconfig.branch_pred = bp } in
      let base_setup =
        { (Runner.setup Runner.Baseline) with Runner.machine }
      in
      let sel_setup =
        {
          (Runner.setup ~n_pfus:(Some 4) Runner.Selective) with
          Runner.machine;
        }
      in
      let b = run_setup ctx w base_setup in
      let r = run_setup ctx w sel_setup in
      (label, Runner.speedup ~baseline:b r))

let prefetch_sweep ?(penalties = [ 100; 500 ]) ctx =
  let points =
    List.concat_map
      (fun pen -> List.map (fun pf -> (pen, pf)) [ ("cyc", false); ("cyc+pf", true) ])
      penalties
  in
  sweep_rows ctx points (fun w (pen, (label, pf)) ->
      let s = Runner.setup ~n_pfus:(Some 2) ~penalty:pen Runner.Selective in
      let s = { s with Runner.config_prefetch = pf } in
      (Printf.sprintf "%d%s" pen label, speedup_of ctx w s))
