let rule ppf width = Format.fprintf ppf "%s@," (String.make width '-')

(* Horizontal bar, 40 columns = [scale] speedup. *)
let bar ppf value scale =
  let cols = int_of_float (value /. scale *. 40.0) in
  let cols = max 0 (min 60 cols) in
  Format.fprintf ppf "|%-40s| %.3f" (String.make cols '#') value

let bar_group ppf ~scale rows =
  List.iter
    (fun (label, series) ->
      List.iteri
        (fun i (name, v) ->
          Format.fprintf ppf "%-10s %-6s " (if i = 0 then label else "") name;
          bar ppf v scale;
          Format.fprintf ppf "@,")
        series;
      Format.fprintf ppf "@,")
    rows


let pp_figure2 ppf rows =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "Figure 2 — greedy selection: speedup over no-PFU superscalar@,";
  rule ppf 66;
  Format.fprintf ppf "%-12s %14s %24s %14s@," "benchmark" "superscalar"
    "T1000 (unlimited, 0cyc)" "T1000 (2 PFU)";
  rule ppf 66;
  List.iter
    (fun (r : Experiment.f2_row) ->
      Format.fprintf ppf "%-12s %14.3f %24.3f %14.3f@," r.Experiment.f2_name
        1.0 r.Experiment.f2_greedy_unlimited r.Experiment.f2_greedy_2pfu)
    rows;
  rule ppf 66;
  Format.fprintf ppf "@,";
  bar_group ppf ~scale:1.5
    (List.map
       (fun (r : Experiment.f2_row) ->
         ( r.Experiment.f2_name,
           [
             ("base", 1.0);
             ("unlim", r.Experiment.f2_greedy_unlimited);
             ("2pfu", r.Experiment.f2_greedy_2pfu);
           ] ))
       rows);
  Format.fprintf ppf "@]"

let pp_table41 ppf rows =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "Section 4.1 — greedy extended-instruction statistics@,";
  rule ppf 64;
  Format.fprintf ppf "%-12s %10s %12s %11s %12s@," "benchmark" "distinct"
    "shortest" "longest" "occurrences";
  rule ppf 64;
  List.iter
    (fun (r : Experiment.t41_row) ->
      Format.fprintf ppf "%-12s %10d %12d %11d %12d@," r.Experiment.t41_name
        r.Experiment.t41_distinct r.Experiment.t41_shortest
        r.Experiment.t41_longest r.Experiment.t41_occurrences)
    rows;
  rule ppf 64;
  Format.fprintf ppf "@]"

let pp_figure6 ppf rows =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "Figure 6 — selective selection (10-cycle reconfiguration)@,";
  rule ppf 64;
  Format.fprintf ppf "%-12s %12s %12s %12s %12s@," "benchmark" "superscalar"
    "2 PFUs" "4 PFUs" "unlimited";
  rule ppf 64;
  List.iter
    (fun (r : Experiment.f6_row) ->
      Format.fprintf ppf "%-12s %12.3f %12.3f %12.3f %12.3f@,"
        r.Experiment.f6_name 1.0 r.Experiment.f6_sel_2 r.Experiment.f6_sel_4
        r.Experiment.f6_sel_unlimited)
    rows;
  rule ppf 64;
  Format.fprintf ppf "@,";
  bar_group ppf ~scale:1.5
    (List.map
       (fun (r : Experiment.f6_row) ->
         ( r.Experiment.f6_name,
           [
             ("base", 1.0);
             ("2pfu", r.Experiment.f6_sel_2);
             ("4pfu", r.Experiment.f6_sel_4);
             ("unlim", r.Experiment.f6_sel_unlimited);
           ] ))
       rows);
  Format.fprintf ppf "@]"

let pp_penalty_sweep ppf rows =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "Section 5.2 — reconfiguration-penalty sensitivity (2 PFUs; \
     selective vs greedy)@,";
  (match rows with
  | [] -> ()
  | r0 :: _ ->
      let width = 14 + (List.length r0.Experiment.s52_points * 14) in
      rule ppf width;
      Format.fprintf ppf "%-14s" "benchmark";
      List.iter
        (fun (p, _, _) -> Format.fprintf ppf "%14s" (string_of_int p ^ "cyc"))
        r0.Experiment.s52_points;
      Format.fprintf ppf "@,";
      rule ppf width;
      List.iter
        (fun (r : Experiment.s52_row) ->
          Format.fprintf ppf "%-14s" (r.Experiment.s52_name ^ " sel");
          List.iter
            (fun (_, s, _) -> Format.fprintf ppf "%14.3f" s)
            r.Experiment.s52_points;
          Format.fprintf ppf "@,";
          Format.fprintf ppf "%-14s" "       greedy";
          List.iter
            (fun (_, _, g) -> Format.fprintf ppf "%14.3f" g)
            r.Experiment.s52_points;
          Format.fprintf ppf "@,")
        rows;
      rule ppf width);
  Format.fprintf ppf "@]"

let pp_figure7 ppf (r : Experiment.f7_result) =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "Figure 7 — hardware cost of selective extended instructions@,";
  List.iter
    (fun (name, costs) ->
      Format.fprintf ppf "%-12s %s@," name
        (String.concat " " (List.map string_of_int (List.sort compare costs))))
    r.Experiment.f7_costs;
  Format.fprintf ppf "@,%a@," T1000_hwcost.Area.pp r.Experiment.f7_histogram;
  Format.fprintf ppf "max cost: %d LUTs (paper: 105; PFU budget: 150)@,"
    r.Experiment.f7_max;
  Format.fprintf ppf "@]"

let pp_sweep ~title ppf rows =
  Format.fprintf ppf "@[<v>%s@," title;
  (match rows with
  | [] -> ()
  | r0 :: _ ->
      let width = 14 + (List.length r0.Experiment.sweep_points * 14) in
      rule ppf width;
      Format.fprintf ppf "%-14s" "benchmark";
      List.iter
        (fun (label, _) -> Format.fprintf ppf "%14s" label)
        r0.Experiment.sweep_points;
      Format.fprintf ppf "@,";
      rule ppf width;
      List.iter
        (fun (r : Experiment.sweep_row) ->
          Format.fprintf ppf "%-14s" r.Experiment.sweep_name;
          List.iter
            (fun (_, s) -> Format.fprintf ppf "%14.3f" s)
            r.Experiment.sweep_points;
          Format.fprintf ppf "@,")
        rows;
      rule ppf width);
  Format.fprintf ppf "@]"

let pp_faults ppf (faults : Experiment.point_fault list) =
  Format.fprintf ppf "@[<v>FAULT REPORT: %d point(s) failed@,"
    (List.length faults);
  List.iter
    (fun (f : Experiment.point_fault) ->
      Format.fprintf ppf "  %s/%s: %a@," f.Experiment.fault_workload
        f.Experiment.fault_point Fault.pp f.Experiment.fault)
    faults;
  Format.fprintf ppf "@]"
