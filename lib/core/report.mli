(** Text rendering of experiment results, in the paper's units
    (execution-time speedup normalized to the no-PFU superscalar). *)

val pp_figure2 : Format.formatter -> Experiment.f2_row list -> unit
val pp_table41 : Format.formatter -> Experiment.t41_row list -> unit
val pp_figure6 : Format.formatter -> Experiment.f6_row list -> unit
val pp_penalty_sweep : Format.formatter -> Experiment.s52_row list -> unit
val pp_figure7 : Format.formatter -> Experiment.f7_result -> unit

val pp_sweep :
  title:string ->
  Format.formatter ->
  Experiment.sweep_row list ->
  unit
(** Generic (benchmark x setting) speedup table for the ablations. *)

val pp_faults : Format.formatter -> Experiment.point_fault list -> unit
(** The structured fault report a partial driver result carries: a
    header with the failed-point count, then one line per fault
    ([workload/point: description]). *)
