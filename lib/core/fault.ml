type t =
  | Invalid_config of string
  | Sim_stuck of T1000_ooo.Sim.stuck
  | Selfcheck_failed of string
  | Interp_fault of string
  | Verify_mismatch of string
  | Injected of string
  | Overloaded of string
  | Deadline_exceeded of string
  | Crashed of { exn : string; backtrace : string }

exception Error of t

let pp ppf = function
  | Invalid_config m -> Format.fprintf ppf "invalid configuration: %s" m
  | Sim_stuck s ->
      Format.fprintf ppf "simulator stuck: %a" T1000_ooo.Sim.pp_stuck s
  | Selfcheck_failed m -> Format.fprintf ppf "self-check failed: %s" m
  | Interp_fault m -> Format.fprintf ppf "architectural fault: %s" m
  | Verify_mismatch m -> Format.fprintf ppf "output verification failed: %s" m
  | Injected m -> Format.fprintf ppf "injected fault: %s" m
  | Overloaded m -> Format.fprintf ppf "overloaded: %s" m
  | Deadline_exceeded m -> Format.fprintf ppf "deadline exceeded: %s" m
  | Crashed { exn; backtrace } ->
      Format.fprintf ppf "crashed: %s%s" exn
        (if backtrace = "" then "" else "\n" ^ backtrace)

let to_string f = Format.asprintf "%a" pp f

let () =
  Printexc.register_printer (function
    | Error f -> Some ("Fault.Error: " ^ to_string f)
    | _ -> None)

let invalid_config fmt =
  Printf.ksprintf (fun s -> raise (Error (Invalid_config s))) fmt

let of_exn ?(backtrace = "") = function
  | Error f -> f
  | T1000_ooo.Sim.Sim_stuck s -> Sim_stuck s
  | T1000_ooo.Sim.Selfcheck_violation m -> Selfcheck_failed m
  | T1000_machine.Interp.Fault m -> Interp_fault m
  | e -> Crashed { exn = Printexc.to_string e; backtrace }

(* Transient faults are worth retrying: an injected chaos fault, a
   crash or a shed request may be environmental (a dying worker, a
   flaky disk, a momentarily full admission queue).  The deterministic
   pipeline faults (bad config, watchdog, self-check, verify) and an
   expired deadline would fail identically on every retry. *)
let transient = function
  | Injected _ | Overloaded _ | Crashed _ -> true
  | _ -> false

(* Exit-code policy shared by the CLI and CI: 2 = the run was
   misconfigured (bad setup field or environment variable), 3 = the run
   was configured fine but some points faulted (partial results). *)
let exit_code = function Invalid_config _ -> 2 | _ -> 3

let getenv_bool var =
  match Sys.getenv_opt var with
  | None -> false
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "" | "0" | "false" | "no" -> false
      | "1" | "true" | "yes" -> true
      | v ->
          raise
            (Error
               (Invalid_config
                  (Printf.sprintf "%s must be 0/1/true/false, got %S" var v))))
