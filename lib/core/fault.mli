(** Typed fault taxonomy for the experiment engine.

    A long design-space sweep is a bag of thousands of independent
    (workload x configuration) simulations; any one of them can fail —
    a nonsensical setup, a runaway or deadlocked simulation, a rewriter
    bug caught by output verification, a self-check violation.  Instead
    of letting a raw exception abort the whole figure, the engine
    ({!Pool.parallel_map_result}, the {!Experiment} [*_result] drivers)
    classifies every per-point exception into this taxonomy, so callers
    receive partial rows plus a structured, renderable fault report. *)

type t =
  | Invalid_config of string
      (** a {!Runner.setup} field or a [T1000_*] environment variable
          is out of range; always a caller error, exit code 2 *)
  | Sim_stuck of T1000_ooo.Sim.stuck
      (** the simulator watchdog fired (cycle budget or forward-progress
          check), with the diagnostic pipeline snapshot *)
  | Selfcheck_failed of string
      (** the opt-in self-check mode found an RUU/PFU-file invariant
          violation or an architectural divergence between the timing
          simulator and the functional interpreter *)
  | Interp_fault of string
      (** architectural fault from the functional interpreter *)
  | Verify_mismatch of string
      (** the rewritten program's functional output diverged from the
          original's ({!Runner.verify_outputs}) *)
  | Injected of string
      (** test-hook fault injected via [T1000_FAULT_INJECT] *)
  | Overloaded of string
      (** admission rejected: the serve daemon's bounded queue was full,
          or the server was draining; the request was never started and
          is safe to retry later *)
  | Deadline_exceeded of string
      (** a per-request deadline expired (in the admission queue or
          while the simulation was running) before a result was ready *)
  | Crashed of { exn : string; backtrace : string }
      (** any other exception, rendered with its backtrace when one was
          recorded *)

exception Error of t
(** The carrier exception.  Registered with {!Printexc} so uncaught
    faults still render readably. *)

val of_exn : ?backtrace:string -> exn -> t
(** Classify an exception: {!Error} unwraps, the known simulator /
    interpreter exceptions map to their variants, anything else becomes
    [Crashed] (carrying [?backtrace] when provided). *)

val invalid_config : ('a, unit, string, 'b) format4 -> 'a
(** [invalid_config fmt ...] raises [Error (Invalid_config msg)]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val transient : t -> bool
(** Whether a fault is plausibly environmental and worth retrying
    ([Injected], [Overloaded] and [Crashed]); the deterministic
    pipeline faults ([Invalid_config], [Sim_stuck], [Selfcheck_failed],
    [Interp_fault], [Verify_mismatch]) and an expired deadline
    ([Deadline_exceeded]) would fail identically on every retry.
    {!Pool.parallel_map_result} and {!Pool.run_result} consult this for
    their retry policy. *)

val exit_code : t -> int
(** Process exit code the CLI maps the fault to: 2 for
    [Invalid_config] (misconfigured run), 3 otherwise (partial
    results). *)

val getenv_bool : string -> bool
(** Strict boolean environment lookup: unset/empty/["0"]/["false"]/
    ["no"] are [false]; ["1"]/["true"]/["yes"] are [true].
    @raise Error with [Invalid_config] on anything else. *)
