(** Seeded generator of valid fuzz cases.

    A case is a loop kernel (halting by construction: every block is a
    counted loop over a decrementing counter) over a small pool of
    narrow data registers, mixing candidate ALU/shift chains with
    loads, stores, wide accumulation and multiplies — the instruction
    mix the extraction pipeline actually discriminates on — plus a
    random {!T1000.Runner.setup} point (PFU count, reconfiguration
    penalty, replacement policy, LUT budget, timing model, machine
    width).

    The case datatype is deliberately structural (not a baked program)
    so the shrinker can delete blocks, drop body operations, zero
    constants and simplify the configuration while preserving
    validity. *)

open T1000_isa

val data_base : int
(** Base address of the input halfword table the generated loads read. *)

val out_base : int
(** Base address of the observable output region. *)

val out_len : int
(** Fixed length of the observable output region in bytes (store slots,
    wide accumulator, published registers). *)

(** One abstract body operation; register operands are indices into the
    data-register pool, reduced modulo the case's [n_regs]. *)
type op =
  | Alu3 of Op.alu * int * int * int  (** op, dst, src1, src2 *)
  | Alui of Op.alu * int * int * int  (** op, dst, src, imm *)
  | Shift of Op.shift * int * int * int  (** op, dst, src, shamt *)
  | Load of int * int  (** dst reg, input slot *)
  | Store of int * int  (** src reg, output slot *)
  | Mask of int  (** re-narrow: andi r, r, 0xFFF *)
  | Acc of int  (** wide accumulate: s3 += reg (only if [use_acc]) *)
  | Mult of int * int  (** mult + mflo to reg 0 *)

type block = { iters : int; body : op list }

(** The random configuration point the case runs under. *)
type fconfig = {
  n_pfus : int option;
  penalty : int;
  replacement : T1000_ooo.Mconfig.pfu_replacement;
  lut_budget : int;
  gain_threshold : float;
  ext_timing : [ `Single_cycle | `Lut_levels ];
  config_prefetch : bool;
  narrow_machine : bool;  (** 2-wide machine instead of the default 4 *)
}

type case = {
  case_seed : int;
  n_regs : int;  (** live data registers, 1–8 *)
  use_acc : bool;
  blocks : block list;
  config : fconfig;
}

val generate : seed:int -> case
(** The case deterministically derived from [seed]. *)

val program : case -> T1000_asm.Program.t
(** Assemble the case: prologue (bases, register init), one counted
    loop per block, epilogue publishing the accumulator and every data
    register into the output region, then halt. *)

val workload : case -> T1000_workloads.Workload.t
(** The case packaged as a workload (deterministic input table,
    observable output region), ready for {!T1000.Runner}. *)

val setup : ?method_:T1000.Runner.method_ -> case -> T1000.Runner.setup
(** The runner setup for the case's configuration point, with
    self-check always enabled (default method: [Greedy]). *)

val instr_count : case -> int
(** Static instruction count of {!program}[ case] — the size the
    shrinker minimizes and the reproducer reports. *)

val pp_case : Format.formatter -> case -> unit
(** Render the structural spec (config + blocks), without the
    assembled program text. *)
