(** Greedy case shrinker (delta debugging).

    Given a failing case, repeatedly tries strictly-simpler variants —
    drop whole blocks, remove chunks of body operations (halves first,
    then singles), collapse iteration counts, zero immediates, shed
    registers and the accumulator, reset configuration fields to their
    defaults — keeping a variant whenever it still fails, until no
    simplification survives or the test budget runs out.  Because
    every candidate is structurally smaller (or strictly closer to the
    default configuration), the loop always terminates. *)

val shrink :
  still_fails:(Gen.case -> bool) -> ?max_tests:int -> Gen.case -> Gen.case
(** [shrink ~still_fails c] with [c] failing returns a (usually much)
    smaller case that still satisfies [still_fails].  [max_tests]
    bounds the number of oracle invocations (default 1000). *)
