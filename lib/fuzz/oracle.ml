module Runner = T1000.Runner
module Fault = T1000.Fault
module Extinstr = T1000_select.Extinstr
module Interp = T1000_machine.Interp
module Memory = T1000_machine.Memory
module Regfile = T1000_machine.Regfile
module Workload = T1000_workloads.Workload
module Stats = T1000_ooo.Stats

type failure = { method_ : string; invariant : string; detail : string }

let pp_failure ppf f =
  Format.fprintf ppf "[%s] %s: %s" f.method_ f.invariant f.detail

(* The deliberately broken oracle for acceptance testing: pretend the
   cycle-gain model over-counts commits by one whenever an extended
   instruction retired.  Armed only via T1000_FAULT_INJECT=fuzz-oracle. *)
let bug_armed () =
  match Sys.getenv_opt "T1000_FAULT_INJECT" with
  | Some "fuzz-oracle" -> true
  | _ -> false

(* Retired instruction count and observable output of [program] on the
   workload's initial state, straight from the functional interpreter. *)
let interp_run (w : Workload.t) table program =
  let mem = Memory.create () in
  let regs = Regfile.create () in
  w.Workload.init mem regs;
  let it = Interp.create ~mem ~regs ~ext_eval:(Extinstr.eval table) program in
  let steps = Interp.run ~max_steps:50_000_000 it in
  (steps, Workload.output w mem)

let check (c : Gen.case) : (unit, failure) result =
  let fail method_ invariant fmt =
    Format.kasprintf
      (fun detail -> Error { method_; invariant; detail })
      fmt
  in
  try
    let w = Gen.workload c in
    let analysis = Runner.analyze w in
    let baseline =
      Runner.run ~analysis w (Runner.setup ~selfcheck:true Runner.Baseline)
    in
    let steps0, out0 = interp_run w Extinstr.empty w.Workload.program in
    if baseline.Runner.stats.Stats.committed <> steps0 then
      fail "baseline" "commit-trace"
        "simulator committed %d instructions but the interpreter retired %d"
        baseline.Runner.stats.Stats.committed steps0
    else
      let check_one name method_ =
        let r = Runner.run ~analysis w (Gen.setup ~method_ c) in
        let steps1, out1 = interp_run w r.Runner.table r.Runner.program in
        if not (String.equal out0 out1) then
          fail name "state-divergence"
            "architectural output of the rewritten program diverges from \
             the original"
        else if steps1 > steps0 then
          fail name "instruction-count"
            "rewritten program retires %d instructions, original only %d"
            steps1 steps0
        else
          let committed =
            r.Runner.stats.Stats.committed
            + (if bug_armed () && r.Runner.stats.Stats.ext_committed > 0 then 1
               else 0)
          in
          if committed <> steps1 then
            fail name "commit-trace"
              "simulator committed %d instructions but the interpreter \
               retired %d"
              committed steps1
          else
            let sp = Runner.speedup ~baseline r in
            if not (Float.is_finite sp && sp > 0.0) then
              fail name "speedup" "speedup %g is not finite and positive" sp
            else Ok ()
      in
      match check_one "greedy" Runner.Greedy with
      | Error _ as e -> e
      | Ok () -> check_one "selective" Runner.Selective
  with
  | Fault.Error f ->
      Error
        { method_ = "pipeline"; invariant = "fault"; detail = Fault.to_string f }
  | e ->
      Error
        {
          method_ = "pipeline";
          invariant = "crash";
          detail = Fault.to_string (Fault.of_exn e);
        }
