(** Fuzz driver: case sweep, reproducer artifacts, checkpoint
    corruption drills and the chaos soak.

    Everything here is a pure function of its integer seed — failures
    print the seed they reproduce from, and [t1000 fuzz --seed S]
    replays the identical run. *)

type failure = {
  index : int;  (** case number within the run *)
  case_seed : int;  (** seed regenerating the (unshrunk) case *)
  method_ : string;
  invariant : string;
  detail : string;
  shrunk : Gen.case;  (** minimal still-failing reproducer *)
  instrs : int;  (** static instruction count of the shrunk program *)
  repro_path : string option;  (** artifact written under the out dir *)
}

type outcome = {
  run_seed : int;
  cases : int;
  failures : failure list;
  elapsed_s : float;
  cases_per_s : float;  (** fuzz throughput, recorded by [bench speed] *)
}

val run_cases :
  ?out_dir:string -> ?njobs:int -> seed:int -> cases:int -> unit -> outcome
(** Generate and oracle-check [cases] cases derived from [seed]
    (fanned out over the {!T1000.Pool} workers), shrink every failure
    to a minimal reproducer and write one artifact per failure under
    [out_dir] (default ["_fuzz"]), named after the run seed and case
    number. *)

val pp_failure : Format.formatter -> failure -> unit

val corruption_drills : ?dir:string -> seed:int -> rounds:int -> unit -> string list
(** Fuzz the checkpoint journal itself: build a healthy journal, then
    per round apply one random corruption — truncate mid-record (torn
    last line), flip a bit inside a checksummed record, append a
    duplicate key (the last record must win), or append garbage — and
    assert {!T1000.Checkpoint.create} drops exactly the damaged
    records, keeps every healthy one bit-exact, and that re-recording
    the damaged keys (a resumed sweep recomputing them) heals the
    journal completely.  Returns one diagnostic per violated
    assertion; empty means all [rounds] drills passed.  Journals live
    under [dir] (default: the system temp directory). *)

val chaos_soak : ?p:float -> seed:int -> unit -> (unit, string) result
(** Run a small penalty sweep twice — calm, then under [T1000_CHAOS=p]
    with retries — and require the chaotic run to lose zero rows and
    return rows structurally identical to the calm run.  [Error]
    carries a description of the divergence. *)
