open Gen

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let remove_chunk l off len =
  List.filteri (fun i _ -> i < off || i >= off + len) l

let set_block blocks bi blk' =
  List.mapi (fun i blk -> if i = bi then blk' else blk) blocks

(* Candidate simplifications of [c], most aggressive first, so one
   surviving candidate removes as much as possible per oracle call.
   Every candidate is strictly simpler than [c] (no-ops are filtered),
   which is what guarantees the fixpoint below terminates. *)
let candidates c =
  let with_blocks bs = { c with blocks = bs } in
  let nb = List.length c.blocks in
  let drop_blocks =
    if nb <= 1 then []
    else List.init nb (fun i -> with_blocks (drop_nth c.blocks i))
  in
  let chunk_removals =
    List.concat
      (List.mapi
         (fun bi blk ->
           let n = List.length blk.body in
           let sizes =
             List.sort_uniq compare
               (List.filter (fun s -> s >= 1 && s < n) [ n / 2; n / 4; 1 ])
           in
           List.concat_map
             (fun cs ->
               List.init
                 ((n + cs - 1) / cs)
                 (fun k ->
                   with_blocks
                     (set_block c.blocks bi
                        { blk with body = remove_chunk blk.body (k * cs) cs })))
             (List.rev sizes (* big chunks first *)))
         c.blocks)
  in
  let iter_reductions =
    List.concat
      (List.mapi
         (fun bi blk ->
           (if blk.iters > 1 then
              [ with_blocks (set_block c.blocks bi { blk with iters = 1 }) ]
            else [])
           @
           if blk.iters > 2 then
             [
               with_blocks
                 (set_block c.blocks bi { blk with iters = blk.iters / 2 });
             ]
           else [])
         c.blocks)
  in
  let drop_acc =
    if c.use_acc then
      [
        {
          c with
          use_acc = false;
          blocks =
            List.map
              (fun blk ->
                {
                  blk with
                  body =
                    List.filter
                      (function Acc _ -> false | _ -> true)
                      blk.body;
                })
              c.blocks;
        };
      ]
    else []
  in
  let drop_regs =
    if c.n_regs > 1 then [ { c with n_regs = c.n_regs - 1 } ] else []
  in
  let zero_imms =
    List.concat
      (List.mapi
         (fun bi blk ->
           List.concat
             (List.mapi
                (fun oi op ->
                  let repl op' =
                    [
                      with_blocks
                        (set_block c.blocks bi
                           {
                             blk with
                             body =
                               List.mapi
                                 (fun i o -> if i = oi then op' else o)
                                 blk.body;
                           });
                    ]
                  in
                  match op with
                  | Alui (o, d, s, imm) when imm <> 0 ->
                      repl (Alui (o, d, s, 0))
                  | Shift (o, d, s, sh) when sh <> 0 ->
                      repl (Shift (o, d, s, 0))
                  | _ -> [])
                blk.body))
         c.blocks)
  in
  let with_config f = { c with config = f c.config } in
  let config_reductions =
    List.concat
      [
        (if c.config.penalty <> 0 then
           [ with_config (fun f -> { f with penalty = 0 }) ]
         else []);
        (if c.config.n_pfus <> Some 1 then
           [ with_config (fun f -> { f with n_pfus = Some 1 }) ]
         else []);
        (if c.config.replacement <> T1000_ooo.Mconfig.Lru then
           [ with_config (fun f -> { f with replacement = T1000_ooo.Mconfig.Lru }) ]
         else []);
        (if c.config.ext_timing <> `Single_cycle then
           [ with_config (fun f -> { f with ext_timing = `Single_cycle }) ]
         else []);
        (if c.config.config_prefetch then
           [ with_config (fun f -> { f with config_prefetch = false }) ]
         else []);
        (if c.config.narrow_machine then
           [ with_config (fun f -> { f with narrow_machine = false }) ]
         else []);
        (if c.config.gain_threshold <> 0.0 then
           [ with_config (fun f -> { f with gain_threshold = 0.0 }) ]
         else []);
        (if c.config.lut_budget <> T1000_hwcost.Lut.default_budget then
           [
             with_config (fun f ->
                 { f with lut_budget = T1000_hwcost.Lut.default_budget });
           ]
         else []);
      ]
  in
  drop_blocks @ chunk_removals @ iter_reductions @ drop_acc @ drop_regs
  @ zero_imms @ config_reductions

let shrink ~still_fails ?(max_tests = 1000) c0 =
  let tests = ref 0 in
  let keep c =
    incr tests;
    !tests <= max_tests && still_fails c
  in
  let rec go c =
    if !tests > max_tests then c
    else
      match List.find_opt keep (candidates c) with
      | Some c' -> go c'
      | None -> c
  in
  go c0
