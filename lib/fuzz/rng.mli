(** Deterministic seeded PRNG for the fuzzer (splitmix64).

    The fuzzer never touches [Random.self_init]: every generated case,
    shrink schedule and corruption drill is a pure function of an
    integer seed, so a failure printed with its seed reproduces exactly
    on any machine ([t1000 fuzz --seed S]). *)

type t

val create : int -> t
(** A generator deterministically derived from [seed]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] draws uniformly from [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> p:float -> bool
(** [true] with probability [p]. *)

val choose : t -> 'a array -> 'a
(** A uniformly chosen element.
    @raise Invalid_argument on an empty array. *)

val derive : int -> int -> int
(** [derive seed i]: the [i]-th independent non-negative sub-seed of
    [seed] — a pure hash, so case [i] of a fuzz run can be regenerated
    without drawing the [i - 1] cases before it. *)
