(** The differential oracle: one fuzz case, every invariant.

    Each case runs through the complete pipeline — profile, greedy
    {e and} selective selection, rewrite, cycle-level simulation with
    self-check enabled — and is cross-validated against the functional
    interpreter:

    - the rewritten program's architectural output (the workload's
      whole observable region, extended instructions evaluated through
      their {!T1000_select.Extinstr} evaluators) equals the original's;
    - the rewritten program never retires more instructions than the
      original;
    - the timing simulator commits exactly the instruction count the
      interpreter retires, for baseline and rewritten programs alike;
    - the measured speedup is finite and positive.

    [T1000_FAULT_INJECT=fuzz-oracle] arms a deliberate off-by-one in
    the commit-count model (only when extended instructions actually
    committed), so the test suite and [ci.sh] can prove the oracle
    catches a broken invariant and shrinks it to a small reproducer. *)

type failure = {
  method_ : string;  (** "baseline", "greedy", "selective" or "pipeline" *)
  invariant : string;  (** short id, e.g. ["state-divergence"] *)
  detail : string;
}

val pp_failure : Format.formatter -> failure -> unit

val check : Gen.case -> (unit, failure) result
(** Never raises: pipeline exceptions (watchdog, self-check, verify,
    interpreter faults) are folded into an [Error] via {!T1000.Fault}. *)
