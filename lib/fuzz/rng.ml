(* splitmix64: tiny, fast, and statistically solid far beyond what a
   fuzzer needs.  State advances by the 64-bit golden ratio; outputs
   are the finalizer of the raw counter. *)

type t = { mutable state : int64 }

let golden = 0x9e3779b97f4a7c15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let float t =
  Int64.to_float (Int64.shift_right_logical (next t) 11) /. 9007199254740992.0

let bool t ~p = float t < p
let choose t arr = arr.(int t (Array.length arr))

let derive seed i =
  let h = mix (Int64.add (Int64.mul (Int64.of_int seed) golden) (Int64.of_int i)) in
  Int64.to_int (Int64.shift_right_logical h 2)
