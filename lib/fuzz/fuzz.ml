module Pool = T1000.Pool
module Checkpoint = T1000.Checkpoint
module Experiment = T1000.Experiment
module Workload = T1000_workloads.Workload
module Registry = T1000_workloads.Registry

type failure = {
  index : int;
  case_seed : int;
  method_ : string;
  invariant : string;
  detail : string;
  shrunk : Gen.case;
  instrs : int;
  repro_path : string option;
}

type outcome = {
  run_seed : int;
  cases : int;
  failures : failure list;
  elapsed_s : float;
  cases_per_s : float;
}

let pp_failure ppf f =
  Format.fprintf ppf
    "case %d (seed %d): [%s] %s: %s@\n  shrunk to %d instructions%s" f.index
    f.case_seed f.method_ f.invariant f.detail f.instrs
    (match f.repro_path with
    | None -> ""
    | Some p -> Printf.sprintf "\n  reproducer: %s" p)

(* ---- small file helpers (no extra deps) ---- *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = Filename.dir_sep || Sys.file_exists dir
  then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

let with_env var value f =
  let old = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () -> Unix.putenv var (Option.value old ~default:""))
    f

(* ---- reproducer artifacts ---- *)

let write_repro ~out_dir ~run_seed ~index ~case_seed ~(failure : Oracle.failure)
    shrunk =
  mkdir_p out_dir;
  let path =
    Filename.concat out_dir
      (Printf.sprintf "seed%d.case%d.repro" run_seed index)
  in
  let prog = Gen.program shrunk in
  let b = Buffer.create 1024 in
  Printf.bprintf b "t1000 fuzz reproducer\n";
  Printf.bprintf b "run seed: %d, case index: %d, case seed: %d\n" run_seed
    index case_seed;
  Printf.bprintf b "failure: %s\n"
    (Format.asprintf "%a" Oracle.pp_failure failure);
  Printf.bprintf b "instructions: %d\n" (T1000_asm.Program.length prog);
  Printf.bprintf b
    "reproduce: dune exec bin/t1000_cli.exe -- fuzz --seed %d --cases %d\n"
    run_seed (index + 1);
  Printf.bprintf b "\n--- shrunk spec ---\n%s\n"
    (Format.asprintf "%a" Gen.pp_case shrunk);
  Printf.bprintf b "\n--- shrunk program ---\n%s"
    (T1000_asm.Asm_text.to_string prog);
  write_file path (Buffer.contents b);
  path

(* ---- the fuzz sweep ---- *)

let run_cases ?(out_dir = "_fuzz") ?njobs ~seed ~cases () =
  let t0 = Unix.gettimeofday () in
  let checked =
    (* plain parallel_map, not the chaos-aware result variant: the fuzz
       sweep is the measuring instrument and must not be perturbed by
       T1000_CHAOS itself *)
    Pool.parallel_map ?njobs
      (fun i ->
        let cs = Rng.derive seed i in
        (i, cs, Oracle.check (Gen.generate ~seed:cs)))
      (List.init cases Fun.id)
  in
  let failures =
    List.filter_map
      (function
        | _, _, Ok () -> None
        | i, cs, Error (_ : Oracle.failure) ->
            let c = Gen.generate ~seed:cs in
            let still_fails c = Result.is_error (Oracle.check c) in
            let shrunk = Shrink.shrink ~still_fails c in
            (* re-run the oracle on the minimal case so the artifact
               reports the failure it actually exhibits *)
            let f =
              match Oracle.check shrunk with
              | Error f -> f
              | Ok () ->
                  { Oracle.method_ = "shrink"; invariant = "unstable";
                    detail = "shrunk case stopped failing" }
            in
            let path =
              write_repro ~out_dir ~run_seed:seed ~index:i ~case_seed:cs
                ~failure:f shrunk
            in
            Some
              {
                index = i;
                case_seed = cs;
                method_ = f.Oracle.method_;
                invariant = f.Oracle.invariant;
                detail = f.Oracle.detail;
                shrunk;
                instrs = Gen.instr_count shrunk;
                repro_path = Some path;
              })
      checked
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  {
    run_seed = seed;
    cases;
    failures;
    elapsed_s;
    cases_per_s = Float.of_int cases /. Float.max 1e-9 elapsed_s;
  }

(* ---- checkpoint corruption drills ---- *)

let drill ~dir rng round =
  let errors = ref [] in
  let err fmt =
    Format.kasprintf
      (fun m -> errors := Printf.sprintf "drill %d: %s" round m :: !errors)
      fmt
  in
  let run = Printf.sprintf "drill%d_%d" (Unix.getpid ()) round in
  let j = Checkpoint.create ~fresh:true ~dir ~run () in
  let k = Rng.range rng 3 10 in
  let keys = List.init k (fun i -> Printf.sprintf "k%02d" i) in
  let vals = List.map (fun _ -> Rng.float rng) keys in
  List.iter2 (fun key v -> Checkpoint.record j ~key v) keys vals;
  let path = Checkpoint.path j in
  let reload () = Checkpoint.create ~dir ~run () in
  (* The journal flushes records sorted by key and keys are k00..k09,
     so line [i] of the file is exactly [List.nth keys i]. *)
  let line_bounds s =
    (* offsets of (start, length) of each newline-terminated line *)
    let rec go off acc =
      match String.index_from_opt s off '\n' with
      | None -> List.rev acc
      | Some nl -> go (nl + 1) ((off, nl - off) :: acc)
    in
    go 0 []
  in
  let damaged, expect_corrupt =
    match Rng.int rng 4 with
    | 0 ->
        (* torn last line: truncate strictly inside the final record,
           as a crash mid-write (without the atomic rename) would *)
        let s = read_file path in
        let len = String.length s in
        let body = String.sub s 0 (len - 1) in
        let idx =
          match String.rindex_opt body '\n' with Some i -> i + 1 | None -> 0
        in
        let cut = Rng.range rng (idx + 1) (len - 2) in
        write_file path (String.sub s 0 cut);
        ([ List.nth keys (k - 1) ], 1)
    | 1 ->
        (* flip a low bit of one byte inside a random record: whether it
           lands in the magic, the digest, the hex key or the payload,
           the checksum (or the line shape) must reject the record *)
        let s = read_file path in
        let li = Rng.int rng k in
        let off, len = List.nth (line_bounds s) li in
        let pos = off + Rng.int rng len in
        let b = Bytes.of_string s in
        Bytes.set b pos
          (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl Rng.range rng 0 2)));
        write_file path (Bytes.to_string b);
        ([ List.nth keys li ], 1)
    | 2 ->
        (* duplicate key: a stale record appended after the current one
           must lose... i.e. the *appended* (last) record must win.  We
           append the original record after overwriting the key, so the
           load must come back to the original value. *)
        let s = read_file path in
        let li = Rng.int rng k in
        let off, len = List.nth (line_bounds s) li in
        let old_line = String.sub s off len in
        let key = List.nth keys li in
        Checkpoint.record j ~key (Rng.float rng);
        let s2 = read_file path in
        write_file path (s2 ^ old_line ^ "\n");
        ([], 0)
    | _ ->
        (* blank lines are tolerated; a garbage line is one corrupt
           record and nothing else *)
        let s = read_file path in
        write_file path (s ^ "\n\nthis is not a journal record\n");
        ([], 1)
  in
  let j2 = reload () in
  let n_corrupt = List.length (Checkpoint.corrupt j2) in
  if n_corrupt <> expect_corrupt then
    err "expected exactly %d corrupt record(s), got %d (%s)" expect_corrupt
      n_corrupt
      (String.concat "; " (Checkpoint.corrupt j2));
  if Checkpoint.completed j2 <> k - List.length damaged then
    err "expected %d surviving record(s), got %d" (k - List.length damaged)
      (Checkpoint.completed j2);
  List.iter2
    (fun key v ->
      if List.mem key damaged then begin
        match Checkpoint.find j2 ~key with
        | (Some _ : float option) -> err "damaged key %s survived the load" key
        | None -> ()
      end
      else
        match (Checkpoint.find j2 ~key : float option) with
        | Some v' when v' = v -> ()
        | Some _ -> err "healthy key %s came back with a different value" key
        | None -> err "healthy key %s was lost" key)
    keys vals;
  (* a resumed sweep recomputes exactly the damaged records; after the
     first re-record the journal is rewritten whole, so a further
     reload must be pristine *)
  if damaged <> [] then begin
    List.iter2
      (fun key v -> if List.mem key damaged then Checkpoint.record j2 ~key v)
      keys vals;
    let j3 = reload () in
    if Checkpoint.corrupt j3 <> [] then
      err "journal still corrupt after recomputing damaged records";
    List.iter2
      (fun key v ->
        match (Checkpoint.find j3 ~key : float option) with
        | Some v' when v' = v -> ()
        | _ -> err "key %s wrong after heal" key)
      keys vals
  end;
  (try Sys.remove path with Sys_error _ -> ());
  List.rev !errors

let corruption_drills ?dir ~seed ~rounds () =
  let dir =
    match dir with Some d -> d | None -> Filename.get_temp_dir_name ()
  in
  List.concat
    (List.init rounds (fun r ->
         drill ~dir (Rng.create (Rng.derive seed r)) r))

(* ---- chaos soak ---- *)

let soak_names = [ "unepic"; "g721_dec" ]

let chaos_soak ?(p = 0.2) ~seed () =
  let suite =
    List.filter (fun w -> List.mem w.Workload.name soak_names) Registry.all
  in
  if List.length suite <> List.length soak_names then
    Error "soak suite workloads missing from the registry"
  else
    let sweep () =
      let ctx = Experiment.create_ctx ~workloads:suite () in
      Experiment.penalty_sweep_result ~penalties:[ 10; 100 ] ctx
    in
    let calm = with_env "T1000_CHAOS" "" sweep in
    if calm.Experiment.faults <> [] then
      Error "calm reference run faulted; nothing to compare against"
    else
      let stormy =
        with_env "T1000_CHAOS" (Printf.sprintf "%g" p) (fun () ->
            with_env "T1000_CHAOS_SEED" (string_of_int seed) sweep)
      in
      if stormy.Experiment.faults <> [] then
        Error
          (Printf.sprintf
             "chaos run lost %d point(s) despite retries (T1000_CHAOS=%g)"
             (List.length stormy.Experiment.faults)
             p)
      else if stormy.Experiment.rows <> calm.Experiment.rows then
        Error "chaos run rows diverge from the calm run"
      else Ok ()
