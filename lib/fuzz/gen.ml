open T1000_isa
module Builder = T1000_asm.Builder
module Memory = T1000_machine.Memory
module Workload = T1000_workloads.Workload
module Mconfig = T1000_ooo.Mconfig
module Runner = T1000.Runner

let data_base = 0x1000
let out_base = 0x2000
let n_data = 16

(* The output region is a fixed window regardless of how many registers
   a (possibly shrunk) case publishes: store slots at +0..+15, the wide
   accumulator at +16, registers from +20.  Unwritten bytes are zero in
   both original and rewritten runs, so the fixed size never masks a
   divergence. *)
let out_len = 20 + (2 * 8)

let data_regs = [| Reg.t0; Reg.t1; Reg.t2; Reg.t3; Reg.t4; Reg.t5; Reg.t6; Reg.t7 |]

type op =
  | Alu3 of Op.alu * int * int * int
  | Alui of Op.alu * int * int * int
  | Shift of Op.shift * int * int * int
  | Load of int * int
  | Store of int * int
  | Mask of int
  | Acc of int
  | Mult of int * int

type block = { iters : int; body : op list }

type fconfig = {
  n_pfus : int option;
  penalty : int;
  replacement : Mconfig.pfu_replacement;
  lut_budget : int;
  gain_threshold : float;
  ext_timing : [ `Single_cycle | `Lut_levels ];
  config_prefetch : bool;
  narrow_machine : bool;
}

type case = {
  case_seed : int;
  n_regs : int;
  use_acc : bool;
  blocks : block list;
  config : fconfig;
}

(* ---- generation ---- *)

let alu3_ops = Op.[| Add; Addu; Sub; Subu; And; Or; Xor; Slt; Sltu |]
let alui_ops = Op.[| Add; Addu; And; Or; Xor; Slt |]
let shift_ops = Op.[| Sll; Srl; Sra |]

let gen_op rng n_regs =
  let reg () = Rng.int rng n_regs in
  (* Weighted mix, mirroring the proportions the hand-written workloads
     exhibit: mostly ALU/shift chains (extraction candidates), with
     enough loads/stores/wide ops to exercise the validity checks. *)
  match Rng.int rng 21 with
  | 0 | 1 | 2 | 3 | 4 ->
      Alu3 (Rng.choose rng alu3_ops, reg (), reg (), reg ())
  | 5 | 6 | 7 ->
      Alui (Rng.choose rng alui_ops, reg (), reg (), Rng.range rng 0 255)
  | 8 | 9 | 10 ->
      Shift (Rng.choose rng shift_ops, reg (), reg (), Rng.range rng 0 3)
  | 11 | 12 -> Load (reg (), Rng.range rng 0 (n_data - 1))
  | 13 | 14 -> Store (reg (), Rng.range rng 0 7)
  | 15 | 16 | 17 -> Mask (reg ())
  | 18 | 19 -> Acc (reg ())
  | _ -> Mult (reg (), reg ())

let gen_block rng n_regs =
  let iters = Rng.range rng 1 20 in
  let body = List.init (Rng.range rng 3 24) (fun _ -> gen_op rng n_regs) in
  { iters; body }

let gen_config rng =
  {
    n_pfus = Rng.choose rng [| Some 1; Some 2; Some 2; Some 4; None |];
    penalty = Rng.choose rng [| 0; 1; 10; 10; 100 |];
    replacement =
      Rng.choose rng Mconfig.[| Lru; Lru; Fifo; Random_det |];
    lut_budget =
      Rng.choose rng
        [|
          T1000_hwcost.Lut.default_budget;
          T1000_hwcost.Lut.default_budget;
          T1000_hwcost.Lut.default_budget;
          80;
          40;
        |];
    gain_threshold = Rng.choose rng [| 0.005; 0.005; 0.0; 0.02 |];
    ext_timing =
      (if Rng.bool rng ~p:0.25 then `Lut_levels else `Single_cycle);
    config_prefetch = Rng.bool rng ~p:0.25;
    narrow_machine = Rng.bool rng ~p:0.2;
  }

let generate ~seed =
  let rng = Rng.create seed in
  let n_regs = Rng.range rng 2 8 in
  let use_acc = Rng.bool rng ~p:0.7 in
  let blocks = List.init (Rng.range rng 1 3) (fun _ -> gen_block rng n_regs) in
  { case_seed = seed; n_regs; use_acc; blocks; config = gen_config rng }

(* ---- assembly ---- *)

let block_loads blk =
  List.exists (function Load _ -> true | _ -> false) blk.body

let program c =
  let nr = max 1 (min c.n_regs (Array.length data_regs)) in
  let reg i = data_regs.(i mod nr) in
  let b = Builder.create ~name:(Printf.sprintf "fuzz%d" c.case_seed) () in
  if List.exists block_loads c.blocks then Builder.li b Reg.a0 data_base;
  Builder.li b Reg.a1 out_base;
  if c.use_acc then Builder.li b Reg.s3 0x100000;
  for i = 0 to nr - 1 do
    Builder.li b data_regs.(i) ((i * 37) land 0xFF)
  done;
  List.iteri
    (fun bi blk ->
      Builder.li b Reg.s0 (max 1 blk.iters);
      let top = Builder.fresh_label b (Printf.sprintf "b%d" bi) in
      Builder.label b top;
      List.iter
        (fun op ->
          match op with
          | Alu3 (op, d, s1, s2) ->
              Builder.raw b (Instr.Alu_rrr (op, reg d, reg s1, reg s2))
          | Alui (op, d, s, imm) ->
              Builder.raw b (Instr.Alu_rri (op, reg d, reg s, imm land 0xFFFF))
          | Shift (op, d, s, sh) ->
              Builder.raw b (Instr.Shift_imm (op, reg d, reg s, sh land 31))
          | Load (d, slot) ->
              Builder.lh b (reg d) (2 * (slot mod n_data)) Reg.a0
          | Store (s, slot) ->
              Builder.sh b (reg s) (2 * (slot mod 8)) Reg.a1
          | Mask d -> Builder.andi b (reg d) (reg d) 0xFFF
          | Acc s -> if c.use_acc then Builder.addu b Reg.s3 Reg.s3 (reg s)
          | Mult (x, y) ->
              Builder.mult b (reg x) (reg y);
              Builder.mflo b (reg 0))
        blk.body;
      Builder.addiu b Reg.s0 Reg.s0 (-1);
      Builder.bgtz b Reg.s0 top)
    c.blocks;
  if c.use_acc then Builder.sw b Reg.s3 16 Reg.a1;
  for i = 0 to nr - 1 do
    Builder.sh b data_regs.(i) (20 + (2 * i)) Reg.a1
  done;
  Builder.halt b;
  Builder.build b

let workload c =
  {
    Workload.name = Printf.sprintf "fuzz%d" c.case_seed;
    description = "generated fuzz kernel";
    program = program c;
    init =
      (fun mem _regs ->
        for i = 0 to n_data - 1 do
          Memory.store_half mem (data_base + (2 * i)) ((i * 1237) land 0x7FF)
        done);
    out_base;
    out_len;
  }

let narrow_machine_of base =
  {
    base with
    Mconfig.fetch_width = 2;
    decode_width = 2;
    issue_width = 2;
    commit_width = 2;
    ruu_size = 32;
    n_int_alu = 2;
    n_mem_ports = 1;
  }

let setup ?(method_ = Runner.Greedy) c =
  let s =
    Runner.setup ~n_pfus:c.config.n_pfus ~penalty:c.config.penalty
      ~selfcheck:true method_
  in
  {
    s with
    Runner.replacement = c.config.replacement;
    lut_budget = c.config.lut_budget;
    gain_threshold = c.config.gain_threshold;
    ext_timing = c.config.ext_timing;
    config_prefetch = c.config.config_prefetch;
    machine =
      (if c.config.narrow_machine then narrow_machine_of s.Runner.machine
       else s.Runner.machine);
  }

let instr_count c = T1000_asm.Program.length (program c)

(* ---- printing ---- *)

let pp_op ppf = function
  | Alu3 (op, d, s1, s2) ->
      Format.fprintf ppf "%s r%d, r%d, r%d" (Op.alu_to_string op) d s1 s2
  | Alui (op, d, s, imm) ->
      Format.fprintf ppf "%si r%d, r%d, %d" (Op.alu_to_string op) d s imm
  | Shift (op, d, s, sh) ->
      Format.fprintf ppf "%s r%d, r%d, %d" (Op.shift_to_string op) d s sh
  | Load (d, slot) -> Format.fprintf ppf "load r%d, slot %d" d slot
  | Store (s, slot) -> Format.fprintf ppf "store r%d, slot %d" s slot
  | Mask d -> Format.fprintf ppf "mask r%d" d
  | Acc s -> Format.fprintf ppf "acc += r%d" s
  | Mult (x, y) -> Format.fprintf ppf "mult r%d, r%d" x y

let pp_config ppf f =
  Format.fprintf ppf
    "n_pfus=%s penalty=%d replacement=%s lut_budget=%d gain=%g timing=%s \
     prefetch=%b narrow=%b"
    (match f.n_pfus with None -> "unlimited" | Some n -> string_of_int n)
    f.penalty
    (match f.replacement with
    | Mconfig.Lru -> "lru"
    | Mconfig.Fifo -> "fifo"
    | Mconfig.Random_det -> "random")
    f.lut_budget f.gain_threshold
    (match f.ext_timing with
    | `Single_cycle -> "single-cycle"
    | `Lut_levels -> "lut-levels")
    f.config_prefetch f.narrow_machine

let pp_case ppf c =
  Format.fprintf ppf "seed %d: n_regs=%d use_acc=%b@\nconfig: %a" c.case_seed
    c.n_regs c.use_acc pp_config c.config;
  List.iteri
    (fun i blk ->
      Format.fprintf ppf "@\nblock %d: %d iterations" i blk.iters;
      List.iter (fun op -> Format.fprintf ppf "@\n  %a" pp_op op) blk.body)
    c.blocks
