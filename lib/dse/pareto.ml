type objectives = {
  speedup : float;
  area_luts : int;
  pfus : int;
}

let dominates a b =
  a.speedup >= b.speedup
  && a.area_luts <= b.area_luts
  && a.pfus <= b.pfus
  && (a.speedup > b.speedup || a.area_luts < b.area_luts || a.pfus < b.pfus)

let dominates_with_margin ~slack a b =
  a.speedup >= b.speedup *. (1. +. slack)
  && a.area_luts <= b.area_luts
  && a.pfus <= b.pfus

let frontier xs =
  List.filter
    (fun (_, o) -> not (List.exists (fun (_, o') -> dominates o' o) xs))
    xs

let pp ppf o =
  Format.fprintf ppf "speedup %.3f, %d LUTs, %d PFU(s)" o.speedup o.area_luts
    o.pfus
