(** The design-space exploration engine: deterministic, resumable,
    multi-objective search over a {!Space} of selective configurations.

    Every point is scored on three objectives ({!Pareto.objectives}):
    geomean speedup over the workload suite (maximize), summed LUT area
    of every selected extended instruction across the suite (minimize)
    and PFU count (minimize).  The engine either enumerates the space
    exhaustively ([`Full]) or samples it adaptively ([`Coarse]: the
    coarse first/middle/last grid, then successive-halving neighbor
    refinement around the incumbent frontier).

    {b Dominance pruning.}  Points that differ only in reconfiguration
    penalty form a group: they share their selection tables (penalty is
    simulation-only, see {!T1000.Runner.select_table}), hence their LUT
    area and PFU count, and their speedup is non-increasing in penalty
    (extra reconfiguration stalls never make a run faster) up to the
    timing simulator's cycle-alignment noise.  The engine therefore
    evaluates each group penalty-ascending, and as soon as a member is
    dominated by {e any} measured point with a clear speedup margin
    ({!Pareto.dominates_with_margin}, far above the observed noise),
    the rest of the group is pruned without ever being simulated — the
    same dominator strictly dominates every pruned point, so the
    frontier is exactly the one exhaustive enumeration finds (the
    property suite asserts this).

    {b Determinism and resume.}  Waves are fanned out over
    {!T1000.Pool.parallel_map_result} and reassembled in input order;
    every decision (wave make-up, pruning, refinement proposals) is
    plain code over the measured values in canonical {!Space} order, so
    the result — and the rendered frontier — is byte-identical at any
    [T1000_NJOBS].  With [?journal], each (point, workload) measurement
    is recorded in the {!T1000.Checkpoint} journal as it completes and
    served from it on re-run, so a killed exploration resumes
    byte-identically.

    Telemetry: [dse.simulated] counts points whose evaluation was
    requested, [dse.pruned] points skipped by dominance pruning,
    [dse.sim_tasks] / [dse.cached] fresh vs journal-served (point,
    workload) tasks, [dse.rounds] exploration rounds; wave and whole-run
    spans are emitted under the ["dse"] category. *)

type measured = {
  point : Space.point;
  obj : Pareto.objectives;
  per_workload : (string * float) list;
      (** per-workload speedup, in suite order *)
}

type result = {
  space : Space.t;
  sample : [ `Coarse | `Full ];
  budget : int;
  rounds : int;  (** coarse grid + refinement rounds actually run *)
  measured : measured list;  (** canonical space order *)
  frontier : measured list;  (** canonical space order *)
  pruned : Space.point list;  (** canonical space order; never simulated *)
  faulted : Space.point list;  (** canonical space order *)
  faults : T1000.Experiment.point_fault list;
      (** per-(point, workload) faults; a faulted point is excluded
          from {!field-measured} and the frontier *)
}

val default_budget : int
(** Default point budget for {!explore} and the [t1000 dse] CLI (64). *)

val explore :
  ?journal:T1000.Checkpoint.t ->
  ?budget:int ->
  ?sample:[ `Coarse | `Full ] ->
  ?prune:bool ->
  T1000.Experiment.ctx ->
  Space.t ->
  result
(** Explore the space.  [?budget] (default 64) bounds how many points
    may be evaluated; [?sample] (default [`Coarse]) picks exhaustive or
    adaptive coverage; [?prune] (default [true]) enables dominance
    pruning (the [false] setting exists for the property tests, which
    diff pruned against unpruned frontiers).
    @raise T1000.Fault.Error with [Invalid_config] on an invalid space
    or non-positive budget. *)

val eval_point : T1000.Experiment.ctx -> Space.point -> measured
(** Score one point sequentially on the calling domain (no pool, no
    journal), raising on the first fault — the primitive the
    [examples/design_space.ml] grid driver and the agreement tests are
    built on.  [explore] measures exactly this value for every point it
    visits. *)

val pp_frontier : Format.formatter -> result -> unit
(** The frontier table plus a one-line exploration summary (evaluated /
    pruned / faulted counts) — the [t1000 dse] stdout. *)

val to_json : result -> T1000_obs.Json.t
(** Machine-readable report: the space, the exploration counters, every
    measured point with its objectives and frontier membership, and the
    fault list. *)
