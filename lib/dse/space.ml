open T1000_ooo

type point = {
  pfus : int;
  penalty : int;
  lut_budget : int;
  replacement : Mconfig.pfu_replacement;
  gain : float;
  width : int;
}

type t = {
  ax_pfus : int list;
  ax_penalties : int list;
  ax_lut_budgets : int list;
  ax_replacements : Mconfig.pfu_replacement list;
  ax_gains : float list;
  ax_widths : int list;
}

let default =
  {
    ax_pfus = [ 1; 2; 4; 8 ];
    ax_penalties = [ 0; 10; 50; 100; 500 ];
    ax_lut_budgets = [ 75; 150; 300 ];
    ax_replacements = [ Mconfig.Lru; Mconfig.Fifo; Mconfig.Random_det ];
    ax_gains = [ 0.001; 0.005; 0.02 ];
    ax_widths = [ 2; 4; 8 ];
  }

let repl_to_string = function
  | Mconfig.Lru -> "lru"
  | Mconfig.Fifo -> "fifo"
  | Mconfig.Random_det -> "rand"

let validate s =
  let axis name = function
    | [] -> T1000.Fault.invalid_config "axes: %s axis is empty" name
    | _ -> ()
  in
  axis "pfus" s.ax_pfus;
  axis "penalty" s.ax_penalties;
  axis "lut" s.ax_lut_budgets;
  axis "repl" s.ax_replacements;
  axis "gain" s.ax_gains;
  axis "width" s.ax_widths;
  List.iter
    (fun n ->
      if n <= 0 then
        T1000.Fault.invalid_config "axes: pfus must be positive, got %d" n)
    s.ax_pfus;
  List.iter
    (fun p ->
      if p < 0 then
        T1000.Fault.invalid_config "axes: penalty must be non-negative, got %d"
          p)
    s.ax_penalties;
  List.iter
    (fun b ->
      if b <= 0 then
        T1000.Fault.invalid_config "axes: lut budget must be positive, got %d"
          b)
    s.ax_lut_budgets;
  List.iter
    (fun g ->
      if not (g >= 0.0 && g <= 1.0) then
        T1000.Fault.invalid_config "axes: gain must be in [0, 1], got %g" g)
    s.ax_gains;
  List.iter
    (fun w ->
      if w <> 2 && w <> 4 && w <> 8 then
        T1000.Fault.invalid_config "axes: width must be 2, 4 or 8, got %d" w)
    s.ax_widths

let size s =
  List.length s.ax_pfus * List.length s.ax_penalties
  * List.length s.ax_lut_budgets
  * List.length s.ax_replacements
  * List.length s.ax_gains * List.length s.ax_widths

(* Canonical nested order, penalty innermost: the members of each
   penalty-monotone group come out adjacent and penalty-ascending. *)
let enumerate s =
  List.concat_map
    (fun pfus ->
      List.concat_map
        (fun lut_budget ->
          List.concat_map
            (fun replacement ->
              List.concat_map
                (fun gain ->
                  List.concat_map
                    (fun width ->
                      List.map
                        (fun penalty ->
                          {
                            pfus;
                            penalty;
                            lut_budget;
                            replacement;
                            gain;
                            width;
                          })
                        s.ax_penalties)
                    s.ax_widths)
                s.ax_gains)
            s.ax_replacements)
        s.ax_lut_budgets)
    s.ax_pfus

(* First, middle and last of one axis (whole axis when it is short). *)
let coarse_axis xs =
  match xs with
  | [] | [ _ ] | [ _; _ ] | [ _; _; _ ] -> xs
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      List.sort_uniq compare [ arr.(0); arr.((n - 1) / 2); arr.(n - 1) ]

let coarse s =
  {
    ax_pfus = coarse_axis s.ax_pfus;
    ax_penalties = coarse_axis s.ax_penalties;
    ax_lut_budgets = coarse_axis s.ax_lut_budgets;
    ax_replacements = coarse_axis s.ax_replacements;
    ax_gains = coarse_axis s.ax_gains;
    ax_widths = coarse_axis s.ax_widths;
  }

let index_in name xs v =
  let rec go i = function
    | [] ->
        T1000.Fault.invalid_config "axes: %s value not on the %s axis" name
          name
    | x :: tl -> if x = v then i else go (i + 1) tl
  in
  go 0 xs

(* Position of a point in [enumerate s], without materializing the
   list. *)
let rank s p =
  let i_pfus = index_in "pfus" s.ax_pfus p.pfus in
  let i_lut = index_in "lut" s.ax_lut_budgets p.lut_budget in
  let i_repl = index_in "repl" s.ax_replacements p.replacement in
  let i_gain = index_in "gain" s.ax_gains p.gain in
  let i_width = index_in "width" s.ax_widths p.width in
  let i_pen = index_in "penalty" s.ax_penalties p.penalty in
  let n_lut = List.length s.ax_lut_budgets in
  let n_repl = List.length s.ax_replacements in
  let n_gain = List.length s.ax_gains in
  let n_width = List.length s.ax_widths in
  let n_pen = List.length s.ax_penalties in
  ((((i_pfus * n_lut) + i_lut) * n_repl + i_repl) * n_gain + i_gain) * n_width
  * n_pen
  + (i_width * n_pen) + i_pen

let compare_points s a b = compare (rank s a) (rank s b)

let refine s ~stride p =
  let on_axis xs v rebuild =
    let arr = Array.of_list xs in
    let i =
      let rec find k = if arr.(k) = v then k else find (k + 1) in
      find 0
    in
    List.filter_map
      (fun j ->
        if j >= 0 && j < Array.length arr && j <> i then
          Some (rebuild arr.(j))
        else None)
      [ i - stride; i + stride ]
  in
  on_axis s.ax_pfus p.pfus (fun v -> { p with pfus = v })
  @ on_axis s.ax_penalties p.penalty (fun v -> { p with penalty = v })
  @ on_axis s.ax_lut_budgets p.lut_budget (fun v -> { p with lut_budget = v })
  @ on_axis s.ax_replacements p.replacement (fun v ->
        { p with replacement = v })
  @ on_axis s.ax_gains p.gain (fun v -> { p with gain = v })
  @ on_axis s.ax_widths p.width (fun v -> { p with width = v })

let initial_stride s =
  let longest =
    List.fold_left max 1
      [
        List.length s.ax_pfus;
        List.length s.ax_penalties;
        List.length s.ax_lut_budgets;
        List.length s.ax_replacements;
        List.length s.ax_gains;
        List.length s.ax_widths;
      ]
  in
  max 1 ((longest - 1) / 4)

let key p =
  Printf.sprintf "p%d.pen%d.lut%d.%s.g%g.w%d" p.pfus p.penalty p.lut_budget
    (repl_to_string p.replacement)
    p.gain p.width

let group_key p =
  Printf.sprintf "p%d.lut%d.%s.g%g.w%d" p.pfus p.lut_budget
    (repl_to_string p.replacement)
    p.gain p.width

(* The same width presets as the A5 machine sweep. *)
let machine_of_width = function
  | 2 ->
      {
        Mconfig.default with
        Mconfig.fetch_width = 2;
        decode_width = 2;
        issue_width = 2;
        commit_width = 2;
        ruu_size = 32;
        n_int_alu = 2;
        n_mem_ports = 1;
      }
  | 4 -> Mconfig.default
  | 8 ->
      {
        Mconfig.default with
        Mconfig.fetch_width = 8;
        decode_width = 8;
        issue_width = 8;
        commit_width = 8;
        ruu_size = 128;
        n_int_alu = 8;
        n_mem_ports = 4;
      }
  | w -> T1000.Fault.invalid_config "machine width must be 2, 4 or 8, got %d" w

let setup p =
  let s =
    T1000.Runner.setup ~n_pfus:(Some p.pfus) ~penalty:p.penalty
      T1000.Runner.Selective
  in
  let s =
    {
      s with
      T1000.Runner.replacement = p.replacement;
      gain_threshold = p.gain;
      lut_budget = p.lut_budget;
      machine = machine_of_width p.width;
    }
  in
  T1000.Runner.validate s;
  s

(* -------- --axes parsing -------- *)

let parse_values name conv s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun v -> v <> "")
  in
  if parts = [] then Error (Printf.sprintf "axis %s: no values" name)
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | v :: tl -> (
          match conv v with
          | Some x -> go (x :: acc) tl
          | None -> Error (Printf.sprintf "axis %s: bad value %S" name v))
    in
    Result.map (List.sort_uniq compare) (go [] parts)

let of_spec spec =
  let groups =
    String.split_on_char ':' spec |> List.map String.trim
    |> List.filter (fun g -> g <> "")
  in
  if groups = [] then Error "empty --axes spec"
  else
    let int_conv v = int_of_string_opt v in
    let float_conv v = float_of_string_opt v in
    let repl_conv = function
      | "lru" -> Some Mconfig.Lru
      | "fifo" -> Some Mconfig.Fifo
      | "rand" -> Some Mconfig.Random_det
      | _ -> None
    in
    let rec go s = function
      | [] -> (
          match validate s with
          | () -> Ok s
          | exception T1000.Fault.Error (T1000.Fault.Invalid_config msg) ->
              Error msg)
      | g :: tl -> (
          match String.index_opt g '=' with
          | None ->
              Error
                (Printf.sprintf
                   "bad axis group %S (expected axis=v,v,...; axes: pfus \
                    penalty lut repl gain width)"
                   g)
          | Some i -> (
              let name = String.trim (String.sub g 0 i) in
              let values =
                String.sub g (i + 1) (String.length g - i - 1)
              in
              match name with
              | "pfus" ->
                  Result.bind (parse_values name int_conv values) (fun vs ->
                      go { s with ax_pfus = vs } tl)
              | "penalty" ->
                  Result.bind (parse_values name int_conv values) (fun vs ->
                      go { s with ax_penalties = vs } tl)
              | "lut" ->
                  Result.bind (parse_values name int_conv values) (fun vs ->
                      go { s with ax_lut_budgets = vs } tl)
              | "repl" ->
                  Result.bind (parse_values name repl_conv values) (fun vs ->
                      go { s with ax_replacements = vs } tl)
              | "gain" ->
                  Result.bind (parse_values name float_conv values) (fun vs ->
                      go { s with ax_gains = vs } tl)
              | "width" ->
                  Result.bind (parse_values name int_conv values) (fun vs ->
                      go { s with ax_widths = vs } tl)
              | _ ->
                  Error
                    (Printf.sprintf
                       "unknown axis %S (axes: pfus penalty lut repl gain \
                        width)"
                       name)))
    in
    go default groups

let pp ppf s =
  let ints name xs =
    Format.fprintf ppf "  %-8s %s@," name
      (String.concat " " (List.map string_of_int xs))
  in
  Format.fprintf ppf "@[<v>";
  ints "pfus" s.ax_pfus;
  ints "penalty" s.ax_penalties;
  ints "lut" s.ax_lut_budgets;
  Format.fprintf ppf "  %-8s %s@," "repl"
    (String.concat " " (List.map repl_to_string s.ax_replacements));
  Format.fprintf ppf "  %-8s %s@," "gain"
    (String.concat " " (List.map (Printf.sprintf "%g") s.ax_gains));
  ints "width" s.ax_widths;
  Format.fprintf ppf "  %d points@]" (size s)
