open T1000_workloads

type measured = {
  point : Space.point;
  obj : Pareto.objectives;
  per_workload : (string * float) list;
}

type result = {
  space : Space.t;
  sample : [ `Coarse | `Full ];
  budget : int;
  rounds : int;
  measured : measured list;
  frontier : measured list;
  pruned : Space.point list;
  faulted : Space.point list;
  faults : T1000.Experiment.point_fault list;
}

(* One (point, workload) task: the workload's speedup under the point's
   setup (against the machine-width-matched baseline) and the LUT area
   of the workload's selected instruction table.  Pure given (p, w) —
   the ctx memo tables only change *when* values are computed, never
   what they are — which is what makes fan-out order irrelevant and the
   journal value stable across resumes. *)
let eval_task ctx p (w : Workload.t) =
  let s = Space.setup p in
  let table = T1000.Experiment.selection_table ctx w s in
  let area =
    List.fold_left
      (fun acc e -> acc + e.T1000_select.Extinstr.lut_cost)
      0
      (T1000_select.Extinstr.entries table)
  in
  let r = T1000.Experiment.run_setup ctx w s in
  let b = T1000.Experiment.baseline_for ctx w s.T1000.Runner.machine in
  (T1000.Runner.speedup ~baseline:b r, area)

let combine p per =
  let n = List.length per in
  let geomean =
    exp
      (List.fold_left (fun acc (_, (s, _)) -> acc +. log s) 0.0 per
      /. float_of_int n)
  in
  let area = List.fold_left (fun acc (_, (_, a)) -> acc + a) 0 per in
  {
    point = p;
    obj =
      { Pareto.speedup = geomean; area_luts = area; pfus = p.Space.pfus };
    per_workload = List.map (fun (name, (s, _)) -> (name, s)) per;
  }

let eval_point ctx p =
  let per =
    List.map
      (fun (w : Workload.t) -> (w.Workload.name, eval_task ctx p w))
      (T1000.Experiment.workloads ctx)
  in
  combine p per

(* Same test hook as the Experiment drivers: T1000_FAULT_INJECT names a
   workload whose every task raises instead of simulating. *)
let fault_inject_target () =
  match Sys.getenv_opt "T1000_FAULT_INJECT" with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> Some (String.trim s)

let journal_key p (w : Workload.t) =
  Printf.sprintf "dse/%s/%s" (Space.key p) w.Workload.name

(* Evaluate one wave of points: fan (point x workload) tasks over the
   pool, journal completions, regroup per point.  Returns, in wave
   order, each point's measurement ([None] when any of its workloads
   faulted) plus the per-task faults. *)
let evaluate_wave ?journal ctx wave =
  T1000_obs.Tracer.with_span ~cat:"dse" "dse.wave" @@ fun () ->
  let suite = T1000.Experiment.workloads ctx in
  let inject = fault_inject_target () in
  let tasks =
    List.concat_map (fun p -> List.map (fun w -> (p, w)) suite) wave
  in
  let eval (p, (w : Workload.t)) =
    (match inject with
    | Some name when name = w.Workload.name ->
        raise
          (T1000.Fault.Error
             (T1000.Fault.Injected
                (Printf.sprintf "T1000_FAULT_INJECT=%s hit point %s" name
                   (journal_key p w))))
    | Some _ | None -> ());
    T1000_obs.Metrics.incr "dse.sim_tasks";
    eval_task ctx p w
  in
  let results =
    match journal with
    | None -> T1000.Pool.parallel_map_result eval tasks
    | Some j ->
        let task_arr = Array.of_list tasks in
        let out = Array.make (Array.length task_arr) None in
        let todo = ref [] in
        Array.iteri
          (fun i t ->
            match T1000.Checkpoint.find j ~key:(journal_key (fst t) (snd t)) with
            | Some v ->
                T1000_obs.Metrics.incr "dse.cached";
                out.(i) <- Some (Ok v)
            | None -> todo := i :: !todo)
          task_arr;
        let todo = Array.of_list (List.rev !todo) in
        T1000.Pool.parallel_map_result
          ~on_result:(fun k r ->
            match r with
            | Ok v ->
                let p, w = task_arr.(todo.(k)) in
                T1000.Checkpoint.record j ~key:(journal_key p w) v
            | Error _ -> ())
          (fun i -> eval task_arr.(i))
          (Array.to_list todo)
        |> List.iteri (fun k r -> out.(todo.(k)) <- Some r);
        Array.to_list
          (Array.map (function Some r -> r | None -> assert false) out)
  in
  let n_wl = List.length suite in
  let rec chunk acc rs =
    match rs with
    | [] -> List.rev acc
    | _ ->
        let rec take k rs acc' =
          if k = 0 then (List.rev acc', rs)
          else
            match rs with
            | r :: tl -> take (k - 1) tl (r :: acc')
            | [] -> assert false
        in
        let c, rest = take n_wl rs [] in
        chunk (c :: acc) rest
  in
  let grouped = List.combine wave (chunk [] results) in
  let faults = ref [] in
  let out =
    List.map
      (fun (p, rs) ->
        if List.for_all Result.is_ok rs then
          (p, Some (combine p (List.map2 (fun (w : Workload.t) r ->
               (w.Workload.name, Result.get_ok r)) suite rs)))
        else begin
          List.iter2
            (fun (w : Workload.t) r ->
              match r with
              | Ok _ -> ()
              | Error fault ->
                  faults :=
                    {
                      T1000.Experiment.fault_workload = w.Workload.name;
                      fault_point = Space.key p;
                      fault;
                    }
                    :: !faults)
            suite rs;
          (p, None)
        end)
      grouped
  in
  (out, List.rev !faults)

let default_budget = 64

(* Relative speedup margin a dominator must clear before a penalty
   group's tail is pruned.  Speedup is non-increasing in penalty only
   up to the timing simulator's cycle-alignment noise (observed ~3e-5
   relative); 1e-3 is ~30x that, so a noise-sized inversion can never
   turn a pruned point into a frontier member, while real dominance
   gaps (typically >1e-2) still prune. *)
let prune_slack = 1e-3

let explore ?journal ?(budget = default_budget) ?(sample = `Coarse)
    ?(prune = true) ctx space =
  Space.validate space;
  if budget <= 0 then
    T1000.Fault.invalid_config "dse budget must be positive, got %d" budget;
  T1000_obs.Tracer.with_span ~cat:"dse" "dse.explore" @@ fun () ->
  T1000_obs.Metrics.time "dse.explore" @@ fun () ->
  let measured_tbl : (Space.point, measured) Hashtbl.t = Hashtbl.create 64 in
  let faulted_tbl : (Space.point, unit) Hashtbl.t = Hashtbl.create 8 in
  let pruned_tbl : (Space.point, unit) Hashtbl.t = Hashtbl.create 64 in
  let faults = ref [] in
  let evaluated = ref 0 in
  let rounds = ref 0 in
  let visited p =
    Hashtbl.mem measured_tbl p || Hashtbl.mem faulted_tbl p
    || Hashtbl.mem pruned_tbl p
  in
  let all_measured () =
    Hashtbl.fold (fun _ m acc -> (m, m.obj) :: acc) measured_tbl []
  in
  (* Evaluate a candidate list (already deduplicated, unvisited, in
     canonical order, within budget): penalty-monotone groups advance
     one member per wave, lowest penalty first; a group whose freshest
     member is strictly dominated by any measured point has its whole
     unsimulated tail pruned. *)
  let run_candidates cands =
    let groups = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun p ->
        let g = Space.group_key p in
        match Hashtbl.find_opt groups g with
        | None ->
            Hashtbl.add groups g [ p ];
            order := g :: !order
        | Some ps -> Hashtbl.replace groups g (p :: ps))
      cands;
    let pending =
      ref
        (List.rev_map
           (fun g ->
             List.sort
               (fun a b ->
                 compare a.Space.penalty b.Space.penalty)
               (List.rev (Hashtbl.find groups g)))
           !order
        |> List.rev)
    in
    while !pending <> [] do
      let wave = List.map List.hd !pending in
      T1000_obs.Metrics.incr ~by:(List.length wave) "dse.simulated";
      let results, wave_faults = evaluate_wave ?journal ctx wave in
      faults := !faults @ wave_faults;
      List.iter
        (fun (p, m) ->
          incr evaluated;
          match m with
          | Some m -> Hashtbl.replace measured_tbl p m
          | None -> Hashtbl.replace faulted_tbl p ())
        results;
      let all = all_measured () in
      pending :=
        List.filter_map
          (fun group ->
            let head = List.hd group in
            match List.tl group with
            | [] -> None
            | tail ->
                let dominated =
                  prune
                  && (match Hashtbl.find_opt measured_tbl head with
                     | Some m ->
                         List.exists
                           (fun (_, o) ->
                             Pareto.dominates_with_margin ~slack:prune_slack
                               o m.obj)
                           all
                     | None -> false)
                in
                if dominated then begin
                  (* Area and PFU count are penalty-invariant and
                     speedup is non-increasing in penalty up to
                     alignment noise well under prune_slack, so the
                     same dominator strictly dominates every
                     higher-penalty member: skip the simulations
                     entirely. *)
                  T1000_obs.Metrics.incr ~by:(List.length tail) "dse.pruned";
                  List.iter (fun p -> Hashtbl.replace pruned_tbl p ()) tail;
                  None
                end
                else Some tail)
          !pending;
      incr rounds
    done
  in
  let canonical ps = List.sort (Space.compare_points space) ps in
  let frontier_now () =
    let ms =
      Hashtbl.fold (fun _ m acc -> m :: acc) measured_tbl []
      |> List.sort (fun a b -> Space.compare_points space a.point b.point)
    in
    List.map fst (Pareto.frontier (List.map (fun m -> (m, m.obj)) ms))
  in
  let take_budget ps =
    let rec go n acc = function
      | [] -> List.rev acc
      | _ when n <= 0 -> List.rev acc
      | p :: tl -> go (n - 1) (p :: acc) tl
    in
    go (budget - !evaluated) [] ps
  in
  let initial =
    match sample with
    | `Full -> Space.enumerate space
    | `Coarse -> canonical (Space.enumerate (Space.coarse space))
  in
  run_candidates (take_budget initial);
  (match sample with
  | `Full -> ()
  | `Coarse ->
      (* Successive-halving refinement: propose axis neighbors of the
         incumbent frontier at the current stride; when a round adds no
         frontier member (or proposes nothing new), halve the stride;
         stop at stride 1 or an exhausted budget. *)
      let stride = ref (Space.initial_stride space) in
      let continue_ = ref true in
      while !continue_ && !evaluated < budget do
        let front = frontier_now () in
        let seen = Hashtbl.create 16 in
        let proposals =
          List.concat_map
            (fun m -> Space.refine space ~stride:!stride m.point)
            front
          |> List.filter (fun p ->
                 if visited p || Hashtbl.mem seen p then false
                 else begin
                   Hashtbl.add seen p ();
                   true
                 end)
          |> canonical |> take_budget
        in
        if proposals = [] then
          if !stride <= 1 then continue_ := false else stride := !stride / 2
        else begin
          let before = List.map (fun m -> m.point) front in
          run_candidates proposals;
          let after = List.map (fun m -> m.point) (frontier_now ()) in
          if after = before then
            if !stride <= 1 then continue_ := false
            else stride := !stride / 2
        end
      done);
  T1000_obs.Metrics.incr ~by:!rounds "dse.rounds";
  let measured =
    Hashtbl.fold (fun _ m acc -> m :: acc) measured_tbl []
    |> List.sort (fun a b -> Space.compare_points space a.point b.point)
  in
  {
    space;
    sample;
    budget;
    rounds = !rounds;
    measured;
    frontier = frontier_now ();
    pruned = canonical (Hashtbl.fold (fun p () acc -> p :: acc) pruned_tbl []);
    faulted =
      canonical (Hashtbl.fold (fun p () acc -> p :: acc) faulted_tbl []);
    faults = !faults;
  }

(* -------- rendering -------- *)

let rule ppf width = Format.fprintf ppf "%s@," (String.make width '-')

let pp_frontier ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "Design-space Pareto frontier — maximize speedup, minimize LUT area \
     and PFUs@,";
  rule ppf 72;
  Format.fprintf ppf "%-36s %10s %12s %6s@," "config" "geomean" "area(LUTs)"
    "PFUs";
  rule ppf 72;
  List.iter
    (fun m ->
      Format.fprintf ppf "%-36s %10.3f %12d %6d@," (Space.key m.point)
        m.obj.Pareto.speedup m.obj.Pareto.area_luts m.obj.Pareto.pfus)
    r.frontier;
  rule ppf 72;
  Format.fprintf ppf
    "evaluated %d of %d configs in %d round(s) (%d pruned as dominated, %d \
     faulted); frontier: %d@,"
    (List.length r.measured + List.length r.faulted)
    (Space.size r.space) r.rounds
    (List.length r.pruned)
    (List.length r.faulted)
    (List.length r.frontier);
  Format.fprintf ppf "@]"

let to_json r =
  let open T1000_obs.Json in
  let frontier_set = Hashtbl.create 16 in
  List.iter (fun m -> Hashtbl.replace frontier_set m.point ()) r.frontier;
  let point_json m =
    Obj
      [
        ("key", Str (Space.key m.point));
        ("pfus", Num (float_of_int m.point.Space.pfus));
        ("penalty", Num (float_of_int m.point.Space.penalty));
        ("lut_budget", Num (float_of_int m.point.Space.lut_budget));
        ( "replacement",
          Str
            (match m.point.Space.replacement with
            | T1000_ooo.Mconfig.Lru -> "lru"
            | T1000_ooo.Mconfig.Fifo -> "fifo"
            | T1000_ooo.Mconfig.Random_det -> "rand") );
        ("gain", Num m.point.Space.gain);
        ("width", Num (float_of_int m.point.Space.width));
        ("speedup", Num m.obj.Pareto.speedup);
        ("area_luts", Num (float_of_int m.obj.Pareto.area_luts));
        ("frontier", Bool (Hashtbl.mem frontier_set m.point));
        ( "per_workload",
          Obj (List.map (fun (n, s) -> (n, Num s)) m.per_workload) );
      ]
  in
  Obj
    [
      ( "space",
        Obj
          [
            ( "pfus",
              List
                (List.map (fun v -> Num (float_of_int v)) r.space.Space.ax_pfus)
            );
            ( "penalty",
              List
                (List.map
                   (fun v -> Num (float_of_int v))
                   r.space.Space.ax_penalties) );
            ( "lut",
              List
                (List.map
                   (fun v -> Num (float_of_int v))
                   r.space.Space.ax_lut_budgets) );
            ( "repl",
              List
                (List.map
                   (fun rp ->
                     Str
                       (match rp with
                       | T1000_ooo.Mconfig.Lru -> "lru"
                       | T1000_ooo.Mconfig.Fifo -> "fifo"
                       | T1000_ooo.Mconfig.Random_det -> "rand"))
                   r.space.Space.ax_replacements) );
            ("gain", List (List.map (fun v -> Num v) r.space.Space.ax_gains));
            ( "width",
              List
                (List.map
                   (fun v -> Num (float_of_int v))
                   r.space.Space.ax_widths) );
          ] );
      ("total_configs", Num (float_of_int (Space.size r.space)));
      ( "sample",
        Str (match r.sample with `Coarse -> "coarse" | `Full -> "full") );
      ("budget", Num (float_of_int r.budget));
      ("rounds", Num (float_of_int r.rounds));
      ("evaluated", Num (float_of_int (List.length r.measured)));
      ("pruned", Num (float_of_int (List.length r.pruned)));
      ("faulted", Num (float_of_int (List.length r.faulted)));
      ( "faults",
        List
          (List.map
             (fun (f : T1000.Experiment.point_fault) ->
               Obj
                 [
                   ("workload", Str f.T1000.Experiment.fault_workload);
                   ("point", Str f.T1000.Experiment.fault_point);
                   ( "fault",
                     Str (T1000.Fault.to_string f.T1000.Experiment.fault) );
                 ])
             r.faults) );
      ("frontier", List (List.map point_json r.frontier));
      ("measured", List (List.map point_json r.measured));
    ]
