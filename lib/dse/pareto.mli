(** Multi-objective dominance over the DSE's three objectives:
    maximize geomean speedup, minimize configuration LUT area, minimize
    PFU count.

    The frontier is the set of mutually non-dominated points; points
    with {e equal} objective vectors do not dominate each other, so
    ties all stay on the frontier (and exploration output stays
    deterministic — no arbitrary tie-breaking). *)

type objectives = {
  speedup : float;  (** geomean speedup over the workload set; maximize *)
  area_luts : int;  (** summed LUT cost of every selected instruction
                        across the workload set; minimize *)
  pfus : int;  (** PFU count; minimize *)
}

val dominates : objectives -> objectives -> bool
(** [dominates a b]: [a] is no worse than [b] on every objective and
    strictly better on at least one. *)

val dominates_with_margin : slack:float -> objectives -> objectives -> bool
(** [dominates_with_margin ~slack a b]: like {!dominates}, but [a] must
    beat [b]'s speedup by at least the relative margin [slack]
    ([a.speedup >= b.speedup *. (1. +. slack)]) while staying no worse
    on area and PFUs.  The engine prunes against this stronger relation:
    the cycle-accurate simulator's speedup is only penalty-monotone up
    to tiny alignment noise (an extra reconfiguration stall can shift a
    fetch pattern favorably by a few cycles), so requiring a clear
    margin keeps noise-sized inversions from ever pruning a frontier
    member.  [slack] must be positive: any [a] satisfying it strictly
    dominates not just [b] but every point whose speedup exceeds [b]'s
    by less than the margin. *)

val frontier : ('a * objectives) list -> ('a * objectives) list
(** The non-dominated subset, preserving input order. *)

val pp : Format.formatter -> objectives -> unit
