(** The design space the DSE engine explores: six axes over the
    selective-selection configuration of {!T1000.Runner.setup}.

    A {!point} is one concrete configuration — PFU count,
    reconfiguration penalty, LUT budget, PFU replacement policy,
    selective gain threshold and machine width — and maps onto a
    validated [Runner.setup] via {!setup}.  Axis values live in sorted,
    deduplicated lists; {!enumerate} walks them in a fixed nested order
    (penalty innermost), which is the canonical order every engine
    output is reported in, so exploration results are byte-identical at
    any worker count. *)

type point = {
  pfus : int;  (** number of PFUs (finite; the DSE never sweeps unlimited) *)
  penalty : int;  (** PFU reconfiguration penalty, cycles *)
  lut_budget : int;  (** per-instruction LUT budget *)
  replacement : T1000_ooo.Mconfig.pfu_replacement;
  gain : float;  (** selective gain-ratio threshold *)
  width : int;  (** machine width preset: 2, 4 or 8 *)
}

type t = {
  ax_pfus : int list;
  ax_penalties : int list;
  ax_lut_budgets : int list;
  ax_replacements : T1000_ooo.Mconfig.pfu_replacement list;
  ax_gains : float list;
  ax_widths : int list;
}

val default : t
(** The default 6-axis space: PFUs 1/2/4/8, penalties 0/10/50/100/500,
    LUT budgets 75/150/300, all three replacement policies, gain
    thresholds 0.001/0.005/0.02, machine widths 2/4/8 — 1620 points. *)

val validate : t -> unit
(** Reject empty axes and out-of-range values (non-positive PFU counts
    or LUT budgets, negative penalties, gains outside [0, 1], widths
    other than 2/4/8).
    @raise T1000.Fault.Error with [Invalid_config]. *)

val size : t -> int
(** Number of points ({!enumerate} length). *)

val enumerate : t -> point list
(** Every point, in the canonical nested-axis order: pfus, lut_budget,
    replacement, gain, width, penalty (innermost — so the members of
    each penalty-monotone group are adjacent and ascending). *)

val coarse : t -> t
(** The coarse-grid subspace: each axis reduced to its first, middle
    and last values (axes of three or fewer values are kept whole). *)

val rank : t -> point -> int
(** Position of a point in {!enumerate}[ t], computed without
    materializing the list.
    @raise T1000.Fault.Error with [Invalid_config] when a coordinate is
    not on the corresponding axis. *)

val compare_points : t -> point -> point -> int
(** Canonical order of two points of the space (their {!enumerate}
    positions). *)

val refine : t -> stride:int -> point -> point list
(** Neighbor proposals around a point for one refinement round: for
    each axis in turn, the points whose index on that axis (in the full
    space [t]) is the point's index minus/plus [stride], all other
    coordinates unchanged.  Out-of-range indices propose nothing. *)

val initial_stride : t -> int
(** Starting stride for successive-halving refinement:
    [max 1 ((longest_axis - 1) / 4)]. *)

val key : point -> string
(** Stable identifier, e.g. ["p2.pen10.lut150.lru.g0.005.w4"] — used as
    the checkpoint-journal key component, the fault-report point label
    and the row label of the frontier table. *)

val group_key : point -> string
(** {!key} with the penalty elided: members of one group differ only in
    reconfiguration penalty, share their selection table (and hence
    LUT area) and PFU count, and have speedup non-increasing in
    penalty up to the simulator's cycle-alignment noise — the
    near-monotonicity the engine's margin-guarded dominance pruning
    rests on. *)

val machine_of_width : int -> T1000_ooo.Mconfig.t
(** The machine preset for a width-axis value: 2 → 2-wide/RUU 32,
    4 → the default 4-wide/RUU 64, 8 → 8-wide/RUU 128 (the same
    presets as the A5 ablation).
    @raise T1000.Fault.Error with [Invalid_config] on other widths. *)

val setup : point -> T1000.Runner.setup
(** The validated selective [Runner.setup] for a point. *)

val of_spec : string -> (t, string) result
(** Parse a [--axes] override, e.g.
    ["pfus=1,2,4:penalty=0,100:lut=150:repl=lru,fifo:gain=0.005:width=4"].
    Colon-separated [axis=v,v,...] groups; omitted axes keep their
    {!default} values; values are sorted and deduplicated.  Axis names:
    [pfus], [penalty], [lut], [repl] ([lru]/[fifo]/[rand]), [gain],
    [width]. *)

val pp : Format.formatter -> t -> unit
(** One line per axis, e.g. for the run header of a DSE report. *)
