(** The PFU file: a small "configuration cache" of programmable
    functional units.

    At decode, an extended instruction's [Conf] field is compared
    against the ID tag saved in each PFU (paper Section 2.2).  A match
    is a hit; otherwise configuration bits are loaded into a victim PFU
    (LRU by default) which stays busy for the reconfiguration penalty
    before the instruction may issue.

    A configuration cannot be evicted while an already-dispatched
    instruction still needs it (the unit is {e pinned}); if every unit
    is pinned, dispatch must stall and retry.  Pins are released when
    the instruction issues. *)

type t

val create :
  n:int option ->
  penalty:int ->
  replacement:Mconfig.pfu_replacement ->
  t
(** [n = None] models an unlimited PFU file: every configuration gets
    its own unit and pays the load penalty once, on first use. *)

type outcome =
  | Ready of {
      unit_id : int;  (** which PFU will execute the instruction *)
      at : int;  (** earliest issue cycle (configuration loaded) *)
      hit : bool;  (** tag matched at decode *)
    }
  | Stall  (** every unit is pinned by older configurations; retry *)

val request : t -> now:int -> conf:int -> outcome
(** Decode-stage configuration check.  On [Ready] the unit's pin count
    is incremented. *)

val release : t -> unit_id:int -> unit
(** Called when the requesting instruction issues. *)

val prefetch : t -> now:int -> conf:int -> unit
(** Best-effort configuration prefetch (the [cfgld] hint): if the
    configuration is absent and an unpinned unit exists, start loading
    it; otherwise do nothing.  Never stalls, never counts as a hit or
    miss. *)

val prefetches : t -> int
(** Loads started by {!prefetch}. *)

val hits : t -> int
val misses : t -> int
val reconfigs : t -> int
(** Equal to [misses]: every tag miss loads a configuration. *)

val stalls : t -> int
val pp_stats : Format.formatter -> t -> unit

val selfcheck : t -> string option
(** Structural-invariant audit used by the simulator's opt-in
    self-check mode: non-negative event counters, non-negative pin
    counts, and no configuration tag loaded into two units at once.
    [None] when all invariants hold, [Some description] of the first
    violation otherwise. *)
