type unit_state = {
  mutable conf : int;  (* -1 = empty *)
  mutable ready_at : int;
  mutable last_use : int;
  mutable loaded_at : int;  (* for FIFO *)
  mutable pins : int;
}

type t = {
  units : unit_state array;  (* limited mode *)
  unlimited : (int, int) Hashtbl.t;  (* conf -> ready_at *)
  is_unlimited : bool;
  penalty : int;
  replacement : Mconfig.pfu_replacement;
  mutable rng : int;
  mutable hits : int;
  mutable misses : int;
  mutable stalls : int;
  mutable prefetches : int;
}

let create ~n ~penalty ~replacement =
  let n_units, is_unlimited =
    match n with Some n -> (max n 0, false) | None -> (0, true)
  in
  {
    units =
      Array.init n_units (fun _ ->
          { conf = -1; ready_at = 0; last_use = -1; loaded_at = -1; pins = 0 });
    unlimited = Hashtbl.create 64;
    is_unlimited;
    penalty;
    replacement;
    rng = 0x2545F491;
    hits = 0;
    misses = 0;
    stalls = 0;
    prefetches = 0;
  }

type outcome =
  | Ready of {
      unit_id : int;
      at : int;
      hit : bool;
    }
  | Stall

let next_rng t =
  (* xorshift, deterministic across runs *)
  let x = t.rng in
  let x = x lxor (x lsl 13) in
  let x = x lxor (x lsr 7) in
  let x = (x lxor (x lsl 17)) land max_int in
  t.rng <- x;
  x

let request_unlimited t ~now ~conf =
  match Hashtbl.find_opt t.unlimited conf with
  | Some ready_at ->
      t.hits <- t.hits + 1;
      Ready { unit_id = conf; at = max now ready_at; hit = true }
  | None ->
      t.misses <- t.misses + 1;
      let at = now + t.penalty in
      Hashtbl.replace t.unlimited conf at;
      Ready { unit_id = conf; at; hit = false }

let find_conf t conf =
  let n = Array.length t.units in
  let rec go i =
    if i >= n then -1 else if t.units.(i).conf = conf then i else go (i + 1)
  in
  go 0

let pick_victim t ~now =
  let n = Array.length t.units in
  (* Empty unpinned unit first. *)
  let rec find_empty i =
    if i >= n then -1
    else if t.units.(i).conf = -1 && t.units.(i).pins = 0 then i
    else find_empty (i + 1)
  in
  let empty = find_empty 0 in
  if empty >= 0 then empty
  else begin
    let unpinned =
      Array.to_list (Array.mapi (fun i u -> (i, u)) t.units)
      |> List.filter (fun (_, u) -> u.pins = 0)
    in
    match unpinned with
    | [] -> -1
    | l -> (
        match t.replacement with
        | Mconfig.Lru ->
            fst
              (List.fold_left
                 (fun (bi, bu) (i, u) ->
                   if u.last_use < bu.last_use then (i, u) else (bi, bu))
                 (List.hd l) (List.tl l))
        | Mconfig.Fifo ->
            fst
              (List.fold_left
                 (fun (bi, bu) (i, u) ->
                   if u.loaded_at < bu.loaded_at then (i, u) else (bi, bu))
                 (List.hd l) (List.tl l))
        | Mconfig.Random_det ->
            let k = next_rng t mod List.length l in
            fst (List.nth l k))
    |> fun i ->
    ignore now;
    i
  end

let request t ~now ~conf =
  if t.is_unlimited then request_unlimited t ~now ~conf
  else if Array.length t.units = 0 then Stall
  else begin
    let i = find_conf t conf in
    if i >= 0 then begin
      let u = t.units.(i) in
      t.hits <- t.hits + 1;
      u.last_use <- now;
      u.pins <- u.pins + 1;
      Ready { unit_id = i; at = max now u.ready_at; hit = true }
    end
    else begin
      match pick_victim t ~now with
      | -1 ->
          t.stalls <- t.stalls + 1;
          Stall
      | v ->
          let u = t.units.(v) in
          t.misses <- t.misses + 1;
          u.conf <- conf;
          u.ready_at <- now + t.penalty;
          u.last_use <- now;
          u.loaded_at <- now;
          u.pins <- 1;
          Ready { unit_id = v; at = u.ready_at; hit = false }
    end
  end

let prefetch t ~now ~conf =
  if t.is_unlimited then begin
    if not (Hashtbl.mem t.unlimited conf) then begin
      t.prefetches <- t.prefetches + 1;
      Hashtbl.replace t.unlimited conf (now + t.penalty)
    end
  end
  else if Array.length t.units > 0 && find_conf t conf < 0 then begin
    (* best-effort: load into an unpinned victim, or silently give up *)
    match pick_victim t ~now with
    | -1 -> ()
    | v ->
        let u = t.units.(v) in
        t.prefetches <- t.prefetches + 1;
        u.conf <- conf;
        u.ready_at <- now + t.penalty;
        u.last_use <- now;
        u.loaded_at <- now;
        u.pins <- 0
  end

let release t ~unit_id =
  if not t.is_unlimited then begin
    let u = t.units.(unit_id) in
    if u.pins > 0 then u.pins <- u.pins - 1
  end

let selfcheck t =
  if t.hits < 0 || t.misses < 0 || t.stalls < 0 || t.prefetches < 0 then
    Some
      (Printf.sprintf
         "negative counter (hits %d, misses %d, stalls %d, prefetches %d)"
         t.hits t.misses t.stalls t.prefetches)
  else if t.is_unlimited then None
  else begin
    let n = Array.length t.units in
    let rec go i =
      if i >= n then None
      else begin
        let u = t.units.(i) in
        if u.pins < 0 then
          Some (Printf.sprintf "unit %d has negative pin count %d" i u.pins)
        else begin
          let rec dup j =
            if j >= n then -1
            else if u.conf >= 0 && t.units.(j).conf = u.conf then j
            else dup (j + 1)
          in
          match dup (i + 1) with
          | -1 -> go (i + 1)
          | j ->
              Some
                (Printf.sprintf
                   "configuration %d loaded in units %d and %d" u.conf i j)
        end
      end
    in
    go 0
  end

let hits t = t.hits
let misses t = t.misses
let prefetches t = t.prefetches
let reconfigs t = t.misses
let stalls t = t.stalls

let pp_stats ppf t =
  Format.fprintf ppf "pfu: %d hits, %d misses/reconfigs, %d dispatch stalls"
    t.hits t.misses t.stalls
