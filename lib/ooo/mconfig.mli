(** Machine configuration for the T1000 timing model.

    The defaults model the paper's substrate: a 4-wide out-of-order
    superscalar (fetch/decode/issue/commit four per cycle), a Register
    Update Unit for renaming and in-order retirement, perfect branch
    prediction, realistic L1/L2 caches and TLBs — plus zero or more
    PFUs with a configurable reconfiguration penalty. *)

(** PFU replacement policy (paper: LRU). *)
type pfu_replacement =
  | Lru
  | Fifo
  | Random_det  (** deterministic pseudo-random (xorshift), for the
                    replacement-policy ablation *)

(** Branch prediction model.  The paper simulates with perfect
    prediction; [Bimodal] adds the classic 2-bit-counter predictor with
    a last-target buffer for indirect jumps, modelling mispredictions
    as fetch-redirect stalls until the branch resolves. *)
type branch_predictor =
  | Perfect
  | Bimodal of int  (** number of 2-bit counters (power of two) *)

type t = {
  fetch_width : int;
  decode_width : int;
  issue_width : int;
  commit_width : int;
  ruu_size : int;
  ifq_size : int;  (** fetch-queue capacity *)
  n_int_alu : int;  (** single-cycle ALU/shift/branch units *)
  n_int_mult : int;  (** multiply/divide units *)
  n_mem_ports : int;
  n_pfus : int option;  (** [None] = unlimited (one per configuration) *)
  pfu_reconfig_cycles : int;
  pfu_replacement : pfu_replacement;
  branch_pred : branch_predictor;  (** paper default: [Perfect] *)
  cache : T1000_cache.Hierarchy.config;
  max_cycles : int;
      (** simulation cycle budget; {!Sim.run} raises {!Sim.Sim_stuck}
          past it (overridable via the [T1000_MAX_CYCLES] environment
          variable) *)
  progress_window : int;
      (** forward-progress watchdog: {!Sim.run} declares deadlock when
          the RUU is non-empty and no instruction has committed for this
          many cycles.  The default (1M cycles) is orders of magnitude
          above any legitimate stall (the longest modelled latency chain
          is a few thousand cycles even at a 500-cycle reconfiguration
          penalty), so it only trips on genuine scheduling deadlocks *)
}

val default : t
(** 4-wide, 64-entry RUU, 4 ALUs / 1 multiplier / 2 memory ports, no
    PFUs, default cache hierarchy. *)

val with_pfus :
  ?replacement:pfu_replacement -> ?penalty:int -> int option -> t -> t
(** [with_pfus n t]: [t] with [n] PFUs (default penalty 10 cycles,
    LRU). *)

val pp : Format.formatter -> t -> unit
