open T1000_isa

type entry = {
  mutable slot : int;
  mutable instr : Instr.t;
  mutable mem_addr : int;
  mutable eid : int;
  mutable pfu_unit : int;
  mutable min_issue : int;
  mutable dep1 : int;
  mutable dep2 : int;
  mutable dep3 : int;
  mutable issued : bool;
  mutable complete_at : int;
  mutable seq : int;
}

type t = {
  ring : entry array;
  size : int;
  mutable head : int;  (* seq of oldest in-flight *)
  mutable tail : int;  (* seq of next dispatch *)
}

let fresh_entry () =
  {
    slot = -1;
    instr = Instr.Nop;
    mem_addr = -1;
    eid = -1;
    pfu_unit = -1;
    min_issue = 0;
    dep1 = -1;
    dep2 = -1;
    dep3 = -1;
    issued = false;
    complete_at = max_int;
    seq = -1;
  }

let create ~size =
  if size <= 0 then invalid_arg "Ruu.create: size <= 0";
  { ring = Array.init size (fun _ -> fresh_entry ()); size; head = 0; tail = 0 }

let size t = t.size
let occupancy t = t.tail - t.head
let is_full t = occupancy t >= t.size
let is_empty t = t.tail = t.head
let head_seq t = t.head
let tail_seq t = t.tail

let push t =
  if is_full t then invalid_arg "Ruu.push: full";
  let e = t.ring.(t.tail mod t.size) in
  e.slot <- -1;
  e.instr <- Instr.Nop;
  e.mem_addr <- -1;
  e.eid <- -1;
  e.pfu_unit <- -1;
  e.min_issue <- 0;
  e.dep1 <- -1;
  e.dep2 <- -1;
  e.dep3 <- -1;
  e.issued <- false;
  e.complete_at <- max_int;
  e.seq <- t.tail;
  t.tail <- t.tail + 1;
  e

let in_flight t seq = seq >= t.head && seq < t.tail

let get t seq =
  if not (in_flight t seq) then
    invalid_arg (Printf.sprintf "Ruu.get: seq %d not in flight" seq)
  else t.ring.(seq mod t.size)

let pop t =
  if is_empty t then invalid_arg "Ruu.pop: empty";
  let e = t.ring.(t.head mod t.size) in
  t.head <- t.head + 1;
  e

let selfcheck t =
  if t.head > t.tail then
    Some (Printf.sprintf "head seq %d is ahead of tail seq %d" t.head t.tail)
  else if occupancy t > t.size then
    Some
      (Printf.sprintf "occupancy %d exceeds window size %d" (occupancy t)
         t.size)
  else begin
    let rec go seq =
      if seq >= t.tail then None
      else begin
        let e = t.ring.(seq mod t.size) in
        if e.seq <> seq then
          Some
            (Printf.sprintf "ring slot %d holds seq %d, expected %d"
               (seq mod t.size) e.seq seq)
        else if e.dep1 >= seq || e.dep2 >= seq || e.dep3 >= seq then
          Some
            (Printf.sprintf
               "entry seq %d depends on a producer no older than itself \
                (deps %d/%d/%d)"
               seq e.dep1 e.dep2 e.dep3)
        else if e.issued && e.complete_at = max_int then
          Some
            (Printf.sprintf "entry seq %d issued without a completion time"
               seq)
        else if (not e.issued) && e.complete_at <> max_int then
          Some
            (Printf.sprintf "entry seq %d has a completion time but never \
                             issued"
               seq)
        else go (seq + 1)
      end
    in
    go t.head
  end
