open T1000_isa
open T1000_machine
open T1000_cache

type stuck = {
  reason : [ `Cycle_budget | `No_commit ];
  cycle : int;
  limit : int;
  committed : int;
  head_slot : int;
  head_instr : string;
  ruu_occupancy : int;
  ruu_size : int;
  ifq_length : int;
  pfu : string;
}

exception Sim_stuck of stuck
exception Selfcheck_violation of string

let pp_stuck ppf s =
  Format.fprintf ppf
    "@[<v>%s at cycle %d (limit %d): %d instructions committed;@ RUU %d/%d \
     occupied, head %s;@ IFQ %d entries; %s@]"
    (match s.reason with
    | `Cycle_budget -> "cycle budget exhausted"
    | `No_commit -> "no forward progress (deadlock)")
    s.cycle s.limit s.committed s.ruu_occupancy s.ruu_size
    (if s.head_slot < 0 then "<empty>"
     else Printf.sprintf "slot %d: %s" s.head_slot s.head_instr)
    s.ifq_length s.pfu

let () =
  Printexc.register_printer (function
    | Sim_stuck s -> Some (Format.asprintf "Sim_stuck: %a" pp_stuck s)
    | Selfcheck_violation m -> Some ("Sim self-check violation: " ^ m)
    | _ -> None)

let env_max_cycles () =
  match Sys.getenv_opt "T1000_MAX_CYCLES" with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "T1000_MAX_CYCLES must be a positive integer, \
                             got %S"
               s))

let run ?(mconfig = Mconfig.default) ?(ext_latency = fun _ -> 1) ?ext_eval
    ?(selfcheck = false) ~init program =
  T1000_obs.Tracer.with_span ~cat:"sim" "sim.run" @@ fun () ->
  let mem = Memory.create () in
  let regs = Regfile.create () in
  init mem regs;
  let interp = Interp.create ~regs ~mem ?ext_eval program in
  let hier = Hierarchy.create mconfig.Mconfig.cache in
  let pfus =
    Pfu_file.create ~n:mconfig.Mconfig.n_pfus
      ~penalty:mconfig.Mconfig.pfu_reconfig_cycles
      ~replacement:mconfig.Mconfig.pfu_replacement
  in
  let ruu = Ruu.create ~size:mconfig.Mconfig.ruu_size in
  (* IFQ entries carry a flag: was this a mispredicted control
     instruction?  If so, fetch stays blocked until it resolves. *)
  let ifq : (Trace.entry * bool) Queue.t = Queue.create () in
  (* One-entry lookahead over the dynamic trace. *)
  let peeked = ref None in
  let trace_done = ref false in
  let peek () =
    match !peeked with
    | Some _ as e -> e
    | None ->
        if !trace_done then None
        else begin
          match Interp.step interp with
          | Some e ->
              peeked := Some e;
              Some e
          | None ->
              trace_done := true;
              None
        end
  in
  let consume () = peeked := None in
  (* Register rename: dependence register -> seq of latest producer. *)
  let producer = Array.make Instr.dep_reg_count (-1) in
  (* Memory disambiguation: word index -> seq of the youngest store to
     that word.  Stores commit in order, so if the youngest store to a
     word has left the window every older one has too — a single
     youngest-per-word binding replaces scanning all in-flight stores
     on every load dispatch.  Stale bindings (committed seqs) are
     filtered by [Ruu.in_flight] at lookup. *)
  let store_by_word : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let now = ref 0 in
  let committed = ref 0 in
  let ext_committed = ref 0 in
  let ruu_full_stalls = ref 0 in
  let fetch_resume = ref 0 in
  let last_fetch_line = ref (-1) in
  (* Branch predictor state (Bimodal only). *)
  let mispredicts = ref 0 in
  let fetch_stall_cycles = ref 0 in
  let occupancy_sum = ref 0 in
  let bimodal_entries =
    match mconfig.Mconfig.branch_pred with
    | Mconfig.Perfect -> 0
    | Mconfig.Bimodal n ->
        if n <= 0 || n land (n - 1) <> 0 then
          invalid_arg "Sim.run: Bimodal entries must be a power of two"
        else n
  in
  let counters = Array.make (max bimodal_entries 1) 2 (* weakly taken *) in
  let btb : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* A mispredicted control instruction blocks fetch until it resolves:
     first while it sits in the IFQ, then while it is in flight. *)
  let blocking : [ `None | `In_ifq | `In_flight of int ] ref = ref `None in
  let line_shift =
    let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
    log2 mconfig.Mconfig.cache.Hierarchy.l1i_line 0
  in
  let l1_hit = mconfig.Mconfig.cache.Hierarchy.l1_hit in

  let dep_ready seq =
    seq < 0
    || (not (Ruu.in_flight ruu seq))
    ||
    let p = Ruu.get ruu seq in
    p.Ruu.issued && p.Ruu.complete_at <= !now
  in
  let entry_ready (e : Ruu.entry) =
    (not e.Ruu.issued)
    && !now >= e.Ruu.min_issue
    && dep_ready e.Ruu.dep1 && dep_ready e.Ruu.dep2 && dep_ready e.Ruu.dep3
  in

  (* Resolve a pending fetch redirect once the blocking branch has
     produced its outcome. *)
  let redirect_stage () =
    match !blocking with
    | `None | `In_ifq -> ()
    | `In_flight seq ->
        let resolved =
          (not (Ruu.in_flight ruu seq))
          ||
          let e = Ruu.get ruu seq in
          e.Ruu.issued && e.Ruu.complete_at <= !now
        in
        if resolved then blocking := `None
  in

  (* Watchdog state: cycle of the most recent commit (or of the most
     recent cycle with an empty window, during which commits are
     legitimately impossible). *)
  let last_commit = ref 0 in
  let stuck reason limit =
    let head_slot, head_instr =
      if Ruu.is_empty ruu then (-1, "<ruu empty>")
      else begin
        let e = Ruu.get ruu (Ruu.head_seq ruu) in
        (e.Ruu.slot, Format.asprintf "%a" Instr.pp e.Ruu.instr)
      end
    in
    raise
      (Sim_stuck
         {
           reason;
           cycle = !now;
           limit;
           committed = !committed;
           head_slot;
           head_instr;
           ruu_occupancy = Ruu.occupancy ruu;
           ruu_size = Ruu.size ruu;
           ifq_length = Queue.length ifq;
           pfu = Format.asprintf "%a" Pfu_file.pp_stats pfus;
         })
  in
  let run_selfcheck () =
    (match Ruu.selfcheck ruu with
    | None -> ()
    | Some m ->
        raise
          (Selfcheck_violation
             (Printf.sprintf "ruu at cycle %d: %s" !now m)));
    match Pfu_file.selfcheck pfus with
    | None -> ()
    | Some m ->
        raise
          (Selfcheck_violation
             (Printf.sprintf "pfu file at cycle %d: %s" !now m))
  in

  let commit_stage () =
    let n = ref 0 in
    let continue = ref true in
    while !continue && !n < mconfig.Mconfig.commit_width
          && not (Ruu.is_empty ruu) do
      let e = Ruu.get ruu (Ruu.head_seq ruu) in
      if e.Ruu.issued && e.Ruu.complete_at <= !now then begin
        ignore (Ruu.pop ruu);
        incr committed;
        if e.Ruu.eid >= 0 then incr ext_committed;
        incr n
      end
      else continue := false
    done;
    if !n > 0 then begin
      last_commit := !now;
      if selfcheck then run_selfcheck ()
    end
  in

  (* Per-cycle functional-unit availability.  [pfu_busy_stamp] is a
     reusable scratch (stamp = cycle the unit last issued) replacing
     the per-cycle hashtable the issue stage used to allocate; it grows
     on demand because an unlimited PFU file assigns one unit per
     configuration. *)
  let pfu_busy_stamp = ref (Array.make 16 (-1)) in
  let pfu_busy unit_id =
    let a = !pfu_busy_stamp in
    unit_id < Array.length a && a.(unit_id) = !now
  in
  let pfu_mark_busy unit_id =
    let a = !pfu_busy_stamp in
    let len = Array.length a in
    if unit_id >= len then begin
      let cap = ref (len * 2) in
      while unit_id >= !cap do
        cap := !cap * 2
      done;
      let b = Array.make !cap (-1) in
      Array.blit a 0 b 0 len;
      pfu_busy_stamp := b
    end;
    !pfu_busy_stamp.(unit_id) <- !now
  in
  (* Entries below [issue_scan_from] are a contiguous already-issued
     prefix of the window (issue never un-issues, and a reused ring
     slot gets a fresh, larger seq), so the scan can skip them instead
     of re-walking the whole RUU from the head every cycle. *)
  let issue_scan_from = ref 0 in
  let issue_stage () =
    let alu_free = ref mconfig.Mconfig.n_int_alu in
    let mult_free = ref mconfig.Mconfig.n_int_mult in
    let mem_free = ref mconfig.Mconfig.n_mem_ports in
    let issued = ref 0 in
    let seq = ref (max !issue_scan_from (Ruu.head_seq ruu)) in
    let in_prefix = ref true in
    while !issued < mconfig.Mconfig.issue_width && !seq < Ruu.tail_seq ruu do
      let e = Ruu.get ruu !seq in
      if e.Ruu.issued then begin
        if !in_prefix then issue_scan_from := !seq + 1
      end
      else begin
        in_prefix := false;
        if entry_ready e then begin
          let do_issue latency =
            e.Ruu.issued <- true;
            e.Ruu.complete_at <- !now + latency;
            incr issued
          in
          match Instr.fu_class e.Ruu.instr with
          | Op.Fu_int_alu | Op.Fu_branch ->
              if !alu_free > 0 then begin
                decr alu_free;
                do_issue (Instr.latency e.Ruu.instr)
              end
          | Op.Fu_int_mult | Op.Fu_int_div ->
              if !mult_free > 0 then begin
                decr mult_free;
                do_issue (Instr.latency e.Ruu.instr)
              end
          | Op.Fu_mem_read ->
              if !mem_free > 0 then begin
                decr mem_free;
                do_issue (Hierarchy.load_latency hier ~addr:e.Ruu.mem_addr)
              end
          | Op.Fu_mem_write ->
              if !mem_free > 0 then begin
                decr mem_free;
                do_issue (Hierarchy.store_latency hier ~addr:e.Ruu.mem_addr)
              end
          | Op.Fu_pfu ->
              if not (pfu_busy e.Ruu.pfu_unit) then begin
                pfu_mark_busy e.Ruu.pfu_unit;
                do_issue (ext_latency e.Ruu.eid);
                Pfu_file.release pfus ~unit_id:e.Ruu.pfu_unit
              end
          | Op.Fu_none -> do_issue 1
        end
      end;
      incr seq
    done
  in

  let dispatch_stage () =
    let n = ref 0 in
    let continue = ref true in
    while !continue && !n < mconfig.Mconfig.decode_width
          && not (Queue.is_empty ifq) do
      if Ruu.is_full ruu then begin
        incr ruu_full_stalls;
        continue := false
      end
      else begin
        let te, te_mispredicted = Queue.peek ifq in
        (* Decode-stage configuration check for extended instructions. *)
        let pfu_outcome =
          match te.Trace.instr with
          | Instr.Ext { eid; _ } ->
              Some (Pfu_file.request pfus ~now:!now ~conf:eid)
          | Instr.Cfgld eid ->
              (* best-effort prefetch: start the load, never stall *)
              Pfu_file.prefetch pfus ~now:!now ~conf:eid;
              None
          | Instr.Alu_rrr _ | Instr.Alu_rri _ | Instr.Shift_imm _
          | Instr.Shift_reg _ | Instr.Lui _ | Instr.Muldiv _ | Instr.Mfhi _
          | Instr.Mflo _ | Instr.Load _ | Instr.Store _ | Instr.Branch _
          | Instr.Jump _ | Instr.Jal _ | Instr.Jr _ | Instr.Jalr _
          | Instr.Nop | Instr.Halt ->
              None
        in
        match pfu_outcome with
        | Some Pfu_file.Stall -> continue := false
        | (Some (Pfu_file.Ready _) | None) as outcome ->
            ignore (Queue.pop ifq);
            let e = Ruu.push ruu in
            if te_mispredicted then blocking := `In_flight e.Ruu.seq;
            e.Ruu.slot <- te.Trace.index;
            e.Ruu.instr <- te.Trace.instr;
            e.Ruu.mem_addr <- te.Trace.mem_addr;
            (match outcome with
            | Some (Pfu_file.Ready { unit_id; at; hit = _ }) ->
                (match te.Trace.instr with
                | Instr.Ext { eid; _ } -> e.Ruu.eid <- eid
                | _ -> ());
                e.Ruu.pfu_unit <- unit_id;
                (* +1: configuration check happens at decode; issue is
                   the next stage at the earliest. *)
                e.Ruu.min_issue <- max at (!now + 1)
            | Some Pfu_file.Stall -> assert false
            | None -> e.Ruu.min_issue <- !now + 1);
            (* Register dependences. *)
            (match Instr.uses te.Trace.instr with
            | [] -> ()
            | [ r1 ] -> e.Ruu.dep1 <- producer.(r1)
            | [ r1; r2 ] ->
                e.Ruu.dep1 <- producer.(r1);
                e.Ruu.dep2 <- producer.(r2)
            | r1 :: r2 :: _ ->
                e.Ruu.dep1 <- producer.(r1);
                e.Ruu.dep2 <- producer.(r2));
            (* Memory dependence: youngest older store to the same
               word. *)
            (match te.Trace.instr with
            | Instr.Load _ -> (
                match
                  Hashtbl.find_opt store_by_word (te.Trace.mem_addr lsr 2)
                with
                | Some s when Ruu.in_flight ruu s -> e.Ruu.dep3 <- s
                | Some _ | None -> ())
            | Instr.Store _ ->
                Hashtbl.replace store_by_word (te.Trace.mem_addr lsr 2)
                  e.Ruu.seq
            | _ -> ());
            List.iter
              (fun d -> producer.(d) <- e.Ruu.seq)
              (Instr.defs te.Trace.instr);
            incr n
      end
    done
  in

  (* Predict a control instruction's next fetch index; returns whether
     the prediction matches the actual dynamic successor.  Perfect
     prediction always matches. *)
  let predict_control (te : Trace.entry) ~actual_next =
    match mconfig.Mconfig.branch_pred with
    | Mconfig.Perfect -> true
    | Mconfig.Bimodal n -> (
        let fall = te.Trace.index + 1 in
        match te.Trace.instr with
        | Instr.Branch (_, _, _, target) ->
            let idx = te.Trace.index land (n - 1) in
            let taken_pred = counters.(idx) >= 2 in
            let taken = actual_next <> fall in
            if taken && counters.(idx) < 3 then
              counters.(idx) <- counters.(idx) + 1;
            if (not taken) && counters.(idx) > 0 then
              counters.(idx) <- counters.(idx) - 1;
            let predicted = if taken_pred then target else fall in
            predicted = actual_next
        | Instr.Jump target | Instr.Jal target ->
            (* direct targets are always predicted correctly *)
            target = actual_next
        | Instr.Jr _ | Instr.Jalr _ ->
            (* last-target buffer *)
            let hit =
              match Hashtbl.find_opt btb te.Trace.index with
              | Some t -> t = actual_next
              | None -> false
            in
            Hashtbl.replace btb te.Trace.index actual_next;
            hit
        | Instr.Alu_rrr _ | Instr.Alu_rri _ | Instr.Shift_imm _
        | Instr.Shift_reg _ | Instr.Lui _ | Instr.Muldiv _ | Instr.Mfhi _
        | Instr.Mflo _ | Instr.Load _ | Instr.Store _ | Instr.Ext _
        | Instr.Cfgld _ | Instr.Nop | Instr.Halt ->
            true)
  in

  let fetch_stage () =
    if (!now < !fetch_resume || !blocking <> `None) && not !trace_done then
      incr fetch_stall_cycles;
    if !now >= !fetch_resume && !blocking = `None then begin
      let n = ref 0 in
      let continue = ref true in
      while
        !continue && !n < mconfig.Mconfig.fetch_width
        && Queue.length ifq < mconfig.Mconfig.ifq_size
      do
        match peek () with
        | None -> continue := false
        | Some te ->
            let addr = Encoding.address_of_index te.Trace.index in
            let line = addr lsr line_shift in
            if line <> !last_fetch_line then begin
              let lat = Hierarchy.fetch_latency hier ~addr in
              last_fetch_line := line;
              if lat > l1_hit then begin
                (* Instruction-cache miss: resume once the line arrives;
                   the entry is not consumed this cycle. *)
                fetch_resume := !now + (lat - l1_hit);
                continue := false
              end
            end;
            if !continue then begin
              consume ();
              if Instr.is_control te.Trace.instr then begin
                let actual_next =
                  match peek () with
                  | Some nxt -> nxt.Trace.index
                  | None -> te.Trace.index + 1
                in
                let correct = predict_control te ~actual_next in
                if not correct then begin
                  incr mispredicts;
                  blocking := `In_ifq;
                  Queue.push (te, true) ifq;
                  continue := false
                end
                else begin
                  Queue.push (te, false) ifq;
                  incr n;
                  (* fetch stops at a taken control transfer *)
                  if actual_next <> te.Trace.index + 1 then continue := false
                end
              end
              else begin
                Queue.push (te, false) ifq;
                incr n
              end
            end
      done
    end
  in

  let finished () =
    !trace_done && !peeked = None && Queue.is_empty ifq && Ruu.is_empty ruu
  in
  (* Prime the lookahead so [finished] is meaningful for empty traces. *)
  ignore (peek ());
  let max_cycles =
    match env_max_cycles () with
    | Some n -> n
    | None -> mconfig.Mconfig.max_cycles
  in
  while not (finished ()) do
    if !now > max_cycles then stuck `Cycle_budget max_cycles;
    if Ruu.is_empty ruu then last_commit := !now
    else if !now - !last_commit > mconfig.Mconfig.progress_window then
      stuck `No_commit mconfig.Mconfig.progress_window;
    occupancy_sum := !occupancy_sum + Ruu.occupancy ruu;
    redirect_stage ();
    commit_stage ();
    issue_stage ();
    dispatch_stage ();
    fetch_stage ();
    incr now
  done;
  let mr c = Cache.miss_rate c and tr t = Tlb.miss_rate t in
  let stats =
    {
      Stats.cycles = !now;
    committed = !committed;
    ext_committed = !ext_committed;
    ipc =
      (if !now = 0 then 0.0
       else float_of_int !committed /. float_of_int !now);
    pfu_hits = Pfu_file.hits pfus;
    pfu_misses = Pfu_file.misses pfus;
    pfu_stalls = Pfu_file.stalls pfus;
    ruu_full_stalls = !ruu_full_stalls;
    branch_mispredicts = !mispredicts;
    fetch_stall_cycles = !fetch_stall_cycles;
    avg_ruu_occupancy =
      (if !now = 0 then 0.0
       else float_of_int !occupancy_sum /. float_of_int !now);
      l1i_miss_rate = mr (Hierarchy.l1i hier);
      l1d_miss_rate = mr (Hierarchy.l1d hier);
      l2_miss_rate = mr (Hierarchy.l2 hier);
      itlb_miss_rate = tr (Hierarchy.itlb hier);
      dtlb_miss_rate = tr (Hierarchy.dtlb hier);
    }
  in
  (* Strictly observational telemetry: the counters summarise this run
     for Obs consumers (traces, `t1000_cli stats`, BENCH phases); the
     returned stats — and therefore every paper artifact — are
     untouched. *)
  let m = T1000_obs.Metrics.incr in
  m "sim.runs";
  m ~by:stats.Stats.cycles "sim.cycles";
  m ~by:stats.Stats.committed "sim.committed";
  m ~by:stats.Stats.ext_committed "sim.ext_committed";
  m ~by:stats.Stats.pfu_hits "sim.pfu.hits";
  m ~by:stats.Stats.pfu_misses "sim.pfu.misses";
  m ~by:stats.Stats.pfu_stalls "sim.pfu.stall_events";
  m ~by:stats.Stats.ruu_full_stalls "sim.stall.ruu_full";
  m ~by:stats.Stats.fetch_stall_cycles "sim.stall.fetch_cycles";
  m ~by:stats.Stats.branch_mispredicts "sim.branch_mispredicts";
  T1000_obs.Metrics.observe "sim.ruu_occupancy"
    stats.Stats.avg_ruu_occupancy;
  T1000_obs.Metrics.observe "sim.cycles_per_run"
    (float_of_int stats.Stats.cycles);
  stats
