type pfu_replacement =
  | Lru
  | Fifo
  | Random_det

type branch_predictor =
  | Perfect
  | Bimodal of int

type t = {
  fetch_width : int;
  decode_width : int;
  issue_width : int;
  commit_width : int;
  ruu_size : int;
  ifq_size : int;
  n_int_alu : int;
  n_int_mult : int;
  n_mem_ports : int;
  n_pfus : int option;
  pfu_reconfig_cycles : int;
  pfu_replacement : pfu_replacement;
  branch_pred : branch_predictor;
  cache : T1000_cache.Hierarchy.config;
  max_cycles : int;
  progress_window : int;
}

let default =
  {
    fetch_width = 4;
    decode_width = 4;
    issue_width = 4;
    commit_width = 4;
    ruu_size = 64;
    ifq_size = 16;
    n_int_alu = 4;
    n_int_mult = 1;
    n_mem_ports = 2;
    n_pfus = Some 0;
    pfu_reconfig_cycles = 10;
    pfu_replacement = Lru;
    branch_pred = Perfect;
    cache = T1000_cache.Hierarchy.default_config;
    max_cycles = 2_000_000_000;
    progress_window = 1_000_000;
  }

let with_pfus ?(replacement = Lru) ?(penalty = 10) n t =
  {
    t with
    n_pfus = n;
    pfu_reconfig_cycles = penalty;
    pfu_replacement = replacement;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>T1000 machine: %d-wide, RUU %d, %d ALU / %d mult / %d mem, PFUs %s \
     (reconfig %d)@]"
    t.issue_width t.ruu_size t.n_int_alu t.n_int_mult t.n_mem_ports
    (match t.n_pfus with
    | None -> "unlimited"
    | Some n -> string_of_int n)
    t.pfu_reconfig_cycles
