(** Register Update Unit (Sohi's RUU): the combined reorder
    buffer / scheduling window used by the paper's simulator.

    Entries live in a ring buffer addressed by monotonically increasing
    sequence numbers, so a dependence recorded as a sequence number
    stays valid after the producer commits (a committed producer is
    simply "ready").  Dispatch pushes at the tail, commit pops from the
    head in order. *)

open T1000_isa

type entry = {
  mutable slot : int;  (** static instruction index *)
  mutable instr : Instr.t;
  mutable mem_addr : int;  (** effective address, -1 if none *)
  mutable eid : int;  (** extended-instruction id, -1 otherwise *)
  mutable pfu_unit : int;  (** PFU executing this entry, -1 otherwise *)
  mutable min_issue : int;  (** earliest issue cycle (PFU config load) *)
  mutable dep1 : int;  (** producer sequence numbers; -1 = no dep *)
  mutable dep2 : int;
  mutable dep3 : int;  (** memory (store-to-load) dependence *)
  mutable issued : bool;
  mutable complete_at : int;  (** result-available cycle; [max_int]
                                  until issued *)
  mutable seq : int;
}

type t

val create : size:int -> t
(** @raise Invalid_argument if [size <= 0]. *)

val size : t -> int
val occupancy : t -> int
val is_full : t -> bool
val is_empty : t -> bool

val head_seq : t -> int
(** Sequence number of the oldest in-flight entry; equals {!tail_seq}
    when empty. *)

val tail_seq : t -> int
(** Sequence number the next dispatched entry will get. *)

val push : t -> entry
(** Allocate the tail entry (fields are reset to defaults and [seq]
    assigned); caller fills it in.
    @raise Invalid_argument when full. *)

val get : t -> int -> entry
(** Entry for an in-flight sequence number.
    @raise Invalid_argument if not in flight. *)

val in_flight : t -> int -> bool
(** Whether the sequence number is still in the window ([>= head_seq]).
    Numbers below [head_seq] have committed. *)

val pop : t -> entry
(** Commit the head entry.
    @raise Invalid_argument when empty. *)

val selfcheck : t -> string option
(** Structural-invariant audit used by the simulator's opt-in
    self-check mode: head/tail ordering, occupancy within the window,
    every in-flight entry stored at its ring slot with its own sequence
    number, dependences strictly older than their consumer, and
    [issued]/[complete_at] consistency.  [None] when all invariants
    hold, [Some description] of the first violation otherwise. *)
