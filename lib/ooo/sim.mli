(** Cycle-level, trace-driven simulation of the T1000 core.

    Pipeline model per cycle (walked back-to-front so that results
    produced in cycle [c] can feed instructions issuing in cycle [c]
    through the bypass network, and newly dispatched instructions issue
    no earlier than the following cycle):

    + {b commit} — up to [commit_width] completed entries leave the RUU
      head in order;
    + {b issue} — up to [issue_width] ready entries start execution,
      oldest first, subject to functional-unit availability; loads and
      stores probe the data cache here; extended instructions
      additionally require their configuration to be loaded
      ([min_issue]) and their PFU free this cycle;
    + {b dispatch} — up to [decode_width] instructions move from the
      fetch queue into the RUU; extended instructions perform the
      decode-stage configuration check against the {!Pfu_file} (a miss
      starts a reconfiguration; a fully pinned file stalls dispatch);
      register and store-to-load dependences are recorded;
    + {b fetch} — up to [fetch_width] instructions enter the fetch
      queue, stopping at taken branches and stalling on instruction-
      cache misses.  Branch prediction is perfect (paper Section 3.1),
      so fetch follows the committed path exactly.

    Memory disambiguation is perfect: effective addresses come from the
    functional interpreter, and a load waits only for older in-flight
    stores to the same word. *)

open T1000_isa
open T1000_asm
open T1000_machine

(** Diagnostic snapshot carried by {!Sim_stuck}: where the simulation
    was when the watchdog fired — program position (RUU head slot and
    instruction), window occupancy, fetch-queue depth and PFU-file
    statistics — so a stuck sweep point can be triaged from the fault
    report alone. *)
type stuck = {
  reason : [ `Cycle_budget | `No_commit ];
      (** [`Cycle_budget]: total cycles exceeded the budget;
          [`No_commit]: the RUU was non-empty but nothing committed for
          {!Mconfig.t.progress_window} cycles (scheduling deadlock) *)
  cycle : int;  (** cycle at which the watchdog fired *)
  limit : int;  (** the budget or window that was exceeded *)
  committed : int;  (** instructions committed so far *)
  head_slot : int;  (** static slot of the RUU head, -1 if empty *)
  head_instr : string;  (** rendered RUU-head instruction *)
  ruu_occupancy : int;
  ruu_size : int;
  ifq_length : int;
  pfu : string;  (** rendered PFU-file statistics *)
}

exception Sim_stuck of stuck
(** The watchdog tripped: runaway or deadlocked simulation. *)

exception Selfcheck_violation of string
(** An RUU or PFU-file structural invariant failed under
    [~selfcheck:true] — always a simulator bug, never a property of the
    simulated program. *)

val pp_stuck : Format.formatter -> stuck -> unit

val env_max_cycles : unit -> int option
(** The [T1000_MAX_CYCLES] environment override of
    {!Mconfig.t.max_cycles}, if set and non-empty.
    @raise Invalid_argument
      if the variable holds anything other than a positive integer. *)

val run :
  ?mconfig:Mconfig.t ->
  ?ext_latency:(int -> int) ->
  ?ext_eval:(int -> Word.t -> Word.t -> Word.t) ->
  ?selfcheck:bool ->
  init:(Memory.t -> Regfile.t -> unit) ->
  Program.t ->
  Stats.t
(** Simulate the program to completion.

    Two watchdogs bound every run: a total cycle budget
    ([mconfig.max_cycles], overridable with the [T1000_MAX_CYCLES]
    environment variable) and a forward-progress check (no commit for
    [mconfig.progress_window] cycles while instructions are in flight).
    Either tripping raises {!Sim_stuck} with a diagnostic snapshot
    instead of looping forever.

    [~selfcheck:true] additionally audits the RUU and PFU-file
    structural invariants after every committing cycle
    ({!Ruu.selfcheck}, {!Pfu_file.selfcheck}), raising
    {!Selfcheck_violation} on the first violation.  Statistics are
    unaffected.
    @raise T1000_machine.Interp.Fault on architectural faults.
    @raise Sim_stuck when a watchdog fires.
    @raise Selfcheck_violation under [~selfcheck:true] on an invariant
      violation. *)
