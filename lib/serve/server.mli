(** The selection-as-a-service daemon behind [t1000 serve].

    A long-running server that accepts {!Protocol} frames over Unix and
    TCP sockets, runs the paper's profile → select → verify → simulate
    pipeline per request on a pool of worker domains, and answers with
    the chosen extended instructions' predicted speedup and LUT cost.
    The robustness envelope is the point:

    - {b Backpressure}: admission goes through a bounded {!Squeue};
      when it is full the request is shed with a typed [Overloaded]
      reply immediately — a client is never blocked or silently
      dropped.
    - {b Deadlines}: each request may carry a wall-clock deadline
      (enforced by a server-side timer: the reply is a typed [Timeout]
      whether the request is still queued or already running) and a
      simulator cycle budget (enforced by the existing {!T1000_ooo.Sim}
      watchdog, whose RUU/PFU diagnostic snapshot rides back in the
      reply).
    - {b Fault isolation}: one poisoned request — unknown workload,
      unparsable assembler, invalid setup, stuck simulation, crashed
      worker task — produces a typed error reply for that request only;
      the daemon keeps serving.
    - {b Retry with backoff}: every request runs under
      {!T1000.Pool.run_result}, so transient faults (chaos injection,
      crashes) are retried with capped exponential backoff before an
      error is returned.
    - {b Chaos}: under [T1000_CHAOS] the worker domains are adversarial
      exactly like the experiment pool's — tasks draw deterministic
      injected faults, and a worker can "die" mid-queue, re-queue its
      request at the front and respawn a replacement domain.
    - {b Graceful drain}: {!stop} (wired to SIGTERM by the CLI) stops
      accepting, answers everything already admitted (or deadline-
      cancels it), rejects late arrivals with a typed reply, closes all
      connections, joins every worker and returns — no request is ever
      dropped without a reply.

    Cross-request caching: analyses, baselines, selection tables and
    whole outcomes are shared between requests through {!T1000.Memo}
    tables keyed on the kernel and the setup's selection-relevant
    subset, so repeated tenants get warm-cache latencies (the [cached]
    reply flag tells them). *)

type addr = Unix_sock of string | Tcp of string * int

val parse_addr : string -> (addr, string) result
(** ["unix:PATH"] or ["tcp:HOST:PORT"]. *)

val addr_to_string : addr -> string

(** {1 Environment knobs}

    Validated with the same fail-fast policy as every other [T1000_*]
    variable (the CLI calls these in [validate_env] and exits 2 on a
    bad value). *)

val env_queue_depth : unit -> int option
(** [T1000_SERVE_QUEUE]: admission queue depth.
    @raise T1000.Fault.Error with [Invalid_config] unless a positive
      integer. *)

val env_deadline_ms : unit -> float option
(** [T1000_SERVE_DEADLINE_MS]: default per-request deadline.
    @raise T1000.Fault.Error with [Invalid_config] unless a positive
      finite number. *)

val env_addr : unit -> addr option
(** [T1000_SERVE_ADDR]: default listen address.
    @raise T1000.Fault.Error with [Invalid_config] on an unparsable
      address. *)

type config = {
  addrs : addr list;  (** listen addresses (at least one) *)
  queue_depth : int;  (** bounded admission queue capacity *)
  njobs : int;  (** worker domains *)
  default_deadline_ms : float option;
      (** applied to requests that carry no deadline of their own *)
  retries : int option;
      (** transient-fault retries per request
          ({!T1000.Pool.run_result} default when [None]) *)
  max_steps : int;
      (** functional-execution step cap when profiling and verifying
          client-submitted kernels, so a non-halting program is a typed
          fault, not a wedged worker *)
}

val default_config : unit -> config
(** Environment-driven defaults: [T1000_SERVE_ADDR] (else no address —
    {!create} insists the caller names one), [T1000_SERVE_QUEUE] (else
    64), [T1000_NJOBS] workers, [T1000_SERVE_DEADLINE_MS] (else none),
    10M functional steps. *)

type t

val create : config -> t
(** Bind and listen on every address.  A pre-existing Unix socket file
    is replaced (stale sockets from a killed daemon must not wedge a
    restart); TCP port 0 binds an ephemeral port (see {!bound_addrs}).
    @raise T1000.Fault.Error
      with [Invalid_config] on an empty address list, a non-positive
      queue depth / worker count / deadline, or an unbindable
      address. *)

val bound_addrs : t -> addr list
(** The addresses actually listening, with ephemeral TCP ports
    resolved. *)

val run : t -> unit
(** Serve until {!stop}, then drain and return: every admitted request
    answered, listeners closed (Unix socket paths unlinked), workers
    joined, connections closed.  Call from the thread that created the
    server; telemetry (the [serve.*] metrics) is flushed into
    {!T1000_obs.Metrics} throughout. *)

val stop : t -> unit
(** Initiate graceful drain.  Safe to call from a signal handler or
    any thread; idempotent. *)

val answered : t -> int
(** Requests answered so far (ok, error and shed replies included) —
    the CLI prints this in its drain summary. *)
