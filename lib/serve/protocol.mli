(** Wire protocol of the selection-as-a-service daemon ([t1000 serve]).

    Frames are length-prefixed: a 4-byte big-endian payload length,
    then the payload.  The payload's first byte is the protocol
    version ({!version}); the rest is one RFC-8259 JSON document
    ({!T1000_obs.Json}).  Length-prefixing makes truncation detectable
    (a mid-frame disconnect is a typed {!io_error}, never a hang), the
    version byte makes incompatible clients fail fast, and the
    {!max_frame} cap bounds what a malicious length field can make the
    server allocate.

    A request either pings the server or submits a kernel — named from
    the benchmark registry, or client-supplied assembler source parsed
    by {!T1000_asm.Asm_text} — together with a selection setup and
    optional deadline/cycle budgets.  A reply is a selection outcome or
    a typed error; the error codes mirror the {!T1000.Fault} taxonomy
    so a client can distinguish shedding ([Overloaded]) from a deadline
    ([Timeout]) from a caller error ([Invalid]). *)

(** The kernel a request asks the server to run selection on. *)
type kernel =
  | Named of string  (** a benchmark from {!T1000_workloads.Registry} *)
  | Asm of { name : string; text : string }
      (** client-supplied assembler source ({!T1000_asm.Asm_text}
          format); runs with zeroed registers/memory and an empty
          output region *)

(** A selection request: the paper's profile → select → verify → sim
    pipeline, parameterized like the CLI's [run] command. *)
type select = {
  kernel : kernel;
  method_ : [ `Baseline | `Greedy | `Selective ];
  pfus : int option;  (** [None] = unlimited *)
  penalty : int;  (** PFU reconfiguration cycles *)
  max_cycles : int option;
      (** per-request simulator watchdog budget; the sim's
          {!T1000_ooo.Sim.Sim_stuck} diagnostic snapshot comes back in
          the [Timeout] reply when it trips *)
  deadline_ms : float option;
      (** per-request wall-clock deadline, enforced server-side *)
}

type request = { id : int; body : [ `Ping | `Select of select ] }

(** A successful selection outcome. *)
type outcome = {
  speedup : float;  (** over the same machine without PFUs *)
  cycles : int;
  baseline_cycles : int;
  ext_count : int;  (** extended instructions chosen *)
  lut_cost : int;  (** summed LUT cost of the chosen table *)
  cached : bool;  (** served from the cross-request result cache *)
}

type error_code =
  | Overloaded  (** admission queue full, or the server is draining *)
  | Timeout  (** deadline or simulator cycle budget exceeded *)
  | Invalid  (** caller error: unknown workload, bad setup field *)
  | Malformed  (** undecodable request (version/JSON/fields) *)
  | Faulted  (** any other classified {!T1000.Fault} *)

type reply_body =
  [ `Pong | `Outcome of outcome | `Error of error_code * string ]

type reply = { rid : int; body : reply_body }

val version : char
val max_frame : int
(** Hard cap on payload size (1 MiB); larger length prefixes are
    rejected without allocating. *)

val string_of_code : error_code -> string
val code_of_string : string -> error_code option

val error_of_fault : T1000.Fault.t -> error_code * string
(** Map a classified fault onto the wire error taxonomy: [Overloaded]
    and [Deadline_exceeded]/[Sim_stuck] keep their own codes (the
    latter's message carries the RUU/PFU diagnostic snapshot),
    [Invalid_config] becomes [Invalid], everything else [Faulted]. *)

(** {1 Encoding} *)

val encode_request : request -> string
(** The complete frame: length prefix, version byte, JSON body. *)

val encode_reply : reply -> string

val request_payload : request -> string
(** The frame payload alone (version byte + JSON body, no length
    prefix) — what {!output_frame} expects. *)

val reply_payload : reply -> string

val decode_request : string -> (request, string) result
(** Strict decode of a frame {e payload} (without the length prefix):
    wrong version byte, malformed JSON, missing or ill-typed fields are
    all [Error]. *)

val decode_reply : string -> (reply, string) result

(** {1 Framed I/O} *)

type io_error =
  [ `Eof  (** clean close between frames *)
  | `Truncated of string  (** disconnect mid-frame *)
  | `Oversized of int  (** length prefix beyond {!max_frame} *)
  | `Io of string  (** socket error *) ]

val pp_io_error : Format.formatter -> io_error -> unit

val input_frame : Unix.file_descr -> (string, io_error) result
(** Read one frame; returns the payload (version byte included). *)

val output_frame : Unix.file_descr -> string -> (unit, string) result
(** Write [payload] as one frame (the length prefix is added here);
    [Error] on a closed or broken peer instead of an exception. *)

val frame : string -> string
(** [frame payload] is the length prefix followed by [payload] — the
    raw framing step, exposed for codec tests. *)
