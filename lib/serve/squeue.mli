(** Bounded admission queue with explicit shedding.

    The serve daemon's backpressure primitive: producers (connection
    threads) use the non-blocking {!try_push} and turn a [false] into a
    typed [Overloaded] reply immediately — admission {e never} blocks a
    client — while consumers (worker domains) block in {!pop} until
    work arrives or the queue is closed.  {!push_front} re-queues an
    item ahead of the backlog regardless of capacity, so a chaos-killed
    worker can hand its request to its replacement without the request
    ever counting as newly admitted. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue at the back; [false] (immediately, never blocking) when the
    queue holds [capacity] items or has been closed. *)

val push_front : 'a t -> 'a -> unit
(** Re-queue at the front, ignoring capacity and closure — for items
    that were already admitted once. *)

val pop : 'a t -> 'a option
(** Block until an item is available ([Some]) or the queue is closed
    and drained ([None]). *)

val close : 'a t -> unit
(** Reject all future {!try_push}; {!pop} keeps draining what is left
    and then returns [None] to every waiter. *)

val length : 'a t -> int
