module Fault = T1000.Fault
module Memo = T1000.Memo
module Pool = T1000.Pool
module Runner = T1000.Runner
module Metrics = T1000_obs.Metrics
module Tracer = T1000_obs.Tracer
module Workload = T1000_workloads.Workload
module Registry = T1000_workloads.Registry
module Extinstr = T1000_select.Extinstr
module Mconfig = T1000_ooo.Mconfig
module Stats = T1000_ooo.Stats

type addr = Unix_sock of string | Tcp of string * int

let addr_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let parse_addr s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "address %S: expected unix:PATH or tcp:HOST:PORT" s)
  | Some i -> (
      let scheme = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match scheme with
      | "unix" ->
          if rest = "" then Error "unix address needs a socket path"
          else Ok (Unix_sock rest)
      | "tcp" -> (
          match String.rindex_opt rest ':' with
          | None -> Error (Printf.sprintf "tcp address %S: expected HOST:PORT" rest)
          | Some j -> (
              let host = String.sub rest 0 j in
              let port_s = String.sub rest (j + 1) (String.length rest - j - 1) in
              match int_of_string_opt port_s with
              | Some p when p >= 0 && p <= 65535 && host <> "" ->
                  Ok (Tcp (host, p))
              | _ ->
                  Error
                    (Printf.sprintf "tcp address %S: bad host or port" rest)))
      | other ->
          Error
            (Printf.sprintf "unknown address scheme %S (unix: or tcp:)" other))

(* ---- environment knobs (fail-fast, exit-2 policy via validate_env) ---- *)

let env_queue_depth () =
  match Sys.getenv_opt "T1000_SERVE_QUEUE" with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None ->
          Fault.invalid_config
            "T1000_SERVE_QUEUE must be a positive integer, got %S" s)

let env_deadline_ms () =
  match Sys.getenv_opt "T1000_SERVE_DEADLINE_MS" with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some d when d > 0.0 && Float.is_finite d -> Some d
      | Some _ | None ->
          Fault.invalid_config
            "T1000_SERVE_DEADLINE_MS must be a positive number of \
             milliseconds, got %S"
            s)

let env_addr () =
  match Sys.getenv_opt "T1000_SERVE_ADDR" with
  | None -> None
  | Some s when String.trim s = "" -> None
  | Some s -> (
      match parse_addr (String.trim s) with
      | Ok a -> Some a
      | Error msg -> Fault.invalid_config "T1000_SERVE_ADDR: %s" msg)

type config = {
  addrs : addr list;
  queue_depth : int;
  njobs : int;
  default_deadline_ms : float option;
  retries : int option;
  max_steps : int;
}

let default_config () =
  {
    addrs = (match env_addr () with Some a -> [ a ] | None -> []);
    queue_depth = Option.value (env_queue_depth ()) ~default:64;
    njobs = Pool.default_njobs ();
    default_deadline_ms = env_deadline_ms ();
    retries = None;
    max_steps = 10_000_000;
  }

(* ---- jobs ---- *)

type job = {
  seq : int;  (* server-wide request sequence number (chaos hash key) *)
  req_id : int;  (* client-chosen request id, echoed in the reply *)
  sel : Protocol.select;
  submitted : float;
  deadline : float option;  (* absolute wall-clock deadline *)
  jm : Mutex.t;
  jcv : Condition.t;
  mutable state : [ `Pending | `Done of Protocol.reply_body | `Abandoned ];
  mutable pops : int;  (* dequeues, for the chaos kill decision *)
}

type t = {
  cfg : config;
  listeners : (addr * Unix.file_descr) list;
  queue : job Squeue.t;
  draining : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  seq : int Atomic.t;
  answered_c : int Atomic.t;
  sm : Mutex.t;  (* guards the mutable registries below *)
  mutable conns : (int * Unix.file_descr) list;
  mutable conn_threads : Thread.t list;
  mutable workers : unit Domain.t list;
  mutable pending : job list;  (* admitted, reply not yet written *)
  mutable inflight : int;
  mutable respawns : int;
  mutable ticker_stop : bool;
  (* cross-request caches (Memo: compute-once, domain-safe) *)
  analyses : (string, Runner.analysis) Memo.t;
  baselines : (string, Runner.run) Memo.t;
  tables : (string, Extinstr.t) Memo.t;
  results : (string, Protocol.outcome) Memo.t;
}

let respawn_cap = 64

let create cfg =
  if cfg.addrs = [] then
    Fault.invalid_config
      "serve: no listen address (give --socket/--tcp or set T1000_SERVE_ADDR)";
  if cfg.queue_depth < 1 then
    Fault.invalid_config "serve: queue depth must be >= 1, got %d"
      cfg.queue_depth;
  if cfg.njobs < 1 then
    Fault.invalid_config "serve: worker count must be >= 1, got %d" cfg.njobs;
  (match cfg.default_deadline_ms with
  | Some d when not (d > 0.0 && Float.is_finite d) ->
      Fault.invalid_config "serve: default deadline must be positive, got %g" d
  | _ -> ());
  if cfg.max_steps < 1 then
    Fault.invalid_config "serve: max_steps must be >= 1, got %d" cfg.max_steps;
  let listen_on addr =
    try
      match addr with
      | Unix_sock path ->
          (* A stale socket file from a killed daemon must not wedge a
             restart; anything else at that path is a caller error. *)
          (match (Unix.lstat path).Unix.st_kind with
          | Unix.S_SOCK -> Unix.unlink path
          | _ ->
              Fault.invalid_config "serve: %s exists and is not a socket" path
          | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          (* Bind at a temp name and rename into place only once the
             socket is accepting, so a client polling for the path can
             never observe bound-but-not-listening (on one CPU the
             daemon can be descheduled between the two syscalls). *)
          let tmp = path ^ ".tmp" in
          (try Unix.unlink tmp with Unix.Unix_error _ -> ());
          Unix.bind fd (Unix.ADDR_UNIX tmp);
          Unix.listen fd 64;
          Unix.rename tmp path;
          (addr, fd)
      | Tcp (host, port) ->
          let ip =
            if host = "localhost" then Unix.inet_addr_loopback
            else
              try Unix.inet_addr_of_string host
              with Failure _ ->
                Fault.invalid_config "serve: cannot parse host %S" host
          in
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.setsockopt fd Unix.SO_REUSEADDR true;
          Unix.bind fd (Unix.ADDR_INET (ip, port));
          Unix.listen fd 64;
          let port =
            match Unix.getsockname fd with
            | Unix.ADDR_INET (_, p) -> p
            | _ -> port
          in
          (Tcp (host, port), fd)
    with Unix.Unix_error (e, _, _) ->
      Fault.invalid_config "serve: cannot listen on %s: %s"
        (addr_to_string addr) (Unix.error_message e)
  in
  let listeners = List.map listen_on cfg.addrs in
  let wake_r, wake_w = Unix.pipe () in
  {
    cfg;
    listeners;
    queue = Squeue.create ~capacity:cfg.queue_depth;
    draining = Atomic.make false;
    wake_r;
    wake_w;
    seq = Atomic.make 0;
    answered_c = Atomic.make 0;
    sm = Mutex.create ();
    conns = [];
    conn_threads = [];
    workers = [];
    pending = [];
    inflight = 0;
    respawns = 0;
    ticker_stop = false;
    analyses = Memo.create ~name:"serve.analysis" 16;
    baselines = Memo.create ~name:"serve.baseline" 16;
    tables = Memo.create ~name:"serve.tables" 16;
    results = Memo.create ~name:"serve.results" 64;
  }

let bound_addrs t = List.map fst t.listeners
let answered t = Atomic.get t.answered_c

(* ---- the selection pipeline, behind cross-request memo caches ---- *)

let kernel_key = function
  | Protocol.Named n -> "named:" ^ n
  | Protocol.Asm { name = _; text } ->
      "asm:" ^ Digest.to_hex (Digest.string text)

let resolve_kernel = function
  | Protocol.Named n -> (
      match Registry.find n with
      | Some w -> w
      | None ->
          Fault.invalid_config "unknown workload %S (known: %s)" n
            (String.concat ", " Registry.names))
  | Protocol.Asm { name; text } -> (
      match T1000_asm.Asm_text.parse ~name text with
      | Error msg -> Fault.invalid_config "asm parse error: %s" msg
      | Ok program ->
          {
            Workload.name;
            description = "client-submitted kernel";
            program;
            init = (fun _ _ -> ());
            out_base = T1000_workloads.Kit.out_base;
            out_len = 0;
          })

let setup_of_select (sel : Protocol.select) =
  (match sel.Protocol.max_cycles with
  | Some c when c <= 0 ->
      Fault.invalid_config "max_cycles must be positive, got %d" c
  | _ -> ());
  let method_ =
    match sel.Protocol.method_ with
    | `Baseline -> Runner.Baseline
    | `Greedy -> Runner.Greedy
    | `Selective -> Runner.Selective
  in
  let s =
    Runner.setup ~n_pfus:sel.Protocol.pfus ~penalty:sel.Protocol.penalty
      method_
  in
  match sel.Protocol.max_cycles with
  | None -> s
  | Some max_cycles ->
      { s with Runner.machine = { s.Runner.machine with Mconfig.max_cycles } }

(* Like {!Runner.analyze}, but with the server's functional-step cap so
   a non-halting client-submitted kernel surfaces as a typed
   [Interp_fault] instead of wedging a worker domain. *)
let analyze_capped ~max_steps (w : Workload.t) =
  Metrics.time "phase.analyze" @@ fun () ->
  let profile =
    T1000_profile.Profile.collect ~max_steps
      ~init:(fun mem regs -> w.Workload.init mem regs)
      w.Workload.program
  in
  let cfg = T1000_asm.Cfg.of_program w.Workload.program in
  let dom = T1000_asm.Dominators.compute cfg in
  let loops = T1000_asm.Loops.compute cfg dom in
  let live = T1000_asm.Liveness.compute cfg in
  { Runner.profile; cfg; loops; live }

let method_tag = function
  | `Baseline -> "b"
  | `Greedy -> "g"
  | `Selective -> "s"

let pfus_tag = function None -> "u" | Some n -> string_of_int n

let compute srv (sel : Protocol.select) : Protocol.outcome =
  Tracer.with_span ~cat:"serve" "serve.compute" @@ fun () ->
  let kkey = kernel_key sel.Protocol.kernel in
  let setup = setup_of_select sel in
  let rkey =
    Printf.sprintf "%s/%s/%s/p%d/c%s" kkey
      (method_tag sel.Protocol.method_)
      (pfus_tag sel.Protocol.pfus)
      sel.Protocol.penalty
      (match sel.Protocol.max_cycles with
      | None -> "-"
      | Some c -> string_of_int c)
  in
  let warm = Memo.find_opt srv.results rkey <> None in
  let outcome =
    Memo.find_or_compute srv.results rkey @@ fun () ->
    let w = resolve_kernel sel.Protocol.kernel in
    let analysis =
      Memo.find_or_compute srv.analyses kkey (fun () ->
          analyze_capped ~max_steps:srv.cfg.max_steps w)
    in
    let baseline =
      (* Keyed on the kernel and the cycle budget: the budget is the
         only machine field a request can change, and the baseline must
         run under the same watchdog as the configured machine. *)
      let bkey =
        Printf.sprintf "%s/base/c%d" kkey setup.Runner.machine.Mconfig.max_cycles
      in
      Memo.find_or_compute srv.baselines bkey (fun () ->
          let bs =
            { (Runner.setup Runner.Baseline) with
              Runner.machine = setup.Runner.machine }
          in
          Runner.run ~analysis w bs)
    in
    let table =
      (* Selection depends only on (method, n_pfus) among the fields a
         request can set — penalty and cycle budget are simulation-time
         parameters — so a penalty sweep from one tenant selects
         once. *)
      let tkey =
        Printf.sprintf "%s/table/%s/%s" kkey
          (method_tag sel.Protocol.method_)
          (pfus_tag sel.Protocol.pfus)
      in
      Memo.find_or_compute srv.tables tkey (fun () ->
          Runner.select_table setup analysis)
    in
    let r = Runner.run ~analysis ~table w setup in
    let lut_cost =
      List.fold_left
        (fun acc (e : Extinstr.entry) -> acc + e.Extinstr.lut_cost)
        0
        (Extinstr.entries r.Runner.table)
    in
    {
      Protocol.speedup = Runner.speedup ~baseline r;
      cycles = r.Runner.stats.Stats.cycles;
      baseline_cycles = baseline.Runner.stats.Stats.cycles;
      ext_count = Extinstr.count r.Runner.table;
      lut_cost;
      cached = false;
    }
  in
  { outcome with Protocol.cached = warm }

(* ---- job lifecycle ---- *)

let resolve job body =
  Mutex.lock job.jm;
  (match job.state with
  | `Pending ->
      job.state <- `Done body;
      Condition.broadcast job.jcv
  | `Abandoned ->
      (* The server-side timer already answered this request with a
         timeout; the late result is discarded, not sent twice. *)
      Metrics.incr "serve.late_results"
  | `Done _ -> ());
  Mutex.unlock job.jm

let now () = Unix.gettimeofday ()

let elapsed_ms job = (now () -. job.submitted) *. 1e3

let timeout_body job where =
  let budget =
    match job.deadline with
    | Some d -> (d -. job.submitted) *. 1e3
    | None -> 0.0
  in
  `Error
    ( Protocol.Timeout,
      Printf.sprintf
        "deadline exceeded: %.0f ms budget, %.0f ms elapsed (%s)" budget
        (elapsed_ms job) where )

let process srv job =
  let started = now () in
  let overdue =
    match job.deadline with Some d -> started > d | None -> false
  in
  let abandoned () =
    Mutex.lock job.jm;
    let a = job.state <> `Pending in
    Mutex.unlock job.jm;
    a
  in
  if overdue then begin
    Metrics.incr "serve.deadline_in_queue";
    resolve job (timeout_body job "expired in the admission queue")
  end
  else if abandoned () then
    (* The ticker already answered this one; don't burn a worker on a
       result nobody will read. *)
    Metrics.incr "serve.late_results"
  else begin
    Metrics.observe "serve.queue_wait_ms" ((started -. job.submitted) *. 1e3);
    let result =
      Pool.run_result ?retries:srv.cfg.retries ~index:job.seq (fun () ->
          compute srv job.sel)
    in
    Metrics.observe "serve.service_ms" ((now () -. started) *. 1e3);
    let body =
      match result with
      | Ok o -> `Outcome o
      | Error f ->
          Metrics.incr "serve.faults";
          let code, msg = Protocol.error_of_fault f in
          `Error (code, msg)
    in
    resolve job body
  end

let rec worker_loop srv () =
  match Squeue.pop srv.queue with
  | None -> ()  (* queue closed and drained: the server is shutting down *)
  | Some job ->
      let pops = job.pops in
      job.pops <- pops + 1;
      let kill =
        Pool.chaos_kill_worker ~index:job.seq ~pops
        &&
        (Mutex.lock srv.sm;
         let under_cap = srv.respawns < respawn_cap in
         if under_cap then srv.respawns <- srv.respawns + 1;
         Mutex.unlock srv.sm;
         under_cap)
      in
      if kill then begin
        (* This worker domain "dies": the request goes back to the
           front of the queue (it was already admitted — it must not
           be shed a second time) and a replacement domain takes over. *)
        Squeue.push_front srv.queue job;
        Mutex.lock srv.sm;
        srv.workers <- Domain.spawn (worker_loop srv) :: srv.workers;
        Mutex.unlock srv.sm
      end
      else begin
        process srv job;
        worker_loop srv ()
      end

(* The server-side deadline timer: a 2 ms ticker that abandons any
   pending job whose wall-clock deadline has passed — whether it is
   still queued or already running on a worker — so the client gets its
   timeout reply on time and a late result is discarded. *)
let ticker_loop srv () =
  let stop = ref false in
  while not !stop do
    Thread.delay 0.002;
    Mutex.lock srv.sm;
    stop := srv.ticker_stop;
    let pending = srv.pending in
    Mutex.unlock srv.sm;
    let t = now () in
    List.iter
      (fun job ->
        match job.deadline with
        | Some d when t > d ->
            Mutex.lock job.jm;
            if job.state = `Pending then begin
              job.state <- `Abandoned;
              Condition.broadcast job.jcv
            end;
            Mutex.unlock job.jm
        | _ -> ())
      pending
  done

(* ---- connection handling ---- *)

let send srv fd reply =
  (match Protocol.output_frame fd (Protocol.reply_payload reply) with
  | Ok () -> ()
  | Error _ ->
      (* The client went away before its reply; the read side of this
         connection will see the close next.  Never fatal. *)
      Metrics.incr "serve.write_errors");
  Atomic.incr srv.answered_c;
  Metrics.incr "serve.replies"

let register_pending srv job =
  Mutex.lock srv.sm;
  srv.pending <- job :: srv.pending;
  srv.inflight <- srv.inflight + 1;
  Mutex.unlock srv.sm

let unregister_pending srv (job : job) =
  Mutex.lock srv.sm;
  srv.pending <- List.filter (fun (j : job) -> j.seq <> job.seq) srv.pending;
  srv.inflight <- srv.inflight - 1;
  Mutex.unlock srv.sm

let handle_select srv fd req_id sel =
  if Atomic.get srv.draining then begin
    Metrics.incr "serve.shed";
    send srv fd
      {
        Protocol.rid = req_id;
        body = `Error (Protocol.Overloaded, "overloaded: server is draining");
      }
  end
  else begin
    let submitted = now () in
    let deadline_ms =
      match sel.Protocol.deadline_ms with
      | Some d -> Some d
      | None -> srv.cfg.default_deadline_ms
    in
    (match deadline_ms with
    | Some d when not (d > 0.0 && Float.is_finite d) ->
        Fault.invalid_config "deadline_ms must be positive, got %g" d
    | _ -> ());
    let job =
      {
        seq = Atomic.fetch_and_add srv.seq 1;
        req_id;
        sel;
        submitted;
        deadline = Option.map (fun d -> submitted +. (d /. 1e3)) deadline_ms;
        jm = Mutex.create ();
        jcv = Condition.create ();
        state = `Pending;
        pops = 0;
      }
    in
    (* Registered before admission so the drain sequence cannot close
       the queue between our check and our push: inflight > 0 holds it
       open, and if drain won the race anyway the closed queue fails
       try_push and we shed with a typed reply — never a drop. *)
    register_pending srv job;
    Fun.protect ~finally:(fun () -> unregister_pending srv job) @@ fun () ->
    if not (Squeue.try_push srv.queue job) then begin
      Metrics.incr "serve.shed";
      send srv fd
        {
          Protocol.rid = req_id;
          body =
            `Error
              ( Protocol.Overloaded,
                Printf.sprintf
                  "overloaded: admission queue full (%d waiting)"
                  (Squeue.length srv.queue) );
        }
    end
    else begin
      Mutex.lock job.jm;
      while job.state = `Pending do
        Condition.wait job.jcv job.jm
      done;
      let body =
        match job.state with
        | `Done b -> b
        | `Abandoned -> timeout_body job "server-side deadline timer"
        | `Pending -> assert false
      in
      Mutex.unlock job.jm;
      send srv fd { Protocol.rid = req_id; body }
    end
  end

let conn_loop srv (conn_id, fd) () =
  let closed = ref false in
  (try
     while not !closed do
       match Protocol.input_frame fd with
       | Error `Eof -> closed := true
       | Error (`Truncated _) | Error (`Io _) ->
           (* Mid-frame disconnect: the peer is gone, nothing to answer. *)
           Metrics.incr "serve.bad_frames";
           closed := true
       | Error (`Oversized n) ->
           Metrics.incr "serve.bad_frames";
           send srv fd
             {
               Protocol.rid = 0;
               body =
                 `Error
                   ( Protocol.Malformed,
                     Printf.sprintf
                       "oversized frame: %d bytes (limit %d)" n
                       Protocol.max_frame );
             };
           closed := true
       | Ok payload -> (
           match Protocol.decode_request payload with
           | Error msg ->
               Metrics.incr "serve.bad_frames";
               send srv fd
                 {
                   Protocol.rid = 0;
                   body = `Error (Protocol.Malformed, msg);
                 };
               closed := true
           | Ok { Protocol.id; body = `Ping } ->
               send srv fd { Protocol.rid = id; body = `Pong }
           | Ok { Protocol.id; body = `Select sel } -> (
               (* A bad deadline field is the caller's error, answered
                  in-band like every other poisoned request. *)
               try handle_select srv fd id sel
               with Fault.Error f ->
                 Metrics.incr "serve.faults";
                 let code, msg = Protocol.error_of_fault f in
                 send srv fd { Protocol.rid = id; body = `Error (code, msg) }))
     done
   with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock srv.sm;
  srv.conns <- List.remove_assoc conn_id srv.conns;
  Mutex.unlock srv.sm

(* ---- accept loop, drain, stop ---- *)

let wake srv =
  try ignore (Unix.write srv.wake_w (Bytes.make 1 'w') 0 1)
  with Unix.Unix_error _ -> ()

let stop srv = if not (Atomic.exchange srv.draining true) then wake srv

let conn_counter = Atomic.make 0

let accept_one srv lfd =
  match Unix.accept lfd with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> ()
  | fd, _ ->
      Metrics.incr "serve.connections";
      let conn_id = Atomic.fetch_and_add conn_counter 1 in
      Mutex.lock srv.sm;
      srv.conns <- (conn_id, fd) :: srv.conns;
      let th = Thread.create (conn_loop srv (conn_id, fd)) () in
      srv.conn_threads <- th :: srv.conn_threads;
      Mutex.unlock srv.sm

let close_listeners srv =
  List.iter
    (fun (addr, fd) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match addr with
      | Unix_sock path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ())
    srv.listeners

let drain srv =
  Tracer.with_span ~cat:"serve" "serve.drain" @@ fun () ->
  (* 1. No new connections. *)
  close_listeners srv;
  (* 2. Everything already admitted gets its reply (or its deadline
        cancellation from the ticker).  Late try_pushes from still-open
        connections either beat the queue close (and are answered) or
        fail it (and are shed with a typed reply) — nothing hangs. *)
  let rec wait_inflight () =
    Mutex.lock srv.sm;
    let n = srv.inflight in
    Mutex.unlock srv.sm;
    if n > 0 then begin
      Thread.delay 0.002;
      wait_inflight ()
    end
  in
  wait_inflight ();
  (* 3. Workers drain the (now empty) queue and exit; chaos respawns
        may still be appearing, so join until the registry is empty. *)
  Squeue.close srv.queue;
  let rec join_workers () =
    Mutex.lock srv.sm;
    let ws = srv.workers in
    srv.workers <- [];
    Mutex.unlock srv.sm;
    if ws <> [] then begin
      List.iter Domain.join ws;
      join_workers ()
    end
  in
  join_workers ();
  (* 4. Kick connection threads out of their blocking reads.  Only the
        receive side: a reply write racing this shutdown must still
        reach the client. *)
  Mutex.lock srv.sm;
  let conns = srv.conns in
  Mutex.unlock srv.sm;
  List.iter
    (fun (_, fd) ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE
      with Unix.Unix_error _ -> ())
    conns;
  let rec join_conns () =
    Mutex.lock srv.sm;
    let ths = srv.conn_threads in
    srv.conn_threads <- [];
    Mutex.unlock srv.sm;
    if ths <> [] then begin
      List.iter Thread.join ths;
      join_conns ()
    end
  in
  join_conns ();
  (* 5. Stop the deadline ticker and release the wake pipe. *)
  Mutex.lock srv.sm;
  srv.ticker_stop <- true;
  Mutex.unlock srv.sm;
  (try Unix.close srv.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close srv.wake_w with Unix.Unix_error _ -> ())

let run srv =
  Mutex.lock srv.sm;
  srv.workers <-
    List.init srv.cfg.njobs (fun _ -> Domain.spawn (worker_loop srv));
  Mutex.unlock srv.sm;
  let ticker = Thread.create (ticker_loop srv) () in
  let lfds = List.map snd srv.listeners in
  while not (Atomic.get srv.draining) do
    match Unix.select (srv.wake_r :: lfds) [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ ->
        if List.mem srv.wake_r ready then begin
          let buf = Bytes.create 16 in
          try ignore (Unix.read srv.wake_r buf 0 16)
          with Unix.Unix_error _ -> ()
        end;
        List.iter
          (fun lfd -> if List.mem lfd ready then accept_one srv lfd)
          lfds
  done;
  drain srv;
  Thread.join ticker;
  Metrics.set_gauge "serve.queue_depth" (float_of_int srv.cfg.queue_depth)
