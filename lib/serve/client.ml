type t = {
  fd : Unix.file_descr;
  next_id : int ref;
  mutable closed : bool;
}

let connect addr =
  let sock, sockaddr =
    match addr with
    | Server.Unix_sock path ->
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Server.Tcp (host, port) ->
        let ip =
          if host = "localhost" then Unix.inet_addr_loopback
          else Unix.inet_addr_of_string host
        in
        (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (ip, port))
  in
  match Unix.connect sock sockaddr with
  | () -> Ok { fd = sock; next_id = ref 1; closed = false }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "connect %s: %s"
           (Server.addr_to_string addr)
           (Unix.error_message e))

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let ( let* ) = Result.bind

let roundtrip t body =
  if t.closed then Error "client already closed"
  else begin
    let id = !(t.next_id) in
    t.next_id := id + 1;
    let* () =
      Protocol.output_frame t.fd
        (Protocol.request_payload { Protocol.id; body })
    in
    let* payload =
      Result.map_error
        (Format.asprintf "%a" Protocol.pp_io_error)
        (Protocol.input_frame t.fd)
    in
    let* reply = Protocol.decode_reply payload in
    (* rid 0 marks a reply to an undecodable request (the daemon could
       not know our id); pass it through so the caller sees the typed
       [Malformed] error. *)
    if reply.Protocol.rid <> id && reply.Protocol.rid <> 0 then
      Error
        (Printf.sprintf "reply id %d does not match request id %d"
           reply.Protocol.rid id)
    else Ok reply.Protocol.body
  end

let request t sel = roundtrip t (`Select sel)

let ping t =
  let* body = roundtrip t `Ping in
  match body with
  | `Pong -> Ok ()
  | `Error (_, msg) -> Error ("ping answered with error: " ^ msg)
  | `Outcome _ -> Error "ping answered with a selection outcome"
