module Json = T1000_obs.Json
module Fault = T1000.Fault

type kernel =
  | Named of string
  | Asm of { name : string; text : string }

type select = {
  kernel : kernel;
  method_ : [ `Baseline | `Greedy | `Selective ];
  pfus : int option;
  penalty : int;
  max_cycles : int option;
  deadline_ms : float option;
}

type request = { id : int; body : [ `Ping | `Select of select ] }

type outcome = {
  speedup : float;
  cycles : int;
  baseline_cycles : int;
  ext_count : int;
  lut_cost : int;
  cached : bool;
}

type error_code = Overloaded | Timeout | Invalid | Malformed | Faulted

type reply_body =
  [ `Pong | `Outcome of outcome | `Error of error_code * string ]

type reply = { rid : int; body : reply_body }

let version = '\001'
let max_frame = 1 lsl 20

let string_of_code = function
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Invalid -> "invalid"
  | Malformed -> "malformed"
  | Faulted -> "fault"

let code_of_string = function
  | "overloaded" -> Some Overloaded
  | "timeout" -> Some Timeout
  | "invalid" -> Some Invalid
  | "malformed" -> Some Malformed
  | "fault" -> Some Faulted
  | _ -> None

let error_of_fault (f : Fault.t) =
  let msg = Fault.to_string f in
  match f with
  | Fault.Invalid_config _ -> (Invalid, msg)
  | Fault.Overloaded _ -> (Overloaded, msg)
  | Fault.Deadline_exceeded _ -> (Timeout, msg)
  (* The watchdog snapshot (RUU head, occupancy, PFU stats) rides along
     in the rendered message, so a timed-out client can triage without
     server logs. *)
  | Fault.Sim_stuck _ -> (Timeout, msg)
  | _ -> (Faulted, msg)

(* ---- JSON encoding ---- *)

let num_i n = Json.Num (float_of_int n)

let json_of_kernel = function
  | Named n -> Json.Obj [ ("named", Json.Str n) ]
  | Asm { name; text } ->
      Json.Obj [ ("name", Json.Str name); ("asm", Json.Str text) ]

let string_of_method = function
  | `Baseline -> "baseline"
  | `Greedy -> "greedy"
  | `Selective -> "selective"

let json_of_request (r : request) =
  match r.body with
  | `Ping -> Json.Obj [ ("id", num_i r.id); ("op", Json.Str "ping") ]
  | `Select s ->
      let opt k v rest =
        match v with None -> rest | Some v -> (k, v) :: rest
      in
      Json.Obj
        (("id", num_i r.id)
        :: ("op", Json.Str "select")
        :: ("kernel", json_of_kernel s.kernel)
        :: ("method", Json.Str (string_of_method s.method_))
        :: ( "pfus",
             match s.pfus with
             | None -> Json.Str "unlimited"
             | Some n -> num_i n )
        :: ("penalty", num_i s.penalty)
        :: opt "max_cycles" (Option.map (fun c -> num_i c) s.max_cycles)
             (opt "deadline_ms"
                (Option.map (fun d -> Json.Num d) s.deadline_ms)
                []))

let json_of_reply (r : reply) =
  match r.body with
  | `Pong -> Json.Obj [ ("id", num_i r.rid); ("status", Json.Str "pong") ]
  | `Outcome o ->
      Json.Obj
        [
          ("id", num_i r.rid);
          ("status", Json.Str "ok");
          ("speedup", Json.Num o.speedup);
          ("cycles", num_i o.cycles);
          ("baseline_cycles", num_i o.baseline_cycles);
          ("ext_count", num_i o.ext_count);
          ("lut_cost", num_i o.lut_cost);
          ("cached", Json.Bool o.cached);
        ]
  | `Error (code, msg) ->
      Json.Obj
        [
          ("id", num_i r.rid);
          ("status", Json.Str "error");
          ("code", Json.Str (string_of_code code));
          ("message", Json.Str msg);
        ]

(* ---- framing ---- *)

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

let payload json = String.make 1 version ^ Json.to_string json
let request_payload r = payload (json_of_request r)
let reply_payload r = payload (json_of_reply r)
let encode_request r = frame (request_payload r)
let encode_reply r = frame (reply_payload r)

(* ---- strict decoding ---- *)

let field k j = Json.member k j

let int_field k j =
  match field k j with
  | Some (Json.Num f) when Float.is_integer f && Float.abs f <= 2_147_483_647.
    ->
      Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let str_field k j =
  match field k j with
  | Some (Json.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S must be a string" k)
  | None -> Error (Printf.sprintf "missing field %S" k)

let ( let* ) = Result.bind

let decode_payload payload =
  if String.length payload < 1 then Error "empty payload"
  else if payload.[0] <> version then
    Error
      (Printf.sprintf "unsupported protocol version 0x%02x (expected 0x%02x)"
         (Char.code payload.[0]) (Char.code version))
  else
    match Json.of_string (String.sub payload 1 (String.length payload - 1)) with
    | Error msg -> Error ("malformed JSON body: " ^ msg)
    | Ok j -> Ok j

let kernel_of_json j =
  match (field "named" j, field "asm" j) with
  | Some (Json.Str n), None -> Ok (Named n)
  | None, Some (Json.Str text) ->
      let name =
        match field "name" j with Some (Json.Str n) -> n | _ -> "client"
      in
      Ok (Asm { name; text })
  | Some _, Some _ -> Error "kernel must have exactly one of \"named\"/\"asm\""
  | _ -> Error "kernel must be an object with \"named\" or \"asm\""

let decode_select j =
  let* kernel =
    match field "kernel" j with
    | Some k -> kernel_of_json k
    | None -> Error "missing field \"kernel\""
  in
  let* method_ =
    let* m = str_field "method" j in
    match m with
    | "baseline" -> Ok `Baseline
    | "greedy" -> Ok `Greedy
    | "selective" -> Ok `Selective
    | other -> Error (Printf.sprintf "unknown method %S" other)
  in
  let* pfus =
    match field "pfus" j with
    | None -> Ok (Some 2)
    | Some (Json.Str "unlimited") -> Ok None
    | Some (Json.Num f) when Float.is_integer f -> Ok (Some (int_of_float f))
    | Some _ -> Error "field \"pfus\" must be an integer or \"unlimited\""
  in
  let* penalty =
    match field "penalty" j with None -> Ok 10 | Some _ -> int_field "penalty" j
  in
  let* max_cycles =
    match field "max_cycles" j with
    | None -> Ok None
    | Some _ -> Result.map Option.some (int_field "max_cycles" j)
  in
  let* deadline_ms =
    match field "deadline_ms" j with
    | None -> Ok None
    | Some (Json.Num f) -> Ok (Some f)
    | Some _ -> Error "field \"deadline_ms\" must be a number"
  in
  Ok { kernel; method_; pfus; penalty; max_cycles; deadline_ms }

let decode_request payload =
  let* j = decode_payload payload in
  let* id = int_field "id" j in
  let* op = str_field "op" j in
  match op with
  | "ping" -> Ok { id; body = `Ping }
  | "select" ->
      let* s = decode_select j in
      Ok { id; body = `Select s }
  | other -> Error (Printf.sprintf "unknown op %S" other)

let decode_outcome j =
  let* speedup =
    match field "speedup" j with
    | Some (Json.Num f) -> Ok f
    | _ -> Error "missing or ill-typed field \"speedup\""
  in
  let* cycles = int_field "cycles" j in
  let* baseline_cycles = int_field "baseline_cycles" j in
  let* ext_count = int_field "ext_count" j in
  let* lut_cost = int_field "lut_cost" j in
  let* cached =
    match field "cached" j with
    | Some (Json.Bool b) -> Ok b
    | _ -> Error "missing or ill-typed field \"cached\""
  in
  Ok { speedup; cycles; baseline_cycles; ext_count; lut_cost; cached }

let decode_reply payload =
  let* j = decode_payload payload in
  let* rid = int_field "id" j in
  let* status = str_field "status" j in
  match status with
  | "pong" -> Ok { rid; body = `Pong }
  | "ok" ->
      let* o = decode_outcome j in
      Ok { rid; body = `Outcome o }
  | "error" ->
      let* code_s = str_field "code" j in
      let* message = str_field "message" j in
      let* code =
        match code_of_string code_s with
        | Some c -> Ok c
        | None -> Error (Printf.sprintf "unknown error code %S" code_s)
      in
      Ok { rid; body = `Error (code, message) }
  | other -> Error (Printf.sprintf "unknown status %S" other)

(* ---- framed I/O ---- *)

type io_error =
  [ `Eof | `Truncated of string | `Oversized of int | `Io of string ]

let pp_io_error ppf = function
  | `Eof -> Format.pp_print_string ppf "connection closed"
  | `Truncated m -> Format.fprintf ppf "truncated frame: %s" m
  | `Oversized n -> Format.fprintf ppf "oversized frame: %d bytes" n
  | `Io m -> Format.fprintf ppf "socket error: %s" m

(* Read exactly [len] bytes; [`Short n] when the peer closed after [n]
   of them. *)
let rec read_exactly fd buf off len =
  if len = 0 then Ok ()
  else
    match Unix.read fd buf off len with
    | 0 -> Error (`Short off)
    | n -> read_exactly fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        read_exactly fd buf off len
    | exception Unix.Unix_error (e, _, _) ->
        Error (`Unix (Unix.error_message e))

let input_frame fd =
  let hdr = Bytes.create 4 in
  (* The first header byte distinguishes a clean close (EOF between
     frames) from a mid-frame disconnect. *)
  match Unix.read fd hdr 0 1 with
  | 0 -> Error `Eof
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> Error (`Io "interrupted")
  | exception Unix.Unix_error (e, _, _) -> Error (`Io (Unix.error_message e))
  | _ -> (
      match read_exactly fd hdr 1 3 with
      | Error (`Short n) ->
          Error
            (`Truncated
               (Printf.sprintf "disconnect after %d of 4 header bytes" n))
      | Error (`Unix m) -> Error (`Io m)
      | Ok () -> (
          let len =
            (Char.code (Bytes.get hdr 0) lsl 24)
            lor (Char.code (Bytes.get hdr 1) lsl 16)
            lor (Char.code (Bytes.get hdr 2) lsl 8)
            lor Char.code (Bytes.get hdr 3)
          in
          if len <= 0 || len > max_frame then Error (`Oversized len)
          else
            let payload = Bytes.create len in
            match read_exactly fd payload 0 len with
            | Error (`Short n) ->
                Error
                  (`Truncated
                     (Printf.sprintf
                        "disconnect after %d of %d payload bytes" n len))
            | Error (`Unix m) -> Error (`Io m)
            | Ok () -> Ok (Bytes.to_string payload)))

let output_frame fd payload =
  let data = Bytes.of_string (frame payload) in
  let total = Bytes.length data in
  let rec write off =
    if off >= total then Ok ()
    else
      match Unix.write fd data off (total - off) with
      | n -> write (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write off
      | exception Unix.Unix_error (e, _, _) ->
          Error (Unix.error_message e)
  in
  write 0
