type 'a t = {
  m : Mutex.t;
  cv : Condition.t;
  q : 'a Queue.t;
  mutable front : 'a list;  (* re-queued items, served before [q] *)
  capacity : int;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Squeue.create: capacity %d < 1" capacity);
  {
    m = Mutex.create ();
    cv = Condition.create ();
    q = Queue.create ();
    front = [];
    capacity;
    closed = false;
  }

let length_locked t = Queue.length t.q + List.length t.front

let try_push t x =
  Mutex.lock t.m;
  let ok = (not t.closed) && length_locked t < t.capacity in
  if ok then begin
    Queue.add x t.q;
    Condition.signal t.cv
  end;
  Mutex.unlock t.m;
  ok

let push_front t x =
  Mutex.lock t.m;
  t.front <- x :: t.front;
  Condition.signal t.cv;
  Mutex.unlock t.m

let pop t =
  Mutex.lock t.m;
  let rec wait () =
    match t.front with
    | x :: rest ->
        t.front <- rest;
        Some x
    | [] ->
        if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
        else if t.closed then None
        else begin
          Condition.wait t.cv t.m;
          wait ()
        end
  in
  let r = wait () in
  Mutex.unlock t.m;
  r

let close t =
  Mutex.lock t.m;
  t.closed <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.m

let length t =
  Mutex.lock t.m;
  let n = length_locked t in
  Mutex.unlock t.m;
  n
