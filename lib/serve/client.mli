(** Blocking client for the [t1000 serve] daemon.

    One connection, synchronous request/reply (the protocol answers in
    order per connection); request ids are assigned here and checked
    against the reply, so a daemon bug that crossed replies between
    requests would surface as a typed error, not silent corruption.
    Concurrency is achieved by opening several clients — the bench load
    generator runs one per simulated tenant thread. *)

type t

val connect : Server.addr -> (t, string) result
(** Connect to a daemon.  [Error] (with the connect failure) rather
    than an exception, so load generators can poll for startup. *)

val request :
  t -> Protocol.select -> (Protocol.reply_body, string) result
(** Submit one selection request and block for its reply.  [Error] only
    for transport-level failures (daemon gone, frame truncated,
    undecodable or mis-addressed reply); application-level failures
    come back as [Ok (`Error (code, msg))]. *)

val ping : t -> (unit, string) result

val close : t -> unit
(** Idempotent. *)
