type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* -------- printing -------- *)

let add_escaped b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let add_num b v =
  if not (Float.is_finite v) then Buffer.add_char b '0'
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" v)
  else Buffer.add_string b (Printf.sprintf "%.17g" v)

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num v -> add_num b v
    | Str s -> add_escaped b s
    | List vs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_char b ',';
            go v)
          vs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            add_escaped b k;
            Buffer.add_char b ':';
            go v)
          kvs;
        Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* -------- parsing -------- *)

exception Bad of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some v -> v
    | None -> fail "bad \\u escape"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | '/' -> Buffer.add_char b '/'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'b' -> Buffer.add_char b '\b'
           | 'f' -> Buffer.add_char b '\012'
           | 'u' ->
               let cp = hex4 () in
               (* Combine a surrogate pair when one follows; a lone
                  surrogate degrades to U+FFFD. *)
               let cp =
                 if cp >= 0xD800 && cp <= 0xDBFF then
                   if
                     !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                   then begin
                     pos := !pos + 2;
                     let lo = hex4 () in
                     if lo >= 0xDC00 && lo <= 0xDFFF then
                       0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                     else 0xFFFD
                   end
                   else 0xFFFD
                 else if cp >= 0xDC00 && cp <= 0xDFFF then 0xFFFD
                 else cp
               in
               Buffer.add_utf_8_uchar b (Uchar.of_int cp)
           | _ -> fail "unknown escape");
          go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | Null | Bool _ | Num _ | Str _ | List _ -> None
