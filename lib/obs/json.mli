(** Minimal JSON tree, printer and parser.

    The telemetry subsystem must emit (Chrome trace-event files, metric
    dumps) and validate (the [trace-check] CLI command, the test suite)
    JSON without pulling an external dependency into every library that
    links [t1000_obs].  This module is deliberately small: a value
    tree, a deterministic printer, and a strict recursive-descent
    parser — enough for trace files, not a general-purpose codec. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering.  Strings are escaped per RFC 8259; integral
    numbers print without a fractional part; non-finite numbers (which
    JSON cannot represent) degrade to [0]. *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON document (trailing whitespace
    allowed, trailing garbage rejected).  [Error msg] carries a
    character offset. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the value bound to [k], if any; [None] on
    non-objects. *)
