(* Per-domain shards: every recording op touches only the calling
   domain's hashtables, so there is no locking on the hot paths.  The
   global registry (mutex-protected, touched once per domain lifetime)
   exists solely so [snapshot] can find every shard — including those
   of worker domains that have since been joined, whose totals must
   survive them. *)

let n_buckets = 64

type hist = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

type shard = {
  counters : (string, int ref) Hashtbl.t;
  fcounters : (string, float ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let registry : shard list ref = ref []
let registry_mutex = Mutex.create ()

let shard_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          counters = Hashtbl.create 32;
          fcounters = Hashtbl.create 16;
          gauges = Hashtbl.create 8;
          hists = Hashtbl.create 8;
        }
      in
      Mutex.lock registry_mutex;
      registry := s :: !registry;
      Mutex.unlock registry_mutex;
      s)

let shard () = Domain.DLS.get shard_key

let cell tbl name init =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
      let c = init () in
      Hashtbl.add tbl name c;
      c

let incr ?(by = 1) name =
  let r = cell (shard ()).counters name (fun () -> ref 0) in
  r := !r + by

let add_float name v =
  let r = cell (shard ()).fcounters name (fun () -> ref 0.0) in
  r := !r +. v

let set_gauge name v =
  let r = cell (shard ()).gauges name (fun () -> ref neg_infinity) in
  r := v

let bucket_of v =
  (* The negated comparison also routes NaN to bucket 0. *)
  if not (v >= 1.0) then 0
  else
    let _, e = Float.frexp v in
    min (n_buckets - 1) e

let bucket_lo i = if i = 0 then neg_infinity else Float.ldexp 1.0 (i - 1)
let bucket_hi i = Float.ldexp 1.0 i

let observe name v =
  let h =
    cell (shard ()).hists name (fun () ->
        {
          h_count = 0;
          h_sum = 0.0;
          h_min = infinity;
          h_max = neg_infinity;
          h_buckets = Array.make n_buckets 0;
        })
  in
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let time name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect f ~finally:(fun () ->
      add_float (name ^ ".seconds") (Unix.gettimeofday () -. t0);
      incr (name ^ ".calls"))

(* -------- merged read side -------- *)

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : (int * int) list;
}

type snapshot = {
  counters : (string * int) list;
  fcounters : (string * float) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
}

let shards () =
  Mutex.lock registry_mutex;
  let ss = !registry in
  Mutex.unlock registry_mutex;
  ss

let sorted_bindings fold tbls =
  let acc = Hashtbl.create 32 in
  List.iter (fun tbl -> Hashtbl.iter (fold acc) tbl) tbls;
  Hashtbl.fold (fun k v l -> (k, v) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot () =
  let ss = shards () in
  let counters =
    sorted_bindings
      (fun acc name r ->
        Hashtbl.replace acc name
          (!r + Option.value ~default:0 (Hashtbl.find_opt acc name)))
      (List.map (fun (s : shard) -> s.counters) ss)
  in
  let fcounters =
    sorted_bindings
      (fun acc name r ->
        Hashtbl.replace acc name
          (!r +. Option.value ~default:0.0 (Hashtbl.find_opt acc name)))
      (List.map (fun (s : shard) -> s.fcounters) ss)
  in
  let gauges =
    sorted_bindings
      (fun acc name r ->
        Hashtbl.replace acc name
          (Float.max !r
             (Option.value ~default:neg_infinity (Hashtbl.find_opt acc name))))
      (List.map (fun (s : shard) -> s.gauges) ss)
  in
  let histograms =
    let acc : (string, hist) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun s ->
        Hashtbl.iter
          (fun name (h : hist) ->
            match Hashtbl.find_opt acc name with
            | None ->
                Hashtbl.add acc name
                  {
                    h_count = h.h_count;
                    h_sum = h.h_sum;
                    h_min = h.h_min;
                    h_max = h.h_max;
                    h_buckets = Array.copy h.h_buckets;
                  }
            | Some m ->
                m.h_count <- m.h_count + h.h_count;
                m.h_sum <- m.h_sum +. h.h_sum;
                if h.h_min < m.h_min then m.h_min <- h.h_min;
                if h.h_max > m.h_max then m.h_max <- h.h_max;
                Array.iteri
                  (fun i c -> m.h_buckets.(i) <- m.h_buckets.(i) + c)
                  h.h_buckets)
          s.hists)
      ss;
    Hashtbl.fold
      (fun name (h : hist) l ->
        let buckets = ref [] in
        for i = n_buckets - 1 downto 0 do
          if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
        done;
        ( name,
          {
            count = h.h_count;
            sum = h.h_sum;
            min = h.h_min;
            max = h.h_max;
            buckets = !buckets;
          } )
        :: l)
      acc []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  { counters; fcounters; gauges; histograms }

let get name =
  List.fold_left
    (fun acc (s : shard) ->
      match Hashtbl.find_opt s.counters name with
      | Some r -> acc + !r
      | None -> acc)
    0 (shards ())

let get_float name =
  List.fold_left
    (fun acc (s : shard) ->
      match Hashtbl.find_opt s.fcounters name with
      | Some r -> acc +. !r
      | None -> acc)
    0.0 (shards ())

let reset () =
  Mutex.lock registry_mutex;
  List.iter
    (fun (s : shard) ->
      Hashtbl.reset s.counters;
      Hashtbl.reset s.fcounters;
      Hashtbl.reset s.gauges;
      Hashtbl.reset s.hists)
    !registry;
  Mutex.unlock registry_mutex

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  if s.counters <> [] then begin
    Format.fprintf ppf "counters:@,";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-40s %d@," name v)
      s.counters
  end;
  if s.fcounters <> [] then begin
    Format.fprintf ppf "accumulators:@,";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-40s %.6f@," name v)
      s.fcounters
  end;
  if s.gauges <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter
      (fun (name, v) -> Format.fprintf ppf "  %-40s %g@," name v)
      s.gauges
  end;
  if s.histograms <> [] then begin
    Format.fprintf ppf "histograms:@,";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf "  %s: count %d, sum %g, min %g, max %g, mean %g@,"
          name h.count h.sum
          (if h.count = 0 then 0.0 else h.min)
          (if h.count = 0 then 0.0 else h.max)
          (if h.count = 0 then 0.0 else h.sum /. float_of_int h.count);
        List.iter
          (fun (i, c) ->
            Format.fprintf ppf "    [%g, %g)%-20s %d@," (bucket_lo i)
              (bucket_hi i) "" c)
          h.buckets)
      s.histograms
  end;
  Format.fprintf ppf "@]"

let to_json s =
  let hist_json (h : histogram) =
    Json.Obj
      [
        ("count", Json.Num (float_of_int h.count));
        ("sum", Json.Num h.sum);
        ("min", Json.Num (if h.count = 0 then 0.0 else h.min));
        ("max", Json.Num (if h.count = 0 then 0.0 else h.max));
        ( "buckets",
          Json.List
            (List.map
               (fun (i, c) ->
                 Json.Obj
                   [
                     ("lo", Json.Num (bucket_lo i));
                     ("hi", Json.Num (bucket_hi i));
                     ("count", Json.Num (float_of_int c));
                   ])
               h.buckets) );
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) s.counters)
      );
      ( "accumulators",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) s.fcounters) );
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) s.histograms) );
    ]
