(** Domain-safe process-wide metrics: counters, gauges, timers and
    log-bucketed histograms.

    Every recording operation writes only to the calling domain's
    private shard (a [Domain.DLS] slot), so the hot paths — the
    simulator, the worker pool, the memo tables — record events with no
    locking and no cross-domain contention.  {!snapshot} merges all
    shards into one read-only view: counters and timers sum, gauges
    take the maximum, histograms add bucket-wise.

    {b Determinism contract.}  Metrics are strictly observational:
    nothing in this module feeds back into simulation results, and no
    metric is printed unless a caller explicitly asks ({!pp},
    [T1000_METRICS=1], [t1000_cli stats]).  Recorded {e values} (timer
    seconds, wait histograms) vary run to run; the {e streams they
    describe} do not.

    Counter increments are plain (per-domain) writes; a {!snapshot}
    taken while worker domains are still recording may lag their most
    recent events.  After the domains have been joined (every
    [Pool.parallel_map*] joins before returning) the merged view is
    exact — the test suite relies on this. *)

val incr : ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter. *)

val add_float : string -> float -> unit
(** Add to the named float accumulator (e.g. seconds of busy time). *)

val set_gauge : string -> float -> unit
(** Set the named gauge in this domain's shard; the merged value is the
    maximum across shards. *)

val observe : string -> float -> unit
(** Record one sample into the named log-bucketed histogram. *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] runs [f ()], adding its wall-clock duration to the
    [name ^ ".seconds"] float accumulator and bumping the
    [name ^ ".calls"] counter — even when [f] raises.  This is how the
    per-phase breakdown in [BENCH_engine.json] is sourced. *)

val get : string -> int
(** Merged value of a counter (0 when never written). *)

val get_float : string -> float
(** Merged value of a float accumulator (0.0 when never written). *)

(** {1 Histogram buckets}

    Buckets are powers of two: bucket 0 holds samples below 1 (and
    non-finite ones), bucket [k >= 1] holds samples in
    [[2{^k-1}, 2{^k})].  64 buckets cover every finite float the
    system records; the top bucket absorbs the overflow. *)

val n_buckets : int
val bucket_of : float -> int
val bucket_lo : int -> float
(** Inclusive lower bound of a bucket ([neg_infinity] for bucket 0). *)

val bucket_hi : int -> float
(** Exclusive upper bound of a bucket. *)

type histogram = {
  count : int;
  sum : float;
  min : float;  (** [infinity] when [count = 0] *)
  max : float;  (** [neg_infinity] when [count = 0] *)
  buckets : (int * int) list;
      (** (bucket index, samples) for non-empty buckets, ascending *)
}

type snapshot = {
  counters : (string * int) list;
  fcounters : (string * float) list;
  gauges : (string * float) list;
  histograms : (string * histogram) list;
}
(** All four sections sorted by name, so rendering a snapshot is
    deterministic given the same recorded events. *)

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every shard.  Only meaningful while no worker domain is
    recording (tests, and the bench harness between timing legs). *)

val pp : Format.formatter -> snapshot -> unit
(** Flat text dump, one metric per line, sections sorted by name. *)

val to_json : snapshot -> Json.t
