(** Span tracing with Chrome trace-event export.

    A span is a named, timed interval on one domain; nesting falls out
    of the timestamps (a child span starts after and ends before its
    parent on the same [tid]).  Spans record into per-domain buffers
    (no locking on the hot path) and are merged at export into a
    Chrome trace-event JSON document that Perfetto and
    [chrome://tracing] load directly, plus a flat per-name text
    summary.

    Tracing is {b off by default}: {!with_span} then runs its thunk
    with nothing but one atomic load of overhead, and nothing is ever
    buffered.  The CLI's [--trace FILE] and [stats] commands switch it
    on.  Like {!Metrics}, the tracer is strictly observational — paper
    outputs are byte-identical with tracing on and off, which [ci.sh]
    asserts.

    Timestamps come from a per-domain monotonised wall clock
    (successive reads on one domain never decrease), so span trees are
    well-nested even across a system clock step. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span ~cat name f] runs [f ()] inside a span; the span is
    recorded when [f] returns {e or raises}.  [cat] becomes the Chrome
    event category (the subsystem: ["sim"], ["pool"],
    ["experiment"]). *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_us : float;  (** start, microseconds since process start *)
  ev_dur_us : float;
  ev_tid : int;  (** recording domain's id *)
}

val events : unit -> event list
(** Every recorded span, merged across domains, sorted by start time
    (ties: longer span — the parent — first). *)

val reset : unit -> unit
(** Drop all recorded spans.  Only meaningful while no worker domain
    is recording. *)

val to_chrome_json : unit -> Json.t
(** The recorded spans as a Chrome trace-event document:
    [{"traceEvents": [{"name", "cat", "ph": "X", "ts", "dur", "pid",
    "tid"}, ...], "displayTimeUnit": "ms"}]. *)

val write_chrome : string -> unit
(** Serialise {!to_chrome_json} to a file. *)

val summary : unit -> ((string * string) * (int * float)) list
(** Aggregated ((cat, name), (span count, total microseconds)),
    sorted by category then name. *)

val pp_summary : Format.formatter -> unit -> unit
(** The flat text rendering of {!summary}. *)

val validate_chrome :
  ?require_cats:string list -> string -> (int, string) result
(** Validate a serialised trace: it must parse as JSON, carry a
    [traceEvents] array whose every element has the complete-event
    shape ([name]/[cat] strings, [ph = "X"], finite [ts], non-negative
    [dur], numeric [tid]), and contain at least one event of every
    category in [require_cats].  [Ok n] is the event count.  This is
    what the [trace-check] CLI command and the CI gate run. *)
