(* Per-domain span buffers, same sharding discipline as Metrics: the
   recording path touches only domain-local state, the merge happens at
   export, after the worker domains have been joined. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ts_us : float;
  ev_dur_us : float;
  ev_tid : int;
}

type buf = {
  tid : int;
  mutable last_us : float;  (* monotonising floor for this domain *)
  mutable recorded : event list;
}

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* All timestamps are relative to process start, so traces start near
   t=0 regardless of wall-clock epoch. *)
let epoch = Unix.gettimeofday ()

let registry : buf list ref = ref []
let registry_mutex = Mutex.create ()

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          tid = (Domain.self () :> int);
          last_us = 0.0;
          recorded = [];
        }
      in
      Mutex.lock registry_mutex;
      registry := b :: !registry;
      Mutex.unlock registry_mutex;
      b)

let buf () = Domain.DLS.get buf_key

(* Strictly increasing per domain (ties bumped by 1 ns), so a parent
   span always starts strictly before its children and the sorted event
   list is deterministic even when two reads land in the same clock
   tick. *)
let now_us b =
  let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
  let t = if t > b.last_us then t else b.last_us +. 0.001 in
  b.last_us <- t;
  t

let with_span ?(cat = "") name f =
  if not (enabled ()) then f ()
  else begin
    let b = buf () in
    let t0 = now_us b in
    Fun.protect f ~finally:(fun () ->
        let t1 = now_us b in
        b.recorded <-
          {
            ev_name = name;
            ev_cat = cat;
            ev_ts_us = t0;
            ev_dur_us = t1 -. t0;
            ev_tid = b.tid;
          }
          :: b.recorded)
  end

let bufs () =
  Mutex.lock registry_mutex;
  let bs = !registry in
  Mutex.unlock registry_mutex;
  bs

let events () =
  List.concat_map (fun b -> b.recorded) (bufs ())
  |> List.sort (fun a b ->
         compare
           (a.ev_ts_us, -.a.ev_dur_us, a.ev_tid, a.ev_name)
           (b.ev_ts_us, -.b.ev_dur_us, b.ev_tid, b.ev_name))

let reset () =
  Mutex.lock registry_mutex;
  List.iter (fun b -> b.recorded <- []) !registry;
  Mutex.unlock registry_mutex

let to_chrome_json () =
  let ev e =
    Json.Obj
      [
        ("name", Json.Str e.ev_name);
        ("cat", Json.Str (if e.ev_cat = "" then "default" else e.ev_cat));
        ("ph", Json.Str "X");
        ("ts", Json.Num e.ev_ts_us);
        ("dur", Json.Num e.ev_dur_us);
        ("pid", Json.Num 1.0);
        ("tid", Json.Num (float_of_int e.ev_tid));
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map ev (events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_chrome_json ()));
      output_char oc '\n')

let summary () =
  let acc : (string * string, (int * float) ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun e ->
      let key = (e.ev_cat, e.ev_name) in
      match Hashtbl.find_opt acc key with
      | Some r ->
          let n, us = !r in
          r := (n + 1, us +. e.ev_dur_us)
      | None -> Hashtbl.add acc key (ref (1, e.ev_dur_us)))
    (events ());
  Hashtbl.fold (fun k r l -> (k, !r) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp_summary ppf () =
  Format.fprintf ppf "@[<v>spans:@,";
  List.iter
    (fun ((cat, name), (n, us)) ->
      Format.fprintf ppf "  %-12s %-32s %6d span(s) %12.3f ms@,"
        (if cat = "" then "default" else cat)
        name n (us /. 1e3))
    (summary ());
  Format.fprintf ppf "@]"

let validate_chrome ?(require_cats = []) s =
  let ( let* ) r f = Result.bind r f in
  let* doc = Json.of_string s in
  let* evs =
    match Json.member "traceEvents" doc with
    | Some (Json.List evs) -> Ok evs
    | Some _ -> Error "traceEvents is not an array"
    | None -> Error "missing traceEvents array"
  in
  let check_event i e =
    let str k =
      match Json.member k e with
      | Some (Json.Str s) -> Ok s
      | _ -> Error (Printf.sprintf "event %d: missing string %S" i k)
    in
    let num k =
      match Json.member k e with
      | Some (Json.Num v) when Float.is_finite v -> Ok v
      | _ -> Error (Printf.sprintf "event %d: missing finite number %S" i k)
    in
    let* _name = str "name" in
    let* cat = str "cat" in
    let* ph = str "ph" in
    let* _ts = num "ts" in
    let* dur = num "dur" in
    let* _tid = num "tid" in
    if ph <> "X" then
      Error (Printf.sprintf "event %d: expected ph \"X\", got %S" i ph)
    else if dur < 0.0 then Error (Printf.sprintf "event %d: negative dur" i)
    else Ok cat
  in
  let* cats =
    List.fold_left
      (fun acc (i, e) ->
        let* cats = acc in
        let* cat = check_event i e in
        Ok (cat :: cats))
      (Ok [])
      (List.mapi (fun i e -> (i, e)) evs)
  in
  let* () =
    match
      List.filter (fun c -> not (List.mem c cats)) require_cats
    with
    | [] -> Ok ()
    | missing ->
        Error
          (Printf.sprintf "no span from: %s" (String.concat ", " missing))
  in
  Ok (List.length evs)
