(* Command-line driver for the T1000 toolchain.

   t1000_cli list                     list the benchmark suite
   t1000_cli disasm WORKLOAD          disassemble a kernel
   t1000_cli profile WORKLOAD         hottest instructions + widths
   t1000_cli mine WORKLOAD [opts]     show the selected extended instrs
   t1000_cli run WORKLOAD [opts]      simulate and report speedup
   t1000_cli experiment ID...         regenerate paper artifacts
   t1000_cli stats WORKLOAD [opts]    run with telemetry on, dump metrics
   t1000_cli trace-check FILE         validate a --trace output file *)

open Cmdliner

(* Map the fault taxonomy onto process exit codes (2 = misconfigured
   run, 3 = simulation fault / partial results) instead of dying with a
   raw OCaml backtrace. *)
let with_faults f =
  try f () with
  | T1000.Fault.Error fault ->
      Format.eprintf "t1000_cli: %s@." (T1000.Fault.to_string fault);
      exit (T1000.Fault.exit_code fault)
  | ( T1000_ooo.Sim.Sim_stuck _ | T1000_ooo.Sim.Selfcheck_violation _
    | T1000_machine.Interp.Fault _ ) as e ->
      let fault = T1000.Fault.of_exn e in
      Format.eprintf "t1000_cli: %s@." (T1000.Fault.to_string fault);
      exit (T1000.Fault.exit_code fault)

(* Surface a bad T1000_* environment variable as a one-line error (exit
   code 2) before any command runs, instead of an exception mid-sweep. *)
let validate_env () =
  try
    ignore (T1000.Pool.default_njobs ());
    ignore (T1000_ooo.Sim.env_max_cycles ());
    ignore (T1000.Fault.getenv_bool "T1000_SELFCHECK");
    ignore (T1000.Pool.env_chaos ());
    ignore (T1000.Pool.env_chaos_seed ());
    ignore (T1000.Pool.env_retries ());
    ignore (T1000.Fault.getenv_bool "T1000_METRICS");
    ignore (T1000.Checkpoint.default_dir_validated ());
    ignore (T1000.Pool.env_backoff_scale ());
    ignore (T1000_serve.Server.env_queue_depth ());
    ignore (T1000_serve.Server.env_deadline_ms ());
    ignore (T1000_serve.Server.env_addr ())
  with
  | Invalid_argument msg ->
      Format.eprintf "t1000_cli: %s@." msg;
      exit 2
  | T1000.Fault.Error fault ->
      Format.eprintf "t1000_cli: %s@." (T1000.Fault.to_string fault);
      exit 2

(* --trace FILE: switch the span tracer on and write the Chrome trace
   at process exit.  Registered via at_exit, not Fun.protect, so the
   trace still lands on the fault paths that call [exit 2]/[exit 3]. *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record span traces and write a Chrome trace-event JSON file \
           (loadable in Perfetto or chrome://tracing) at exit.  Strictly \
           observational: stdout is byte-identical with and without this \
           flag.")

let setup_trace = function
  | None -> ()
  | Some path ->
      T1000.Obs.Tracer.set_enabled true;
      at_exit (fun () ->
          T1000.Obs.Tracer.write_chrome path;
          Format.eprintf "t1000_cli: trace written to %s@." path)

(* The suite the experiment engine runs on: all workloads, or the
   T1000_WORKLOADS comma-separated subset (same convention as bench). *)
let suite_workloads () =
  match Sys.getenv_opt "T1000_WORKLOADS" with
  | None -> T1000_workloads.Registry.all
  | Some s ->
      let names =
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun n -> n <> "")
      in
      if names = [] then T1000_workloads.Registry.all
      else
        List.map
          (fun n ->
            match T1000_workloads.Registry.find n with
            | Some w -> w
            | None ->
                Format.eprintf
                  "t1000_cli: unknown workload %S in T1000_WORKLOADS \
                   (known: %s)@."
                  n
                  (String.concat ", " T1000_workloads.Registry.names);
                exit 2)
          names

let find_workload name =
  match T1000_workloads.Registry.find name with
  | Some w -> Ok w
  | None ->
      Error
        (Printf.sprintf "unknown workload %S (try: %s)" name
           (String.concat ", " T1000_workloads.Registry.names))

let workload_conv =
  Arg.conv
    ( (fun s -> Result.map_error (fun e -> `Msg e) (find_workload s)),
      fun ppf w ->
        Format.pp_print_string ppf w.T1000_workloads.Workload.name )

let workload_arg =
  Arg.(
    required
    & pos 0 (some workload_conv) None
    & info [] ~docv:"WORKLOAD" ~doc:"Benchmark name (see $(b,list)).")

let method_arg =
  let parse = function
    | "baseline" -> Ok T1000.Runner.Baseline
    | "greedy" -> Ok T1000.Runner.Greedy
    | "selective" -> Ok T1000.Runner.Selective
    | s -> Error (`Msg (Printf.sprintf "unknown method %S" s))
  in
  let print ppf m =
    Format.pp_print_string ppf
      (match m with
      | T1000.Runner.Baseline -> "baseline"
      | T1000.Runner.Greedy -> "greedy"
      | T1000.Runner.Selective -> "selective")
  in
  let method_conv = Arg.conv (parse, print) in
  Arg.(
    value
    & opt method_conv T1000.Runner.Selective
    & info [ "m"; "method" ] ~docv:"METHOD"
        ~doc:"Selection algorithm: baseline, greedy or selective.")

let pfus_arg =
  let parse = function
    | "unlimited" -> Ok None
    | s -> (
        match int_of_string_opt s with
        | Some n when n >= 0 -> Ok (Some n)
        | Some _ | None -> Error (`Msg "PFUS must be a count or 'unlimited'"))
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "unlimited"
    | Some n -> Format.pp_print_int ppf n
  in
  let pfus_conv = Arg.conv (parse, print) in
  Arg.(
    value
    & opt pfus_conv (Some 2)
    & info [ "p"; "pfus" ] ~docv:"PFUS"
        ~doc:"Number of PFUs, or 'unlimited'.")

let penalty_arg =
  Arg.(
    value & opt int 10
    & info [ "r"; "penalty" ] ~docv:"CYCLES"
        ~doc:"PFU reconfiguration penalty in cycles.")

let selfcheck_arg =
  Arg.(
    value & flag
    & info [ "selfcheck" ]
        ~doc:
          "Audit the simulator's RUU/PFU-file invariants at every commit \
           and cross-validate architectural results against the \
           functional interpreter (also: $(b,T1000_SELFCHECK=1)).")

let setup_of ?selfcheck method_ pfus penalty =
  T1000.Runner.setup ~n_pfus:pfus ~penalty ?selfcheck method_

(* Only force self-check on when the flag is given; otherwise leave the
   T1000_SELFCHECK environment default in charge. *)
let selfcheck_opt flag = if flag then Some true else None

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun w ->
        Format.printf "%-10s  %s@." w.T1000_workloads.Workload.name
          w.T1000_workloads.Workload.description)
      T1000_workloads.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List the benchmark suite.")
    Term.(const run $ const ())

(* ---- disasm ---- *)

let disasm_cmd =
  let run w =
    Format.printf "%a@." T1000_asm.Program.pp
      w.T1000_workloads.Workload.program
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a kernel.")
    Term.(const run $ workload_arg)

(* ---- profile ---- *)

let profile_cmd =
  let run w =
    let a = T1000.Runner.analyze w in
    Format.printf "%d dynamic instructions, serial weight %d@."
      (T1000_profile.Profile.total_instrs a.T1000.Runner.profile)
      (T1000_profile.Profile.total_weight a.T1000.Runner.profile);
    Format.printf "dynamic instruction mix:@.%a@.@." T1000_profile.Mix.pp
      (T1000_profile.Mix.dynamic_mix a.T1000.Runner.profile);
    Format.printf "%a@."
      (T1000_profile.Profile.pp_hot ~limit:25)
      a.T1000.Runner.profile
  in
  Cmd.v
    (Cmd.info "profile" ~doc:"Profile a kernel (counts and bitwidths).")
    Term.(const run $ workload_arg)

(* ---- mine ---- *)

let mine_cmd =
  let run w method_ pfus penalty save =
    with_faults @@ fun () ->
    let r =
      T1000.Runner.run ~analysis:(T1000.Runner.analyze w) w
        (setup_of method_ pfus penalty)
    in
    Format.printf "%a@." T1000_select.Extinstr.pp r.T1000.Runner.table;
    List.iter
      (fun e ->
        Format.printf "@.ext#%d (%d LUTs, %d occurrence(s)):@.%a@."
          e.T1000_select.Extinstr.eid e.T1000_select.Extinstr.lut_cost
          (List.length e.T1000_select.Extinstr.occs)
          T1000_dfg.Dfg.pp e.T1000_select.Extinstr.dfg)
      (T1000_select.Extinstr.entries r.T1000.Runner.table);
    match save with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (T1000_select.Extinstr.to_text r.T1000.Runner.table);
        close_out oc;
        Format.printf "@.table saved to %s@." path
  in
  let save =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "save" ] ~docv:"FILE"
          ~doc:"Write the selection as an extended-instruction table file.")
  in
  Cmd.v
    (Cmd.info "mine"
       ~doc:"Show the extended instructions a selection algorithm chooses.")
    Term.(const run $ workload_arg $ method_arg $ pfus_arg $ penalty_arg $ save)

(* ---- replay ---- *)

let replay_cmd =
  let run w path pfus penalty =
    with_faults @@ fun () ->
    let text = In_channel.with_open_text path In_channel.input_all in
    match T1000_select.Extinstr.of_text text with
    | Error msg ->
        Format.eprintf "cannot load %s: %s@." path msg;
        exit 1
    | Ok table ->
        let rw = T1000_select.Rewrite.apply w.T1000_workloads.Workload.program table in
        T1000.Runner.verify_outputs w table rw.T1000_select.Rewrite.program;
        let machine =
          T1000_ooo.Mconfig.with_pfus ~penalty pfus T1000_ooo.Mconfig.default
        in
        let ext_latency eid =
          (T1000_select.Extinstr.get table eid).T1000_select.Extinstr.latency
        in
        let stats =
          T1000_ooo.Sim.run ~mconfig:machine ~ext_latency
            ~ext_eval:(T1000_select.Extinstr.eval table)
            ~init:(fun mem regs -> w.T1000_workloads.Workload.init mem regs)
            rw.T1000_select.Rewrite.program
        in
        Format.printf
          "replayed %d configurations (%d sites collapsed, outputs            verified)@.%a@."
          (T1000_select.Extinstr.count table)
          rw.T1000_select.Rewrite.collapsed T1000_ooo.Stats.pp stats
  in
  let path =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"TABLE" ~doc:"Extended-instruction table file.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Rewrite and simulate a workload with a previously saved           extended-instruction table (the paper's second input file).")
    Term.(const run $ workload_arg $ path $ pfus_arg $ penalty_arg)

(* ---- run ---- *)

let run_cmd =
  let run w method_ pfus penalty selfcheck trace =
    with_faults @@ fun () ->
    setup_trace trace;
    let selfcheck = selfcheck_opt selfcheck in
    let analysis = T1000.Runner.analyze w in
    let baseline =
      T1000.Runner.run ~analysis w
        (T1000.Runner.setup ?selfcheck T1000.Runner.Baseline)
    in
    let r =
      T1000.Runner.run ~analysis w (setup_of ?selfcheck method_ pfus penalty)
    in
    Format.printf "baseline:@.%a@.@." T1000_ooo.Stats.pp
      baseline.T1000.Runner.stats;
    Format.printf "with PFUs:@.%a@.@." T1000_ooo.Stats.pp
      r.T1000.Runner.stats;
    Format.printf "speedup: %.3f@." (T1000.Runner.speedup ~baseline r)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a workload and report the speedup.")
    Term.(
      const run $ workload_arg $ method_arg $ pfus_arg $ penalty_arg
      $ selfcheck_arg $ trace_arg)

(* ---- dot ---- *)

let dot_cmd =
  let run w what =
    match what with
    | "cfg" ->
        print_string
          (T1000_asm.Cfg.to_dot
             (T1000_asm.Cfg.of_program w.T1000_workloads.Workload.program))
    | "ext" ->
        let r =
          T1000.Runner.run ~analysis:(T1000.Runner.analyze w) w
            (T1000.Runner.setup ~n_pfus:(Some 4) T1000.Runner.Selective)
        in
        List.iter
          (fun e ->
            print_string
              (T1000_dfg.Dfg.to_dot
                 ~name:(Printf.sprintf "ext%d" e.T1000_select.Extinstr.eid)
                 e.T1000_select.Extinstr.dfg))
          (T1000_select.Extinstr.entries r.T1000.Runner.table)
    | other -> Format.eprintf "expected 'cfg' or 'ext', got %S@." other
  in
  let what =
    Arg.(
      value
      & pos 1 string "cfg"
      & info [] ~docv:"WHAT" ~doc:"What to render: cfg or ext.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz for a kernel's CFG or its mined DFGs.")
    Term.(const run $ workload_arg $ what)

(* ---- experiment ---- *)

let experiment_cmd =
  let run jobs resume selfcheck trace ids =
    setup_trace trace;
    (match jobs with
    | Some n when n < 1 ->
        Format.eprintf "t1000_cli: -j/--jobs must be >= 1, got %d@." n;
        exit 2
    | Some n -> Unix.putenv "T1000_NJOBS" (string_of_int n)
    | None -> ());
    if selfcheck then Unix.putenv "T1000_SELFCHECK" "1";
    let checkpoint_dir = T1000.Checkpoint.default_dir () in
    if resume && checkpoint_dir = None then begin
      Format.eprintf
        "t1000_cli: --resume needs %s to point at the journal directory@."
        T1000.Checkpoint.env_var;
      exit 2
    end;
    let ctx = T1000.Experiment.create_ctx ~workloads:(suite_workloads ()) () in
    (* One journal file per experiment id; a plain (non --resume) run
       starts it afresh so stale records never leak into new results. *)
    let journal_for id =
      Option.map
        (fun dir ->
          let j = T1000.Checkpoint.create ~fresh:(not resume) ~dir ~run:id () in
          List.iter
            (Format.eprintf "t1000_cli: dropped corrupt checkpoint record: %s@.")
            (T1000.Checkpoint.corrupt j);
          j)
        checkpoint_dir
    in
    let faults = ref [] in
    let collect : type row. row T1000.Experiment.partial -> row list =
     fun p ->
      faults := !faults @ p.T1000.Experiment.faults;
      p.T1000.Experiment.rows
    in
    let dispatch id =
      let journal = journal_for id in
      match id with
      | "f2" ->
          Format.printf "%a@." T1000.Report.pp_figure2
            (collect (T1000.Experiment.figure2_result ?journal ctx))
      | "t41" ->
          Format.printf "%a@." T1000.Report.pp_table41
            (collect (T1000.Experiment.table41_result ?journal ctx))
      | "f6" ->
          Format.printf "%a@." T1000.Report.pp_figure6
            (collect (T1000.Experiment.figure6_result ?journal ctx))
      | "s52" ->
          Format.printf "%a@." T1000.Report.pp_penalty_sweep
            (collect (T1000.Experiment.penalty_sweep_result ?journal ctx))
      | "f7" ->
          let r, fs = T1000.Experiment.figure7_result ?journal ctx in
          faults := !faults @ fs;
          Format.printf "%a@." T1000.Report.pp_figure7 r
      | other -> (
          match T1000.Experiment.ablation_result ?journal ctx other with
          | Some p ->
              Format.printf "%a@."
                (T1000.Report.pp_sweep ~title:("Ablation " ^ other))
                (collect p)
          | None -> Format.eprintf "unknown experiment %S@." other)
    in
    with_faults (fun () -> List.iter dispatch ids);
    match !faults with
    | [] -> ()
    | fs ->
        Format.eprintf "%a@." T1000.Report.pp_faults fs;
        exit 3
  in
  let ids =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiment ids: f2 t41 f6 s52 f7, or ablations a1-a8.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the experiment engine (overrides \
             $(b,T1000_NJOBS); 1 = sequential).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the checkpoint journal in $(b,T1000_CHECKPOINT_DIR) \
             instead of starting it afresh: already-recorded (workload x \
             point) results are reused, only the rest are recomputed.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate paper tables/figures.")
    Term.(const run $ jobs $ resume $ selfcheck_arg $ trace_arg $ ids)

(* ---- dse ---- *)

let dse_cmd =
  let run jobs resume budget axes full json trace =
    setup_trace trace;
    (match jobs with
    | Some n when n < 1 ->
        Format.eprintf "t1000_cli: -j/--jobs must be >= 1, got %d@." n;
        exit 2
    | Some n -> Unix.putenv "T1000_NJOBS" (string_of_int n)
    | None -> ());
    if budget < 1 then begin
      Format.eprintf "t1000_cli: --budget must be >= 1, got %d@." budget;
      exit 2
    end;
    let space =
      match axes with
      | None -> T1000_dse.Space.default
      | Some spec -> (
          match T1000_dse.Space.of_spec spec with
          | Ok s -> s
          | Error msg ->
              Format.eprintf "t1000_cli: bad --axes: %s@." msg;
              exit 2)
    in
    let checkpoint_dir = T1000.Checkpoint.default_dir () in
    if resume && checkpoint_dir = None then begin
      Format.eprintf
        "t1000_cli: --resume needs %s to point at the journal directory@."
        T1000.Checkpoint.env_var;
      exit 2
    end;
    with_faults @@ fun () ->
    let journal =
      Option.map
        (fun dir ->
          let j =
            T1000.Checkpoint.create ~fresh:(not resume) ~dir ~run:"dse" ()
          in
          List.iter
            (Format.eprintf "t1000_cli: dropped corrupt checkpoint record: %s@.")
            (T1000.Checkpoint.corrupt j);
          j)
        checkpoint_dir
    in
    let ctx = T1000.Experiment.create_ctx ~workloads:(suite_workloads ()) () in
    let r =
      T1000_dse.Engine.explore ?journal ~budget
        ~sample:(if full then `Full else `Coarse)
        ctx space
    in
    Format.printf "%a@." T1000_dse.Engine.pp_frontier r;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (T1000.Obs.Json.to_string (T1000_dse.Engine.to_json r));
        output_string oc "\n";
        close_out oc;
        Format.eprintf "t1000_cli: dse report written to %s@." path);
    match r.T1000_dse.Engine.faults with
    | [] -> ()
    | fs ->
        Format.eprintf "%a@." T1000.Report.pp_faults fs;
        exit 3
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains for the exploration (overrides \
             $(b,T1000_NJOBS); 1 = sequential).")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the $(b,dse) checkpoint journal in \
             $(b,T1000_CHECKPOINT_DIR) instead of starting it afresh.")
  in
  let budget =
    Arg.(
      value
      & opt int T1000_dse.Engine.default_budget
      & info [ "budget" ] ~docv:"N"
          ~doc:"Maximum number of configurations to evaluate.")
  in
  let axes =
    Arg.(
      value
      & opt (some string) None
      & info [ "axes" ] ~docv:"SPEC"
          ~doc:
            "Override the default 6-axis space: colon-separated \
             $(i,axis)=$(i,v,v,...) groups over pfus, penalty, lut, repl \
             (lru/fifo/rand), gain and width, e.g. \
             $(b,pfus=1,2,4:penalty=0,100:width=4).  Omitted axes keep \
             their defaults.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:
            "Enumerate the space exhaustively (up to the budget) instead \
             of the coarse-grid + successive-halving refinement sampler; \
             dominance pruning still applies.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the machine-readable exploration report (space, \
             counters, every measured point, frontier membership, faults).")
  in
  Cmd.v
    (Cmd.info "dse"
       ~doc:
         "Multi-objective design-space exploration: Pareto frontier of \
          (geomean speedup, LUT area, PFU count) over the PFU-count x \
          penalty x LUT-budget x replacement x gain x machine-width space, \
          with dominance pruning, checkpoint/resume and worker-pool fan-out.")
    Term.(
      const run $ jobs $ resume $ budget $ axes $ full $ json $ trace_arg)

(* ---- stats ---- *)

let stats_cmd =
  let run w method_ pfus penalty =
    with_faults @@ fun () ->
    T1000.Obs.Metrics.reset ();
    T1000.Obs.Tracer.reset ();
    T1000.Obs.Tracer.set_enabled true;
    let analysis = T1000.Runner.analyze w in
    let baseline =
      T1000.Runner.run ~analysis w (T1000.Runner.setup T1000.Runner.Baseline)
    in
    let r =
      T1000.Runner.run ~analysis w (setup_of method_ pfus penalty)
    in
    Format.printf "speedup: %.3f@.@." (T1000.Runner.speedup ~baseline r);
    Format.printf "metrics:@.%a@." T1000.Obs.Metrics.pp
      (T1000.Obs.Metrics.snapshot ());
    Format.printf "spans:@.%a@." T1000.Obs.Tracer.pp_summary ()
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a workload (baseline, then the chosen method) with telemetry \
          on, and dump the merged metric snapshot and span summary.")
    Term.(const run $ workload_arg $ method_arg $ pfus_arg $ penalty_arg)

(* ---- trace-check ---- *)

let trace_check_cmd =
  let run path cats =
    let s = In_channel.with_open_bin path In_channel.input_all in
    match T1000.Obs.Tracer.validate_chrome ~require_cats:cats s with
    | Ok n -> Format.printf "%s: valid Chrome trace, %d event(s)@." path n
    | Error msg ->
        Format.eprintf "t1000_cli: %s: %s@." path msg;
        exit 1
  in
  let path =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE" ~doc:"Chrome trace-event JSON file.")
  in
  let cats =
    Arg.(
      value
      & opt (list string) [ "sim"; "pool"; "experiment" ]
      & info [ "require" ] ~docv:"CATS"
          ~doc:
            "Comma-separated span categories the trace must contain at \
             least one event of.")
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:
         "Validate a Chrome trace-event file written by $(b,--trace): \
          well-formed JSON, complete-event shape, required categories \
          present.")
    Term.(const run $ path $ cats)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let run jobs seed cases chaos drills out_dir =
    (match jobs with
    | Some n when n < 1 ->
        Format.eprintf "t1000_cli: -j/--jobs must be >= 1, got %d@." n;
        exit 2
    | Some n -> Unix.putenv "T1000_NJOBS" (string_of_int n)
    | None -> ());
    with_faults @@ fun () ->
    Format.printf "fuzz: seed %d, %d differential case(s), %d drill(s)%s@."
      seed cases drills
      (match chaos with
      | None -> ""
      | Some p -> Printf.sprintf ", chaos soak p=%g" p);
    let o = T1000_fuzz.Fuzz.run_cases ~out_dir ~seed ~cases () in
    Format.printf "fuzz: %d case(s) in %.1f s (%.1f cases/s), %d failure(s)@."
      o.T1000_fuzz.Fuzz.cases o.T1000_fuzz.Fuzz.elapsed_s
      o.T1000_fuzz.Fuzz.cases_per_s
      (List.length o.T1000_fuzz.Fuzz.failures);
    List.iter
      (fun f -> Format.printf "%a@." T1000_fuzz.Fuzz.pp_failure f)
      o.T1000_fuzz.Fuzz.failures;
    let drill_failures =
      if drills > 0 then T1000_fuzz.Fuzz.corruption_drills ~seed ~rounds:drills ()
      else []
    in
    if drills > 0 then
      Format.printf "fuzz: %d corruption drill(s), %d failure(s)@." drills
        (List.length drill_failures);
    List.iter (Format.printf "drill failure: %s@.") drill_failures;
    let soak_failures =
      match chaos with
      | None -> []
      | Some p -> (
          match T1000_fuzz.Fuzz.chaos_soak ~p ~seed () with
          | Ok () ->
              Format.printf "fuzz: chaos soak (p=%g) byte-identical to calm@."
                p;
              []
          | Error msg ->
              Format.printf "chaos soak failure: %s@." msg;
              [ msg ])
    in
    if
      o.T1000_fuzz.Fuzz.failures <> [] || drill_failures <> []
      || soak_failures <> []
    then begin
      Format.eprintf
        "fuzz: FAILURES (reproduce any case with --seed %d; reproducer \
         artifacts under %s)@."
        seed out_dir;
      exit 3
    end
    else Format.printf "fuzz: clean@."
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains for the fuzz sweep (overrides $(b,T1000_NJOBS)).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S"
          ~doc:"Run seed; every case and drill derives from it.")
  in
  let cases =
    Arg.(
      value & opt int 200
      & info [ "cases" ] ~docv:"N"
          ~doc:"Number of differential oracle cases to run.")
  in
  let chaos =
    Arg.(
      value
      & opt (some float) None
      & info [ "chaos" ] ~docv:"P"
          ~doc:
            "Also run the chaos soak: a small experiment sweep under \
             $(b,T1000_CHAOS)=$(docv) must lose zero rows and match a calm \
             run exactly.")
  in
  let drills =
    Arg.(
      value & opt int 25
      & info [ "drills" ] ~docv:"N"
          ~doc:"Checkpoint-journal corruption drills to run (0 disables).")
  in
  let out_dir =
    Arg.(
      value & opt string "_fuzz"
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for shrunk reproducer artifacts.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: random kernels and configurations through \
          the whole pipeline against the functional interpreter, with \
          shrinking, checkpoint corruption drills and an optional chaos \
          soak.")
    Term.(const run $ jobs $ seed $ cases $ chaos $ drills $ out_dir)

(* ---- serve / client ---- *)

let addr_conv =
  Arg.conv
    ( (fun s ->
        Result.map_error (fun e -> `Msg e) (T1000_serve.Server.parse_addr s)),
      fun ppf a ->
        Format.pp_print_string ppf (T1000_serve.Server.addr_to_string a) )

let serve_cmd =
  let run socket tcp queue jobs deadline retries max_steps trace =
    with_faults @@ fun () ->
    setup_trace trace;
    (* A client that disconnects mid-reply must not kill the daemon. *)
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let base = T1000_serve.Server.default_config () in
    let addrs =
      (match socket with
      | Some p -> [ T1000_serve.Server.Unix_sock p ]
      | None -> [])
      @ (match tcp with Some a -> [ a ] | None -> [])
    in
    let addrs =
      if addrs <> [] then addrs else base.T1000_serve.Server.addrs
    in
    let cfg =
      {
        T1000_serve.Server.addrs;
        queue_depth =
          Option.value queue ~default:base.T1000_serve.Server.queue_depth;
        njobs = Option.value jobs ~default:base.T1000_serve.Server.njobs;
        default_deadline_ms =
          (match deadline with
          | Some _ -> deadline
          | None -> base.T1000_serve.Server.default_deadline_ms);
        retries =
          (match retries with
          | Some _ -> retries
          | None -> base.T1000_serve.Server.retries);
        max_steps =
          Option.value max_steps ~default:base.T1000_serve.Server.max_steps;
      }
    in
    let t = T1000_serve.Server.create cfg in
    List.iter
      (fun a ->
        Format.printf "t1000 serve: listening on %s@."
          (T1000_serve.Server.addr_to_string a))
      (T1000_serve.Server.bound_addrs t);
    let stop _ = T1000_serve.Server.stop t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    T1000_serve.Server.run t;
    Format.printf "t1000 serve: drained, %d replies sent@."
      (T1000_serve.Server.answered t)
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv).")
  in
  let tcp =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "tcp" ] ~docv:"ADDR"
          ~doc:
            "Listen on $(docv) (tcp:HOST:PORT; port 0 binds an ephemeral \
             port, printed at startup).")
  in
  let queue =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission queue depth; a full queue sheds with a typed \
             'overloaded' reply (also: $(b,T1000_SERVE_QUEUE)).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker domains (also: $(b,T1000_NJOBS)).")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Default per-request wall-clock deadline in milliseconds, for \
             requests that carry none (also: $(b,T1000_SERVE_DEADLINE_MS)).")
  in
  let retries =
    Arg.(
      value
      & opt (some int) None
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Transient-fault retries per request (also: \
             $(b,T1000_RETRIES)).")
  in
  let max_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:
            "Functional-execution step cap for client-submitted kernels \
             (a non-halting program becomes a typed error).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the selection-as-a-service daemon: length-prefixed framed \
          requests over Unix/TCP sockets, bounded admission with typed \
          shedding, per-request deadlines, fault isolation, and graceful \
          drain on SIGTERM.")
    Term.(
      const run $ socket $ tcp $ queue $ jobs $ deadline $ retries
      $ max_steps $ trace_arg)

let client_cmd =
  let run connect ping asm kernel method_ pfus penalty max_cycles deadline
      count show_cached =
    with_faults @@ fun () ->
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let addr =
      match connect with
      | Some a -> a
      | None -> (
          match T1000_serve.Server.env_addr () with
          | Some a -> a
          | None ->
              T1000.Fault.invalid_config
                "no daemon address: give --connect or set T1000_SERVE_ADDR")
    in
    let c =
      match T1000_serve.Client.connect addr with
      | Ok c -> c
      | Error msg ->
          Format.eprintf "t1000 client: %s@." msg;
          exit 1
    in
    Fun.protect ~finally:(fun () -> T1000_serve.Client.close c) @@ fun () ->
    if ping then (
      match T1000_serve.Client.ping c with
      | Ok () -> Format.printf "pong@."
      | Error msg ->
          Format.eprintf "t1000 client: %s@." msg;
          exit 1)
    else begin
      let kernel =
        match (asm, kernel) with
        | Some path, None ->
            let text =
              try In_channel.with_open_text path In_channel.input_all
              with Sys_error msg ->
                T1000.Fault.invalid_config "cannot read %s: %s" path msg
            in
            T1000_serve.Protocol.Asm
              { name = Filename.remove_extension (Filename.basename path);
                text }
        | None, Some name -> T1000_serve.Protocol.Named name
        | None, None ->
            T1000.Fault.invalid_config
              "give a workload name or --asm FILE (or --ping)"
        | Some _, Some _ ->
            T1000.Fault.invalid_config
              "give either a workload name or --asm FILE, not both"
      in
      let method_ =
        match method_ with
        | T1000.Runner.Baseline -> `Baseline
        | T1000.Runner.Greedy -> `Greedy
        | T1000.Runner.Selective -> `Selective
      in
      let sel =
        {
          T1000_serve.Protocol.kernel;
          method_;
          pfus;
          penalty;
          max_cycles;
          deadline_ms = deadline;
        }
      in
      for _ = 1 to count do
        match T1000_serve.Client.request c sel with
        | Ok (`Outcome o) ->
            (* [cached] is opt-in output: the default stays byte-stable
               between a cold and a warm daemon, which CI diffs. *)
            Format.printf
              "speedup=%.3f cycles=%d baseline=%d ext=%d lut=%d%s@."
              o.T1000_serve.Protocol.speedup o.T1000_serve.Protocol.cycles
              o.T1000_serve.Protocol.baseline_cycles
              o.T1000_serve.Protocol.ext_count
              o.T1000_serve.Protocol.lut_cost
              (if show_cached then
                 Printf.sprintf " cached=%b" o.T1000_serve.Protocol.cached
               else "")
        | Ok (`Error (code, msg)) ->
            (* Typed errors are in-band data (a shed or timed-out request
               is a valid daemon answer), not a client failure. *)
            Format.printf "error[%s] %s@."
              (T1000_serve.Protocol.string_of_code code)
              msg
        | Ok `Pong -> Format.printf "pong@."
        | Error msg ->
            Format.eprintf "t1000 client: %s@." msg;
            exit 1
      done
    end
  in
  let connect =
    Arg.(
      value
      & opt (some addr_conv) None
      & info [ "c"; "connect" ] ~docv:"ADDR"
          ~doc:
            "Daemon address: unix:PATH or tcp:HOST:PORT (also: \
             $(b,T1000_SERVE_ADDR)).")
  in
  let ping =
    Arg.(value & flag & info [ "ping" ] ~doc:"Just ping the daemon.")
  in
  let asm =
    Arg.(
      value
      & opt (some string) None
      & info [ "asm" ] ~docv:"FILE"
          ~doc:"Submit assembler source from $(docv) instead of a named \
                workload.")
  in
  let kernel =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"WORKLOAD"
          ~doc:"Benchmark name (resolved by the daemon; see $(b,list)).")
  in
  let max_cycles =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-cycles" ] ~docv:"N"
          ~doc:
            "Per-request simulator watchdog budget; exceeding it returns a \
             typed timeout reply carrying the RUU/PFU diagnostic snapshot.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:"Per-request wall-clock deadline in milliseconds.")
  in
  let count =
    Arg.(
      value & opt int 1
      & info [ "n"; "count" ] ~docv:"N"
          ~doc:"Submit the request $(docv) times on one connection.")
  in
  let show_cached =
    Arg.(
      value & flag
      & info [ "show-cached" ]
          ~doc:"Also print whether each reply came from the daemon's \
                cross-request result cache.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Submit selection requests to a running $(b,t1000 serve) daemon \
          and print the replies (typed daemon errors are printed in-band; \
          only transport failures exit non-zero).")
    Term.(
      const run $ connect $ ping $ asm $ kernel $ method_arg $ pfus_arg
      $ penalty_arg $ max_cycles $ deadline $ count $ show_cached)

let () =
  let doc =
    "T1000: configurable extended instructions on a superscalar core"
  in
  validate_env ();
  (* T1000_METRICS=1: dump the merged metric snapshot to stderr when the
     process ends, whatever command ran and however it exits. *)
  if T1000.Fault.getenv_bool "T1000_METRICS" then
    at_exit (fun () ->
        Format.eprintf "t1000_cli: metrics:@.%a@." T1000.Obs.Metrics.pp
          (T1000.Obs.Metrics.snapshot ()));
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "t1000_cli" ~doc)
          [
            list_cmd; disasm_cmd; profile_cmd; mine_cmd; replay_cmd;
            run_cmd; dot_cmd; experiment_cmd; dse_cmd; stats_cmd;
            trace_check_cmd; fuzz_cmd; serve_cmd; client_cmd;
          ]))
