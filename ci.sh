#!/bin/sh
# Tier-1 gate for the T1000 repo: build, tests, formatting (when the
# formatter is available), and a cheap smoke of the parallel experiment
# engine so regressions there are caught without paying for the full
# artifact suite.
set -eu

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== fmt =="
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "ocamlformat not installed, skipping"
fi

echo "== smoke: figure 2 on a reduced suite, sequential and parallel =="
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=1 dune exec bench/main.exe -- f2
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=4 dune exec bench/main.exe -- f2

echo "== ci ok =="
