#!/bin/sh
# Tier-1 gate for the T1000 repo: build, tests, formatting (when the
# formatter is available), a cheap smoke of the parallel experiment
# engine, and an end-to-end exercise of the robustness layer (fault
# isolation + checkpoint resume).  Every simulation-running step is
# wrapped in a hard timeout so a deadlocked simulator fails the gate
# instead of hanging it.
set -eu

echo "== build =="
dune build

echo "== tests =="
timeout 900 dune runtest

echo "== fmt =="
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "ocamlformat not installed, skipping"
fi

echo "== smoke: figure 2 on a reduced suite, sequential and parallel =="
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=1 timeout 900 dune exec bench/main.exe -- f2
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=4 timeout 900 dune exec bench/main.exe -- f2

echo "== smoke: fault isolation + checkpoint resume =="
# A penalty sweep where one workload faults mid-sweep must still emit
# the other workload's rows, report the fault, and exit 3; re-running
# with --resume against the journal must complete and reproduce the
# clean run's stdout byte for byte.
CKPT_DIR=$(mktemp -d)
trap 'rm -rf "$CKPT_DIR"' EXIT
CLEAN_OUT="$CKPT_DIR/clean.out"
FAULT_OUT="$CKPT_DIR/faulted.out"
RESUMED_OUT="$CKPT_DIR/resumed.out"

T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment s52 > "$CLEAN_OUT"

set +e
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$CKPT_DIR" T1000_FAULT_INJECT=g721_dec \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment s52 > "$FAULT_OUT" 2> "$CKPT_DIR/faulted.err"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "expected exit code 3 from the faulted sweep, got $rc" >&2
  cat "$CKPT_DIR/faulted.err" >&2
  exit 1
fi
grep -q "FAULT REPORT" "$CKPT_DIR/faulted.err" || {
  echo "faulted sweep did not print a fault report" >&2
  exit 1
}

T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$CKPT_DIR" \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment --resume s52 > "$RESUMED_OUT"

diff "$CLEAN_OUT" "$RESUMED_OUT" || {
  echo "resumed rows differ from the uninterrupted run" >&2
  exit 1
}

echo "== fuzz: differential oracle on a fixed seed =="
# Bounded smoke of the fuzz subsystem: 100 random programs through the
# whole pipeline against the reference interpreter, plus checkpoint
# corruption drills.  Fixed seed, so a failure here is reproducible.
FUZZ_DIR="$CKPT_DIR/fuzz"
timeout 900 dune exec bin/t1000_cli.exe -- fuzz \
  --seed 42 --cases 100 --drills 10 --out "$FUZZ_DIR"

echo "== fuzz: armed off-by-one is caught and shrunk =="
# With the deliberate commit-count bug armed the same sweep must fail
# (exit 3), write a reproducer artifact, and shrink it to a small
# program.
set +e
T1000_FAULT_INJECT=fuzz-oracle timeout 900 dune exec bin/t1000_cli.exe -- fuzz \
  --seed 42 --cases 60 --drills 0 --out "$FUZZ_DIR" \
  > "$CKPT_DIR/fuzz_armed.out" 2> "$CKPT_DIR/fuzz_armed.err"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "expected exit code 3 from the armed fuzz sweep, got $rc" >&2
  cat "$CKPT_DIR/fuzz_armed.err" >&2
  exit 1
fi
grep -q "reproducer:" "$CKPT_DIR/fuzz_armed.out" || {
  echo "armed fuzz sweep did not write a reproducer" >&2
  exit 1
}
SHRUNK=$(grep -o "shrunk to [0-9]* instructions" "$CKPT_DIR/fuzz_armed.out" \
  | grep -o "[0-9]*" | sort -n | head -1)
if [ -z "$SHRUNK" ] || [ "$SHRUNK" -gt 20 ]; then
  echo "expected a reproducer shrunk to <= 20 instructions, got '${SHRUNK:-none}'" >&2
  exit 1
fi
echo "smallest reproducer: $SHRUNK instructions"

echo "== chaos: stormy resume sweep is byte-identical to calm =="
# Under T1000_CHAOS the pool injects transient faults and kills worker
# domains; retries plus the checkpoint journal must still deliver every
# row, byte-identical to the chaos-free run above.
CHAOS_CKPT=$(mktemp -d)
CHAOS_OUT="$CKPT_DIR/chaos.out"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$CHAOS_CKPT" T1000_CHAOS=0.2 T1000_CHAOS_SEED=7 \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment --resume s52 > "$CHAOS_OUT"
rm -rf "$CHAOS_CKPT"
diff "$CLEAN_OUT" "$CHAOS_OUT" || {
  echo "chaotic sweep differs from the calm run" >&2
  exit 1
}

echo "== obs: traced sweep is byte-identical to untraced, trace validates =="
# Telemetry is contractually observational: the same experiment with
# --trace must produce byte-identical stdout, and the written trace
# must be a well-formed Chrome trace carrying spans from the simulator,
# the worker pool and the experiment engine.
PLAIN_OUT="$CKPT_DIR/obs_plain.out"
TRACED_OUT="$CKPT_DIR/obs_traced.out"
TRACE_JSON="$CKPT_DIR/obs_trace.json"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment f2 > "$PLAIN_OUT"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 T1000_METRICS=1 \
  timeout 900 dune exec bin/t1000_cli.exe -- \
  experiment f2 --trace "$TRACE_JSON" > "$TRACED_OUT" 2> "$CKPT_DIR/obs_traced.err"
diff "$PLAIN_OUT" "$TRACED_OUT" || {
  echo "traced sweep stdout differs from the untraced run" >&2
  exit 1
}
timeout 900 dune exec bin/t1000_cli.exe -- trace-check "$TRACE_JSON"
grep -q "pool.tasks" "$CKPT_DIR/obs_traced.err" || {
  echo "T1000_METRICS=1 did not dump a metric snapshot to stderr" >&2
  exit 1
}

echo "== dse: frontier determinism across worker counts =="
# A tiny-budget design-space exploration on the reduced suite must
# print a byte-identical frontier sequentially and on 4 workers.
DSE_AXES="pfus=1,2,4:penalty=0,100,500:lut=75,150:repl=lru:gain=0.005:width=4"
DSE_SEQ="$CKPT_DIR/dse_seq.out"
DSE_PAR="$CKPT_DIR/dse_par.out"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=1 \
  timeout 900 dune exec bin/t1000_cli.exe -- dse --axes "$DSE_AXES" --budget 12 > "$DSE_SEQ"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=4 \
  timeout 900 dune exec bin/t1000_cli.exe -- dse --axes "$DSE_AXES" --budget 12 > "$DSE_PAR"
diff "$DSE_SEQ" "$DSE_PAR" || {
  echo "dse frontier differs between njobs=1 and njobs=4" >&2
  exit 1
}

echo "== dse: interrupted exploration resumes byte-identically =="
# Kill the exploration mid-flight with an injected fault (exit 3), then
# --resume against the journal: the finished frontier must match the
# uninterrupted run byte for byte.
DSE_CKPT=$(mktemp -d)
set +e
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$DSE_CKPT" T1000_FAULT_INJECT=g721_dec \
  timeout 900 dune exec bin/t1000_cli.exe -- dse --axes "$DSE_AXES" --budget 12 \
  > "$CKPT_DIR/dse_faulted.out" 2> "$CKPT_DIR/dse_faulted.err"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "expected exit code 3 from the faulted dse run, got $rc" >&2
  cat "$CKPT_DIR/dse_faulted.err" >&2
  exit 1
fi
DSE_RESUMED="$CKPT_DIR/dse_resumed.out"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$DSE_CKPT" \
  timeout 900 dune exec bin/t1000_cli.exe -- dse --axes "$DSE_AXES" --budget 12 --resume \
  > "$DSE_RESUMED"
rm -rf "$DSE_CKPT"
diff "$DSE_SEQ" "$DSE_RESUMED" || {
  echo "resumed dse frontier differs from the uninterrupted run" >&2
  exit 1
}

echo "== serve: byte-stable replies, graceful drain, shedding, chaos =="
# The selection-as-a-service daemon end to end: identical client output
# across two daemon lifetimes (cold vs fresh caches), SIGTERM mid-load
# drains gracefully (exit 0, reply still delivered, socket unlinked),
# a queue-depth-1 daemon sheds with typed replies instead of blocking,
# a chaos-soaked session answers every request, and the load benchmark
# writes BENCH_serve.json.  The daemon binary is invoked directly (not
# via dune exec) so signals land on the daemon itself.
SERVE_DIR=$(mktemp -d)
SERVE_ROOT=$(pwd)
SERVE_CLI=_build/default/bin/t1000_cli.exe

# SIGTERM a daemon and wait for the graceful drain, but bounded: a
# deadlocked drain fails the gate after 60 s instead of hanging it.
serve_stop() {
  kill -TERM "$1"
  i=0
  while kill -0 "$1" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 600 ]; then
      echo "daemon did not drain within 60s" >&2
      kill -KILL "$1" 2>/dev/null || true
      exit 1
    fi
    sleep 0.1
  done
  wait "$1"
}

# Wait for a daemon socket to appear (its process is $2, to fail fast).
serve_wait() {
  i=0
  while [ ! -S "$1" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
      echo "daemon did not create $1" >&2
      exit 1
    fi
    kill -0 "$2" 2>/dev/null || { echo "daemon died during startup" >&2; exit 1; }
    sleep 0.1
  done
}

cat > "$SERVE_DIR/slow.s" <<'EOF'
    lui r2, 8
    addui r1, r0, 0
loop:
    addui r1, r1, 1
    bne r1, r2, loop
    halt
EOF

for pass in 1 2; do
  SOCK="$SERVE_DIR/pass$pass.sock"
  "$SERVE_CLI" serve --socket "$SOCK" -j 2 \
    > "$SERVE_DIR/daemon$pass.log" 2>&1 &
  SERVE_PID=$!
  serve_wait "$SOCK" "$SERVE_PID"
  {
    timeout 300 "$SERVE_CLI" client -c "unix:$SOCK" --ping
    timeout 300 "$SERVE_CLI" client -c "unix:$SOCK" unepic -n 2
    timeout 300 "$SERVE_CLI" client -c "unix:$SOCK" unepic -m greedy
    timeout 300 "$SERVE_CLI" client -c "unix:$SOCK" --asm "$SERVE_DIR/slow.s"
    timeout 300 "$SERVE_CLI" client -c "unix:$SOCK" nonexistent-workload
    timeout 300 "$SERVE_CLI" client -c "unix:$SOCK" unepic --max-cycles 1 \
      | cut -d: -f1
  } > "$SERVE_DIR/replies$pass.txt"
  serve_stop "$SERVE_PID" || { echo "serve pass $pass did not drain cleanly" >&2; exit 1; }
  [ ! -S "$SOCK" ] || { echo "serve left its socket behind" >&2; exit 1; }
done
diff "$SERVE_DIR/replies1.txt" "$SERVE_DIR/replies2.txt" || {
  echo "daemon replies differ between two identical sessions" >&2
  exit 1
}
grep -q "error\[overloaded\]" "$SERVE_DIR/replies1.txt" && {
  echo "unloaded daemon shed a request" >&2
  exit 1
}

echo "== serve: SIGTERM mid-load is a graceful drain =="
SOCK="$SERVE_DIR/drain.sock"
"$SERVE_CLI" serve --socket "$SOCK" -j 1 \
  > "$SERVE_DIR/drain_daemon.log" 2>&1 &
SERVE_PID=$!
serve_wait "$SOCK" "$SERVE_PID"
timeout 300 "$SERVE_CLI" client -c "unix:$SOCK" --asm "$SERVE_DIR/slow.s" \
  > "$SERVE_DIR/drain_reply.txt" &
CLIENT_PID=$!
sleep 0.3
kill -TERM "$SERVE_PID"
wait "$CLIENT_PID" || { echo "in-flight client failed during drain" >&2; exit 1; }
wait "$SERVE_PID" || { echo "drain exited non-zero" >&2; exit 1; }
grep -q "speedup=" "$SERVE_DIR/drain_reply.txt" || {
  echo "in-flight request was dropped by the drain" >&2
  exit 1
}
grep -q "drained" "$SERVE_DIR/drain_daemon.log" || {
  echo "daemon did not report a drain summary" >&2
  exit 1
}
[ ! -S "$SOCK" ] || { echo "drain left the socket behind" >&2; exit 1; }

echo "== serve: queue depth 1 sheds with typed replies =="
SOCK="$SERVE_DIR/shed.sock"
"$SERVE_CLI" serve --socket "$SOCK" -j 1 --queue 1 \
  > "$SERVE_DIR/shed_daemon.log" 2>&1 &
SERVE_PID=$!
serve_wait "$SOCK" "$SERVE_PID"
# Distinct kernels (comment salt changes the digest) so every request
# really simulates ~0.5 s instead of hitting the result cache.
for i in 1 2 3 4 5; do
  sed "1i\\
# storm $i" "$SERVE_DIR/slow.s" > "$SERVE_DIR/slow$i.s"
  timeout 300 "$SERVE_CLI" client -c "unix:$SOCK" --asm "$SERVE_DIR/slow$i.s" \
    > "$SERVE_DIR/shed$i.txt" &
  eval "SHED_PID$i=\$!"
done
SHED_FAILURES=0
for i in 1 2 3 4 5; do
  eval "wait \$SHED_PID$i" || SHED_FAILURES=$((SHED_FAILURES + 1))
done
[ "$SHED_FAILURES" -eq 0 ] || {
  echo "$SHED_FAILURES storm clients got no reply (transport failure)" >&2
  exit 1
}
cat "$SERVE_DIR"/shed[1-5].txt > "$SERVE_DIR/storm.txt"
REPLIES=$(wc -l < "$SERVE_DIR/storm.txt")
[ "$REPLIES" -eq 5 ] || {
  echo "expected 5 storm replies, got $REPLIES" >&2
  exit 1
}
grep -q "error\[overloaded\]" "$SERVE_DIR/storm.txt" || {
  echo "queue-depth-1 daemon never shed under a 5-client storm" >&2
  cat "$SERVE_DIR/storm.txt" >&2
  exit 1
}
grep -q "speedup=" "$SERVE_DIR/storm.txt" || {
  echo "no storm request was actually served" >&2
  exit 1
}
serve_stop "$SERVE_PID" || { echo "shed daemon did not drain cleanly" >&2; exit 1; }

echo "== serve: chaos-soaked session answers every request =="
SOCK="$SERVE_DIR/chaos.sock"
T1000_CHAOS=0.25 T1000_CHAOS_SEED=42 T1000_BACKOFF_SCALE=0 \
  "$SERVE_CLI" serve --socket "$SOCK" -j 2 \
  > "$SERVE_DIR/chaos_daemon.log" 2>&1 &
SERVE_PID=$!
serve_wait "$SOCK" "$SERVE_PID"
timeout 300 "$SERVE_CLI" client -c "unix:$SOCK" unepic -n 4 \
  > "$SERVE_DIR/chaos_replies.txt"
timeout 300 "$SERVE_CLI" client -c "unix:$SOCK" unepic -m greedy -n 4 \
  >> "$SERVE_DIR/chaos_replies.txt"
CHAOS_REPLIES=$(wc -l < "$SERVE_DIR/chaos_replies.txt")
[ "$CHAOS_REPLIES" -eq 8 ] || {
  echo "chaos session dropped replies: expected 8, got $CHAOS_REPLIES" >&2
  exit 1
}
grep -q "error\[" "$SERVE_DIR/chaos_replies.txt" && {
  echo "chaos injections leaked past the retry envelope" >&2
  cat "$SERVE_DIR/chaos_replies.txt" >&2
  exit 1
}
serve_stop "$SERVE_PID" || { echo "chaos daemon did not drain cleanly" >&2; exit 1; }

echo "== serve: load benchmark writes BENCH_serve.json =="
(cd "$SERVE_DIR" && T1000_SERVE_BENCH_REQUESTS=2 \
  timeout 900 "$SERVE_ROOT/_build/default/bench/main.exe" serve)
grep -q '"overload"' "$SERVE_DIR/BENCH_serve.json" || {
  echo "BENCH_serve.json missing its overload leg" >&2
  exit 1
}
grep -q '"shed_rate"' "$SERVE_DIR/BENCH_serve.json" || {
  echo "BENCH_serve.json missing the shed rate" >&2
  exit 1
}
rm -rf "$SERVE_DIR"

# Long soak (opt-in): many more cases, drills and an in-process chaos
# sweep.  Enable with T1000_SOAK=1.
if [ "${T1000_SOAK:-0}" = "1" ]; then
  echo "== soak: extended fuzz + chaos =="
  timeout 3600 dune exec bin/t1000_cli.exe -- fuzz \
    --seed 1337 --cases 2000 --drills 100 --chaos 0.2 --out "$FUZZ_DIR"
fi

echo "== ci ok =="
