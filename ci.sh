#!/bin/sh
# Tier-1 gate for the T1000 repo: build, tests, formatting (when the
# formatter is available), a cheap smoke of the parallel experiment
# engine, and an end-to-end exercise of the robustness layer (fault
# isolation + checkpoint resume).  Every simulation-running step is
# wrapped in a hard timeout so a deadlocked simulator fails the gate
# instead of hanging it.
set -eu

echo "== build =="
dune build

echo "== tests =="
timeout 900 dune runtest

echo "== fmt =="
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "ocamlformat not installed, skipping"
fi

echo "== smoke: figure 2 on a reduced suite, sequential and parallel =="
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=1 timeout 900 dune exec bench/main.exe -- f2
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=4 timeout 900 dune exec bench/main.exe -- f2

echo "== smoke: fault isolation + checkpoint resume =="
# A penalty sweep where one workload faults mid-sweep must still emit
# the other workload's rows, report the fault, and exit 3; re-running
# with --resume against the journal must complete and reproduce the
# clean run's stdout byte for byte.
CKPT_DIR=$(mktemp -d)
trap 'rm -rf "$CKPT_DIR"' EXIT
CLEAN_OUT="$CKPT_DIR/clean.out"
FAULT_OUT="$CKPT_DIR/faulted.out"
RESUMED_OUT="$CKPT_DIR/resumed.out"

T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment s52 > "$CLEAN_OUT"

set +e
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$CKPT_DIR" T1000_FAULT_INJECT=g721_dec \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment s52 > "$FAULT_OUT" 2> "$CKPT_DIR/faulted.err"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "expected exit code 3 from the faulted sweep, got $rc" >&2
  cat "$CKPT_DIR/faulted.err" >&2
  exit 1
fi
grep -q "FAULT REPORT" "$CKPT_DIR/faulted.err" || {
  echo "faulted sweep did not print a fault report" >&2
  exit 1
}

T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$CKPT_DIR" \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment --resume s52 > "$RESUMED_OUT"

diff "$CLEAN_OUT" "$RESUMED_OUT" || {
  echo "resumed rows differ from the uninterrupted run" >&2
  exit 1
}

echo "== fuzz: differential oracle on a fixed seed =="
# Bounded smoke of the fuzz subsystem: 100 random programs through the
# whole pipeline against the reference interpreter, plus checkpoint
# corruption drills.  Fixed seed, so a failure here is reproducible.
FUZZ_DIR="$CKPT_DIR/fuzz"
timeout 900 dune exec bin/t1000_cli.exe -- fuzz \
  --seed 42 --cases 100 --drills 10 --out "$FUZZ_DIR"

echo "== fuzz: armed off-by-one is caught and shrunk =="
# With the deliberate commit-count bug armed the same sweep must fail
# (exit 3), write a reproducer artifact, and shrink it to a small
# program.
set +e
T1000_FAULT_INJECT=fuzz-oracle timeout 900 dune exec bin/t1000_cli.exe -- fuzz \
  --seed 42 --cases 60 --drills 0 --out "$FUZZ_DIR" \
  > "$CKPT_DIR/fuzz_armed.out" 2> "$CKPT_DIR/fuzz_armed.err"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "expected exit code 3 from the armed fuzz sweep, got $rc" >&2
  cat "$CKPT_DIR/fuzz_armed.err" >&2
  exit 1
fi
grep -q "reproducer:" "$CKPT_DIR/fuzz_armed.out" || {
  echo "armed fuzz sweep did not write a reproducer" >&2
  exit 1
}
SHRUNK=$(grep -o "shrunk to [0-9]* instructions" "$CKPT_DIR/fuzz_armed.out" \
  | grep -o "[0-9]*" | sort -n | head -1)
if [ -z "$SHRUNK" ] || [ "$SHRUNK" -gt 20 ]; then
  echo "expected a reproducer shrunk to <= 20 instructions, got '${SHRUNK:-none}'" >&2
  exit 1
fi
echo "smallest reproducer: $SHRUNK instructions"

echo "== chaos: stormy resume sweep is byte-identical to calm =="
# Under T1000_CHAOS the pool injects transient faults and kills worker
# domains; retries plus the checkpoint journal must still deliver every
# row, byte-identical to the chaos-free run above.
CHAOS_CKPT=$(mktemp -d)
CHAOS_OUT="$CKPT_DIR/chaos.out"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$CHAOS_CKPT" T1000_CHAOS=0.2 T1000_CHAOS_SEED=7 \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment --resume s52 > "$CHAOS_OUT"
rm -rf "$CHAOS_CKPT"
diff "$CLEAN_OUT" "$CHAOS_OUT" || {
  echo "chaotic sweep differs from the calm run" >&2
  exit 1
}

echo "== obs: traced sweep is byte-identical to untraced, trace validates =="
# Telemetry is contractually observational: the same experiment with
# --trace must produce byte-identical stdout, and the written trace
# must be a well-formed Chrome trace carrying spans from the simulator,
# the worker pool and the experiment engine.
PLAIN_OUT="$CKPT_DIR/obs_plain.out"
TRACED_OUT="$CKPT_DIR/obs_traced.out"
TRACE_JSON="$CKPT_DIR/obs_trace.json"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment f2 > "$PLAIN_OUT"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 T1000_METRICS=1 \
  timeout 900 dune exec bin/t1000_cli.exe -- \
  experiment f2 --trace "$TRACE_JSON" > "$TRACED_OUT" 2> "$CKPT_DIR/obs_traced.err"
diff "$PLAIN_OUT" "$TRACED_OUT" || {
  echo "traced sweep stdout differs from the untraced run" >&2
  exit 1
}
timeout 900 dune exec bin/t1000_cli.exe -- trace-check "$TRACE_JSON"
grep -q "pool.tasks" "$CKPT_DIR/obs_traced.err" || {
  echo "T1000_METRICS=1 did not dump a metric snapshot to stderr" >&2
  exit 1
}

echo "== dse: frontier determinism across worker counts =="
# A tiny-budget design-space exploration on the reduced suite must
# print a byte-identical frontier sequentially and on 4 workers.
DSE_AXES="pfus=1,2,4:penalty=0,100,500:lut=75,150:repl=lru:gain=0.005:width=4"
DSE_SEQ="$CKPT_DIR/dse_seq.out"
DSE_PAR="$CKPT_DIR/dse_par.out"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=1 \
  timeout 900 dune exec bin/t1000_cli.exe -- dse --axes "$DSE_AXES" --budget 12 > "$DSE_SEQ"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=4 \
  timeout 900 dune exec bin/t1000_cli.exe -- dse --axes "$DSE_AXES" --budget 12 > "$DSE_PAR"
diff "$DSE_SEQ" "$DSE_PAR" || {
  echo "dse frontier differs between njobs=1 and njobs=4" >&2
  exit 1
}

echo "== dse: interrupted exploration resumes byte-identically =="
# Kill the exploration mid-flight with an injected fault (exit 3), then
# --resume against the journal: the finished frontier must match the
# uninterrupted run byte for byte.
DSE_CKPT=$(mktemp -d)
set +e
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$DSE_CKPT" T1000_FAULT_INJECT=g721_dec \
  timeout 900 dune exec bin/t1000_cli.exe -- dse --axes "$DSE_AXES" --budget 12 \
  > "$CKPT_DIR/dse_faulted.out" 2> "$CKPT_DIR/dse_faulted.err"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "expected exit code 3 from the faulted dse run, got $rc" >&2
  cat "$CKPT_DIR/dse_faulted.err" >&2
  exit 1
fi
DSE_RESUMED="$CKPT_DIR/dse_resumed.out"
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$DSE_CKPT" \
  timeout 900 dune exec bin/t1000_cli.exe -- dse --axes "$DSE_AXES" --budget 12 --resume \
  > "$DSE_RESUMED"
rm -rf "$DSE_CKPT"
diff "$DSE_SEQ" "$DSE_RESUMED" || {
  echo "resumed dse frontier differs from the uninterrupted run" >&2
  exit 1
}

# Long soak (opt-in): many more cases, drills and an in-process chaos
# sweep.  Enable with T1000_SOAK=1.
if [ "${T1000_SOAK:-0}" = "1" ]; then
  echo "== soak: extended fuzz + chaos =="
  timeout 3600 dune exec bin/t1000_cli.exe -- fuzz \
    --seed 1337 --cases 2000 --drills 100 --chaos 0.2 --out "$FUZZ_DIR"
fi

echo "== ci ok =="
