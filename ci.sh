#!/bin/sh
# Tier-1 gate for the T1000 repo: build, tests, formatting (when the
# formatter is available), a cheap smoke of the parallel experiment
# engine, and an end-to-end exercise of the robustness layer (fault
# isolation + checkpoint resume).  Every simulation-running step is
# wrapped in a hard timeout so a deadlocked simulator fails the gate
# instead of hanging it.
set -eu

echo "== build =="
dune build

echo "== tests =="
timeout 900 dune runtest

echo "== fmt =="
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  echo "ocamlformat not installed, skipping"
fi

echo "== smoke: figure 2 on a reduced suite, sequential and parallel =="
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=1 timeout 900 dune exec bench/main.exe -- f2
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=4 timeout 900 dune exec bench/main.exe -- f2

echo "== smoke: fault isolation + checkpoint resume =="
# A penalty sweep where one workload faults mid-sweep must still emit
# the other workload's rows, report the fault, and exit 3; re-running
# with --resume against the journal must complete and reproduce the
# clean run's stdout byte for byte.
CKPT_DIR=$(mktemp -d)
trap 'rm -rf "$CKPT_DIR"' EXIT
CLEAN_OUT="$CKPT_DIR/clean.out"
FAULT_OUT="$CKPT_DIR/faulted.out"
RESUMED_OUT="$CKPT_DIR/resumed.out"

T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment s52 > "$CLEAN_OUT"

set +e
T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$CKPT_DIR" T1000_FAULT_INJECT=g721_dec \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment s52 > "$FAULT_OUT" 2> "$CKPT_DIR/faulted.err"
rc=$?
set -e
if [ "$rc" -ne 3 ]; then
  echo "expected exit code 3 from the faulted sweep, got $rc" >&2
  cat "$CKPT_DIR/faulted.err" >&2
  exit 1
fi
grep -q "FAULT REPORT" "$CKPT_DIR/faulted.err" || {
  echo "faulted sweep did not print a fault report" >&2
  exit 1
}

T1000_WORKLOADS=unepic,g721_dec T1000_NJOBS=2 \
  T1000_CHECKPOINT_DIR="$CKPT_DIR" \
  timeout 900 dune exec bin/t1000_cli.exe -- experiment --resume s52 > "$RESUMED_OUT"

diff "$CLEAN_OUT" "$RESUMED_OUT" || {
  echo "resumed rows differ from the uninterrupted run" >&2
  exit 1
}

echo "== ci ok =="
