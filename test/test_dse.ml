(* Tests for the design-space exploration engine (lib/dse): Space
   enumeration/parsing, Pareto dominance properties (QCheck), and the
   engine's load-bearing guarantees — pruning never changes the
   frontier, pruned points are never simulated, results are
   byte-identical across worker counts, the checkpoint journal makes
   re-runs simulation-free, and the engine agrees point-for-point with
   a hand-rolled Runner sweep (the old examples/design_space.ml). *)

open T1000

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_njobs v f =
  let saved = Sys.getenv_opt "T1000_NJOBS" in
  Unix.putenv "T1000_NJOBS" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "T1000_NJOBS" (match saved with Some s -> s | None -> ""))
    f

(* Tiny deterministic loop kernels from the fuzz generator: fast enough
   to sweep a grid in a unit test, real enough to exercise the whole
   analyze/select/simulate pipeline. *)
let toy_workload seed = T1000_fuzz.Gen.workload (T1000_fuzz.Gen.generate ~seed)

let toy_ctx = lazy (Experiment.create_ctx ~workloads:[ toy_workload 101; toy_workload 202 ] ())

(* A 2 x 3 (pfus x penalty) grid around the selective defaults. *)
let toy_space =
  {
    T1000_dse.Space.ax_pfus = [ 1; 2 ];
    ax_penalties = [ 0; 200; 800 ];
    ax_lut_budgets = [ 150 ];
    ax_replacements = [ T1000_ooo.Mconfig.Lru ];
    ax_gains = [ 0.005 ];
    ax_widths = [ 4 ];
  }

let counter snap name =
  Option.value ~default:0
    (List.assoc_opt name snap.Obs.Metrics.counters)

let keys_of ms =
  List.map (fun m -> T1000_dse.Space.key m.T1000_dse.Engine.point) ms

(* ---------- Space ---------- *)

let test_space_enumerate () =
  let s = toy_space in
  let pts = T1000_dse.Space.enumerate s in
  check_int "size matches enumeration" (T1000_dse.Space.size s)
    (List.length pts);
  List.iteri
    (fun i p ->
      check_int "rank = position in enumerate" i (T1000_dse.Space.rank s p))
    pts;
  (* Penalty-innermost: each group's members are adjacent and
     penalty-ascending, so a group never interleaves with another. *)
  let rec groups_adjacent seen = function
    | [] -> ()
    | p :: tl ->
        let g = T1000_dse.Space.group_key p in
        (match List.assoc_opt g seen with
        | Some last_pen ->
            check_bool "penalty ascending within adjacent group" true
              (p.T1000_dse.Space.penalty > last_pen)
        | None ->
            check_bool "group appears once (no interleaving)" false
              (List.mem_assoc g seen));
        groups_adjacent ((g, p.T1000_dse.Space.penalty) :: List.remove_assoc g seen) tl
  in
  ignore (groups_adjacent [] pts);
  check_int "default space is the full 6-axis grid" 1620
    (T1000_dse.Space.size T1000_dse.Space.default)

let test_space_of_spec () =
  (match T1000_dse.Space.of_spec "pfus=4,1,2:penalty=0,100:width=8" with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok s ->
      check_bool "values sorted and deduped" true
        (s.T1000_dse.Space.ax_pfus = [ 1; 2; 4 ]);
      check_bool "penalty parsed" true
        (s.T1000_dse.Space.ax_penalties = [ 0; 100 ]);
      check_bool "width parsed" true (s.T1000_dse.Space.ax_widths = [ 8 ]);
      check_bool "omitted axes keep defaults" true
        (s.T1000_dse.Space.ax_gains
        = T1000_dse.Space.default.T1000_dse.Space.ax_gains));
  let rejected spec =
    match T1000_dse.Space.of_spec spec with
    | Error _ -> true
    | Ok _ -> false
  in
  check_bool "unknown axis rejected" true (rejected "bogus=1");
  check_bool "bad value rejected" true (rejected "pfus=banana");
  check_bool "bad width rejected" true (rejected "width=5");
  check_bool "negative penalty rejected" true (rejected "penalty=-1");
  check_bool "empty spec rejected" true (rejected "");
  check_bool "missing = rejected" true (rejected "pfus")

let test_space_refine () =
  let s = T1000_dse.Space.default in
  let p =
    {
      T1000_dse.Space.pfus = 2;
      penalty = 50;
      lut_budget = 150;
      replacement = T1000_ooo.Mconfig.Fifo;
      gain = 0.005;
      width = 4;
    }
  in
  let neighbors = T1000_dse.Space.refine s ~stride:1 p in
  check_bool "refine proposes something" true (neighbors <> []);
  List.iter
    (fun q ->
      check_bool "neighbor differs from origin" true (q <> p);
      (* Every neighbor stays on the space's axes (rank would raise
         otherwise). *)
      ignore (T1000_dse.Space.rank s q);
      let diffs =
        List.length
          (List.filter Fun.id
             [
               q.T1000_dse.Space.pfus <> p.T1000_dse.Space.pfus;
               q.T1000_dse.Space.penalty <> p.T1000_dse.Space.penalty;
               q.T1000_dse.Space.lut_budget <> p.T1000_dse.Space.lut_budget;
               q.T1000_dse.Space.replacement <> p.T1000_dse.Space.replacement;
               q.T1000_dse.Space.gain <> p.T1000_dse.Space.gain;
               q.T1000_dse.Space.width <> p.T1000_dse.Space.width;
             ])
      in
      check_int "neighbor moves exactly one axis" 1 diffs)
    neighbors

(* ---------- Pareto (QCheck) ---------- *)

let objectives_gen =
  QCheck.Gen.(
    map3
      (fun s a p ->
        {
          T1000_dse.Pareto.speedup = float_of_int s /. 8.0;
          area_luts = a;
          pfus = p;
        })
      (int_range 1 24) (int_range 0 6) (int_range 1 4))

let objectives_list =
  QCheck.make
    ~print:(fun os ->
      String.concat "; "
        (List.map (Format.asprintf "%a" T1000_dse.Pareto.pp) os))
    QCheck.Gen.(list_size (int_range 0 30) objectives_gen)

let prop_frontier_nondominated =
  QCheck.Test.make ~count:500 ~name:"frontier mutually non-dominated"
    objectives_list (fun os ->
      let tagged = List.mapi (fun i o -> (i, o)) os in
      let front = T1000_dse.Pareto.frontier tagged in
      List.for_all
        (fun (_, o) ->
          not
            (List.exists (fun (_, o') -> T1000_dse.Pareto.dominates o' o) front))
        front)

let prop_frontier_covers =
  QCheck.Test.make ~count:500 ~name:"every excluded point is dominated"
    objectives_list (fun os ->
      let tagged = List.mapi (fun i o -> (i, o)) os in
      let front = T1000_dse.Pareto.frontier tagged in
      List.for_all
        (fun (i, o) ->
          List.mem_assoc i front
          || List.exists (fun (_, o') -> T1000_dse.Pareto.dominates o' o) front)
        tagged)

let prop_dominates_irreflexive =
  QCheck.Test.make ~count:500 ~name:"dominance is irreflexive and asymmetric"
    (QCheck.make QCheck.Gen.(pair objectives_gen objectives_gen))
    (fun (a, b) ->
      (not (T1000_dse.Pareto.dominates a a))
      && not (T1000_dse.Pareto.dominates a b && T1000_dse.Pareto.dominates b a))

(* ---------- Engine ---------- *)

(* Pruning is an optimization, not an approximation: the frontier of
   the pruned exhaustive run must equal the unpruned one, pruned and
   measured must partition the space, and the metric deltas must agree
   with the result — which is also how we assert a pruned config is
   never simulated. *)
let test_prune_sound () =
  let ctx = Lazy.force toy_ctx in
  let size = T1000_dse.Space.size toy_space in
  Obs.Metrics.reset ();
  let rp =
    T1000_dse.Engine.explore ~budget:size ~sample:`Full ~prune:true ctx
      toy_space
  in
  let snap = Obs.Metrics.snapshot () in
  let rf =
    T1000_dse.Engine.explore ~budget:size ~sample:`Full ~prune:false ctx
      toy_space
  in
  check_string "pruned frontier = exhaustive frontier"
    (String.concat "|" (keys_of rf.T1000_dse.Engine.frontier))
    (String.concat "|" (keys_of rp.T1000_dse.Engine.frontier));
  check_int "exhaustive run measures every point" size
    (List.length rf.T1000_dse.Engine.measured);
  check_int "measured + pruned partition the space" size
    (List.length rp.T1000_dse.Engine.measured
    + List.length rp.T1000_dse.Engine.pruned);
  List.iter
    (fun p ->
      check_bool "pruned point never measured" false
        (List.exists
           (fun m -> m.T1000_dse.Engine.point = p)
           rp.T1000_dse.Engine.measured))
    rp.T1000_dse.Engine.pruned;
  check_int "dse.simulated counts only unpruned points"
    (List.length rp.T1000_dse.Engine.measured)
    (counter snap "dse.simulated");
  check_int "dse.pruned matches the result"
    (List.length rp.T1000_dse.Engine.pruned)
    (counter snap "dse.pruned");
  check_bool "something was pruned on this grid" true
    (List.length rp.T1000_dse.Engine.pruned > 0)

let test_njobs_identical () =
  let ctx = Lazy.force toy_ctx in
  let run () =
    Format.asprintf "%a" T1000_dse.Engine.pp_frontier
      (T1000_dse.Engine.explore ~budget:64 ctx toy_space)
  in
  let seq = with_njobs "1" run in
  let par = with_njobs "4" run in
  check_string "frontier byte-identical njobs 1 vs 4" seq par

let test_budget () =
  let ctx = Lazy.force toy_ctx in
  let r = T1000_dse.Engine.explore ~budget:3 ~sample:`Full ctx toy_space in
  check_bool "budget caps evaluations" true
    (List.length r.T1000_dse.Engine.measured
     + List.length r.T1000_dse.Engine.faulted
    <= 3);
  check_bool "budget still measures something" true
    (r.T1000_dse.Engine.measured <> []);
  check_bool "invalid budget rejected" true
    (match T1000_dse.Engine.explore ~budget:0 ctx toy_space with
    | _ -> false
    | exception Fault.Error (Fault.Invalid_config _) -> true)

let test_journal_resume () =
  let dir = Filename.temp_file "t1000_dse_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let ctx = Lazy.force toy_ctx in
  let journal = Checkpoint.create ~fresh:true ~dir ~run:"dse" () in
  let r1 = T1000_dse.Engine.explore ~journal ~budget:64 ctx toy_space in
  Obs.Metrics.reset ();
  let journal2 = Checkpoint.create ~fresh:false ~dir ~run:"dse" () in
  let r2 = T1000_dse.Engine.explore ~journal:journal2 ~budget:64 ctx toy_space in
  let snap = Obs.Metrics.snapshot () in
  check_string "resumed frontier identical"
    (Format.asprintf "%a" T1000_dse.Engine.pp_frontier r1)
    (Format.asprintf "%a" T1000_dse.Engine.pp_frontier r2);
  check_int "resumed run simulates nothing" 0 (counter snap "dse.sim_tasks");
  check_bool "resumed run is journal-fed" true (counter snap "dse.cached" > 0)

(* The engine agrees point-for-point with the hand-rolled Runner sweep
   the design_space example used to be: same speedups, same frontier. *)
let test_example_agreement () =
  let w = toy_workload 303 in
  let ctx = Experiment.create_ctx ~workloads:[ w ] () in
  let analysis = Runner.analyze w in
  let baseline = Runner.run ~analysis w (Runner.setup Runner.Baseline) in
  let grid =
    List.concat_map
      (fun pfus -> List.map (fun pen -> (pfus, pen)) [ 0; 400 ])
      [ 1; 2 ]
  in
  let measured =
    List.map
      (fun (pfus, pen) ->
        let m =
          T1000_dse.Engine.eval_point ctx
            {
              T1000_dse.Space.pfus;
              penalty = pen;
              lut_budget = 150;
              replacement = T1000_ooo.Mconfig.Lru;
              gain = 0.005;
              width = 4;
            }
        in
        let direct =
          Runner.speedup ~baseline
            (Runner.run ~analysis w
               (Runner.setup ~n_pfus:(Some pfus) ~penalty:pen Runner.Selective))
        in
        (match m.T1000_dse.Engine.per_workload with
        | [ (name, s) ] ->
            check_string "per-workload name" w.T1000_workloads.Workload.name
              name;
            Alcotest.(check (float 1e-12)) "library = hand-rolled sweep" direct s
        | other ->
            Alcotest.failf "expected 1 per-workload entry, got %d"
              (List.length other));
        Alcotest.(check (float 1e-9))
          "1-workload geomean = the speedup" direct
          m.T1000_dse.Engine.obj.T1000_dse.Pareto.speedup;
        m)
      grid
  in
  (* And explore over the same 2-axis space lands on the frontier of
     exactly these measurements. *)
  let space =
    {
      toy_space with
      T1000_dse.Space.ax_pfus = [ 1; 2 ];
      ax_penalties = [ 0; 400 ];
    }
  in
  let r =
    T1000_dse.Engine.explore ~budget:64 ~sample:`Full ~prune:false ctx space
  in
  check_string "explore frontier = frontier of the example grid"
    (String.concat "|"
       (List.map
          (fun (m, _) -> T1000_dse.Space.key m.T1000_dse.Engine.point)
          (T1000_dse.Pareto.frontier
             (List.map (fun m -> (m, m.T1000_dse.Engine.obj)) measured))))
    (String.concat "|" (keys_of r.T1000_dse.Engine.frontier))

let () =
  Alcotest.run "dse"
    [
      ( "space",
        [
          Alcotest.test_case "enumerate/rank/groups" `Quick test_space_enumerate;
          Alcotest.test_case "of_spec" `Quick test_space_of_spec;
          Alcotest.test_case "refine" `Quick test_space_refine;
        ] );
      ( "pareto",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_frontier_nondominated;
            prop_frontier_covers;
            prop_dominates_irreflexive;
          ] );
      ( "engine",
        [
          Alcotest.test_case "pruning sound + never simulated" `Slow
            test_prune_sound;
          Alcotest.test_case "njobs determinism" `Slow test_njobs_identical;
          Alcotest.test_case "budget" `Slow test_budget;
          Alcotest.test_case "journal resume" `Slow test_journal_resume;
          Alcotest.test_case "example agreement" `Slow test_example_agreement;
        ] );
    ]
