(* Tests for the parallel experiment engine: the Domain worker pool
   (ordering, exception propagation, T1000_NJOBS), the compute-once
   memo table, the selection-table cache, and — the property everything
   above exists to preserve — bit-identical experiment rows whether the
   sweeps run sequentially or fanned out over domains. *)

open T1000
open T1000_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let with_njobs v f =
  let saved = Sys.getenv_opt "T1000_NJOBS" in
  Unix.putenv "T1000_NJOBS" v;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "T1000_NJOBS"
        (match saved with Some s -> s | None -> ""))
    f

(* ---------- Pool ---------- *)

let test_pool_order () =
  let xs = List.init 1000 Fun.id in
  let expected = List.map (fun i -> i * i) xs in
  check_bool "njobs=4 preserves order" true
    (Pool.parallel_map ~njobs:4 (fun i -> i * i) xs = expected);
  check_bool "njobs=1 preserves order" true
    (Pool.parallel_map ~njobs:1 (fun i -> i * i) xs = expected);
  check_bool "more workers than tasks" true
    (Pool.parallel_map ~njobs:64 (fun i -> i + 1) [ 1; 2; 3 ] = [ 2; 3; 4 ]);
  check_bool "empty input" true
    (Pool.parallel_map ~njobs:4 (fun i -> i) [] = [])

let test_pool_exception () =
  (* Both index 37 and index 500 fail; the pool must surface the
     lowest-index failure regardless of completion order. *)
  let f i =
    if i = 37 then failwith "boom-37"
    else if i = 500 then failwith "boom-500"
    else i
  in
  (match Pool.parallel_map ~njobs:4 f (List.init 1000 Fun.id) with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure msg -> check_bool "lowest index wins" true (msg = "boom-37"));
  match Pool.parallel_map ~njobs:1 f (List.init 50 Fun.id) with
  | _ -> Alcotest.fail "expected Failure (sequential)"
  | exception Failure msg ->
      check_bool "sequential propagates too" true (msg = "boom-37")

let test_pool_njobs_env () =
  with_njobs "1" (fun () ->
      check_int "T1000_NJOBS=1 honored" 1 (Pool.default_njobs ()));
  with_njobs "7" (fun () ->
      check_int "T1000_NJOBS=7 honored" 7 (Pool.default_njobs ()));
  with_njobs "" (fun () ->
      check_int "empty means unset" (Domain.recommended_domain_count ())
        (Pool.default_njobs ()));
  with_njobs "zero" (fun () ->
      check_bool "garbage rejected" true
        (match Pool.default_njobs () with
        | _ -> false
        | exception Invalid_argument _ -> true))

(* ---------- Memo ---------- *)

let test_memo_compute_once () =
  let m = Memo.create 4 in
  let computes = Atomic.make 0 in
  let f () =
    Atomic.incr computes;
    [ 1; 2; 3 ]
  in
  (* 64 tasks on 4 domains all demand the same key: exactly one
     computation, and every caller shares the same physical value. *)
  let vs =
    Pool.parallel_map ~njobs:4
      (fun _ -> Memo.find_or_compute m "k" f)
      (List.init 64 Fun.id)
  in
  check_int "computed exactly once" 1 (Atomic.get computes);
  let first = List.hd vs in
  check_bool "all callers share one value" true
    (List.for_all (fun v -> v == first) vs);
  check_int "one binding" 1 (Memo.length m)

let test_memo_failure_retries () =
  let m = Memo.create 4 in
  let attempts = ref 0 in
  let flaky () =
    incr attempts;
    if !attempts = 1 then failwith "first try fails" else 42
  in
  check_bool "first call raises" true
    (match Memo.find_or_compute m "k" flaky with
    | _ -> false
    | exception Failure _ -> true);
  check_int "failure leaves no binding" 0 (Memo.length m);
  check_int "second call retries and caches" 42
    (Memo.find_or_compute m "k" flaky);
  check_int "third call hits the cache" 42
    (Memo.find_or_compute m "k" flaky);
  check_int "two attempts total" 2 !attempts

(* ---------- sequential/parallel equivalence ---------- *)

let workload name =
  match Registry.find name with
  | Some w -> w
  | None -> Alcotest.failf "unknown workload %s" name

let suite () = [ workload "unepic"; workload "g721_dec" ]

let rows ~njobs =
  with_njobs (string_of_int njobs) (fun () ->
      let ctx = Experiment.create_ctx ~workloads:(suite ()) () in
      let f2 = Experiment.figure2 ctx in
      let f6 = Experiment.figure6 ctx in
      let s52 = Experiment.penalty_sweep ~penalties:[ 10; 100 ] ctx in
      (f2, f6, s52))

let test_parallel_matches_sequential () =
  let f2_seq, f6_seq, s52_seq = rows ~njobs:1 in
  let f2_par, f6_par, s52_par = rows ~njobs:4 in
  check_bool "figure2 identical" true (f2_seq = f2_par);
  check_bool "figure6 identical" true (f6_seq = f6_par);
  check_bool "penalty sweep identical" true (s52_seq = s52_par)

(* ---------- selection-table cache ---------- *)

let test_selection_cache () =
  let w = workload "unepic" in
  let ctx = Experiment.create_ctx ~workloads:[ w ] () in
  (* A penalty sweep must run selection once: every swept point returns
     the physically same table. *)
  ignore (Experiment.penalty_sweep ~penalties:[ 10; 50; 100 ] ctx);
  let sel p = Runner.setup ~n_pfus:(Some 2) ~penalty:p Runner.Selective in
  let t10 = Experiment.selection_table ctx w (sel 10) in
  let t50 = Experiment.selection_table ctx w (sel 50) in
  let t100 = Experiment.selection_table ctx w (sel 100) in
  check_bool "penalty 10/50 share the table" true (t10 == t50);
  check_bool "penalty 50/100 share the table" true (t50 == t100);
  (* Runs built from cached tables expose the sharing too. *)
  let r10 = Experiment.run_setup ctx w (sel 10) in
  let r50 = Experiment.run_setup ctx w (sel 50) in
  check_bool "run tables physically equal" true
    (r10.Runner.table == r50.Runner.table);
  (* Replacement policy is simulation-only: same key, same table. *)
  let fifo =
    { (sel 10) with Runner.replacement = T1000_ooo.Mconfig.Fifo }
  in
  check_bool "replacement sweep shares the table" true
    (Experiment.selection_table ctx w fifo == t10);
  (* Selection-relevant parameters do miss the cache. *)
  let t_4pfu =
    Experiment.selection_table ctx w
      (Runner.setup ~n_pfus:(Some 4) ~penalty:10 Runner.Selective)
  in
  check_bool "different n_pfus selects anew" true (not (t_4pfu == t10));
  (* Greedy ignores n_pfus at selection time: one cached greedy table. *)
  let g2 =
    Experiment.selection_table ctx w
      (Runner.setup ~n_pfus:(Some 2) Runner.Greedy)
  in
  let g_unl =
    Experiment.selection_table ctx w
      (Runner.setup ~n_pfus:None ~penalty:0 Runner.Greedy)
  in
  check_bool "greedy table shared across pfu counts" true (g2 == g_unl)

let () =
  Alcotest.run "t1000_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_map order" `Quick test_pool_order;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_exception;
          Alcotest.test_case "T1000_NJOBS" `Quick test_pool_njobs_env;
        ] );
      ( "memo",
        [
          Alcotest.test_case "compute once" `Quick test_memo_compute_once;
          Alcotest.test_case "failure clears pending" `Quick
            test_memo_failure_retries;
        ] );
      ( "engine",
        [
          Alcotest.test_case "parallel = sequential" `Slow
            test_parallel_matches_sequential;
          Alcotest.test_case "selection-table cache" `Slow
            test_selection_cache;
        ] );
    ]
