(* Differential fuzzing of the whole toolchain.

   A generator produces random (but always terminating and fault-free)
   loop kernels over narrow data registers, mixing candidate ALU/shift
   instructions with loads, stores, wide operations and multiplies.
   For every generated program we check, against the plain functional
   execution of the original:

   - greedy selection + rewriting preserves the observable state
     (output memory region and the wide accumulators);
   - selective selection (1 and 2 PFUs) preserves it too;
   - the rewritten program never executes more instructions;
   - the timing simulator commits exactly the instructions the
     functional interpreter executes, for original and rewritten
     programs alike;
   - binary encoding and the textual assembler round-trip the program.

   These properties catch exactly the class of bugs that matters most
   here: an extraction validity check that is too weak (miscompiled
   programs) or too strong would show up as state divergence or as
   zero folds across the whole fuzz corpus. *)

open T1000_isa
open T1000_asm
module R = Reg

let out_base = 0x2000
let data_base = 0x1000
let n_data = 16 (* halfwords of input data *)

(* Abstract body operations, instantiated over a small register pool.
   Register indices are into [data_regs]. *)
type body_op =
  | B_alu3 of Op.alu * int * int * int
  | B_alui of Op.alu * int * int * int (* op, dst, src, imm *)
  | B_shift of Op.shift * int * int * int (* op, dst, src, shamt *)
  | B_load of int * int (* dst reg, data slot *)
  | B_store of int * int (* src reg, out slot *)
  | B_mask of int (* re-narrow a register: andi r, r, 0xFFF *)
  | B_acc of int (* wide accumulate: s3 += reg *)
  | B_mult of int * int (* hi/lo multiply of two regs, mflo to reg0 *)

let data_regs = [| R.t0; R.t1; R.t2; R.t3; R.t4; R.t5; R.t6; R.t7 |]
let n_regs = Array.length data_regs

let body_op_gen : body_op QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = int_range 0 (n_regs - 1) in
  let alu =
    oneofl Op.[ Add; Addu; Sub; Subu; And; Or; Xor; Slt; Sltu ]
  in
  let alui = oneofl Op.[ Add; Addu; And; Or; Xor; Slt ] in
  let shift = oneofl Op.[ Sll; Srl; Sra ] in
  frequency
    [
      (5, map2 (fun op (a, b, c) -> B_alu3 (op, a, b, c)) alu
           (triple reg reg reg));
      (3, map2 (fun op (a, b, i) -> B_alui (op, a, b, i)) alui
           (triple reg reg (int_range 0 255)));
      (3, map2 (fun op (a, b, s) -> B_shift (op, a, b, s)) shift
           (triple reg reg (int_range 0 3)));
      (2, map2 (fun a s -> B_load (a, s)) reg (int_range 0 (n_data - 1)));
      (2, map2 (fun a s -> B_store (a, s)) reg (int_range 0 7));
      (3, map (fun a -> B_mask a) reg);
      (2, map (fun a -> B_acc a) reg);
      (1, map2 (fun a b -> B_mult (a, b)) reg reg);
    ]

type spec = {
  iters : int;
  body : body_op list;
}

let spec_gen =
  let open QCheck.Gen in
  map2
    (fun iters body -> { iters; body })
    (int_range 3 20)
    (list_size (int_range 4 24) body_op_gen)

(* Keep every register narrow enough that candidate widths stay sane:
   after arbitrary arithmetic a register may be wide, so the builder
   re-narrows destination registers with a probability folded into the
   op stream (B_mask) and relies on the width profile for candidacy.
   Correctness never depends on widths; they only shape extraction. *)
let build_program spec =
  let b = Builder.create ~name:"fuzz" () in
  Builder.li b R.a0 data_base;
  Builder.li b R.a1 out_base;
  Builder.li b R.s3 0x100000 (* wide accumulator *);
  Builder.li b R.s0 spec.iters;
  (* deterministic initial register values *)
  Array.iteri (fun i r -> Builder.li b r ((i * 37) land 0xFF)) data_regs;
  Builder.label b "top";
  List.iter
    (fun op ->
      match op with
      | B_alu3 (op, d, s1, s2) ->
          Builder.raw b
            (Instr.Alu_rrr (op, data_regs.(d), data_regs.(s1), data_regs.(s2)))
      | B_alui (op, d, s, imm) ->
          Builder.raw b (Instr.Alu_rri (op, data_regs.(d), data_regs.(s), imm))
      | B_shift (op, d, s, sh) ->
          Builder.raw b
            (Instr.Shift_imm (op, data_regs.(d), data_regs.(s), sh))
      | B_load (d, slot) -> Builder.lh b data_regs.(d) (2 * slot) R.a0
      | B_store (s, slot) -> Builder.sh b data_regs.(s) (2 * slot) R.a1
      | B_mask d -> Builder.andi b data_regs.(d) data_regs.(d) 0xFFF
      | B_acc s -> Builder.addu b R.s3 R.s3 data_regs.(s)
      | B_mult (a, bb) ->
          Builder.mult b data_regs.(a) data_regs.(bb);
          Builder.mflo b data_regs.(0))
    spec.body;
  Builder.addiu b R.s0 R.s0 (-1);
  Builder.bgtz b R.s0 "top";
  (* publish the accumulator and every data register so the observable
     state covers all live values *)
  Builder.sw b R.s3 16 R.a1;
  Array.iteri (fun i r -> Builder.sh b r (20 + (2 * i)) R.a1) data_regs;
  Builder.halt b;
  Builder.build b

let init mem _regs =
  for i = 0 to n_data - 1 do
    T1000_machine.Memory.store_half mem (data_base + (2 * i))
      ((i * 1237) land 0x7FF)
  done

(* observable state: the whole output region *)
let observable (w_table : T1000_select.Extinstr.t) program =
  let mem = T1000_machine.Memory.create () in
  let regs = T1000_machine.Regfile.create () in
  init mem regs;
  let interp =
    T1000_machine.Interp.create ~mem ~regs
      ~ext_eval:(T1000_select.Extinstr.eval w_table)
      program
  in
  let steps = T1000_machine.Interp.run ~max_steps:20_000_000 interp in
  let bytes =
    String.init 64 (fun i -> Char.chr (T1000_machine.Memory.load_byte mem (out_base + i)))
  in
  (steps, bytes)

let analyze program =
  let profile = T1000_profile.Profile.collect ~init program in
  let cfg = Cfg.of_program program in
  let dom = Dominators.compute cfg in
  let loops = Loops.compute cfg dom in
  let live = Liveness.compute cfg in
  (profile, cfg, loops, live)

let arbitrary_spec = QCheck.make ~print:(fun s ->
    Printf.sprintf "iters=%d body=%d ops then: %s" s.iters
      (List.length s.body)
      (Asm_text.to_string (build_program s)))
    spec_gen

let fuzz_greedy =
  QCheck.Test.make ~name:"greedy rewrite preserves observable state"
    ~count:500 arbitrary_spec (fun spec ->
      let p = build_program spec in
      let profile, cfg, _, live = analyze p in
      let r = T1000_select.Greedy.select cfg live profile in
      let rw = T1000_select.Rewrite.apply p r.T1000_select.Greedy.table in
      let steps0, obs0 = observable T1000_select.Extinstr.empty p in
      let steps1, obs1 =
        observable r.T1000_select.Greedy.table rw.T1000_select.Rewrite.program
      in
      String.equal obs0 obs1 && steps1 <= steps0)

let fuzz_selective =
  QCheck.Test.make ~name:"selective rewrite preserves observable state"
    ~count:250 arbitrary_spec (fun spec ->
      let p = build_program spec in
      let profile, cfg, loops, live = analyze p in
      List.for_all
        (fun n ->
          let r =
            T1000_select.Selective.select ~n_pfus:(Some n) cfg loops live
              profile
          in
          let rw = T1000_select.Rewrite.apply p r.T1000_select.Selective.table in
          let _, obs0 = observable T1000_select.Extinstr.empty p in
          let _, obs1 =
            observable r.T1000_select.Selective.table
              rw.T1000_select.Rewrite.program
          in
          String.equal obs0 obs1)
        [ 1; 2 ])

let fuzz_sim_commits =
  QCheck.Test.make ~name:"timing sim commits the functional trace" ~count:150
    arbitrary_spec (fun spec ->
      let p = build_program spec in
      let profile, cfg, _, live = analyze p in
      let r = T1000_select.Greedy.select cfg live profile in
      let rw = T1000_select.Rewrite.apply p r.T1000_select.Greedy.table in
      let steps0, _ = observable T1000_select.Extinstr.empty p in
      let steps1, _ =
        observable r.T1000_select.Greedy.table rw.T1000_select.Rewrite.program
      in
      let table = r.T1000_select.Greedy.table in
      let stats0 = T1000_ooo.Sim.run ~init p in
      let stats1 =
        T1000_ooo.Sim.run
          ~mconfig:
            (T1000_ooo.Mconfig.with_pfus (Some 2) T1000_ooo.Mconfig.default)
          ~ext_eval:(T1000_select.Extinstr.eval table)
          ~init rw.T1000_select.Rewrite.program
      in
      stats0.T1000_ooo.Stats.committed = steps0
      && stats1.T1000_ooo.Stats.committed = steps1)

let fuzz_encoding_roundtrip =
  QCheck.Test.make ~name:"binary encoding round-trips whole programs"
    ~count:100 arbitrary_spec (fun spec ->
      let p = build_program spec in
      let q =
        Program.make
          (Array.init (Program.length p) (fun i ->
               Encoding.decode ~index:i
                 (Encoding.encode ~index:i (Program.get p i))))
      in
      Program.length p = Program.length q
      && List.for_all
           (fun i -> Instr.equal (Program.get p i) (Program.get q i))
           (List.init (Program.length p) Fun.id))

let fuzz_asm_text_roundtrip =
  QCheck.Test.make ~name:"assembler text round-trips whole programs"
    ~count:100 arbitrary_spec (fun spec ->
      let p = build_program spec in
      match Asm_text.parse (Asm_text.to_string p) with
      | Error _ -> false
      | Ok q ->
          Program.length p = Program.length q
          && List.for_all
               (fun i -> Instr.equal (Program.get p i) (Program.get q i))
               (List.init (Program.length p) Fun.id))

let fuzz_table_roundtrip =
  QCheck.Test.make ~name:"ext-table files replay identically" ~count:100
    arbitrary_spec (fun spec ->
      let p = build_program spec in
      let profile, cfg, _, live = analyze p in
      let r = T1000_select.Greedy.select cfg live profile in
      match
        T1000_select.Extinstr.of_text
          (T1000_select.Extinstr.to_text r.T1000_select.Greedy.table)
      with
      | Error _ -> false
      | Ok table ->
          let rw1 =
            T1000_select.Rewrite.apply p r.T1000_select.Greedy.table
          in
          let rw2 = T1000_select.Rewrite.apply p table in
          let _, o1 =
            observable r.T1000_select.Greedy.table
              rw1.T1000_select.Rewrite.program
          in
          let _, o2 = observable table rw2.T1000_select.Rewrite.program in
          String.equal o1 o2
          && Program.length rw1.T1000_select.Rewrite.program
             = Program.length rw2.T1000_select.Rewrite.program)

let fuzz_extraction_sound =
  (* structural invariants on everything the extractor reports *)
  QCheck.Test.make ~name:"extracted occurrences satisfy the constraints"
    ~count:100 arbitrary_spec (fun spec ->
      let p = build_program spec in
      let profile, cfg, _, live = analyze p in
      let occs =
        T1000_dfg.Extract.maximal T1000_dfg.Extract.default_config cfg live
          profile
      in
      List.for_all
        (fun (o : T1000_dfg.Extract.occ) ->
          let size = List.length o.T1000_dfg.Extract.members in
          size >= 2 && size <= 8
          && Array.length o.T1000_dfg.Extract.input_regs <= 2
          && o.T1000_dfg.Extract.root
             = List.fold_left max 0 o.T1000_dfg.Extract.members
          && T1000_dfg.Dfg.size o.T1000_dfg.Extract.dfg = size)
        occs)

(* The corpus must actually exercise folding: if extraction were
   vacuously strict, every differential test would pass while testing
   nothing.  Generate a fixed corpus and require a healthy number of
   collapsed occurrences overall. *)
let test_corpus_folds () =
  let rand = Random.State.make [| 42 |] in
  let total = ref 0 in
  for _ = 1 to 60 do
    let spec = QCheck.Gen.generate1 ~rand spec_gen in
    let p = build_program spec in
    let profile, cfg, _, live = analyze p in
    let r = T1000_select.Greedy.select cfg live profile in
    let rw = T1000_select.Rewrite.apply p r.T1000_select.Greedy.table in
    total := !total + rw.T1000_select.Rewrite.collapsed
  done;
  Alcotest.(check bool)
    (Printf.sprintf "corpus folds something (got %d collapses)" !total)
    true (!total > 30)

(* ================= lib/fuzz: the seeded fuzz subsystem ================= *)

module F = T1000_fuzz
module Pool = T1000.Pool
module Fault = T1000.Fault

let with_env var value f =
  let saved = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv var (match saved with Some s -> s | None -> ""))
    f

(* ---- generator: determinism, validity, halting ---- *)

let test_gen_deterministic () =
  let text seed = Asm_text.to_string (F.Gen.program (F.Gen.generate ~seed)) in
  Alcotest.(check string) "same seed, same program" (text 42) (text 42);
  let distinct =
    List.sort_uniq compare (List.init 20 (fun i -> text (1000 + i)))
  in
  Alcotest.(check bool) "different seeds differ" true
    (List.length distinct > 10)

let test_gen_halts () =
  for seed = 0 to 29 do
    let c = F.Gen.generate ~seed in
    let w = F.Gen.workload c in
    let mem = T1000_machine.Memory.create () in
    let regs = T1000_machine.Regfile.create () in
    w.T1000_workloads.Workload.init mem regs;
    let it =
      T1000_machine.Interp.create ~mem ~regs
        w.T1000_workloads.Workload.program
    in
    let steps = T1000_machine.Interp.run ~max_steps:200_000 it in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d halts quickly (took %d steps)" seed steps)
      true
      (steps > 0 && steps < 200_000)
  done

(* ---- oracle: clean corpus, armed bug caught and shrunk ---- *)

let test_oracle_clean () =
  for seed = 0 to 30 do
    match F.Oracle.check (F.Gen.generate ~seed) with
    | Ok () -> ()
    | Error f ->
        Alcotest.failf "seed %d fails the oracle: %s" seed
          (Format.asprintf "%a" F.Oracle.pp_failure f)
  done

let test_oracle_catches_armed_bug () =
  with_env "T1000_FAULT_INJECT" "fuzz-oracle" @@ fun () ->
  let buggy_seed =
    let rec find i =
      if i >= 100 then Alcotest.fail "armed bug never tripped in 100 cases"
      else
        let seed = F.Rng.derive 42 i in
        if Result.is_error (F.Oracle.check (F.Gen.generate ~seed)) then seed
        else find (i + 1)
    in
    find 0
  in
  let still_fails c = Result.is_error (F.Oracle.check c) in
  let shrunk =
    F.Shrink.shrink ~still_fails (F.Gen.generate ~seed:buggy_seed)
  in
  Alcotest.(check bool) "shrunk case still fails" true (still_fails shrunk);
  let n = F.Gen.instr_count shrunk in
  Alcotest.(check bool)
    (Printf.sprintf "minimal reproducer is small (%d instructions)" n)
    true (n <= 20);
  (* disarmed, the very same case must pass: the failure is the injected
     off-by-one, not a real divergence *)
  with_env "T1000_FAULT_INJECT" "" (fun () ->
      Alcotest.(check bool) "disarmed reproducer passes" true
        (Result.is_ok (F.Oracle.check shrunk)))

(* ---- chaos pool: retries make a stormy run equal a calm one ---- *)

let test_chaos_pool_identical () =
  let xs = List.init 300 Fun.id in
  let f i = i * 7 in
  let calm = Pool.parallel_map_result ~njobs:4 f xs in
  Alcotest.(check bool) "calm run all Ok" true
    (List.for_all Result.is_ok calm);
  with_env "T1000_CHAOS" "0.4" @@ fun () ->
  with_env "T1000_CHAOS_SEED" "9" @@ fun () ->
  let injected0, killed0 = Pool.chaos_events () in
  let stormy = Pool.parallel_map_result ~njobs:4 f xs in
  let injected1, killed1 = Pool.chaos_events () in
  Alcotest.(check bool) "chaos injected faults" true (injected1 > injected0);
  Alcotest.(check bool) "chaos killed at least one worker" true
    (killed1 > killed0);
  Alcotest.(check bool) "stormy results identical to calm" true
    (stormy = calm);
  (* the sequential path must agree with the pool under the same seed *)
  let seq = Pool.parallel_map_result ~njobs:1 f xs in
  Alcotest.(check bool) "sequential chaos identical too" true (seq = calm)

let test_chaos_retries_exhausted () =
  let xs = List.init 50 Fun.id in
  with_env "T1000_CHAOS" "0.5" @@ fun () ->
  with_env "T1000_CHAOS_SEED" "3" @@ fun () ->
  let rs = Pool.parallel_map_result ~njobs:2 ~retries:0 (fun i -> i) xs in
  Alcotest.(check bool) "with retries disabled some injections surface" true
    (List.exists
       (function Error (Fault.Injected _) -> true | _ -> false)
       rs);
  Alcotest.(check bool) "but non-injected tasks still succeed" true
    (List.exists Result.is_ok rs)

let test_on_result_crash_isolated () =
  let xs = List.init 100 Fun.id in
  let run njobs =
    Pool.parallel_map_result ~njobs
      ~on_result:(fun i _ -> if i = 5 then failwith "journal disk died")
      (fun i -> i)
      xs
  in
  List.iter
    (fun njobs ->
      let rs = run njobs in
      Alcotest.(check int)
        (Printf.sprintf "njobs=%d: every element completes" njobs)
        100 (List.length rs);
      List.iteri
        (fun i r ->
          if i = 5 then
            match r with
            | Error (Fault.Crashed { exn; _ }) ->
                Alcotest.(check bool) "crash names on_result" true
                  (String.length exn >= 10
                  && String.sub exn 0 10 = "on_result:")
            | _ -> Alcotest.fail "element 5 should carry the on_result crash"
          else
            Alcotest.(check bool)
              (Printf.sprintf "njobs=%d: element %d unaffected" njobs i)
              true
              (r = Ok i))
        rs)
    [ 4; 1 ]

let test_chaos_env_validation () =
  let rejects var v read =
    with_env var v (fun () ->
        match read () with
        | _ -> false
        | exception Fault.Error (Fault.Invalid_config _) -> true)
  in
  Alcotest.(check bool) "T1000_CHAOS garbage rejected" true
    (rejects "T1000_CHAOS" "banana" Pool.env_chaos);
  Alcotest.(check bool) "T1000_CHAOS out of range rejected" true
    (rejects "T1000_CHAOS" "1.5" Pool.env_chaos);
  Alcotest.(check bool) "T1000_CHAOS valid accepted" true
    (with_env "T1000_CHAOS" "0.3" (fun () -> Pool.env_chaos () = 0.3));
  Alcotest.(check bool) "T1000_CHAOS empty is off" true
    (with_env "T1000_CHAOS" "" (fun () -> Pool.env_chaos () = 0.0));
  Alcotest.(check bool) "T1000_CHAOS_SEED garbage rejected" true
    (rejects "T1000_CHAOS_SEED" "x" Pool.env_chaos_seed);
  Alcotest.(check bool) "T1000_RETRIES negative rejected" true
    (rejects "T1000_RETRIES" "-1" Pool.env_retries);
  Alcotest.(check bool) "T1000_RETRIES valid accepted" true
    (with_env "T1000_RETRIES" "3" (fun () -> Pool.env_retries () = Some 3))

(* ---- corruption drills and the end-to-end chaos soak ---- *)

let test_corruption_drills () =
  match F.Fuzz.corruption_drills ~seed:5 ~rounds:20 () with
  | [] -> ()
  | errs -> Alcotest.failf "drill failures:\n%s" (String.concat "\n" errs)

let test_chaos_soak () =
  (* a chaotic sweep (injections + worker kills) must lose zero rows and
     reproduce the calm rows exactly — the ISSUE's headline property *)
  match F.Fuzz.chaos_soak ~p:0.2 ~seed:11 () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let () =
  Alcotest.run "t1000_fuzz"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [
            fuzz_greedy;
            fuzz_selective;
            fuzz_sim_commits;
            fuzz_encoding_roundtrip;
            fuzz_asm_text_roundtrip;
            fuzz_extraction_sound;
            fuzz_table_roundtrip;
          ] );
      ( "corpus",
        [ Alcotest.test_case "folding coverage" `Quick test_corpus_folds ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_gen_deterministic;
          Alcotest.test_case "halts by construction" `Quick test_gen_halts;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "clean corpus" `Slow test_oracle_clean;
          Alcotest.test_case "armed bug caught and shrunk" `Slow
            test_oracle_catches_armed_bug;
        ] );
      ( "chaos-pool",
        [
          Alcotest.test_case "stormy equals calm" `Quick
            test_chaos_pool_identical;
          Alcotest.test_case "retries exhausted surface" `Quick
            test_chaos_retries_exhausted;
          Alcotest.test_case "on_result crash isolated" `Quick
            test_on_result_crash_isolated;
          Alcotest.test_case "env validation" `Quick test_chaos_env_validation;
        ] );
      ( "drills",
        [
          Alcotest.test_case "checkpoint corruption drills" `Quick
            test_corruption_drills;
          Alcotest.test_case "chaos soak byte-identical" `Slow
            test_chaos_soak;
        ] );
    ]
