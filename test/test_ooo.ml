(* Tests for the out-of-order core: machine configuration, the PFU
   file, the RUU ring, and the cycle-level simulator's first-order
   behaviours (width limits, dependence serialization, memory latency,
   reconfiguration penalties, thrashing). *)

open T1000_isa
open T1000_asm
open T1000_ooo
module R = Reg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Mconfig ---------- *)

let test_mconfig () =
  let m = Mconfig.default in
  check_int "4-wide" 4 m.Mconfig.issue_width;
  check_int "ruu 64" 64 m.Mconfig.ruu_size;
  check_bool "no pfus by default" true (m.Mconfig.n_pfus = Some 0);
  let m2 = Mconfig.with_pfus ~penalty:25 (Some 3) m in
  check_bool "pfu count" true (m2.Mconfig.n_pfus = Some 3);
  check_int "penalty" 25 m2.Mconfig.pfu_reconfig_cycles;
  let m3 = Mconfig.with_pfus None m in
  check_bool "unlimited" true (m3.Mconfig.n_pfus = None)

(* ---------- Pfu_file ---------- *)

let test_pfu_unlimited () =
  let f = Pfu_file.create ~n:None ~penalty:10 ~replacement:Mconfig.Lru in
  (match Pfu_file.request f ~now:100 ~conf:7 with
  | Pfu_file.Ready { at; hit; _ } ->
      check_bool "first use misses" false hit;
      check_int "pays the penalty once" 110 at
  | Pfu_file.Stall -> Alcotest.fail "unexpected stall");
  (match Pfu_file.request f ~now:200 ~conf:7 with
  | Pfu_file.Ready { at; hit; _ } ->
      check_bool "second use hits" true hit;
      check_int "no further penalty" 200 at
  | Pfu_file.Stall -> Alcotest.fail "unexpected stall");
  check_int "one reconfig" 1 (Pfu_file.reconfigs f);
  check_int "one hit" 1 (Pfu_file.hits f)

let test_pfu_lru_eviction () =
  let f = Pfu_file.create ~n:(Some 2) ~penalty:10 ~replacement:Mconfig.Lru in
  let req now conf =
    match Pfu_file.request f ~now ~conf with
    | Pfu_file.Ready { unit_id; hit; _ } ->
        Pfu_file.release f ~unit_id;
        hit
    | Pfu_file.Stall -> Alcotest.fail "unexpected stall"
  in
  ignore (req 0 1);
  ignore (req 1 2);
  (* touch conf 1 so conf 2 is LRU *)
  ignore (req 2 1);
  ignore (req 3 3);
  (* conf 3 must have evicted conf 2 *)
  check_bool "conf 1 still resident" true (req 4 1);
  check_bool "conf 2 was evicted" false (req 5 2)

let test_pfu_pinning_stall () =
  let f = Pfu_file.create ~n:(Some 1) ~penalty:10 ~replacement:Mconfig.Lru in
  (* conf 1 loaded and pinned (no release) *)
  (match Pfu_file.request f ~now:0 ~conf:1 with
  | Pfu_file.Ready _ -> ()
  | Pfu_file.Stall -> Alcotest.fail "should load");
  (* a different conf cannot evict the pinned unit *)
  (match Pfu_file.request f ~now:1 ~conf:2 with
  | Pfu_file.Stall -> ()
  | Pfu_file.Ready _ -> Alcotest.fail "should stall on pinned unit");
  check_int "stall counted" 1 (Pfu_file.stalls f);
  (* same conf can still pin again *)
  (match Pfu_file.request f ~now:2 ~conf:1 with
  | Pfu_file.Ready { hit; _ } -> check_bool "re-pin hits" true hit
  | Pfu_file.Stall -> Alcotest.fail "same conf should be usable");
  (* after releases the unit becomes evictable *)
  Pfu_file.release f ~unit_id:0;
  Pfu_file.release f ~unit_id:0;
  match Pfu_file.request f ~now:3 ~conf:2 with
  | Pfu_file.Ready { hit; at; _ } ->
      check_bool "reconfigured" false hit;
      check_int "pays penalty" 13 at
  | Pfu_file.Stall -> Alcotest.fail "should reconfigure after release"

let test_pfu_fifo () =
  let f = Pfu_file.create ~n:(Some 2) ~penalty:5 ~replacement:Mconfig.Fifo in
  let req now conf =
    match Pfu_file.request f ~now ~conf with
    | Pfu_file.Ready { unit_id; hit; _ } ->
        Pfu_file.release f ~unit_id;
        hit
    | Pfu_file.Stall -> Alcotest.fail "stall"
  in
  ignore (req 0 1);
  ignore (req 1 2);
  ignore (req 2 1) (* LRU would protect 1; FIFO evicts it anyway *);
  ignore (req 3 3);
  check_bool "FIFO evicted the oldest load (conf 1)" false (req 4 1)

let test_pfu_zero_units () =
  let f = Pfu_file.create ~n:(Some 0) ~penalty:5 ~replacement:Mconfig.Lru in
  match Pfu_file.request f ~now:0 ~conf:1 with
  | Pfu_file.Stall -> ()
  | Pfu_file.Ready _ -> Alcotest.fail "no units: must stall"

(* ---------- Ruu ---------- *)

let test_ruu_ring () =
  let r = Ruu.create ~size:2 in
  check_bool "empty" true (Ruu.is_empty r);
  let e1 = Ruu.push r in
  check_int "seq 0" 0 e1.Ruu.seq;
  let e2 = Ruu.push r in
  check_int "seq 1" 1 e2.Ruu.seq;
  check_bool "full" true (Ruu.is_full r);
  check_bool "push when full" true
    (match Ruu.push r with exception Invalid_argument _ -> true | _ -> false);
  let popped = Ruu.pop r in
  check_int "fifo order" 0 popped.Ruu.seq;
  check_bool "seq 0 no longer in flight" false (Ruu.in_flight r 0);
  check_bool "seq 1 in flight" true (Ruu.in_flight r 1);
  (* ring reuse keeps sequence numbers monotonic *)
  let e3 = Ruu.push r in
  check_int "seq 2" 2 e3.Ruu.seq;
  check_int "occupancy" 2 (Ruu.occupancy r);
  check_bool "get out of range" true
    (match Ruu.get r 0 with exception Invalid_argument _ -> true | _ -> false)

let test_ruu_fields_reset () =
  let r = Ruu.create ~size:1 in
  let e = Ruu.push r in
  e.Ruu.dep1 <- 42;
  e.Ruu.issued <- true;
  ignore (Ruu.pop r);
  let e2 = Ruu.push r in
  check_int "dep reset" (-1) e2.Ruu.dep1;
  check_bool "issued reset" false e2.Ruu.issued

(* ---------- Sim ---------- *)

let build f =
  let b = Builder.create () in
  f b;
  Builder.build b

let run ?mconfig ?ext_latency ?ext_eval ?(init = fun _ _ -> ()) p =
  Sim.run ?mconfig ?ext_latency ?ext_eval ~init p

let test_sim_commits_everything () =
  let p =
    build (fun b ->
        Builder.li b R.t0 10;
        Builder.label b "top";
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let s = run p in
  check_int "committed = dynamic instructions" 22 s.Stats.committed;
  check_bool "cycles positive" true (s.Stats.cycles > 0);
  check_bool "ipc bounded by width" true (s.Stats.ipc <= 4.0)

let test_sim_dependent_chain_serializes () =
  (* a warmed loop (instruction cache hot after the first iteration)
     whose body is 8 dependent adds vs 8 independent adds: the chain
     bounds the loop to >= 8 cycles/iteration; the independent body
     runs close to 4 instructions per cycle *)
  let iters = 100 in
  let dep =
    build (fun b ->
        Builder.li b R.t0 iters;
        Builder.li b R.t1 1;
        Builder.label b "top";
        for _ = 1 to 8 do
          Builder.addu b R.t1 R.t1 R.t1
        done;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let indep =
    build (fun b ->
        Builder.li b R.t0 iters;
        Builder.li b R.t9 1;
        Builder.label b "top";
        for i = 1 to 8 do
          Builder.addu b (Reg.of_int (8 + i)) R.t9 R.t9
        done;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let sd = run dep and si = run indep in
  check_bool "chain >= 8 cycles/iteration" true
    (sd.Stats.cycles >= 8 * iters);
  check_bool "independent at least 2x faster" true
    (si.Stats.cycles * 2 <= sd.Stats.cycles)

let test_sim_issue_width_limits () =
  (* 2-wide machine is slower than 4-wide on independent work *)
  let p =
    build (fun b ->
        Builder.li b R.t0 1;
        for i = 1 to 64 do
          Builder.addu b (Reg.of_int (8 + (i mod 8))) R.t0 R.t0
        done;
        Builder.halt b)
  in
  let narrow =
    {
      Mconfig.default with
      Mconfig.fetch_width = 2;
      decode_width = 2;
      issue_width = 2;
      commit_width = 2;
    }
  in
  let s4 = run p and s2 = run ~mconfig:narrow p in
  check_bool "2-wide slower" true (s2.Stats.cycles > s4.Stats.cycles)

let test_sim_load_latency () =
  (* a cold load on the critical path costs the full hierarchy latency *)
  let p =
    build (fun b ->
        Builder.li b R.t0 0x1000;
        Builder.lw b R.t1 0 R.t0;
        Builder.addu b R.t2 R.t1 R.t1 (* depends on the load *);
        Builder.halt b)
  in
  let s = run p in
  let cfg = Mconfig.default.Mconfig.cache in
  check_bool "cycles include the miss chain" true
    (s.Stats.cycles
    >= cfg.T1000_cache.Hierarchy.l2_hit + cfg.T1000_cache.Hierarchy.mem)

let test_sim_store_load_dependence () =
  (* a load from the same word as an in-flight store must wait *)
  let p =
    build (fun b ->
        Builder.li b R.t0 0x1000;
        Builder.li b R.t1 7;
        Builder.sw b R.t1 0 R.t0;
        Builder.lw b R.t2 0 R.t0;
        Builder.halt b)
  in
  (* correctness is the interpreter's job; here we only require the
     simulator to run it to completion with in-order memory semantics *)
  let s = run p in
  check_int "all committed" 5 s.Stats.committed

let test_sim_ext_instr_timing () =
  (* one hot loop with one extended instruction: after the initial
     configuration load, every use hits *)
  let eval _ v1 _ = Word.add v1 1 in
  let p =
    build (fun b ->
        Builder.li b R.t0 50;
        Builder.label b "top";
        Builder.ext b 0 R.t1 R.t0 R.zero;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let mconfig = Mconfig.with_pfus ~penalty:10 (Some 2) Mconfig.default in
  let s = run ~mconfig ~ext_eval:eval p in
  check_int "one reconfiguration" 1 s.Stats.pfu_misses;
  check_int "the rest hit" 49 s.Stats.pfu_hits;
  check_int "ext committed" 50 s.Stats.ext_committed

let test_sim_thrashing () =
  (* three configurations alternating in one loop with two PFUs: every
     dispatch misses; with zero penalty the same loop barely changes *)
  let eval eid v1 _ = Word.add v1 eid in
  let mk_prog () =
    build (fun b ->
        Builder.li b R.t0 100;
        Builder.label b "top";
        Builder.ext b 0 R.t1 R.t0 R.zero;
        Builder.ext b 1 R.t2 R.t0 R.zero;
        Builder.ext b 2 R.t3 R.t0 R.zero;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let run_pen pen =
    run
      ~mconfig:(Mconfig.with_pfus ~penalty:pen (Some 2) Mconfig.default)
      ~ext_eval:eval (mk_prog ())
  in
  let s10 = run_pen 10 and s0 = run_pen 0 in
  check_bool "every use reconfigures" true (s10.Stats.pfu_misses >= 290);
  check_bool "penalty dominates runtime" true
    (s10.Stats.cycles > 2 * s0.Stats.cycles);
  (* with 3 PFUs the same program stops thrashing *)
  let s3 =
    run
      ~mconfig:(Mconfig.with_pfus ~penalty:10 (Some 3) Mconfig.default)
      ~ext_eval:eval (mk_prog ())
  in
  check_int "three PFUs: only cold misses" 3 s3.Stats.pfu_misses

let test_sim_ext_latency_honoured () =
  let eval _ v1 _ = v1 in
  let p =
    build (fun b ->
        Builder.li b R.t0 20;
        (* a straight-line chain of dependent extended instructions *)
        for _ = 1 to 20 do
          Builder.ext b 0 R.t0 R.t0 R.zero
        done;
        Builder.halt b)
  in
  let mconfig = Mconfig.with_pfus ~penalty:0 None Mconfig.default in
  let fast = run ~mconfig ~ext_eval:eval ~ext_latency:(fun _ -> 1) p in
  let slow = run ~mconfig ~ext_eval:eval ~ext_latency:(fun _ -> 8) p in
  check_bool "slower PFUs lengthen execution" true
    (slow.Stats.cycles > fast.Stats.cycles)

let test_sim_ruu_pressure () =
  (* a 4-entry RUU cannot overlap iterations like a 64-entry one *)
  let p =
    build (fun b ->
        Builder.li b R.t0 200;
        Builder.li b R.t9 1;
        Builder.label b "top";
        for i = 1 to 8 do
          Builder.addu b (Reg.of_int (8 + i)) R.t9 R.t9
        done;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let tiny = { Mconfig.default with Mconfig.ruu_size = 4 } in
  let s_small = run ~mconfig:tiny p in
  let s_big = run p in
  check_bool "ruu-full stalls occur" true (s_small.Stats.ruu_full_stalls > 0);
  check_bool "small window strictly slower" true
    (s_small.Stats.cycles > s_big.Stats.cycles)

let test_sim_branch_prediction () =
  (* loop branch: taken 99x then falls through - bimodal mispredicts
     only around the ends; a data-dependent alternating branch
     mispredicts constantly *)
  let loop_p =
    build (fun b ->
        Builder.li b R.t0 100;
        Builder.label b "top";
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let alt_p =
    build (fun b ->
        Builder.li b R.t0 100;
        Builder.li b R.t1 0;
        Builder.label b "top";
        Builder.xori b R.t1 R.t1 1 (* 0,1,0,1,... *);
        Builder.beq b R.t1 R.zero "skip";
        Builder.nop b;
        Builder.label b "skip";
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let bimodal =
    { Mconfig.default with Mconfig.branch_pred = Mconfig.Bimodal 256 }
  in
  let perf_loop = run loop_p in
  let bi_loop = run ~mconfig:bimodal loop_p in
  check_int "perfect never mispredicts" 0 perf_loop.Stats.branch_mispredicts;
  check_bool "loop branch predicts well" true
    (bi_loop.Stats.branch_mispredicts <= 4);
  let perf_alt = run alt_p in
  let bi_alt = run ~mconfig:bimodal alt_p in
  check_bool "alternating branch mispredicts a lot" true
    (bi_alt.Stats.branch_mispredicts >= 40);
  check_bool "mispredictions cost cycles" true
    (bi_alt.Stats.cycles > perf_alt.Stats.cycles);
  check_int "same committed count" perf_alt.Stats.committed
    bi_alt.Stats.committed

let test_sim_btb_indirect () =
  (* a jr returning to the same site is learned by the last-target
     buffer: the second call predicts correctly *)
  let p =
    build (fun b ->
        Builder.li b R.t0 3;
        Builder.label b "top";
        Builder.jal b "fn";
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b;
        Builder.label b "fn";
        Builder.jr b R.ra)
  in
  let bimodal =
    { Mconfig.default with Mconfig.branch_pred = Mconfig.Bimodal 256 }
  in
  let s = run ~mconfig:bimodal p in
  (* the jr always returns to the same slot: only the first (cold)
     prediction can miss, plus at most a couple of loop-branch misses *)
  check_bool "btb learns the return target" true
    (s.Stats.branch_mispredicts <= 4);
  check_int "everything commits" 14 s.Stats.committed

let test_sim_cfgld_prefetch () =
  (* one extended instruction used once, far from program start, with a
     200-cycle reconfiguration: a cfgld hint at the start hides most of
     the load behind independent work *)
  let eval _ v1 _ = Word.add v1 1 in
  let mk with_hint =
    build (fun b ->
        if with_hint then Builder.raw b (Instr.Cfgld 0);
        Builder.li b R.t9 1;
        (* filler work: ~200 cycles of dependent adds *)
        Builder.li b R.t0 200;
        Builder.label b "fill";
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "fill";
        Builder.ext b 0 R.t1 R.t9 R.zero;
        Builder.halt b)
  in
  let mconfig = Mconfig.with_pfus ~penalty:200 (Some 2) Mconfig.default in
  let cold = run ~mconfig ~ext_eval:eval (mk false) in
  let hinted = run ~mconfig ~ext_eval:eval (mk true) in
  check_bool "prefetch hides most of the reload" true
    (hinted.Stats.cycles + 150 < cold.Stats.cycles);
  (* the hint itself commits like a nop *)
  check_int "one more committed instr" (cold.Stats.committed + 1)
    hinted.Stats.committed

let test_sim_mem_port_contention () =
  (* a loop of independent loads: 2 memory ports bound throughput to
     2 loads/cycle; 1 port halves it *)
  let p =
    build (fun b ->
        Builder.li b R.t0 200;
        Builder.li b R.t9 0x1000;
        Builder.label b "top";
        for i = 0 to 3 do
          Builder.lw b (Reg.of_int (9 + i)) (4 * i) R.t9
        done;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let one_port = { Mconfig.default with Mconfig.n_mem_ports = 1 } in
  let s2 = run p and s1 = run ~mconfig:one_port p in
  (* 4 loads/iter: >= 2 cycles with 2 ports, >= 4 with 1 port *)
  check_bool "two ports bound" true (s2.Stats.cycles >= 2 * 200);
  check_bool "one port clearly slower" true
    (s1.Stats.cycles * 10 >= s2.Stats.cycles * 15)

let test_sim_commit_width () =
  (* commit width 1 bounds IPC at 1 even for independent work *)
  let p =
    build (fun b ->
        Builder.li b R.t0 200;
        Builder.li b R.t9 1;
        Builder.label b "top";
        for i = 1 to 6 do
          Builder.addu b (Reg.of_int (8 + i)) R.t9 R.t9
        done;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let narrow_commit = { Mconfig.default with Mconfig.commit_width = 1 } in
  let s = run ~mconfig:narrow_commit p in
  check_bool "ipc <= 1 with single commit" true (s.Stats.ipc <= 1.0 +. 1e-9);
  let s4 = run p in
  check_bool "4-wide commit much faster" true
    (s4.Stats.cycles * 2 < s.Stats.cycles)

let test_sim_new_stats () =
  let p =
    build (fun b ->
        Builder.li b R.t0 100;
        Builder.label b "top";
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let s = run p in
  check_bool "occupancy positive" true (s.Stats.avg_ruu_occupancy > 0.0);
  check_bool "occupancy within window" true
    (s.Stats.avg_ruu_occupancy
    <= float_of_int Mconfig.default.Mconfig.ruu_size);
  check_bool "some cold-start fetch stalls" true
    (s.Stats.fetch_stall_cycles >= 0)

let test_sim_max_cycles () =
  let p =
    build (fun b ->
        Builder.li b R.t0 1000;
        Builder.label b "top";
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let m = { Mconfig.default with Mconfig.max_cycles = 10 } in
  check_bool "max_cycles enforced" true
    (match run ~mconfig:m p with
    | exception Sim.Sim_stuck s ->
        s.Sim.reason = `Cycle_budget && s.Sim.limit = 10
    | _ -> false)

let test_stats_speedup () =
  let base = run (build (fun b -> Builder.li b R.t0 1; Builder.halt b)) in
  check_bool "speedup vs self is 1" true
    (abs_float (Stats.speedup ~baseline:base base -. 1.0) < 1e-9)

let () =
  Alcotest.run "t1000_ooo"
    [
      ("mconfig", [ Alcotest.test_case "basics" `Quick test_mconfig ]);
      ( "pfu_file",
        [
          Alcotest.test_case "unlimited" `Quick test_pfu_unlimited;
          Alcotest.test_case "lru eviction" `Quick test_pfu_lru_eviction;
          Alcotest.test_case "pinning stall" `Quick test_pfu_pinning_stall;
          Alcotest.test_case "fifo" `Quick test_pfu_fifo;
          Alcotest.test_case "zero units" `Quick test_pfu_zero_units;
        ] );
      ( "ruu",
        [
          Alcotest.test_case "ring" `Quick test_ruu_ring;
          Alcotest.test_case "field reset" `Quick test_ruu_fields_reset;
        ] );
      ( "sim",
        [
          Alcotest.test_case "commits everything" `Quick
            test_sim_commits_everything;
          Alcotest.test_case "dependence serializes" `Quick
            test_sim_dependent_chain_serializes;
          Alcotest.test_case "issue width" `Quick test_sim_issue_width_limits;
          Alcotest.test_case "load latency" `Quick test_sim_load_latency;
          Alcotest.test_case "store-load dependence" `Quick
            test_sim_store_load_dependence;
          Alcotest.test_case "ext timing" `Quick test_sim_ext_instr_timing;
          Alcotest.test_case "thrashing" `Quick test_sim_thrashing;
          Alcotest.test_case "ext latency" `Quick
            test_sim_ext_latency_honoured;
          Alcotest.test_case "ruu pressure" `Quick test_sim_ruu_pressure;
          Alcotest.test_case "branch prediction" `Quick
            test_sim_branch_prediction;
          Alcotest.test_case "btb indirect" `Quick test_sim_btb_indirect;
          Alcotest.test_case "cfgld prefetch" `Quick
            test_sim_cfgld_prefetch;
          Alcotest.test_case "mem-port contention" `Quick
            test_sim_mem_port_contention;
          Alcotest.test_case "commit width" `Quick test_sim_commit_width;
          Alcotest.test_case "new stats" `Quick test_sim_new_stats;
          Alcotest.test_case "max cycles" `Quick test_sim_max_cycles;
          Alcotest.test_case "speedup" `Quick test_stats_speedup;
        ] );
    ]
