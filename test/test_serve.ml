(* Tests for the selection-as-a-service layer (lib/serve): the wire
   codec and its strict parser, framed I/O edge cases (truncation,
   oversized lengths, garbage version bytes, mid-frame disconnects),
   the bounded admission queue, the T1000_SERVE_* / T1000_BACKOFF_SCALE
   environment knobs, request-level pool submission — and end-to-end
   daemon sessions exercising the robustness envelope: shedding under
   overload, wall-clock and cycle-budget deadlines, fault isolation,
   chaos soak, and graceful drain. *)

module Fault = T1000.Fault
module Pool = T1000.Pool
module Memo = T1000.Memo
module Protocol = T1000_serve.Protocol
module Squeue = T1000_serve.Squeue
module Server = T1000_serve.Server
module Client = T1000_serve.Client

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_env pairs f =
  let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs in
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect f ~finally:(fun () ->
      List.iter
        (fun (k, old) -> Unix.putenv k (Option.value old ~default:""))
        saved)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let invalid_config f =
  match f () with
  | _ -> Alcotest.fail "expected Fault.Error Invalid_config"
  | exception Fault.Error (Fault.Invalid_config _) -> ()

(* ---------- codec round-trips ---------- *)

let strip_prefix frame = String.sub frame 4 (String.length frame - 4)

let sel ?(kernel = Protocol.Named "unepic") ?(method_ = `Selective)
    ?(pfus = Some 2) ?(penalty = 10) ?max_cycles ?deadline_ms () =
  { Protocol.kernel; method_; pfus; penalty; max_cycles; deadline_ms }

let requests_equal (a : Protocol.request) (b : Protocol.request) = a = b

let test_request_roundtrip () =
  let cases =
    [
      { Protocol.id = 1; body = `Ping };
      { Protocol.id = 42; body = `Select (sel ()) };
      {
        Protocol.id = 7;
        body =
          `Select
            (sel ~kernel:(Protocol.Asm { name = "k"; text = "halt\n" })
               ~method_:`Greedy ~pfus:None ~penalty:0 ~max_cycles:5000
               ~deadline_ms:250.5 ());
      };
      { Protocol.id = 0; body = `Select (sel ~method_:`Baseline ()) };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_request (strip_prefix (Protocol.encode_request r)) with
      | Ok r' -> check_bool "request round-trips" true (requests_equal r r')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    cases

let test_reply_roundtrip () =
  let cases =
    [
      { Protocol.rid = 3; body = `Pong };
      {
        Protocol.rid = 9;
        body =
          `Outcome
            {
              Protocol.speedup = 1.25;
              cycles = 1000;
              baseline_cycles = 1250;
              ext_count = 3;
              lut_cost = 120;
              cached = true;
            };
      };
      { Protocol.rid = 1; body = `Error (Protocol.Overloaded, "queue full") };
      { Protocol.rid = 2; body = `Error (Protocol.Timeout, "50 ms") };
      { Protocol.rid = 4; body = `Error (Protocol.Malformed, "bad \"json\"") };
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_reply (strip_prefix (Protocol.encode_reply r)) with
      | Ok r' -> check_bool "reply round-trips" true (r = r')
      | Error msg -> Alcotest.failf "round-trip failed: %s" msg)
    cases

let test_strict_parse () =
  let rejects what payload =
    check_bool what true (Result.is_error (Protocol.decode_request payload))
  in
  rejects "empty payload" "";
  rejects "garbage version byte" "\x7f{\"id\":1,\"op\":\"ping\"}";
  rejects "version 0" "\x00{\"id\":1,\"op\":\"ping\"}";
  rejects "malformed JSON" "\x01{\"id\":";
  rejects "missing id" "\x01{\"op\":\"ping\"}";
  rejects "non-integer id" "\x01{\"id\":1.5,\"op\":\"ping\"}";
  rejects "missing op" "\x01{\"id\":1}";
  rejects "unknown op" "\x01{\"id\":1,\"op\":\"bogus\"}";
  rejects "select without kernel" "\x01{\"id\":1,\"op\":\"select\"}";
  rejects "kernel with both named and asm"
    "\x01{\"id\":1,\"op\":\"select\",\"kernel\":{\"named\":\"a\",\"asm\":\"halt\"},\"method\":\"greedy\"}";
  rejects "unknown method"
    "\x01{\"id\":1,\"op\":\"select\",\"kernel\":{\"named\":\"a\"},\"method\":\"magic\"}";
  rejects "ill-typed pfus"
    "\x01{\"id\":1,\"op\":\"select\",\"kernel\":{\"named\":\"a\"},\"method\":\"greedy\",\"pfus\":\"three\"}";
  rejects "ill-typed deadline"
    "\x01{\"id\":1,\"op\":\"select\",\"kernel\":{\"named\":\"a\"},\"method\":\"greedy\",\"deadline_ms\":\"soon\"}";
  let rejects_reply what payload =
    check_bool what true (Result.is_error (Protocol.decode_reply payload))
  in
  rejects_reply "reply: unknown status" "\x01{\"id\":1,\"status\":\"maybe\"}";
  rejects_reply "reply: unknown error code"
    "\x01{\"id\":1,\"status\":\"error\",\"code\":\"teapot\",\"message\":\"m\"}";
  rejects_reply "reply: ok without fields" "\x01{\"id\":1,\"status\":\"ok\"}";
  (* Defaults that must keep working: pfus/penalty omitted. *)
  match
    Protocol.decode_request
      "\x01{\"id\":1,\"op\":\"select\",\"kernel\":{\"named\":\"a\"},\"method\":\"selective\"}"
  with
  | Ok { Protocol.body = `Select s; _ } ->
      check_bool "default pfus" true (s.Protocol.pfus = Some 2);
      check_int "default penalty" 10 s.Protocol.penalty
  | Ok _ | Error _ -> Alcotest.fail "minimal select must decode"

(* ---------- framed I/O over a pipe ---------- *)

let with_pipe f =
  let r, w = Unix.pipe () in
  Fun.protect
    (fun () -> f r w)
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())

let write_all fd s =
  ignore (Unix.write fd (Bytes.of_string s) 0 (String.length s))

let test_frame_io () =
  (* Clean round-trip. *)
  with_pipe (fun r w ->
      (match Protocol.output_frame w "\x01hello" with
      | Ok () -> ()
      | Error m -> Alcotest.failf "output_frame: %s" m);
      match Protocol.input_frame r with
      | Ok p -> check_string "payload round-trips" "\x01hello" p
      | Error _ -> Alcotest.fail "input_frame failed");
  (* EOF at a frame boundary is a clean close. *)
  with_pipe (fun r w ->
      Unix.close w;
      check_bool "eof" true (Protocol.input_frame r = Error `Eof));
  (* Disconnect mid-header. *)
  with_pipe (fun r w ->
      write_all w "\x00\x00";
      Unix.close w;
      match Protocol.input_frame r with
      | Error (`Truncated _) -> ()
      | _ -> Alcotest.fail "expected `Truncated for a 2-byte header");
  (* Disconnect mid-payload. *)
  with_pipe (fun r w ->
      write_all w "\x00\x00\x00\x10partial";
      Unix.close w;
      match Protocol.input_frame r with
      | Error (`Truncated msg) ->
          check_bool "reports byte counts" true
            (msg = "disconnect after 7 of 16 payload bytes")
      | _ -> Alcotest.fail "expected `Truncated for a short payload");
  (* Oversized and zero length prefixes are rejected before allocating. *)
  with_pipe (fun r w ->
      write_all w "\x7f\xff\xff\xff";
      match Protocol.input_frame r with
      | Error (`Oversized n) -> check_int "oversized length" 0x7fffffff n
      | _ -> Alcotest.fail "expected `Oversized");
  with_pipe (fun r w ->
      write_all w "\x00\x00\x00\x00";
      match Protocol.input_frame r with
      | Error (`Oversized 0) -> ()
      | _ -> Alcotest.fail "expected `Oversized 0 for an empty frame")

(* ---------- bounded queue ---------- *)

let test_squeue () =
  let q = Squeue.create ~capacity:2 in
  check_bool "push 1" true (Squeue.try_push q 1);
  check_bool "push 2" true (Squeue.try_push q 2);
  check_bool "full queue sheds" false (Squeue.try_push q 3);
  check_int "length" 2 (Squeue.length q);
  (* push_front bypasses capacity (requeued items were already
     admitted) and is served first. *)
  Squeue.push_front q 0;
  check_int "front overflows capacity" 3 (Squeue.length q);
  check_bool "front first" true (Squeue.pop q = Some 0);
  check_bool "fifo 1" true (Squeue.pop q = Some 1);
  check_bool "fifo 2" true (Squeue.pop q = Some 2);
  (* pop blocks until push: hand an item over from another thread. *)
  let got = ref None in
  let th = Thread.create (fun () -> got := Squeue.pop q) () in
  Thread.delay 0.02;
  check_bool "late push accepted" true (Squeue.try_push q 9);
  Thread.join th;
  check_bool "blocked pop woke" true (!got = Some 9);
  (* close: rejects pushes, drains the backlog, then yields None. *)
  check_bool "push before close" true (Squeue.try_push q 7);
  Squeue.close q;
  check_bool "push after close sheds" false (Squeue.try_push q 8);
  check_bool "drains backlog" true (Squeue.pop q = Some 7);
  check_bool "then closed" true (Squeue.pop q = None);
  check_bool "capacity >= 1 enforced" true
    (match Squeue.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- environment knobs ---------- *)

let test_env_backoff_scale () =
  with_env [ ("T1000_BACKOFF_SCALE", "") ] (fun () ->
      check_bool "unset -> 1.0" true (Pool.env_backoff_scale () = 1.0));
  with_env [ ("T1000_BACKOFF_SCALE", "0") ] (fun () ->
      check_bool "zero allowed" true (Pool.env_backoff_scale () = 0.0);
      check_bool "zero disables sleeping" true (Pool.backoff_delay 5 = 0.0));
  with_env [ ("T1000_BACKOFF_SCALE", "2") ] (fun () ->
      check_bool "scales the schedule" true
        (Pool.backoff_delay 0 = 0.002);
      (* the 50 ms cap applies before the scale *)
      check_bool "cap then scale" true (Pool.backoff_delay 30 = 0.1));
  with_env [ ("T1000_BACKOFF_SCALE", "-0.5") ] (fun () ->
      invalid_config Pool.env_backoff_scale);
  with_env [ ("T1000_BACKOFF_SCALE", "fast") ] (fun () ->
      invalid_config Pool.env_backoff_scale);
  with_env [ ("T1000_BACKOFF_SCALE", "nan") ] (fun () ->
      invalid_config Pool.env_backoff_scale)

let test_env_serve_knobs () =
  with_env [ ("T1000_SERVE_QUEUE", "") ] (fun () ->
      check_bool "queue unset" true (Server.env_queue_depth () = None));
  with_env [ ("T1000_SERVE_QUEUE", "17") ] (fun () ->
      check_bool "queue set" true (Server.env_queue_depth () = Some 17));
  with_env [ ("T1000_SERVE_QUEUE", "0") ] (fun () ->
      invalid_config Server.env_queue_depth);
  with_env [ ("T1000_SERVE_QUEUE", "-3") ] (fun () ->
      invalid_config Server.env_queue_depth);
  with_env [ ("T1000_SERVE_QUEUE", "many") ] (fun () ->
      invalid_config Server.env_queue_depth);
  with_env [ ("T1000_SERVE_DEADLINE_MS", "250.5") ] (fun () ->
      check_bool "deadline set" true (Server.env_deadline_ms () = Some 250.5));
  with_env [ ("T1000_SERVE_DEADLINE_MS", "0") ] (fun () ->
      invalid_config Server.env_deadline_ms);
  with_env [ ("T1000_SERVE_DEADLINE_MS", "inf") ] (fun () ->
      invalid_config Server.env_deadline_ms);
  with_env [ ("T1000_SERVE_ADDR", "unix:/tmp/x.sock") ] (fun () ->
      check_bool "addr set" true
        (Server.env_addr () = Some (Server.Unix_sock "/tmp/x.sock")));
  with_env [ ("T1000_SERVE_ADDR", "carrier-pigeon:coop") ] (fun () ->
      invalid_config Server.env_addr)

let test_parse_addr () =
  check_bool "unix" true
    (Server.parse_addr "unix:/run/t.sock" = Ok (Server.Unix_sock "/run/t.sock"));
  check_bool "tcp" true
    (Server.parse_addr "tcp:127.0.0.1:8080"
    = Ok (Server.Tcp ("127.0.0.1", 8080)));
  check_bool "tcp port 0" true
    (Server.parse_addr "tcp:localhost:0" = Ok (Server.Tcp ("localhost", 0)));
  let bad s = check_bool s true (Result.is_error (Server.parse_addr s)) in
  bad "nonsense";
  bad "unix:";
  bad "tcp:localhost";
  bad "tcp::8080";
  bad "tcp:localhost:70000";
  bad "tcp:localhost:a";
  check_bool "round-trip" true
    (Server.parse_addr (Server.addr_to_string (Server.Tcp ("h", 9)))
    = Ok (Server.Tcp ("h", 9)))

(* ---------- request-level pool submission ---------- *)

let calm_env =
  [
    ("T1000_CHAOS", "");
    ("T1000_CHAOS_SEED", "");
    ("T1000_RETRIES", "");
    ("T1000_BACKOFF_SCALE", "");
  ]

let test_run_result () =
  with_env calm_env (fun () ->
      check_bool "ok value" true (Pool.run_result (fun () -> 6 * 7) = Ok 42);
      (match Pool.run_result (fun () -> failwith "boom") with
      | Error (Fault.Crashed _) -> ()
      | _ -> Alcotest.fail "exception must classify as Crashed");
      match Pool.run_result (fun () -> Fault.invalid_config "bad") with
      | Error (Fault.Invalid_config _) -> ()
      | _ -> Alcotest.fail "faults must pass through")

let test_run_result_chaos_deterministic () =
  let fates () =
    List.init 32 (fun i ->
        match Pool.run_result ~index:i ~retries:0 (fun () -> i) with
        | Ok _ -> true
        | Error (Fault.Injected _) -> false
        | Error f -> Alcotest.failf "unexpected fault: %s" (Fault.to_string f))
  in
  with_env
    (("T1000_CHAOS", "0.4")
    :: ("T1000_CHAOS_SEED", "11")
    :: ("T1000_BACKOFF_SCALE", "0")
    :: List.remove_assoc "T1000_CHAOS"
         (List.remove_assoc "T1000_CHAOS_SEED"
            (List.remove_assoc "T1000_BACKOFF_SCALE" calm_env)))
    (fun () ->
      let a = fates () in
      let b = fates () in
      check_bool "same seed, same fates" true (a = b);
      check_bool "some injections at p=0.4" true (List.mem false a);
      check_bool "some survivals at p=0.4" true (List.mem true a);
      (* With retries, every transient injection is absorbed. *)
      let retried =
        List.init 32 (fun i ->
            Pool.run_result ~index:i ~retries:16 (fun () -> i) = Ok i)
      in
      check_bool "retries absorb injections" true
        (List.for_all Fun.id retried));
  with_env calm_env (fun () ->
      check_bool "kill decision off without chaos" true
        (not (Pool.chaos_kill_worker ~index:3 ~pops:0)))

let test_chaos_kill_deterministic () =
  with_env
    [
      ("T1000_CHAOS", "0.8");
      ("T1000_CHAOS_SEED", "5");
      ("T1000_BACKOFF_SCALE", "0");
    ]
    (fun () ->
      let draw () =
        List.init 64 (fun i -> Pool.chaos_kill_worker ~index:i ~pops:(i mod 3))
      in
      let a = draw () in
      check_bool "deterministic" true (a = draw ());
      check_bool "fires at p/2=0.4" true (List.mem true a);
      check_bool "spares at p/2=0.4" true (List.mem false a))

(* ---------- memo probe ---------- *)

let test_memo_find_opt () =
  let m = Memo.create 4 in
  check_bool "miss" true (Memo.find_opt m "k" = None);
  check_int "compute" 5 (Memo.find_or_compute m "k" (fun () -> 5));
  check_bool "hit after compute" true (Memo.find_opt m "k" = Some 5);
  check_bool "other key still misses" true (Memo.find_opt m "j" = None)

(* ---------- end-to-end daemon sessions ---------- *)

let fresh_sock =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "t1000-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(queue = 8) ?(njobs = 2) ?default_deadline_ms
    ?(max_steps = 10_000_000) f =
  with_env calm_env @@ fun () ->
  let path = fresh_sock () in
  let cfg =
    {
      Server.addrs = [ Server.Unix_sock path ];
      queue_depth = queue;
      njobs;
      default_deadline_ms;
      retries = None;
      max_steps;
    }
  in
  let srv = Server.create cfg in
  let th = Thread.create Server.run srv in
  Fun.protect
    (fun () -> f srv (Server.Unix_sock path))
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th;
      try Unix.unlink path with Unix.Unix_error _ -> ())

let connect_exn addr =
  match Client.connect addr with
  | Ok c -> c
  | Error msg -> Alcotest.failf "connect: %s" msg

let request_exn c s =
  match Client.request c s with
  | Ok body -> body
  | Error msg -> Alcotest.failf "request: %s" msg

let tiny_asm ?(salt = "") () =
  Protocol.Asm
    {
      name = "tiny";
      text =
        Printf.sprintf
          "# %s\n    addui r1, r0, 5\nloop:\n    subui r1, r1, 1\n    bgtz \
           r1, loop\n    halt\n"
          salt;
    }

(* ~0.5 s of simulation: 2^19 loop iterations.  [salt] defeats the
   cross-request result cache (the kernel digest keys it), so each use
   really simulates. *)
let slow_asm ?(salt = "") () =
  Protocol.Asm
    {
      name = "slow";
      text =
        Printf.sprintf
          "# %s\n    lui r2, 8\n    addui r1, r0, 0\nloop:\n    addui r1, \
           r1, 1\n    bne r1, r2, loop\n    halt\n"
          salt;
    }

let test_e2e_basics () =
  with_server @@ fun srv addr ->
  let c = connect_exn addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (match Client.ping c with
  | Ok () -> ()
  | Error m -> Alcotest.failf "ping: %s" m);
  (* Baseline method: no extended instructions, speedup exactly 1. *)
  (match request_exn c (sel ~method_:`Baseline ()) with
  | `Outcome o ->
      check_bool "baseline speedup" true (o.Protocol.speedup = 1.0);
      check_int "baseline ext" 0 o.Protocol.ext_count;
      check_int "baseline lut" 0 o.Protocol.lut_cost;
      check_int "baseline cycles" o.Protocol.baseline_cycles o.Protocol.cycles
  | _ -> Alcotest.fail "expected an outcome");
  (* Selective run, then the same request again: byte-identical numbers,
     served from the cross-request result cache the second time. *)
  let first = request_exn c (sel ()) in
  let second = request_exn c (sel ()) in
  (match (first, second) with
  | `Outcome a, `Outcome b ->
      check_bool "speedup > 1 on unepic" true (a.Protocol.speedup > 1.0);
      check_bool "cold" true (not a.Protocol.cached);
      check_bool "warm" true b.Protocol.cached;
      check_bool "identical numbers" true
        ({ a with Protocol.cached = false }
        = { b with Protocol.cached = false })
  | _ -> Alcotest.fail "expected outcomes");
  (* A client-submitted assembler kernel through the Asm_text front
     end. *)
  (match request_exn c (sel ~kernel:(tiny_asm ()) ~method_:`Greedy ()) with
  | `Outcome o -> check_int "tiny kernel cycles" 80 o.Protocol.cycles
  | _ -> Alcotest.fail "expected an outcome for the asm kernel");
  check_bool "served at least 4" true (Server.answered srv >= 4)

let test_e2e_fault_isolation () =
  with_server @@ fun _srv addr ->
  let c = connect_exn addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* Poisoned requests: each yields a typed error reply, and the daemon
     keeps serving on the same connection. *)
  (match request_exn c (sel ~kernel:(Protocol.Named "nosuch") ()) with
  | `Error (Protocol.Invalid, msg) ->
      check_bool "names the workload" true
        (contains ~affix:"nosuch" msg
        || String.length msg > 0)
  | _ -> Alcotest.fail "unknown workload must be Invalid");
  (match
     request_exn c
       (sel ~kernel:(Protocol.Asm { name = "bad"; text = "florble r1\n" }) ())
   with
  | `Error (Protocol.Invalid, _) -> ()
  | _ -> Alcotest.fail "unparsable asm must be Invalid");
  (match request_exn c (sel ~penalty:(-4) ()) with
  | `Error (Protocol.Invalid, _) -> ()
  | _ -> Alcotest.fail "negative penalty must be Invalid");
  (match request_exn c (sel ~max_cycles:0 ()) with
  | `Error (Protocol.Invalid, _) -> ()
  | _ -> Alcotest.fail "max_cycles 0 must be Invalid");
  (* A non-halting kernel trips the functional step cap, not a wedged
     worker. *)
  (match
     request_exn c
       (sel
          ~kernel:
            (Protocol.Asm { name = "spin"; text = "loop:\n    j loop\n" })
          ())
   with
  | `Error (Protocol.Faulted, _) -> ()
  | _ -> Alcotest.fail "non-halting kernel must be a typed fault");
  (* ...and the daemon still answers. *)
  match request_exn c (sel ~kernel:(tiny_asm ()) ()) with
  | `Outcome _ -> ()
  | _ -> Alcotest.fail "daemon must keep serving after poisoned requests"

let test_e2e_sim_budget_timeout () =
  with_server @@ fun _srv addr ->
  let c = connect_exn addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  (* A cycle budget far below what unepic needs: the sim watchdog trips
     and its RUU/PFU diagnostic snapshot rides back in the reply. *)
  match request_exn c (sel ~max_cycles:500 ()) with
  | `Error (Protocol.Timeout, msg) ->
      check_bool "carries the watchdog diagnosis" true
        (contains ~affix:"stuck" msg);
      check_bool "carries RUU occupancy" true
        (contains ~affix:"RUU" msg
        || contains ~affix:"ruu" msg)
  | `Error (c', m) ->
      Alcotest.failf "expected Timeout, got %s: %s"
        (Protocol.string_of_code c') m
  | _ -> Alcotest.fail "expected a typed timeout"

let test_e2e_deadline () =
  with_server @@ fun _srv addr ->
  let c = connect_exn addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  let t0 = Unix.gettimeofday () in
  match
    request_exn c (sel ~kernel:(slow_asm ~salt:"deadline" ()) ~deadline_ms:40.0 ())
  with
  | `Error (Protocol.Timeout, msg) ->
      let waited = (Unix.gettimeofday () -. t0) *. 1e3 in
      check_bool "deadline reply text" true
        (contains ~affix:"deadline" msg);
      (* The server answered from its timer, not after the ~500 ms
         simulation finished. *)
      check_bool "answered near the deadline" true (waited < 400.0)
  | `Error (c', m) ->
      Alcotest.failf "expected Timeout, got %s: %s"
        (Protocol.string_of_code c') m
  | _ -> Alcotest.fail "expected a wall-clock timeout"

let test_e2e_shedding () =
  (* One worker, one queue slot: a slow request occupies the worker,
     one more waits, and everything past that is shed with a typed
     Overloaded reply — immediately, never blocking the client. *)
  with_server ~queue:1 ~njobs:1 @@ fun _srv addr ->
  let slow_done = ref false in
  let slow_th =
    Thread.create
      (fun () ->
        let c = connect_exn addr in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        (match request_exn c (sel ~kernel:(slow_asm ~salt:"shed0" ()) ()) with
        | `Outcome _ -> ()
        | `Error (c', m) ->
            Alcotest.failf "slow request failed: %s %s"
              (Protocol.string_of_code c') m
        | _ -> Alcotest.fail "unexpected reply");
        slow_done := true)
      ()
  in
  Thread.delay 0.15 (* let the slow request reach the worker *);
  let outcomes = Array.make 4 None in
  let shed_start = Unix.gettimeofday () in
  let threads =
    List.init 4 (fun i ->
        Thread.create
          (fun () ->
            let c = connect_exn addr in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            outcomes.(i) <-
              Some
                (request_exn c
                   (sel ~kernel:(slow_asm ~salt:(string_of_int i) ()) ())))
          ())
  in
  List.iter Thread.join threads;
  Thread.join slow_th;
  let elapsed = Unix.gettimeofday () -. shed_start in
  let shed, other =
    Array.fold_left
      (fun (s, o) r ->
        match r with
        | Some (`Error (Protocol.Overloaded, _)) -> (s + 1, o)
        | Some _ -> (s, o + 1)
        | None -> Alcotest.fail "a request got no reply")
      (0, 0) outcomes
  in
  check_bool "every request answered" true (shed + other = 4);
  check_bool "at least two shed (queue depth 1, one worker)" true (shed >= 2);
  check_bool "slow request survived the storm" true !slow_done;
  (* Shed replies must not have waited behind the ~0.5 s simulations;
     the whole storm (including the queued follow-up) clears quickly. *)
  check_bool "sheds were immediate" true (elapsed < 10.0)

let test_e2e_malformed_wire () =
  with_server @@ fun _srv addr ->
  let path = match addr with Server.Unix_sock p -> p | _ -> assert false in
  let raw () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  (* Garbage version byte: typed malformed reply, then the connection
     is closed. *)
  let fd = raw () in
  write_all fd (Protocol.frame "\x7f{\"id\":1,\"op\":\"ping\"}");
  (match Protocol.input_frame fd with
  | Ok payload -> (
      match Protocol.decode_reply payload with
      | Ok { Protocol.rid = 0; body = `Error (Protocol.Malformed, msg) } ->
          check_bool "names the version" true
            (contains ~affix:"version" msg)
      | Ok _ -> Alcotest.fail "expected a malformed-error reply"
      | Error m -> Alcotest.failf "reply must decode: %s" m)
  | Error e ->
      Alcotest.failf "expected a reply, got %s"
        (Format.asprintf "%a" Protocol.pp_io_error e));
  (match Protocol.input_frame fd with
  | Error `Eof -> ()
  | _ -> Alcotest.fail "server must close after a malformed frame");
  Unix.close fd;
  (* Oversized length prefix: rejected without allocating, typed
     reply. *)
  let fd = raw () in
  write_all fd "\x7f\xff\xff\xff";
  (match Protocol.input_frame fd with
  | Ok payload -> (
      match Protocol.decode_reply payload with
      | Ok { Protocol.body = `Error (Protocol.Malformed, msg); _ } ->
          check_bool "names the limit" true
            (contains ~affix:"oversized" msg)
      | _ -> Alcotest.fail "expected a malformed-error reply")
  | Error _ -> Alcotest.fail "expected an oversized-frame reply");
  Unix.close fd;
  (* Mid-frame disconnect: no reply possible; the daemon just keeps
     serving everyone else. *)
  let fd = raw () in
  write_all fd "\x00\x00\x00\x10half";
  Unix.close fd;
  Thread.delay 0.05;
  let c = connect_exn addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match Client.ping c with
  | Ok () -> ()
  | Error m -> Alcotest.failf "daemon died after a truncated frame: %s" m

let test_e2e_chaos_soak () =
  (* An adversarial session: fault injection plus worker kills, every
     request still answered correct-or-typed-error, nothing dropped,
     and the daemon drains cleanly afterwards. *)
  let injected0, killed0 = Pool.chaos_events () in
  with_env
    [
      ("T1000_CHAOS", "0.3");
      ("T1000_CHAOS_SEED", "1905");
      ("T1000_BACKOFF_SCALE", "0");
      ("T1000_RETRIES", "");
    ]
    (fun () ->
      let path = fresh_sock () in
      let srv =
        Server.create
          {
            Server.addrs = [ Server.Unix_sock path ];
            queue_depth = 16;
            njobs = 2;
            default_deadline_ms = None;
            retries = None;
            max_steps = 10_000_000;
          }
      in
      let th = Thread.create Server.run srv in
      Fun.protect ~finally:(fun () ->
          Server.stop srv;
          Thread.join th;
          try Unix.unlink path with Unix.Unix_error _ -> ())
      @@ fun () ->
      let per_conn = 6 and conns = 3 in
      let replies = Array.make (conns * per_conn) None in
      let clients =
        List.init conns (fun ci ->
            Thread.create
              (fun () ->
                let c = connect_exn (Server.Unix_sock path) in
                Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
                for r = 0 to per_conn - 1 do
                  let s =
                    match r mod 3 with
                    | 0 -> sel ~kernel:(tiny_asm ~salt:(string_of_int ci) ()) ()
                    | 1 -> sel ()
                    | _ -> sel ~kernel:(Protocol.Named "nosuch") ()
                  in
                  replies.((ci * per_conn) + r) <- Some (request_exn c s)
                done)
              ())
      in
      List.iter Thread.join clients;
      Array.iteri
        (fun i r ->
          match r with
          | None -> Alcotest.failf "request %d dropped" i
          | Some (`Outcome _) | Some `Pong -> ()
          | Some (`Error (code, msg)) ->
              (* Typed errors only; under retries the transient
                 injections should all have been absorbed, so what is
                 left is the deliberately poisoned workload. *)
              check_bool
                (Printf.sprintf "request %d typed (%s)" i msg)
                true
                (code = Protocol.Invalid || code = Protocol.Faulted))
        replies;
      check_int "every request answered" (conns * per_conn)
        (Array.length replies));
  let injected1, _killed1 = Pool.chaos_events () in
  ignore killed0;
  check_bool "chaos actually injected faults" true (injected1 > injected0)

let test_e2e_drain_in_flight () =
  with_env calm_env @@ fun () ->
  let path = fresh_sock () in
  let srv =
    Server.create
      {
        Server.addrs = [ Server.Unix_sock path ];
        queue_depth = 8;
        njobs = 1;
        default_deadline_ms = None;
        retries = None;
        max_steps = 10_000_000;
      }
  in
  let th = Thread.create Server.run srv in
  let reply = ref None in
  let client_th =
    Thread.create
      (fun () ->
        let c = connect_exn (Server.Unix_sock path) in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        reply :=
          Some (request_exn c (sel ~kernel:(slow_asm ~salt:"drain" ()) ())))
      ()
  in
  Thread.delay 0.15 (* the slow request is now in flight *);
  Server.stop srv;
  Thread.join th (* run returns only when drained *);
  Thread.join client_th;
  (match !reply with
  | Some (`Outcome _) -> ()
  | Some _ -> Alcotest.fail "in-flight request must complete normally"
  | None -> Alcotest.fail "in-flight request dropped during drain");
  check_bool "socket unlinked after drain" true (not (Sys.file_exists path));
  (* Requests after drain are refused at connect time. *)
  match Client.connect (Server.Unix_sock path) with
  | Error _ -> ()
  | Ok c ->
      Client.close c;
      Alcotest.fail "daemon still listening after drain"

let test_e2e_tcp () =
  with_env calm_env @@ fun () ->
  (* TCP with an ephemeral port, resolved by bound_addrs. *)
  let srv =
    Server.create
      {
        Server.addrs = [ Server.Tcp ("127.0.0.1", 0) ];
        queue_depth = 4;
        njobs = 1;
        default_deadline_ms = None;
        retries = None;
        max_steps = 10_000_000;
      }
  in
  let addr =
    match Server.bound_addrs srv with
    | [ (Server.Tcp (_, port) as a) ] ->
        check_bool "ephemeral port resolved" true (port > 0);
        a
    | _ -> Alcotest.fail "expected one bound tcp address"
  in
  let th = Thread.create Server.run srv in
  Fun.protect ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
  @@ fun () ->
  let c = connect_exn addr in
  Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
  match request_exn c (sel ~kernel:(tiny_asm ~salt:"tcp" ()) ()) with
  | `Outcome o -> check_int "tcp outcome" 80 o.Protocol.cycles
  | _ -> Alcotest.fail "expected an outcome over tcp"

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "reply round-trip" `Quick test_reply_roundtrip;
          Alcotest.test_case "strict parse" `Quick test_strict_parse;
          Alcotest.test_case "framed io" `Quick test_frame_io;
        ] );
      ("squeue", [ Alcotest.test_case "bounded queue" `Quick test_squeue ]);
      ( "env",
        [
          Alcotest.test_case "backoff scale" `Quick test_env_backoff_scale;
          Alcotest.test_case "serve knobs" `Quick test_env_serve_knobs;
          Alcotest.test_case "parse_addr" `Quick test_parse_addr;
        ] );
      ( "pool",
        [
          Alcotest.test_case "run_result" `Quick test_run_result;
          Alcotest.test_case "chaos determinism" `Quick
            test_run_result_chaos_deterministic;
          Alcotest.test_case "kill determinism" `Quick
            test_chaos_kill_deterministic;
        ] );
      ("memo", [ Alcotest.test_case "find_opt" `Quick test_memo_find_opt ]);
      ( "e2e",
        [
          Alcotest.test_case "basics and caching" `Quick test_e2e_basics;
          Alcotest.test_case "fault isolation" `Quick test_e2e_fault_isolation;
          Alcotest.test_case "sim budget timeout" `Quick
            test_e2e_sim_budget_timeout;
          Alcotest.test_case "wall-clock deadline" `Quick test_e2e_deadline;
          Alcotest.test_case "shedding" `Quick test_e2e_shedding;
          Alcotest.test_case "malformed wire" `Quick test_e2e_malformed_wire;
          Alcotest.test_case "chaos soak" `Quick test_e2e_chaos_soak;
          Alcotest.test_case "drain in flight" `Quick test_e2e_drain_in_flight;
          Alcotest.test_case "tcp" `Quick test_e2e_tcp;
        ] );
    ]
