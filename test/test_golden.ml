(* Golden-artifact regression suite: the rendered text of every paper
   figure/table and DESIGN.md ablation, snapshotted under test/golden/
   and byte-diffed on every `dune runtest`.

   The experiment engine is deterministic, so any diff is a real
   behavior change — either a bug or an intentional model change.  To
   re-record after an intentional change:

     make golden        # = T1000_PROMOTE=1 dune exec test/test_golden.exe

   The snapshots are taken on a fixed two-workload suite (unepic +
   g721_dec, one EPIC-family and one telecom benchmark) so the suite
   stays fast and hermetic: T1000_WORKLOADS is deliberately ignored
   here, a subset run must not silently re-golden the repo. *)

open T1000

let golden_workloads = [ "unepic"; "g721_dec" ]

let golden_dir =
  match Sys.getenv_opt "T1000_GOLDEN_DIR" with
  | Some d when String.trim d <> "" -> d
  | Some _ | None -> "golden"

let promote () =
  match Sys.getenv_opt "T1000_PROMOTE" with
  | Some "1" -> true
  | Some _ | None -> false

let ctx =
  lazy
    (Experiment.create_ctx
       ~workloads:
         (List.map
            (fun n ->
              match T1000_workloads.Registry.find n with
              | Some w -> w
              | None -> Alcotest.failf "golden workload %s missing" n)
            golden_workloads)
       ())

(* Exactly the renderings bench/main.exe prints (minus the banner), so
   the snapshots double as a regression net for the bench output. *)
let artifacts : (string * (Experiment.ctx -> string)) list =
  [
    ("f2", fun c -> Format.asprintf "%a" Report.pp_figure2 (Experiment.figure2 c));
    ( "t41",
      fun c -> Format.asprintf "%a" Report.pp_table41 (Experiment.table41 c) );
    ("f6", fun c -> Format.asprintf "%a" Report.pp_figure6 (Experiment.figure6 c));
    ( "s52",
      fun c ->
        Format.asprintf "%a" Report.pp_penalty_sweep (Experiment.penalty_sweep c)
    );
    ("f7", fun c -> Format.asprintf "%a" Report.pp_figure7 (Experiment.figure7 c));
    ( "a1",
      fun c ->
        Format.asprintf "%a"
          (Report.pp_sweep ~title:"selective speedup vs number of PFUs")
          (Experiment.pfu_count_sweep c) );
    ( "a2",
      fun c ->
        Format.asprintf "%a"
          (Report.pp_sweep ~title:"greedy-unlimited speedup vs width threshold")
          (Experiment.width_threshold_sweep c) );
    ( "a3",
      fun c ->
        Format.asprintf "%a"
          (Report.pp_sweep ~title:"selective speedup vs gain-ratio threshold")
          (Experiment.gain_threshold_sweep c) );
    ( "a4",
      fun c ->
        Format.asprintf "%a"
          (Report.pp_sweep ~title:"selective speedup vs replacement policy")
          (Experiment.replacement_sweep c) );
    ( "a5",
      fun c ->
        Format.asprintf "%a"
          (Report.pp_sweep
             ~title:"speedup vs machine width (per-width baseline)")
          (Experiment.machine_sweep c) );
    ( "a6",
      fun c ->
        Format.asprintf "%a"
          (Report.pp_sweep
             ~title:"speedup: single-cycle PFU vs LUT-level delay model")
          (Experiment.latency_model_sweep c) );
    ( "a7",
      fun c ->
        Format.asprintf "%a"
          (Report.pp_sweep
             ~title:"speedup: perfect vs bimodal branch prediction")
          (Experiment.branch_predictor_sweep c) );
    ( "a8",
      fun c ->
        Format.asprintf "%a"
          (Report.pp_sweep
             ~title:"speedup with/without cfgld preheader prefetch hints")
          (Experiment.prefetch_sweep c) );
    ( "dse",
      fun c ->
        Format.asprintf "%a" T1000_dse.Engine.pp_frontier
          (T1000_dse.Engine.explore ~budget:12 c
             (match
                T1000_dse.Space.of_spec
                  "pfus=1,2,4:penalty=0,100,500:lut=150:repl=lru:gain=0.005:width=4"
              with
             | Ok s -> s
             | Error e -> Alcotest.failf "golden dse space: %s" e)) );
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* First line where the two renderings part ways, for a readable
   failure without shipping a diff implementation. *)
let first_divergence a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: _, [] -> Some (i, x, "<end of golden file>")
    | [], y :: _ -> Some (i, "<end of output>", y)
    | x :: ta, y :: tb ->
        if String.equal x y then go (i + 1) ta tb else Some (i, x, y)
  in
  go 1 la lb

let check name render () =
  let got = render (Lazy.force ctx) in
  let path = Filename.concat golden_dir (name ^ ".txt") in
  if promote () then begin
    write_file path got;
    Format.printf "promoted %s@." path
  end
  else if not (Sys.file_exists path) then
    Alcotest.failf
      "no golden file %s — record it with `make golden` (T1000_PROMOTE=1)"
      path
  else
    let want = read_file path in
    if not (String.equal got want) then
      match first_divergence got want with
      | Some (line, g, w) ->
          Alcotest.failf
            "%s drifted from %s at line %d:@\n\
            \  output: %s@\n\
            \  golden: %s@\n\
             re-record intentional changes with `make golden`"
            name path line g w
      | None -> Alcotest.failf "%s differs from %s (whitespace only?)" name path

let () =
  Alcotest.run "golden"
    [
      ( "artifacts",
        List.map
          (fun (name, render) ->
            Alcotest.test_case name `Slow (check name render))
          artifacts );
    ]
