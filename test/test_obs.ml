(* Tests for the lib/obs telemetry subsystem: the JSON codec, histogram
   bucket boundaries, cross-domain metric merging under the worker pool,
   span recording/nesting, Chrome-trace validation — and the property
   the whole subsystem is contracted to preserve: paper artifacts are
   byte-identical with telemetry on and off. *)

open T1000
module Json = T1000_obs.Json
module Metrics = T1000_obs.Metrics
module Tracer = T1000_obs.Tracer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---------- Json ---------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a\"b\\c\n\t\x01");
        ("n", Json.Num 2.5);
        ("i", Json.Num 42.0);
        ("l", Json.List [ Json.Bool true; Json.Bool false; Json.Null ]);
        ("e", Json.Obj []);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Error msg -> Alcotest.failf "round-trip failed to parse: %s" msg
  | Ok doc' ->
      check_bool "round-trips structurally" true (doc = doc');
      check_string "integral floats print without fraction" "42"
        (Json.to_string (Json.Num 42.0))

let test_json_parser_strict () =
  let rejects s =
    check_bool (Printf.sprintf "rejects %S" s) true
      (Result.is_error (Json.of_string s))
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{} garbage";
  rejects "{\"a\" 1}";
  rejects "nul";
  (match Json.of_string "{\"u\": \"\\u00e9\\uD83D\\uDE00\"}" with
  | Error msg -> Alcotest.failf "unicode escapes: %s" msg
  | Ok d -> (
      match Json.member "u" d with
      | Some (Json.Str s) ->
          check_string "\\u escapes decode to UTF-8" "\xc3\xa9\xf0\x9f\x98\x80" s
      | _ -> Alcotest.fail "expected string member"));
  match Json.of_string "[1, 2.5, -3e2]" with
  | Ok (Json.List [ Json.Num 1.0; Json.Num 2.5; Json.Num -300.0 ]) -> ()
  | Ok _ | Error _ -> Alcotest.fail "number forms"

(* ---------- histogram buckets ---------- *)

let test_histogram_buckets () =
  check_int "0.5 -> bucket 0" 0 (Metrics.bucket_of 0.5);
  check_int "1.0 -> bucket 1" 1 (Metrics.bucket_of 1.0);
  check_int "1.99 -> bucket 1" 1 (Metrics.bucket_of 1.99);
  check_int "2.0 -> bucket 2" 2 (Metrics.bucket_of 2.0);
  check_int "3.99 -> bucket 2" 2 (Metrics.bucket_of 3.99);
  check_int "4.0 -> bucket 3" 3 (Metrics.bucket_of 4.0);
  check_int "nan -> bucket 0" 0 (Metrics.bucket_of Float.nan);
  check_int "infinity -> bucket 0 (non-finite)" 0
    (Metrics.bucket_of Float.infinity);
  check_int "huge -> top bucket" (Metrics.n_buckets - 1)
    (Metrics.bucket_of 1e300);
  (* Every sample lands in the bucket whose [lo, hi) range contains it. *)
  List.iter
    (fun v ->
      let b = Metrics.bucket_of v in
      check_bool
        (Printf.sprintf "%g within its bucket bounds" v)
        true
        (v >= Metrics.bucket_lo b && v < Metrics.bucket_hi b))
    [ 0.0; 0.9; 1.0; 1.5; 2.0; 7.0; 8.0; 1000.0; 65535.9 ]

(* ---------- metric recording + cross-domain merge ---------- *)

let test_metrics_basic () =
  Metrics.reset ();
  Metrics.incr "t.c";
  Metrics.incr ~by:4 "t.c";
  Metrics.add_float "t.f" 1.5;
  Metrics.add_float "t.f" 2.5;
  Metrics.set_gauge "t.g" 3.0;
  Metrics.set_gauge "t.g" 2.0;
  check_int "counter sums" 5 (Metrics.get "t.c");
  check_bool "fcounter sums" true (Metrics.get_float "t.f" = 4.0);
  let s = Metrics.snapshot () in
  check_bool "gauge keeps last write" true
    (List.assoc "t.g" s.Metrics.gauges = 2.0);
  check_int "unknown counter is 0" 0 (Metrics.get "t.absent")

let test_metrics_merge_across_domains () =
  Metrics.reset ();
  let n = 100 in
  let xs =
    Pool.parallel_map ~njobs:4
      (fun i ->
        Metrics.incr "t.pool.tasks";
        Metrics.observe "t.pool.val" (float_of_int i);
        i)
      (List.init n Fun.id)
  in
  check_int "map result intact" n (List.length xs);
  check_int "counter merged across domains" n (Metrics.get "t.pool.tasks");
  let h = List.assoc "t.pool.val" (Metrics.snapshot ()).Metrics.histograms in
  check_int "histogram count merged" n h.Metrics.count;
  check_bool "histogram sum merged" true
    (h.Metrics.sum = float_of_int (n * (n - 1) / 2));
  check_bool "histogram min" true (h.Metrics.min = 0.0);
  check_bool "histogram max" true (h.Metrics.max = float_of_int (n - 1));
  check_int "bucket totals match count" n
    (List.fold_left (fun acc (_, c) -> acc + c) 0 h.Metrics.buckets)

let test_metrics_time () =
  Metrics.reset ();
  let r = Metrics.time "t.phase" (fun () -> 7) in
  check_int "time returns the thunk's value" 7 r;
  (try Metrics.time "t.phase" (fun () -> failwith "x") with Failure _ -> ());
  check_int "calls counted (incl. raising)" 2 (Metrics.get "t.phase.calls");
  check_bool "seconds accumulated" true (Metrics.get_float "t.phase.seconds" >= 0.0)

let test_chaos_events_facade () =
  check_bool "chaos_events mirrors the Obs counters" true
    (Pool.chaos_events ()
    = (Metrics.get "pool.chaos.injected", Metrics.get "pool.chaos.killed"))

(* ---------- spans ---------- *)

let test_spans_disabled_record_nothing () =
  Tracer.reset ();
  Tracer.set_enabled false;
  let r = Tracer.with_span "off" (fun () -> 3) in
  check_int "with_span transparent when off" 3 r;
  check_int "nothing recorded when off" 0 (List.length (Tracer.events ()))

let test_span_nesting_and_order () =
  Tracer.reset ();
  Tracer.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Tracer.set_enabled false)
    (fun () ->
      Tracer.with_span ~cat:"t" "outer" (fun () ->
          Tracer.with_span ~cat:"t" "inner" (fun () -> ignore (Sys.opaque_identity 0)));
      (try
         Tracer.with_span ~cat:"t" "raiser" (fun () -> raise Exit)
       with Exit -> ());
      match Tracer.events () with
      | [ outer; inner; raiser ] ->
          check_string "parent sorts first" "outer" outer.Tracer.ev_name;
          check_string "child second" "inner" inner.Tracer.ev_name;
          check_string "raising span still recorded" "raiser"
            raiser.Tracer.ev_name;
          check_bool "child starts within parent" true
            (inner.Tracer.ev_ts_us >= outer.Tracer.ev_ts_us);
          check_bool "child ends within parent" true
            (inner.Tracer.ev_ts_us +. inner.Tracer.ev_dur_us
            <= outer.Tracer.ev_ts_us +. outer.Tracer.ev_dur_us);
          check_bool "durations non-negative" true
            (List.for_all
               (fun e -> e.Tracer.ev_dur_us >= 0.0)
               [ outer; inner; raiser ])
      | es -> Alcotest.failf "expected 3 events, got %d" (List.length es))

let test_trace_chrome_validates () =
  Tracer.reset ();
  Tracer.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Tracer.set_enabled false)
    (fun () ->
      Tracer.with_span ~cat:"sim" "s" (fun () -> ());
      Tracer.with_span ~cat:"pool" "p" (fun () ->
          Tracer.with_span ~cat:"experiment" "e" (fun () -> ())));
  let s = Json.to_string (Tracer.to_chrome_json ()) in
  (match Tracer.validate_chrome ~require_cats:[ "sim"; "pool"; "experiment" ] s with
  | Ok n -> check_int "all spans exported" 3 n
  | Error msg -> Alcotest.failf "valid trace rejected: %s" msg);
  (match Tracer.validate_chrome ~require_cats:[ "nope" ] s with
  | Ok _ -> Alcotest.fail "missing category must be rejected"
  | Error _ -> ());
  match Tracer.validate_chrome "{\"traceEvents\": 3}" with
  | Ok _ -> Alcotest.fail "malformed trace must be rejected"
  | Error _ -> ()

(* ---------- determinism: telemetry must not change artifacts ---------- *)

let small_suite () =
  match T1000_workloads.Registry.find "unepic" with
  | Some w -> [ w ]
  | None -> Alcotest.fail "unepic workload missing"

let figure2_text () =
  let ctx = Experiment.create_ctx ~workloads:(small_suite ()) () in
  Format.asprintf "%a" Report.pp_figure2 (Experiment.figure2 ctx)

let test_byte_identity_with_tracing () =
  Metrics.reset ();
  Tracer.reset ();
  Tracer.set_enabled false;
  let plain = figure2_text () in
  Tracer.set_enabled true;
  let traced =
    Fun.protect
      ~finally:(fun () -> Tracer.set_enabled false)
      figure2_text
  in
  check_string "figure 2 byte-identical with tracing on" plain traced;
  check_bool "and the traced run did record spans" true
    (Tracer.events () <> [])

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser-strict" `Quick test_json_parser_strict;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "basic" `Quick test_metrics_basic;
          Alcotest.test_case "merge-across-domains" `Quick
            test_metrics_merge_across_domains;
          Alcotest.test_case "time" `Quick test_metrics_time;
          Alcotest.test_case "chaos-facade" `Quick test_chaos_events_facade;
        ] );
      ( "spans",
        [
          Alcotest.test_case "disabled" `Quick test_spans_disabled_record_nothing;
          Alcotest.test_case "nesting-order" `Quick test_span_nesting_and_order;
          Alcotest.test_case "chrome-validate" `Quick test_trace_chrome_validates;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "byte-identity" `Quick
            test_byte_identity_with_tracing;
        ] );
    ]
