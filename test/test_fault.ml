(* Tests for the robustness layer: the fault taxonomy, the
   fault-isolating pool variant, the checkpoint journal (including
   corruption recovery), Runner setup validation, the simulator
   watchdog, self-check mode, and the end-to-end properties the layer
   exists for — a fault in one workload leaves every other row intact,
   and a killed sweep resumed against its journal reproduces the
   uninterrupted rows exactly. *)

open T1000_isa
open T1000_asm
open T1000_ooo
open T1000
open T1000_workloads
module R = Reg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Unix.putenv cannot unset; every T1000_* variable treats the empty
   string as unset, so restoring "" is equivalent. *)
let with_env var value f =
  let saved = Sys.getenv_opt var in
  Unix.putenv var value;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv var (match saved with Some s -> s | None -> ""))
    f

let build f =
  let b = Builder.create () in
  f b;
  Builder.build b

let loop_program () =
  build (fun b ->
      Builder.li b R.t0 1000;
      Builder.label b "top";
      Builder.addiu b R.t0 R.t0 (-1);
      Builder.bgtz b R.t0 "top";
      Builder.halt b)

let workload name =
  match Registry.find name with
  | Some w -> w
  | None -> Alcotest.failf "unknown workload %s" name

(* ---------- Fault ---------- *)

let test_fault_classify () =
  check_bool "Error unwraps" true
    (Fault.of_exn (Fault.Error (Fault.Invalid_config "bad"))
    = Fault.Invalid_config "bad");
  check_bool "interpreter fault mapped" true
    (match Fault.of_exn (T1000_machine.Interp.Fault "whoops") with
    | Fault.Interp_fault "whoops" -> true
    | _ -> false);
  check_bool "selfcheck violation mapped" true
    (match Fault.of_exn (Sim.Selfcheck_violation "ruu") with
    | Fault.Selfcheck_failed "ruu" -> true
    | _ -> false);
  check_bool "anything else crashes with backtrace" true
    (match Fault.of_exn ~backtrace:"bt" (Failure "boom") with
    | Fault.Crashed { exn; backtrace = "bt" } ->
        (* the exact rendering is Printexc's business *)
        String.length exn > 0
    | _ -> false);
  check_int "invalid config exits 2" 2 (Fault.exit_code (Fault.Invalid_config "x"));
  check_int "other faults exit 3" 3 (Fault.exit_code (Fault.Injected "x"));
  check_bool "renderable" true
    (String.length (Fault.to_string (Fault.Invalid_config "x")) > 0)

let test_fault_getenv_bool () =
  let get v = with_env "T1000_SELFCHECK" v (fun () -> Fault.getenv_bool "T1000_SELFCHECK") in
  check_bool "empty is false" false (get "");
  check_bool "0 is false" false (get "0");
  check_bool "no is false" false (get "no");
  check_bool "1 is true" true (get "1");
  check_bool "true is true" true (get "true");
  check_bool "garbage rejected" true
    (match get "maybe" with
    | _ -> false
    | exception Fault.Error (Fault.Invalid_config _) -> true)

(* ---------- Pool.parallel_map_result ---------- *)

let test_pool_isolation () =
  let f i =
    if i = 37 || i = 500 then failwith (Printf.sprintf "boom-%d" i) else i * i
  in
  let notified = Atomic.make 0 in
  let rs =
    Pool.parallel_map_result ~njobs:4
      ~on_result:(fun _ _ -> Atomic.incr notified)
      f (List.init 1000 Fun.id)
  in
  check_int "every task has a result" 1000 (List.length rs);
  check_int "every task notified once" 1000 (Atomic.get notified);
  List.iteri
    (fun i r ->
      match r with
      | Ok v ->
          check_bool "only the failing indices fail" true
            (i <> 37 && i <> 500);
          check_int "value in input order" (i * i) v
      | Error (Fault.Crashed { exn; _ }) ->
          check_bool "failures land at their own index" true
            (i = 37 || i = 500);
          check_bool "original message kept" true
            (exn = Printexc.to_string (Failure (Printf.sprintf "boom-%d" i)))
      | Error _ -> Alcotest.fail "unexpected fault class")
    rs;
  (* sequential path behaves identically (modulo the recorded
     backtrace, which legitimately differs between a domain and the
     calling thread) *)
  let shape =
    List.map (function
      | Ok v -> Ok v
      | Error f -> Error (match f with Fault.Crashed { exn; _ } -> exn | _ -> ""))
  in
  check_bool "njobs=1 matches" true
    (shape (Pool.parallel_map_result ~njobs:1 f (List.init 1000 Fun.id))
    = shape rs);
  check_bool "empty input" true (Pool.parallel_map_result ~njobs:4 f [] = [])

(* ---------- Checkpoint ---------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "t1000_ckpt_%d_%d" (Unix.getpid ()) !n)
    in
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote d)));
    d

let test_checkpoint_roundtrip () =
  let dir = fresh_dir () in
  let j = Checkpoint.create ~fresh:true ~dir ~run:"s52" () in
  check_int "starts empty" 0 (Checkpoint.completed j);
  Checkpoint.record j ~key:"a" 3.5;
  Checkpoint.record j ~key:"b" (10, 1.25, 2.5);
  Checkpoint.record j ~key:"a" 4.5;
  check_int "overwrite keeps one binding" 2 (Checkpoint.completed j);
  check_bool "no temp file left behind" false
    (Sys.file_exists (Checkpoint.path j ^ ".tmp"));
  (* a second open (a resumed process) sees exactly what was recorded *)
  let j2 = Checkpoint.create ~dir ~run:"s52" () in
  check_bool "healthy journal" true (Checkpoint.corrupt j2 = []);
  check_bool "float round-trips exactly" true
    (Checkpoint.find j2 ~key:"a" = Some 4.5);
  check_bool "tuple round-trips" true
    (Checkpoint.find j2 ~key:"b" = Some (10, 1.25, 2.5));
  check_bool "mem agrees" true
    (Checkpoint.mem j2 ~key:"a" && not (Checkpoint.mem j2 ~key:"zzz"));
  (* fresh:true discards it *)
  let j3 = Checkpoint.create ~fresh:true ~dir ~run:"s52" () in
  check_int "fresh starts over" 0 (Checkpoint.completed j3)

let corrupt_first_line path =
  let lines =
    In_channel.with_open_text path In_channel.input_lines
  in
  match lines with
  | [] -> Alcotest.fail "journal unexpectedly empty"
  | first :: rest ->
      let b = Bytes.of_string first in
      let last = Bytes.length b - 1 in
      Bytes.set b last (if Bytes.get b last = '0' then '1' else '0');
      Out_channel.with_open_text path (fun oc ->
          List.iter
            (fun l -> Out_channel.output_string oc (l ^ "\n"))
            (Bytes.to_string b :: rest))

let test_checkpoint_corruption () =
  let dir = fresh_dir () in
  let j = Checkpoint.create ~fresh:true ~dir ~run:"f2" () in
  Checkpoint.record j ~key:"alpha" 1.0;
  Checkpoint.record j ~key:"beta" 2.0;
  corrupt_first_line (Checkpoint.path j);
  let j2 = Checkpoint.create ~dir ~run:"f2" () in
  check_int "one record dropped" 1 (List.length (Checkpoint.corrupt j2));
  check_int "the other survives" 1 (Checkpoint.completed j2);
  (* the survivor is intact, the damaged one reads as absent *)
  check_bool "exactly one of the two is gone" true
    (match (Checkpoint.find j2 ~key:"alpha", Checkpoint.find j2 ~key:"beta") with
    | Some 1.0, None | None, Some 2.0 -> true
    | _ -> false)

let test_checkpoint_empty_file () =
  let dir = fresh_dir () in
  let j = Checkpoint.create ~fresh:true ~dir ~run:"empty" () in
  (* an empty journal file — e.g. a crash between open and first flush *)
  Out_channel.with_open_bin (Checkpoint.path j) (fun _ -> ());
  let j2 = Checkpoint.create ~dir ~run:"empty" () in
  check_int "no records" 0 (Checkpoint.completed j2);
  check_bool "and nothing corrupt" true (Checkpoint.corrupt j2 = []);
  Checkpoint.record j2 ~key:"k" 1.0;
  let j3 = Checkpoint.create ~dir ~run:"empty" () in
  check_bool "recording into it works" true
    (Checkpoint.find j3 ~key:"k" = Some 1.0)

let test_checkpoint_torn_last_line () =
  let dir = fresh_dir () in
  let j = Checkpoint.create ~fresh:true ~dir ~run:"torn" () in
  Checkpoint.record j ~key:"a" 1.0;
  Checkpoint.record j ~key:"b" 2.0;
  (* records flush sorted by key, so chopping the tail tears "b" *)
  let path = Checkpoint.path j in
  let s = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub s 0 (String.length s - 5)));
  let j2 = Checkpoint.create ~dir ~run:"torn" () in
  check_int "torn record dropped" 1 (List.length (Checkpoint.corrupt j2));
  check_int "the other survives" 1 (Checkpoint.completed j2);
  check_bool "survivor intact, torn one absent" true
    (Checkpoint.find j2 ~key:"a" = Some 1.0
    && (Checkpoint.find j2 ~key:"b" : float option) = None);
  (* recomputing the torn point heals the journal on the next flush *)
  Checkpoint.record j2 ~key:"b" 2.0;
  let j3 = Checkpoint.create ~dir ~run:"torn" () in
  check_bool "healed" true
    (Checkpoint.corrupt j3 = []
    && Checkpoint.find j3 ~key:"b" = Some 2.0
    && Checkpoint.find j3 ~key:"a" = Some 1.0)

let test_checkpoint_duplicate_key_last_wins () =
  let dir = fresh_dir () in
  let j = Checkpoint.create ~fresh:true ~dir ~run:"dup" () in
  Checkpoint.record j ~key:"k" 1.0;
  let path = Checkpoint.path j in
  let old_line =
    match In_channel.with_open_text path In_channel.input_lines with
    | [ l ] -> l
    | ls -> Alcotest.failf "expected one journal line, got %d" (List.length ls)
  in
  Checkpoint.record j ~key:"k" 2.0;
  (* a crashed writer appends the stale record after the current one *)
  let s = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (s ^ old_line ^ "\n"));
  let j2 = Checkpoint.create ~dir ~run:"dup" () in
  check_bool "both records parse" true (Checkpoint.corrupt j2 = []);
  check_int "one binding" 1 (Checkpoint.completed j2);
  check_bool "the last record wins" true (Checkpoint.find j2 ~key:"k" = Some 1.0)

let test_checkpoint_dir_validation () =
  let dir = fresh_dir () in
  (* unset/empty and a (possibly not-yet-existing) directory are fine *)
  check_bool "unset ok" true
    (with_env Checkpoint.env_var "" (fun () ->
         Checkpoint.default_dir_validated () = None));
  check_bool "missing dir ok" true
    (with_env Checkpoint.env_var dir (fun () ->
         Checkpoint.default_dir_validated () = Some dir));
  (* pointing it at an existing file is a misconfiguration *)
  let file = Filename.temp_file "t1000_ckpt" ".not_a_dir" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      check_bool "file rejected" true
        (with_env Checkpoint.env_var file (fun () ->
             match Checkpoint.default_dir_validated () with
             | _ -> false
             | exception Fault.Error (Fault.Invalid_config _) -> true)))

(* ---------- Runner validation ---------- *)

let test_runner_validation () =
  let rejects f =
    match f () with
    | _ -> false
    | exception Fault.Error (Fault.Invalid_config _) -> true
  in
  check_bool "n_pfus = Some 0" true
    (rejects (fun () -> Runner.setup ~n_pfus:(Some 0) Runner.Greedy));
  check_bool "n_pfus negative" true
    (rejects (fun () -> Runner.setup ~n_pfus:(Some (-3)) Runner.Selective));
  check_bool "negative penalty" true
    (rejects (fun () -> Runner.setup ~penalty:(-1) Runner.Greedy));
  let ok = Runner.setup Runner.Selective in
  check_bool "gain_threshold above 1" true
    (rejects (fun () ->
         Runner.validate { ok with Runner.gain_threshold = 1.5 }));
  check_bool "gain_threshold NaN" true
    (rejects (fun () ->
         Runner.validate { ok with Runner.gain_threshold = Float.nan }));
  check_bool "lut_budget zero" true
    (rejects (fun () -> Runner.validate { ok with Runner.lut_budget = 0 }));
  check_bool "defaults are valid" true
    (match Runner.validate ok with () -> true)

(* ---------- watchdog ---------- *)

let test_watchdog_cycle_budget () =
  let m = { Mconfig.default with Mconfig.max_cycles = 10 } in
  check_bool "budget exceeded raises Sim_stuck" true
    (match Sim.run ~mconfig:m ~init:(fun _ _ -> ()) (loop_program ()) with
    | _ -> false
    | exception Sim.Sim_stuck s ->
        s.Sim.reason = `Cycle_budget
        && s.Sim.limit = 10
        && s.Sim.cycle > 10
        && String.length (Format.asprintf "%a" Sim.pp_stuck s) > 0)

let test_watchdog_env_override () =
  with_env "T1000_MAX_CYCLES" "5" (fun () ->
      check_bool "env override wins over mconfig" true
        (match
           Sim.run ~init:(fun _ _ -> ()) (loop_program ())
         with
        | _ -> false
        | exception Sim.Sim_stuck s ->
            s.Sim.reason = `Cycle_budget && s.Sim.limit = 5));
  with_env "T1000_MAX_CYCLES" "abc" (fun () ->
      check_bool "garbage env rejected" true
        (match Sim.env_max_cycles () with
        | _ -> false
        | exception Invalid_argument _ -> true));
  with_env "T1000_MAX_CYCLES" "" (fun () ->
      check_bool "empty means unset" true (Sim.env_max_cycles () = None))

let test_watchdog_no_commit () =
  (* One extended instruction that takes 200 cycles: commits stop for
     far longer than the 10-cycle progress window, so the
     forward-progress check must fire (rather than the cycle budget). *)
  let p =
    build (fun b ->
        Builder.li b R.t0 1;
        Builder.ext b 0 R.t1 R.t0 R.zero;
        Builder.halt b)
  in
  let m =
    {
      (Mconfig.with_pfus ~penalty:0 (Some 2) Mconfig.default) with
      Mconfig.progress_window = 10;
    }
  in
  check_bool "stalled pipeline detected" true
    (match
       Sim.run ~mconfig:m
         ~ext_latency:(fun _ -> 200)
         ~ext_eval:(fun _ v1 _ -> v1)
         ~init:(fun _ _ -> ())
         p
     with
    | _ -> false
    | exception Sim.Sim_stuck s ->
        s.Sim.reason = `No_commit && s.Sim.limit = 10 && s.Sim.committed >= 1)

(* ---------- self-check ---------- *)

let test_selfcheck_clean_run () =
  (* Self-check must be pure observation: same stats with and without,
     on a run that exercises PFUs. *)
  let eval _ v1 _ = Word.add v1 1 in
  let mk () =
    build (fun b ->
        Builder.li b R.t0 50;
        Builder.label b "top";
        Builder.ext b 0 R.t1 R.t0 R.zero;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let mconfig = Mconfig.with_pfus ~penalty:10 (Some 2) Mconfig.default in
  let plain =
    Sim.run ~mconfig ~ext_eval:eval ~init:(fun _ _ -> ()) (mk ())
  in
  let audited =
    Sim.run ~mconfig ~ext_eval:eval ~selfcheck:true
      ~init:(fun _ _ -> ())
      (mk ())
  in
  check_bool "selfcheck does not perturb the simulation" true (plain = audited)

let test_selfcheck_runner () =
  let w = workload "unepic" in
  let plain = Runner.run w (Runner.setup ~selfcheck:false Runner.Selective) in
  let audited = Runner.run w (Runner.setup ~selfcheck:true Runner.Selective) in
  check_bool "runner stats unchanged under selfcheck" true
    (plain.Runner.stats = audited.Runner.stats)

(* ---------- fault injection mid-sweep ---------- *)

let suite () = [ workload "unepic"; workload "g721_dec" ]

let test_injected_fault_isolated () =
  with_env "T1000_FAULT_INJECT" "g721_dec" (fun () ->
      let ctx = Experiment.create_ctx ~workloads:(suite ()) () in
      let p = Experiment.penalty_sweep_result ~penalties:[ 10 ] ctx in
      check_int "unaffected workload's row arrives" 1
        (List.length p.Experiment.rows);
      check_bool "and it is the right one" true
        ((List.hd p.Experiment.rows).Experiment.s52_name = "unepic");
      check_int "one fault per failed point" 1
        (List.length p.Experiment.faults);
      let f = List.hd p.Experiment.faults in
      check_bool "structured fault record" true
        (f.Experiment.fault_workload = "g721_dec"
        && f.Experiment.fault_point = "10"
        &&
        match f.Experiment.fault with
        | Fault.Injected _ -> true
        | _ -> false);
      (* the strict facade turns the same fault into an exception *)
      check_bool "strict driver raises" true
        (match Experiment.penalty_sweep ~penalties:[ 10 ] ctx with
        | _ -> false
        | exception Fault.Error (Fault.Injected _) -> true))

(* ---------- kill-and-resume ---------- *)

let test_kill_and_resume () =
  let penalties = [ 10; 50 ] in
  let dir = fresh_dir () in
  (* reference: one uninterrupted, journal-free run *)
  let clean =
    let ctx = Experiment.create_ctx ~workloads:(suite ()) () in
    Experiment.penalty_sweep_result ~penalties ctx
  in
  check_bool "reference run is clean" true (clean.Experiment.faults = []);
  (* "killed" run: g721_dec faults mid-sweep, unepic's points land in
     the journal *)
  with_env "T1000_FAULT_INJECT" "g721_dec" (fun () ->
      let ctx = Experiment.create_ctx ~workloads:(suite ()) () in
      let j = Checkpoint.create ~fresh:true ~dir ~run:"s52" () in
      let p = Experiment.penalty_sweep_result ~journal:j ~penalties ctx in
      check_int "partial rows" 1 (List.length p.Experiment.rows);
      check_int "faults reported" 2 (List.length p.Experiment.faults);
      check_int "completed points journaled" 2 (Checkpoint.completed j));
  (* resume: fresh process state (new ctx), same journal *)
  let resumed =
    let ctx = Experiment.create_ctx ~workloads:(suite ()) () in
    let j = Checkpoint.create ~dir ~run:"s52" () in
    Experiment.penalty_sweep_result ~journal:j ~penalties ctx
  in
  check_bool "resume completes" true (resumed.Experiment.faults = []);
  check_bool "resumed rows identical to uninterrupted run" true
    (resumed.Experiment.rows = clean.Experiment.rows);
  let j = Checkpoint.create ~dir ~run:"s52" () in
  check_int "journal now holds every point" 4 (Checkpoint.completed j);
  (* damage one record on disk: the next resume drops it, recomputes
     that point, and still reproduces the reference rows *)
  corrupt_first_line (Checkpoint.path j);
  let recovered =
    let ctx = Experiment.create_ctx ~workloads:(suite ()) () in
    let j = Checkpoint.create ~dir ~run:"s52" () in
    check_int "corrupt record detected" 1 (List.length (Checkpoint.corrupt j));
    Experiment.penalty_sweep_result ~journal:j ~penalties ctx
  in
  check_bool "recovered rows identical too" true
    (recovered.Experiment.faults = []
    && recovered.Experiment.rows = clean.Experiment.rows)

let () =
  Alcotest.run "t1000_fault"
    [
      ( "fault",
        [
          Alcotest.test_case "classification" `Quick test_fault_classify;
          Alcotest.test_case "getenv_bool" `Quick test_fault_getenv_bool;
        ] );
      ( "pool",
        [
          Alcotest.test_case "fault isolation" `Quick test_pool_isolation;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip" `Quick test_checkpoint_roundtrip;
          Alcotest.test_case "corruption recovery" `Quick
            test_checkpoint_corruption;
          Alcotest.test_case "empty journal file" `Quick
            test_checkpoint_empty_file;
          Alcotest.test_case "torn last line" `Quick
            test_checkpoint_torn_last_line;
          Alcotest.test_case "duplicate key, last wins" `Quick
            test_checkpoint_duplicate_key_last_wins;
          Alcotest.test_case "T1000_CHECKPOINT_DIR validation" `Quick
            test_checkpoint_dir_validation;
        ] );
      ( "runner",
        [
          Alcotest.test_case "setup validation" `Quick test_runner_validation;
        ] );
      ( "watchdog",
        [
          Alcotest.test_case "cycle budget" `Quick test_watchdog_cycle_budget;
          Alcotest.test_case "T1000_MAX_CYCLES" `Quick
            test_watchdog_env_override;
          Alcotest.test_case "forward progress" `Quick test_watchdog_no_commit;
        ] );
      ( "selfcheck",
        [
          Alcotest.test_case "sim observation only" `Quick
            test_selfcheck_clean_run;
          Alcotest.test_case "runner cross-validation" `Slow
            test_selfcheck_runner;
        ] );
      ( "engine",
        [
          Alcotest.test_case "injected fault isolated" `Slow
            test_injected_fault_isolated;
          Alcotest.test_case "kill and resume" `Slow test_kill_and_resume;
        ] );
    ]
