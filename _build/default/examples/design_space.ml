(* Design-space exploration: how many PFUs does a workload deserve, and
   how sensitive is the answer to the reconfiguration penalty?

   Sweeps PFU count x penalty for one benchmark under the selective
   algorithm and prints a speedup grid — the kind of study an
   architect would run before fixing the PFU budget in silicon. *)

let pfu_counts = [ 1; 2; 3; 4; 8 ]
let penalties = [ 0; 10; 100; 500 ]

let () =
  let name =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "gsm_dec"
  in
  let workload =
    match T1000_workloads.Registry.find name with
    | Some w -> w
    | None ->
        Format.eprintf "unknown workload %s (expected one of: %s)@." name
          (String.concat ", " T1000_workloads.Registry.names);
        exit 2
  in
  Format.printf "design space for %s (selective algorithm)@.@." name;
  let analysis = T1000.Runner.analyze workload in
  let baseline =
    T1000.Runner.run ~analysis workload
      (T1000.Runner.setup T1000.Runner.Baseline)
  in
  Format.printf "%12s" "pfus \\ pen";
  List.iter (fun p -> Format.printf "%10d" p) penalties;
  Format.printf "@.";
  List.iter
    (fun n ->
      Format.printf "%12d" n;
      List.iter
        (fun pen ->
          let r =
            T1000.Runner.run ~analysis workload
              (T1000.Runner.setup ~n_pfus:(Some n) ~penalty:pen
                 T1000.Runner.Selective)
          in
          Format.printf "%10.3f" (T1000.Runner.speedup ~baseline r))
        penalties;
      Format.printf "@.")
    pfu_counts;
  Format.printf
    "@.rows: number of PFUs; columns: reconfiguration penalty (cycles);@.";
  Format.printf
    "cells: execution-time speedup over the no-PFU superscalar.@."
