examples/quickstart.ml: Format T1000 T1000_ooo T1000_profile T1000_select T1000_workloads
