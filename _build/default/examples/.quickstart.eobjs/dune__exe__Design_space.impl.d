examples/design_space.ml: Array Format List String Sys T1000 T1000_workloads
