examples/area_explorer.ml: Array Extinstr Format List Option String T1000 T1000_dfg T1000_hwcost T1000_select T1000_workloads
