examples/custom_kernel.ml: Builder Format List Program Reg T1000 T1000_asm T1000_dfg T1000_isa T1000_ooo T1000_select T1000_workloads
