examples/area_explorer.mli:
