examples/quickstart.mli:
