(* Quickstart: run one MediaBench-like kernel three ways — plain
   superscalar, greedy selection, selective selection — and print the
   speedups, the selected extended instructions, and their hardware
   cost.  This is the 60-second tour of the public API. *)

let () =
  let workload =
    match T1000_workloads.Registry.find "gsm_dec" with
    | Some w -> w
    | None -> assert false
  in
  Format.printf "workload: %s — %s@." workload.T1000_workloads.Workload.name
    workload.T1000_workloads.Workload.description;

  (* One profiling pass + static analyses, shared by every setup. *)
  let analysis = T1000.Runner.analyze workload in
  Format.printf "profiled %d dynamic instructions@."
    (T1000_profile.Profile.total_instrs analysis.T1000.Runner.profile);

  let baseline =
    T1000.Runner.run ~analysis workload (T1000.Runner.setup T1000.Runner.Baseline)
  in
  Format.printf "@.baseline superscalar:@.%a@." T1000_ooo.Stats.pp
    baseline.T1000.Runner.stats;

  let greedy_unlimited =
    T1000.Runner.run ~analysis workload
      (T1000.Runner.setup ~n_pfus:None ~penalty:0 T1000.Runner.Greedy)
  in
  let greedy_2 =
    T1000.Runner.run ~analysis workload
      (T1000.Runner.setup ~n_pfus:(Some 2) T1000.Runner.Greedy)
  in
  let selective_2 =
    T1000.Runner.run ~analysis workload
      (T1000.Runner.setup ~n_pfus:(Some 2) T1000.Runner.Selective)
  in
  let selective_4 =
    T1000.Runner.run ~analysis workload
      (T1000.Runner.setup ~n_pfus:(Some 4) T1000.Runner.Selective)
  in
  let pr name r =
    Format.printf "%-28s cycles %9d  speedup %.3f  (%d ext instrs)@." name
      r.T1000.Runner.stats.T1000_ooo.Stats.cycles
      (T1000.Runner.speedup ~baseline r)
      (T1000_select.Extinstr.count r.T1000.Runner.table)
  in
  Format.printf "@.";
  pr "baseline" baseline;
  pr "greedy, unlimited, 0-cycle" greedy_unlimited;
  pr "greedy, 2 PFUs, 10-cycle" greedy_2;
  pr "selective, 2 PFUs, 10-cycle" selective_2;
  pr "selective, 4 PFUs, 10-cycle" selective_4;

  Format.printf "@.selected extended instructions (selective, 2 PFUs):@.%a@."
    T1000_select.Extinstr.pp selective_2.T1000.Runner.table
