(* Hardware-cost exploration: what do the mined extended instructions
   cost in LUTs, and how does the candidate bitwidth threshold trade
   area against speedup?

   For each benchmark, prints the selective algorithm's chosen
   instructions with their per-node LUT breakdown, then sweeps the
   bitwidth threshold to show the area/performance frontier. *)

open T1000_select

let () =
  Format.printf "== per-benchmark extended-instruction area ==@.";
  List.iter
    (fun w ->
      let analysis = T1000.Runner.analyze w in
      let r =
        T1000.Runner.run ~analysis w
          (T1000.Runner.setup ~n_pfus:(Some 4) T1000.Runner.Selective)
      in
      Format.printf "@.%s:@." w.T1000_workloads.Workload.name;
      List.iter
        (fun e ->
          let costs = T1000_hwcost.Lut.node_costs e.Extinstr.dfg in
          Format.printf
            "  ext#%d: %2d ops, width <= %2d, %3d LUTs  (per node: %s)@."
            e.Extinstr.eid
            (T1000_dfg.Dfg.size e.Extinstr.dfg)
            (T1000_dfg.Dfg.max_width e.Extinstr.dfg)
            e.Extinstr.lut_cost
            (String.concat "+"
               (Array.to_list (Array.map string_of_int costs))))
        (Extinstr.entries r.T1000.Runner.table))
    T1000_workloads.Registry.all;

  Format.printf "@.== bitwidth threshold: area vs speedup (gsm_dec) ==@.";
  let w = Option.get (T1000_workloads.Registry.find "gsm_dec") in
  let analysis = T1000.Runner.analyze w in
  let baseline =
    T1000.Runner.run ~analysis w (T1000.Runner.setup T1000.Runner.Baseline)
  in
  Format.printf "%10s %10s %12s %10s@." "threshold" "configs" "total LUTs"
    "speedup";
  List.iter
    (fun threshold ->
      let s = T1000.Runner.setup ~n_pfus:(Some 4) T1000.Runner.Selective in
      let s =
        {
          s with
          T1000.Runner.extract =
            {
              s.T1000.Runner.extract with
              T1000_dfg.Extract.width_threshold = threshold;
            };
        }
      in
      let r = T1000.Runner.run ~analysis w s in
      let entries = Extinstr.entries r.T1000.Runner.table in
      let total_luts =
        List.fold_left (fun acc e -> acc + e.Extinstr.lut_cost) 0 entries
      in
      Format.printf "%10d %10d %12d %10.3f@." threshold (List.length entries)
        total_luts
        (T1000.Runner.speedup ~baseline r))
    [ 8; 12; 18; 24; 32 ]
