(* Bring your own kernel: write a program with the Builder DSL, then
   let the toolchain profile it, mine extended instructions, rewrite
   it, and report the speedup on the T1000 core.

   The kernel below is a small FIR-style filter with two foldable
   chains.  Swap in your own code and re-run: the pipeline is entirely
   automatic. *)

open T1000_isa
open T1000_asm
module R = Reg

let n = 2048

let my_kernel =
  let b = Builder.create ~name:"my_fir" () in
  Builder.li b R.a0 0x1000_0000 (* input samples *);
  Builder.li b R.a1 0x2000_0000 (* output *);
  Builder.li b R.s3 0x100000 (* wide checksum accumulator *);
  Builder.li b R.t0 n;
  Builder.move b R.t1 R.a0;
  Builder.move b R.t2 R.a1;
  Builder.label b "loop";
  Builder.lh b R.t3 0 R.t1;
  Builder.lh b R.t4 2 R.t1;
  (* tap chain: y = ((x << 2) + z) >> 1, masked *)
  Builder.sll b R.t5 R.t3 2;
  Builder.addu b R.t5 R.t5 R.t4;
  Builder.sra b R.t5 R.t5 1;
  Builder.andi b R.t6 R.t5 0xFFF;
  (* energy chain: e = (x - z)^2-ish via shifts *)
  Builder.subu b R.t5 R.t3 R.t4;
  Builder.sll b R.t5 R.t5 1;
  Builder.xori b R.t7 R.t5 0x11;
  Builder.addu b R.s3 R.s3 R.t7;
  Builder.sh b R.t6 0 R.t2;
  Builder.addiu b R.t1 R.t1 2;
  Builder.addiu b R.t2 R.t2 2;
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "loop";
  Builder.halt b;
  Builder.build b

let init mem _regs =
  (* deterministic 11-bit samples *)
  let data = T1000_workloads.Kit.xorshift ~seed:0xF1A ~n ~mask:0x7FF in
  T1000_workloads.Kit.store_halfwords mem 0x1000_0000 data

let workload =
  {
    T1000_workloads.Workload.name = "my_fir";
    description = "user-written FIR-style kernel";
    program = my_kernel;
    init;
    out_base = 0x2000_0000;
    out_len = 2 * n;
  }

let () =
  Format.printf "static program:@.%a@." Program.pp my_kernel;

  let analysis = T1000.Runner.analyze workload in
  let baseline =
    T1000.Runner.run ~analysis workload (T1000.Runner.setup T1000.Runner.Baseline)
  in
  let t1000 =
    T1000.Runner.run ~analysis workload
      (T1000.Runner.setup ~n_pfus:(Some 2) T1000.Runner.Selective)
  in
  Format.printf "mined extended instructions:@.%a@." T1000_select.Extinstr.pp
    t1000.T1000.Runner.table;
  List.iter
    (fun e ->
      Format.printf "ext#%d dataflow:@.%a@." e.T1000_select.Extinstr.eid
        T1000_dfg.Dfg.pp e.T1000_select.Extinstr.dfg)
    (T1000_select.Extinstr.entries t1000.T1000.Runner.table);
  Format.printf "rewritten program:@.%a@." Program.pp t1000.T1000.Runner.program;
  Format.printf "baseline: %d cycles;  with PFUs: %d cycles;  speedup %.3f@."
    baseline.T1000.Runner.stats.T1000_ooo.Stats.cycles
    t1000.T1000.Runner.stats.T1000_ooo.Stats.cycles
    (T1000.Runner.speedup ~baseline t1000)
