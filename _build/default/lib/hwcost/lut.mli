(** Analytic LUT-cost model for extended instructions.

    Substitutes for the paper's Xilinx Foundation synthesis flow
    (Section 6): maps a dataflow graph at its profiled bitwidths onto
    XC4000-class 4-input LUTs using standard per-operator formulas:

    - add/sub: 1 LUT per bit (dedicated carry logic);
    - 2-input bitwise logic: maximal logic-only subtrees are packed, one
      4-LUT absorbing up to three chained 2-input operations per bit;
    - set-less-than: a subtract chain plus sign selection, [w + 1] LUTs;
    - shift by a compile-time constant: free (wiring);
    - shift by a data operand: a barrel shifter,
      [w * ceil(log2 w)] LUTs.

    Widths are the per-node profiled maxima, clamped to [1, 32]. *)

val node_costs : T1000_dfg.Dfg.t -> int array
(** LUTs attributed to each node (packed logic groups are charged to the
    group's last node; earlier members cost 0). *)

val cost : T1000_dfg.Dfg.t -> int
(** Total LUTs for the extended instruction. *)

val fits : ?budget:int -> T1000_dfg.Dfg.t -> bool
(** Whether the instruction fits a PFU (default budget 150 LUTs, the
    paper's sizing). *)

val default_budget : int

(** {1 Delay model}

    The paper assumes every extended instruction evaluates in a single
    cycle and notes that "this could easily be altered to allow for
    varying execution times" (Section 3.1).  This model provides that
    extension: the critical path through the mapped logic, measured in
    4-LUT levels, converted to pipeline cycles. *)

val levels : T1000_dfg.Dfg.t -> int
(** LUT levels on the critical path: packed logic groups count
    [ceil(k/3)] levels, add/sub/slt 2 (carry chain), constant shifts 0,
    barrel shifters [ceil(log2 w)]. *)

val default_levels_per_cycle : int
(** How many LUT levels fit in one processor cycle (4). *)

val latency_estimate : ?levels_per_cycle:int -> T1000_dfg.Dfg.t -> int
(** Execution latency in cycles, at least 1. *)
