open T1000_isa
open T1000_dfg

let default_budget = 150

let clamp_width w = if w < 1 then 1 else if w > 32 then 32 else w

let is_logic = function
  | Dfg.N_alu (Op.And | Op.Or | Op.Xor | Op.Nor) -> true
  | Dfg.N_alu
      (Op.Add | Op.Addu | Op.Sub | Op.Subu | Op.Slt | Op.Sltu)
  | Dfg.N_shift _ ->
      false

let ceil_log2 n =
  let rec go p acc = if p >= n then acc else go (p * 2) (acc + 1) in
  if n <= 1 then 0 else go 1 0

let ceil_div a b = (a + b - 1) / b

(* Union-find over node indices, for grouping chained logic nodes. *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  go i

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(max ra rb) <- min ra rb

let node_costs d =
  let nodes = Dfg.nodes d in
  let n = Array.length nodes in
  let costs = Array.make n 0 in
  let parent = Array.init n (fun i -> i) in
  (* Group adjacent logic nodes: an edge between two logic nodes lets a
     4-LUT absorb both levels. *)
  Array.iteri
    (fun i nd ->
      if is_logic nd.Dfg.op then begin
        let link = function
          | Dfg.Node j when is_logic nodes.(j).Dfg.op -> union parent i j
          | Dfg.Node _ | Dfg.Input _ | Dfg.Const _ -> ()
        in
        link nd.Dfg.a;
        link nd.Dfg.b
      end)
    nodes;
  (* Logic groups: k chained 2-input ops cost ceil(k/3) LUTs per bit at
     the group's widest width; charge the group's highest-index node. *)
  let group_size = Hashtbl.create 8 and group_width = Hashtbl.create 8 in
  let group_last = Hashtbl.create 8 in
  Array.iteri
    (fun i nd ->
      if is_logic nd.Dfg.op then begin
        let r = find parent i in
        let sz = Option.value ~default:0 (Hashtbl.find_opt group_size r) in
        let w = Option.value ~default:1 (Hashtbl.find_opt group_width r) in
        Hashtbl.replace group_size r (sz + 1);
        Hashtbl.replace group_width r (max w (clamp_width nd.Dfg.width));
        Hashtbl.replace group_last r i
      end)
    nodes;
  Hashtbl.iter
    (fun r k ->
      let w = Hashtbl.find group_width r in
      let last = Hashtbl.find group_last r in
      costs.(last) <- ceil_div k 3 * w)
    group_size;
  (* Non-logic nodes. *)
  Array.iteri
    (fun i nd ->
      let w = clamp_width nd.Dfg.width in
      match nd.Dfg.op with
      | Dfg.N_alu (Op.Add | Op.Addu | Op.Sub | Op.Subu) -> costs.(i) <- w
      | Dfg.N_alu (Op.Slt | Op.Sltu) -> costs.(i) <- w + 1
      | Dfg.N_alu (Op.And | Op.Or | Op.Xor | Op.Nor) -> () (* grouped *)
      | Dfg.N_shift _ -> (
          match nd.Dfg.b with
          | Dfg.Const _ -> () (* wiring *)
          | Dfg.Input _ | Dfg.Node _ -> costs.(i) <- w * ceil_log2 w))
    nodes;
  costs

let cost d = Array.fold_left ( + ) 0 (node_costs d)
let fits ?(budget = default_budget) d = cost d <= budget

(* Critical path in 4-LUT levels.  Chained logic nodes share levels the
   same way they share LUTs: a group of k 2-input ops is ceil(k/3)
   levels deep along any path through it; we approximate by charging
   the group's depth to its last node and zero to earlier members,
   which is exact for chains (the common case) and conservative-low
   for bushy groups. *)
let node_levels d =
  let nodes = Dfg.nodes d in
  let n = Array.length nodes in
  let parent = Array.init n (fun i -> i) in
  Array.iteri
    (fun i nd ->
      if is_logic nd.Dfg.op then begin
        let link = function
          | Dfg.Node j when is_logic nodes.(j).Dfg.op -> union parent i j
          | Dfg.Node _ | Dfg.Input _ | Dfg.Const _ -> ()
        in
        link nd.Dfg.a;
        link nd.Dfg.b
      end)
    nodes;
  let group_size = Hashtbl.create 8 and group_last = Hashtbl.create 8 in
  Array.iteri
    (fun i nd ->
      if is_logic nd.Dfg.op then begin
        let r = find parent i in
        Hashtbl.replace group_size r
          (1 + Option.value ~default:0 (Hashtbl.find_opt group_size r));
        Hashtbl.replace group_last r i
      end)
    nodes;
  Array.mapi
    (fun i nd ->
      match nd.Dfg.op with
      | Dfg.N_alu (Op.And | Op.Or | Op.Xor | Op.Nor) ->
          let r = find parent i in
          if Hashtbl.find group_last r = i then
            ceil_div (Hashtbl.find group_size r) 3
          else 0
      | Dfg.N_alu (Op.Add | Op.Addu | Op.Sub | Op.Subu) -> 2
      | Dfg.N_alu (Op.Slt | Op.Sltu) -> 2
      | Dfg.N_shift _ -> (
          match nd.Dfg.b with
          | Dfg.Const _ -> 0
          | Dfg.Input _ | Dfg.Node _ ->
              ceil_log2 (clamp_width nd.Dfg.width)))
    nodes

let levels d =
  let nodes = Dfg.nodes d in
  let per_node = node_levels d in
  let depth = Array.make (Array.length nodes) 0 in
  let operand_depth = function
    | Dfg.Input _ | Dfg.Const _ -> 0
    | Dfg.Node i -> depth.(i)
  in
  Array.iteri
    (fun i nd ->
      depth.(i) <-
        per_node.(i) + max (operand_depth nd.Dfg.a) (operand_depth nd.Dfg.b))
    nodes;
  depth.(Array.length nodes - 1)

let default_levels_per_cycle = 4

let latency_estimate ?(levels_per_cycle = default_levels_per_cycle) d =
  max 1 (ceil_div (levels d) levels_per_cycle)
