type t = {
  bin_width : int;
  bins : int array;
  max_cost : int;
  total : int;
}

let histogram ?(bin_width = 15) costs =
  if bin_width <= 0 then invalid_arg "Area.histogram: bin_width <= 0";
  List.iter
    (fun c -> if c < 0 then invalid_arg "Area.histogram: negative cost")
    costs;
  let max_cost = List.fold_left max 0 costs in
  let n_bins = max 10 ((max_cost / bin_width) + 1) in
  let bins = Array.make n_bins 0 in
  List.iter (fun c -> bins.(c / bin_width) <- bins.(c / bin_width) + 1) costs;
  { bin_width; bins; max_cost; total = List.length costs }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>LUT-cost distribution (%d extended instructions, max %d LUTs)@,"
    t.total t.max_cost;
  Array.iteri
    (fun i n ->
      let lo = i * t.bin_width and hi = ((i + 1) * t.bin_width) - 1 in
      Format.fprintf ppf "%3d-%3d LUTs | %-3d %s@," lo hi n (String.make n '#'))
    t.bins;
  Format.fprintf ppf "@]"
