(** Area-distribution reporting (Figure 7).

    The paper presents the hardware requirements of the selected
    extended instructions as a histogram of LUT counts; this module
    builds and renders that histogram. *)

type t = {
  bin_width : int;
  bins : int array;  (** [bins.(i)] counts costs in
                         [[i*bin_width, (i+1)*bin_width)] *)
  max_cost : int;
  total : int;
}

val histogram : ?bin_width:int -> int list -> t
(** Histogram of LUT costs (default bin width 15, covering the paper's
    0-150 LUT range in ten bins).  Costs beyond the last bin extend the
    histogram.
    @raise Invalid_argument on a negative cost or non-positive width. *)

val pp : Format.formatter -> t -> unit
(** Text rendering, one bin per line with a bar. *)
