lib/hwcost/area.mli: Format
