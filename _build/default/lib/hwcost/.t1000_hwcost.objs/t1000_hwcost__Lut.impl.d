lib/hwcost/lut.ml: Array Dfg Hashtbl Op Option T1000_dfg T1000_isa
