lib/hwcost/lut.mli: T1000_dfg
