lib/hwcost/area.ml: Array Format List String
