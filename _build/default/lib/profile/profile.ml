open T1000_isa
open T1000_asm
open T1000_machine

type t = {
  program : Program.t;
  counts : int array;
  bitwidth : Bitwidth.t;
  total_instrs : int;
  total_weight : int;
}

let collect ?(max_steps = 1_000_000_000) ?ext_eval ~init program =
  let n = Program.length program in
  let counts = Array.make n 0 in
  let bw = Bitwidth.create ~n_slots:n in
  let weight = ref 0 in
  let mem = Memory.create () in
  let regs = Regfile.create () in
  init mem regs;
  let interp = Interp.create ~regs ~mem ?ext_eval program in
  Interp.set_observer interp (fun obs ->
      let i = obs.Trace.entry.Trace.index in
      counts.(i) <- counts.(i) + 1;
      weight := !weight + Instr.latency obs.Trace.entry.Trace.instr;
      Bitwidth.record bw obs);
  let total = Interp.run ~max_steps interp in
  { program; counts; bitwidth = bw; total_instrs = total; total_weight = !weight }

let program t = t.program
let count t i = t.counts.(i)
let total_instrs t = t.total_instrs
let total_weight t = t.total_weight
let bitwidth t = t.bitwidth
let instr_width t i = Bitwidth.instr_width t.bitwidth i
let operand_width t i = Bitwidth.operand_width t.bitwidth i

let pp_hot ?(limit = 20) ppf t =
  let idx = Array.init (Array.length t.counts) (fun i -> i) in
  Array.sort (fun a b -> compare t.counts.(b) t.counts.(a)) idx;
  Format.fprintf ppf "@[<v>hottest instructions of %s:@,"
    (Program.name t.program);
  Array.iteri
    (fun rank i ->
      if rank < limit && t.counts.(i) > 0 then
        Format.fprintf ppf "%8d x %4d: %a (w<=%d)@," t.counts.(i) i Instr.pp
          (Program.get t.program i) (instr_width t i))
    idx;
  Format.fprintf ppf "@]"
