open T1000_isa
open T1000_machine

type t = {
  res_w : int array;
  opd_w : int array;
  seen : bool array;
}

let create ~n_slots =
  {
    res_w = Array.make n_slots 0;
    opd_w = Array.make n_slots 0;
    seen = Array.make n_slots false;
  }

let record t (o : Trace.obs) =
  let i = o.Trace.entry.Trace.index in
  t.seen.(i) <- true;
  let rw = Word.width_signed o.Trace.result in
  if rw > t.res_w.(i) then t.res_w.(i) <- rw;
  let ow =
    max (Word.width_signed o.Trace.src1) (Word.width_signed o.Trace.src2)
  in
  if ow > t.opd_w.(i) then t.opd_w.(i) <- ow

let executed t i = t.seen.(i)
let result_width t i = if t.seen.(i) then t.res_w.(i) else 32
let operand_width t i = if t.seen.(i) then t.opd_w.(i) else 32
let instr_width t i = max (result_width t i) (operand_width t i)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i seen ->
      if seen then
        Format.fprintf ppf "%4d: opd<=%2d res<=%2d@," i t.opd_w.(i)
          t.res_w.(i))
    t.seen;
  Format.fprintf ppf "@]"
