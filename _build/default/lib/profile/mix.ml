open T1000_isa
open T1000_asm

type category =
  | Cat_alu
  | Cat_muldiv
  | Cat_load
  | Cat_store
  | Cat_branch
  | Cat_ext
  | Cat_other

let category = function
  | Instr.Alu_rrr _ | Instr.Alu_rri _ | Instr.Shift_imm _ | Instr.Shift_reg _
  | Instr.Lui _ | Instr.Mfhi _ | Instr.Mflo _ ->
      Cat_alu
  | Instr.Muldiv _ -> Cat_muldiv
  | Instr.Load _ -> Cat_load
  | Instr.Store _ -> Cat_store
  | Instr.Branch _ | Instr.Jump _ | Instr.Jal _ | Instr.Jr _ | Instr.Jalr _ ->
      Cat_branch
  | Instr.Ext _ -> Cat_ext
  | Instr.Cfgld _ | Instr.Nop | Instr.Halt -> Cat_other

let category_name = function
  | Cat_alu -> "alu"
  | Cat_muldiv -> "muldiv"
  | Cat_load -> "load"
  | Cat_store -> "store"
  | Cat_branch -> "branch"
  | Cat_ext -> "ext"
  | Cat_other -> "other"

let all_categories =
  [ Cat_alu; Cat_muldiv; Cat_load; Cat_store; Cat_branch; Cat_ext; Cat_other ]

type t = {
  counts : (category * int) list;
  total : int;
}

let of_weights weight_of program =
  let tbl = Hashtbl.create 8 in
  let total = ref 0 in
  Program.iteri
    (fun i instr ->
      let w = weight_of i in
      if w > 0 then begin
        let c = category instr in
        Hashtbl.replace tbl c
          (w + Option.value ~default:0 (Hashtbl.find_opt tbl c));
        total := !total + w
      end)
    program;
  {
    counts =
      List.map
        (fun c -> (c, Option.value ~default:0 (Hashtbl.find_opt tbl c)))
        all_categories;
    total = !total;
  }

let static_mix program = of_weights (fun _ -> 1) program

let dynamic_mix profile =
  of_weights (Profile.count profile) (Profile.program profile)

let fraction t c =
  if t.total = 0 then 0.0
  else
    float_of_int (Option.value ~default:0 (List.assoc_opt c t.counts))
    /. float_of_int t.total

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (c, n) ->
      if n > 0 then
        Format.fprintf ppf "%-8s %10d  (%5.1f%%)@," (category_name c) n
          (100.0 *. fraction t c))
    t.counts;
  Format.fprintf ppf "total    %10d@]" t.total
