lib/profile/bitwidth.ml: Array Format T1000_isa T1000_machine Trace Word
