lib/profile/profile.ml: Array Bitwidth Format Instr Interp Memory Program Regfile T1000_asm T1000_isa T1000_machine Trace
