lib/profile/profile.mli: Bitwidth Format Memory Program Regfile T1000_asm T1000_isa T1000_machine
