lib/profile/mix.mli: Format Profile Program T1000_asm T1000_isa
