lib/profile/bitwidth.mli: Format T1000_machine
