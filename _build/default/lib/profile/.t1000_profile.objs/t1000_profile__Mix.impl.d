lib/profile/mix.ml: Format Hashtbl Instr List Option Profile Program T1000_asm T1000_isa
