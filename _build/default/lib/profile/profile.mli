(** Whole-program execution profile.

    Runs a program to completion under the functional interpreter,
    collecting per-static-instruction dynamic counts and bitwidth
    maxima.  This is the input to both selection algorithms: the greedy
    algorithm uses the bitwidth filter, the selective algorithm
    additionally uses counts to estimate each candidate's share of total
    application time (its "potential gain ratio", Figure 5). *)

open T1000_asm
open T1000_machine

type t

val collect :
  ?max_steps:int ->
  ?ext_eval:(int -> T1000_isa.Word.t -> T1000_isa.Word.t -> T1000_isa.Word.t) ->
  init:(Memory.t -> Regfile.t -> unit) ->
  Program.t ->
  t
(** Execute the program (with [init] preparing memory/registers) and
    profile it.
    @raise T1000_machine.Interp.Fault if it does not halt. *)

val program : t -> Program.t
val count : t -> int -> int
(** Dynamic execution count of a static slot. *)

val total_instrs : t -> int
(** Total dynamic instruction count. *)

val total_weight : t -> int
(** Sum over dynamic instructions of base-machine latency — the
    denominator of the selective algorithm's gain ratio (a serial proxy
    for total application time, matching the paper's profile-based
    estimate). *)

val bitwidth : t -> Bitwidth.t

val instr_width : t -> int -> int
(** Shortcut for [Bitwidth.instr_width (bitwidth t) i]. *)

val operand_width : t -> int -> int
(** Shortcut for [Bitwidth.operand_width (bitwidth t) i] — the width used
    for candidate filtering (the paper filters on operand bitwidth; the
    result may legitimately grow wider, e.g. after shifts). *)

val pp_hot : ?limit:int -> Format.formatter -> t -> unit
(** The [limit] (default 20) hottest static instructions. *)
