(** Instruction-mix statistics.

    Static (per program) and dynamic (per profiled run) breakdowns by
    instruction category — the first thing to look at when judging how
    much of a workload extended instructions can possibly cover, and
    the sanity check that the synthetic kernels resemble the media
    codes they stand in for (ALU-heavy, moderate memory traffic). *)

open T1000_asm

(** Instruction categories. *)
type category =
  | Cat_alu  (** ALU, shifts, lui, mfhi/mflo *)
  | Cat_muldiv
  | Cat_load
  | Cat_store
  | Cat_branch  (** branches and jumps *)
  | Cat_ext
  | Cat_other  (** nop, halt *)

val category : T1000_isa.Instr.t -> category
val category_name : category -> string
val all_categories : category list

type t = {
  counts : (category * int) list;  (** per category, in
                                       {!all_categories} order *)
  total : int;
}

val static_mix : Program.t -> t
val dynamic_mix : Profile.t -> t
(** Weighted by profiled execution counts. *)

val fraction : t -> category -> float
val pp : Format.formatter -> t -> unit
