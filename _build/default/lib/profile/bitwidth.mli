(** Dynamic operand/result bitwidth profiling.

    Reproduces the role of the paper's [sim_profile]-based tool
    (Section 4): for every static instruction it tracks the maximum
    two's-complement width of the register operands and of the result
    over all executions.  The selection algorithms use these maxima both
    to filter candidates (default: width <= 18 bits) and to size PFU
    hardware ({!T1000_hwcost}). *)

type t

val create : n_slots:int -> t
val record : t -> T1000_machine.Trace.obs -> unit
(** Intended as an {!T1000_machine.Interp.set_observer} hook. *)

val executed : t -> int -> bool
(** Whether the slot ever executed. *)

val result_width : t -> int -> int
(** Max signed width of the result value of slot [i]; 32 if the slot
    never executed (conservative). *)

val operand_width : t -> int -> int
(** Max signed width over both register operands; 32 if never
    executed. *)

val instr_width : t -> int -> int
(** [max (result_width i) (operand_width i)] — the width used for
    candidate filtering and hardware sizing. *)

val pp : Format.formatter -> t -> unit
