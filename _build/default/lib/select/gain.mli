(** Cycle-gain model for extended instructions.

    The paper's example (Section 2.1): a sequence of three dependent
    single-cycle operations executes in three cycles on the base machine
    and one cycle on a PFU — a saving of two cycles per execution.  The
    model generalizes that: per-execution gain is the sequence's
    critical-path latency minus the PFU's single cycle, and an
    occurrence's total gain weights this by the dynamic execution count
    of its basic block. *)

open T1000_profile
open T1000_dfg

val per_exec : Dfg.t -> int
(** [Dfg.base_latency d - 1], never negative. *)

val occ_count : Profile.t -> Extract.occ -> int
(** Dynamic execution count of the occurrence (the count of its root
    slot; all member slots of a basic block share one count). *)

val occ_gain : Profile.t -> Extract.occ -> int
(** Total cycles potentially saved by this occurrence over the run. *)

val ratio : Profile.t -> int -> float
(** Gain as a fraction of total application time ([Profile.total_weight]
    as the serial-time proxy) — the quantity compared against the
    selective algorithm's 0.5 % threshold. *)
