lib/select/greedy.ml: Extinstr Extract List T1000_dfg T1000_hwcost
