lib/select/matrix.ml: Array Canon Dfg Extract Format Gain Hashtbl Int List Set T1000_dfg T1000_hwcost T1000_profile
