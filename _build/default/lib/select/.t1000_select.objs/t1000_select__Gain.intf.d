lib/select/gain.mli: Dfg Extract Profile T1000_dfg T1000_profile
