lib/select/extinstr.mli: Dfg Extract Format T1000_dfg T1000_isa Word
