lib/select/rewrite.mli: Extinstr Program T1000_asm
