lib/select/extinstr.ml: Array Buffer Canon Dfg Extract Format Hashtbl List Printf String T1000_dfg T1000_hwcost T1000_isa
