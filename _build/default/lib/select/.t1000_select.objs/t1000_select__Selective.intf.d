lib/select/selective.mli: Cfg Extinstr Extract Liveness Loops Profile T1000_asm T1000_dfg T1000_profile
