lib/select/matrix.mli: Cfg Extract Format Liveness Profile T1000_asm T1000_dfg T1000_profile
