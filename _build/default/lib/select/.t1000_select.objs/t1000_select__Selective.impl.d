lib/select/selective.ml: Extinstr Extract Gain Hashtbl Int List Loops Matrix Set T1000_asm T1000_dfg T1000_hwcost
