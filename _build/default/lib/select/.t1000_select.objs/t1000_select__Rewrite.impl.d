lib/select/rewrite.ml: Array Extinstr Extract Instr List Program Reg T1000_asm T1000_dfg T1000_isa
