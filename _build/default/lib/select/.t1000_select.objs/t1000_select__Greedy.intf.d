lib/select/greedy.mli: Cfg Extinstr Extract Liveness Profile T1000_asm T1000_dfg T1000_profile
