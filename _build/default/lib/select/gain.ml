open T1000_profile
open T1000_dfg

let per_exec d = max 0 (Dfg.base_latency d - 1)
let occ_count profile (o : Extract.occ) = Profile.count profile o.Extract.root
let occ_gain profile o = occ_count profile o * per_exec o.Extract.dfg

let ratio profile gain =
  let total = Profile.total_weight profile in
  if total = 0 then 0.0 else float_of_int gain /. float_of_int total
