open T1000_dfg

module Int_set = Set.Make (Int)

type t = {
  keys : string array;
  key_idx : (string, int) Hashtbl.t;
  counts : int array array;
  gains : int array;
  luts : int array;
  subs : Extract.occ list array;
}

(* Greedily pack disjoint occurrences, preferring larger matches (so a
   maximal occurrence counts once on the diagonal rather than as several
   of its own sub-matches). *)
let pack matches =
  let ordered =
    List.sort
      (fun (a : Extract.occ) (b : Extract.occ) ->
        match
          compare (List.length b.Extract.members)
            (List.length a.Extract.members)
        with
        | 0 -> compare a.Extract.root b.Extract.root
        | c -> c)
      matches
  in
  let used = ref Int_set.empty in
  List.filter
    (fun (o : Extract.occ) ->
      let slots = Int_set.of_list o.Extract.members in
      if Int_set.is_empty (Int_set.inter slots !used) then begin
        used := Int_set.union slots !used;
        true
      end
      else false)
    ordered

let build config cfg live profile maximal_occs =
  let per_m =
    List.map
      (fun (m : Extract.occ) ->
        (m, Extract.subsequences config cfg live profile m))
      maximal_occs
  in
  (* Distinct candidate keys, in first-appearance order. *)
  let key_idx = Hashtbl.create 32 in
  let keys_rev = ref [] in
  let intern k =
    match Hashtbl.find_opt key_idx k with
    | Some i -> i
    | None ->
        let i = Hashtbl.length key_idx in
        Hashtbl.replace key_idx k i;
        keys_rev := k :: !keys_rev;
        i
  in
  List.iter
    (fun ((m : Extract.occ), subs) ->
      ignore (intern m.Extract.key);
      List.iter (fun (s : Extract.occ) -> ignore (intern s.Extract.key)) subs)
    per_m;
  let k = Hashtbl.length key_idx in
  let keys = Array.of_list (List.rev !keys_rev) in
  let counts = Array.make_matrix k k 0 in
  let gains = Array.make k 0 in
  let subs = Array.make k [] in
  let merged_dfg : Dfg.t option array = Array.make k None in
  List.iter
    (fun ((m : Extract.occ), msubs) ->
      let j = Hashtbl.find key_idx m.Extract.key in
      let m_count = T1000_profile.Profile.count profile m.Extract.root in
      (* Group this maximal occurrence's matches by candidate key. *)
      let by_key = Hashtbl.create 8 in
      List.iter
        (fun (s : Extract.occ) ->
          let i = Hashtbl.find key_idx s.Extract.key in
          Hashtbl.replace by_key i
            (s
            ::
            (match Hashtbl.find_opt by_key i with
            | Some l -> l
            | None -> []));
          subs.(i) <- s :: subs.(i);
          merged_dfg.(i) <-
            (match merged_dfg.(i) with
            | None -> Some s.Extract.dfg
            | Some d -> Some (Canon.merge_widths d s.Extract.dfg)))
        msubs;
      Hashtbl.iter
        (fun i matches ->
          let packed = List.length (pack matches) in
          counts.(i).(j) <- counts.(i).(j) + packed;
          let dfg =
            match merged_dfg.(i) with Some d -> d | None -> assert false
          in
          gains.(i) <- gains.(i) + (packed * m_count * Gain.per_exec dfg))
        by_key)
    per_m;
  let luts =
    Array.map
      (function
        | Some d -> T1000_hwcost.Lut.cost d
        | None -> 0)
      merged_dfg
  in
  let subs =
    Array.map
      (fun l ->
        List.sort
          (fun (a : Extract.occ) (b : Extract.occ) ->
            compare (a.Extract.root, a.Extract.members)
              (b.Extract.root, b.Extract.members))
          (List.rev l))
      subs
  in
  { keys; key_idx; counts; gains; luts; subs }

let size t = Array.length t.keys
let keys t = Array.copy t.keys
let index_of_key t k = Hashtbl.find_opt t.key_idx k
let entry t i j = t.counts.(i).(j)
let row_total t i = Array.fold_left ( + ) 0 t.counts.(i)
let total_gain t i = t.gains.(i)
let lut_cost t i = t.luts.(i)
let sub_occs t i = t.subs.(i)

let rank t =
  let idx = List.init (size t) (fun i -> i) in
  List.sort
    (fun a b ->
      match compare t.gains.(b) t.gains.(a) with
      | 0 -> (
          match compare t.luts.(a) t.luts.(b) with
          | 0 -> compare a b
          | c -> c)
      | c -> c)
    idx
  |> List.map (fun i -> (i, t.gains.(i)))

let pp ppf t =
  let k = size t in
  Format.fprintf ppf "@[<v>containment matrix (k=%d)@," k;
  for i = 0 to k - 1 do
    Format.fprintf ppf "%2d |" i;
    for j = 0 to k - 1 do
      Format.fprintf ppf " %3d" t.counts.(i).(j)
    done;
    Format.fprintf ppf "  gain=%d luts=%d@," t.gains.(i) t.luts.(i)
  done;
  Format.fprintf ppf "@]"
