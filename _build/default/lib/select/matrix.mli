(** The selective algorithm's containment matrix (paper Section 5.1,
    Figures 3-4).

    For one loop, the candidate list is every distinct valid sequence —
    maximal sequences {e and} their subsequences.  The list is organized
    as a k x k matrix whose [I,J] entry counts appearances of candidate
    I within the maximal occurrences of candidate J throughout the loop;
    the [I,I] entry counts I's own maximal appearances.  The row sum is
    I's total appearance count, and weighting each appearance by its
    block's dynamic execution count and I's per-execution cycle gain
    yields the total gain used to rank candidates.

    Appearances inside one maximal occurrence are packed disjointly
    (overlapping matches of the same candidate cannot all be rewritten),
    so counts never overstate what the rewriter can realize. *)

open T1000_asm
open T1000_profile
open T1000_dfg

type t

val build :
  Extract.config ->
  Cfg.t ->
  Liveness.t ->
  Profile.t ->
  Extract.occ list ->
  t
(** [build config cfg live profile maximal_occs_of_loop]. *)

val size : t -> int
(** k — number of distinct candidate sequences. *)

val keys : t -> string array
val index_of_key : t -> string -> int option

val entry : t -> int -> int -> int
(** Static containment count [I,J]. *)

val row_total : t -> int -> int
(** Total appearances of candidate I in the loop. *)

val total_gain : t -> int -> int
(** Dynamic cycles saved if candidate I alone were implemented and every
    one of its packed appearances rewritten. *)

val lut_cost : t -> int -> int
(** LUT cost of candidate I (at merged widths). *)

val sub_occs : t -> int -> Extract.occ list
(** Every valid (unpacked) occurrence of candidate I across the loop's
    maximal occurrences, ascending root order.  The rewriter packs
    jointly across the chosen candidates. *)

val rank : t -> (int * int) list
(** Candidates as [(index, total_gain)], best gain first (ties: smaller
    LUT cost, then smaller index). *)

val pp : Format.formatter -> t -> unit
