(** The selective algorithm for choosing extended instructions —
    the paper's main contribution (Section 5, Figure 5).

    Steps, following the flow chart:

    + Profile the program and extract maximal candidate sequences.
    + Compute each distinct candidate's potential gain; keep those
      responsible for at least [gain_threshold] (default 0.5 %) of total
      application time.  Call their number N.
    + If N fits the PFU count, select them all.
    + Otherwise consider loop bodies one at a time (innermost loop of
      each occurrence).  In a loop with more distinct candidates than
      PFUs, build the containment {!Matrix} over the loop's maximal
      sequences and their subsequences and choose the [n_pfus] best
      candidates by total gain — which may prefer a common subsequence
      over several maximal sequences, exactly the Figure 3 trade.
    + Occurrences of the chosen candidates are packed disjointly and
      handed to the rewriter.

    The per-loop cap is what prevents PFU thrashing: within any one
    loop at most [n_pfus] distinct configurations are live, so
    steady-state iterations reconfigure nothing. *)

open T1000_asm
open T1000_profile
open T1000_dfg

type params = {
  extract : Extract.config;
  gain_threshold : float;  (** fraction of total time; paper: 0.005 *)
  lut_budget : int;
}

val default_params : params

type report = {
  table : Extinstr.t;  (** the selection, ready for {!Rewrite.apply} *)
  n_maximal : int;  (** maximal occurrences considered *)
  n_hot : int;  (** distinct candidates above the gain threshold *)
  n_loops_capped : int;
      (** loops where the matrix step had to reduce the candidate set *)
}

val select :
  ?params:params ->
  n_pfus:int option ->
  Cfg.t ->
  Loops.t ->
  Liveness.t ->
  Profile.t ->
  report
(** [n_pfus = None] models unlimited PFUs (no per-loop cap). *)
