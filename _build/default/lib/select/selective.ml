open T1000_asm
open T1000_dfg

module Int_set = Set.Make (Int)

type params = {
  extract : Extract.config;
  gain_threshold : float;
  lut_budget : int;
}

let default_params =
  {
    extract = Extract.default_config;
    gain_threshold = 0.005;
    lut_budget = T1000_hwcost.Lut.default_budget;
  }

type report = {
  table : Extinstr.t;
  n_maximal : int;
  n_hot : int;
  n_loops_capped : int;
}

(* Total gain per distinct candidate key over a set of occurrences. *)
let gains_by_key profile occs =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (o : Extract.occ) ->
      let g = Gain.occ_gain profile o in
      Hashtbl.replace tbl o.Extract.key
        (g
        +
        match Hashtbl.find_opt tbl o.Extract.key with
        | Some g0 -> g0
        | None -> 0))
    occs;
  tbl

let select ?(params = default_params) ~n_pfus cfg loops live profile =
  let maximal0 = Extract.maximal params.extract cfg live profile in
  let maximal =
    List.filter
      (fun (o : Extract.occ) ->
        T1000_hwcost.Lut.fits ~budget:params.lut_budget o.Extract.dfg)
      maximal0
  in
  (* Step 1-2: gain threshold over distinct candidates. *)
  let key_gain = gains_by_key profile maximal in
  let hot_key k =
    match Hashtbl.find_opt key_gain k with
    | None -> false
    | Some g -> Gain.ratio profile g >= params.gain_threshold
  in
  let hot = List.filter (fun (o : Extract.occ) -> hot_key o.Extract.key) maximal in
  let distinct_keys occs =
    List.sort_uniq compare (List.map (fun (o : Extract.occ) -> o.Extract.key) occs)
  in
  let n_hot = List.length (distinct_keys hot) in
  let n_loops_capped = ref 0 in
  let selection =
    match n_pfus with
    | None -> hot
    | Some n when n_hot <= n -> hot
    | Some n ->
        (* Step 4: loop bodies one at a time. *)
        let groups = Hashtbl.create 8 in
        (* innermost loop index (or -1) -> occ list *)
        List.iter
          (fun (o : Extract.occ) ->
            let l =
              match Loops.innermost_at_instr loops o.Extract.root with
              | Some i -> i
              | None -> -1
            in
            Hashtbl.replace groups l
              (o
              ::
              (match Hashtbl.find_opt groups l with
              | Some os -> os
              | None -> [])))
          hot;
        let chosen = ref [] in
        Hashtbl.iter
          (fun l occs ->
            let occs = List.rev occs in
            if l < 0 || List.length (distinct_keys occs) <= n then
              chosen := occs @ !chosen
            else begin
              incr n_loops_capped;
              (* Matrix step: rank candidates (subsequences included) and
                 keep the n best, then pack their occurrences jointly. *)
              let m = Matrix.build params.extract cfg live profile occs in
              let ranked =
                List.filter
                  (fun (i, g) ->
                    g > 0 && Matrix.lut_cost m i <= params.lut_budget)
                  (Matrix.rank m)
              in
              (* Walk the ranking, packing occurrences as we go; a
                 candidate only consumes one of the n configuration
                 slots if it claims at least one occurrence not already
                 covered by a better candidate. *)
              let used = ref Int_set.empty in
              let n_chosen = ref 0 in
              List.iter
                (fun (i, _) ->
                  if !n_chosen < n then begin
                    let claimed = ref false in
                    let staged = ref [] in
                    let staged_slots = ref Int_set.empty in
                    List.iter
                      (fun (s : Extract.occ) ->
                        let slots = Int_set.of_list s.Extract.members in
                        if
                          Int_set.is_empty
                            (Int_set.inter slots
                               (Int_set.union !used !staged_slots))
                        then begin
                          staged_slots := Int_set.union slots !staged_slots;
                          staged := s :: !staged;
                          claimed := true
                        end)
                      (Matrix.sub_occs m i);
                    if !claimed then begin
                      incr n_chosen;
                      used := Int_set.union !used !staged_slots;
                      chosen := !staged @ !chosen
                    end
                  end)
                ranked
            end)
          groups;
        List.rev !chosen
  in
  {
    table = Extinstr.of_selection selection;
    n_maximal = List.length maximal0;
    n_hot;
    n_loops_capped = !n_loops_capped;
  }
