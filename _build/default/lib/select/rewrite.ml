open T1000_isa
open T1000_asm
open T1000_dfg

type result = {
  program : Program.t;
  collapsed : int;
  skipped : int;
  deleted_slots : int;
  prefetches_inserted : int;
}

let apply ?(prefetch = []) program table =
  let n = Program.length program in
  let claimed = Array.make n false in
  let delete = Array.make n false in
  let replace : Instr.t option array = Array.make n None in
  let collapsed = ref 0 and skipped = ref 0 in
  (* Gather (eid, occ) pairs, ascending root order for determinism. *)
  let sites =
    List.concat_map
      (fun (e : Extinstr.entry) ->
        List.map (fun o -> (e.Extinstr.eid, o)) e.Extinstr.occs)
      (Extinstr.entries table)
    |> List.sort (fun (_, (a : Extract.occ)) (_, (b : Extract.occ)) ->
           compare (a.Extract.root, a.Extract.members)
             (b.Extract.root, b.Extract.members))
  in
  List.iter
    (fun (eid, (o : Extract.occ)) ->
      List.iter
        (fun s ->
          if s < 0 || s >= n then
            invalid_arg "Rewrite.apply: occurrence slot out of range")
        o.Extract.members;
      if List.exists (fun s -> claimed.(s)) o.Extract.members then
        incr skipped
      else begin
        incr collapsed;
        List.iter
          (fun s ->
            claimed.(s) <- true;
            if s <> o.Extract.root then delete.(s) <- true)
          o.Extract.members;
        let port i =
          if i < Array.length o.Extract.input_regs then
            o.Extract.input_regs.(i)
          else Reg.zero
        in
        replace.(o.Extract.root) <-
          Some
            (Instr.Ext
               {
                 eid;
                 dst = o.Extract.out_reg;
                 src1 = port 0;
                 src2 = port 1;
               })
      end)
    sites;
  (* Configuration-prefetch hints: cfgld instructions inserted before
     the given (pre-rewrite) slots. *)
  let inserts : int list array = Array.make n [] in
  List.iter
    (fun (slot, eid) ->
      if slot < 0 || slot >= n then
        invalid_arg "Rewrite.apply: prefetch slot out of range";
      inserts.(slot) <- inserts.(slot) @ [ eid ])
    (List.sort_uniq compare prefetch);
  (* Old-slot -> new-slot mapping: kept slots strictly before, plus every
     insertion at or before the slot (so a branch to the slot skips the
     hints inserted in front of it). *)
  let kept_before = Array.make (n + 1) 0 in
  let inserts_through = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    kept_before.(i + 1) <- kept_before.(i) + if delete.(i) then 0 else 1;
    inserts_through.(i + 1) <- inserts_through.(i) + List.length inserts.(i)
  done;
  let remap old = kept_before.(old) + inserts_through.(old + 1) in
  let out = ref [] in
  for i = n - 1 downto 0 do
    if not delete.(i) then begin
      let instr =
        match replace.(i) with Some e -> e | None -> Program.get program i
      in
      out := Instr.map_targets remap instr :: !out
    end;
    out := List.map (fun eid -> Instr.Cfgld eid) inserts.(i) @ !out
  done;
  let deleted_slots = n - kept_before.(n) in
  {
    program =
      Program.make
        ~name:(Program.name program ^ "+ext")
        (Array.of_list !out);
    collapsed = !collapsed;
    skipped = !skipped;
    deleted_slots;
    prefetches_inserted = inserts_through.(n);
  }
