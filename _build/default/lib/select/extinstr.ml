open T1000_dfg

type entry = {
  eid : int;
  key : string;
  dfg : Dfg.t;
  latency : int;
  lut_cost : int;
  occs : Extract.occ list;
}

type t = { entries : entry array }

let of_selection occs =
  let order = ref [] in
  let by_key = Hashtbl.create 16 in
  List.iter
    (fun (o : Extract.occ) ->
      match Hashtbl.find_opt by_key o.Extract.key with
      | None ->
          Hashtbl.replace by_key o.Extract.key (o.Extract.dfg, [ o ]);
          order := o.Extract.key :: !order
      | Some (dfg, os) ->
          let dfg = Canon.merge_widths dfg o.Extract.dfg in
          Hashtbl.replace by_key o.Extract.key (dfg, o :: os))
    occs;
  let keys = List.rev !order in
  let entries =
    List.mapi
      (fun eid key ->
        let dfg, os = Hashtbl.find by_key key in
        {
          eid;
          key;
          dfg;
          latency = 1;
          lut_cost = T1000_hwcost.Lut.cost dfg;
          occs = List.rev os;
        })
      keys
  in
  { entries = Array.of_list entries }

let empty = { entries = [||] }
let count t = Array.length t.entries

let get t eid =
  if eid < 0 || eid >= Array.length t.entries then
    invalid_arg (Printf.sprintf "Extinstr.get: id %d" eid)
  else t.entries.(eid)

let entries t = Array.to_list t.entries
let eval t eid v1 v2 = Dfg.eval (get t eid).dfg v1 v2

let total_occurrences t =
  Array.fold_left (fun acc e -> acc + List.length e.occs) 0 t.entries

let pp ppf t =
  Format.fprintf ppf "@[<v>%d extended instructions@," (count t);
  Array.iter
    (fun e ->
      Format.fprintf ppf
        "ext#%d: %d nodes, latency %d, %d LUTs, %d occurrence(s)@," e.eid
        (Dfg.size e.dfg) e.latency e.lut_cost (List.length e.occs))
    t.entries;
  Format.fprintf ppf "@]"

(* ---------- table files ---------- *)

let operand_to_text = function
  | Dfg.Input p -> Printf.sprintf "i%d" p
  | Dfg.Const c -> Printf.sprintf "#%d" c
  | Dfg.Node n -> Printf.sprintf "n%d" n

let node_op_to_text = function
  | Dfg.N_alu op -> T1000_isa.Op.alu_to_string op
  | Dfg.N_shift op -> T1000_isa.Op.shift_to_string op

let to_text t =
  let buf = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "# T1000 extended-instruction table: %d entries\n" (count t);
  Array.iter
    (fun e ->
      bpf "ext %d inputs=%d latency=%d\n" e.eid (Dfg.n_inputs e.dfg)
        e.latency;
      Array.iter
        (fun nd ->
          bpf "  node %s a=%s b=%s w=%d\n" (node_op_to_text nd.Dfg.op)
            (operand_to_text nd.Dfg.a) (operand_to_text nd.Dfg.b)
            nd.Dfg.width)
        (Dfg.nodes e.dfg);
      List.iter
        (fun (o : Extract.occ) ->
          bpf "  occ block=%d root=%d members=%s out=r%d in=%s\n"
            o.Extract.block o.Extract.root
            (String.concat ","
               (List.map string_of_int o.Extract.members))
            (T1000_isa.Reg.to_int o.Extract.out_reg)
            (String.concat ","
               (List.map
                  (fun r -> "r" ^ string_of_int (T1000_isa.Reg.to_int r))
                  (Array.to_list o.Extract.input_regs))))
        e.occs)
    t.entries;
  Buffer.contents buf

exception Table_error of string

let tfail fmt = Printf.ksprintf (fun s -> raise (Table_error s)) fmt

let parse_operand tok =
  if String.length tok < 2 then tfail "bad operand %S" tok
  else
    let rest = String.sub tok 1 (String.length tok - 1) in
    match tok.[0] with
    | 'i' -> Dfg.Input (int_of_string rest)
    | '#' -> Dfg.Const (int_of_string rest)
    | 'n' -> Dfg.Node (int_of_string rest)
    | _ -> tfail "bad operand %S" tok

let parse_node_op tok =
  match tok with
  | "add" -> Dfg.N_alu T1000_isa.Op.Add
  | "addu" -> Dfg.N_alu T1000_isa.Op.Addu
  | "sub" -> Dfg.N_alu T1000_isa.Op.Sub
  | "subu" -> Dfg.N_alu T1000_isa.Op.Subu
  | "and" -> Dfg.N_alu T1000_isa.Op.And
  | "or" -> Dfg.N_alu T1000_isa.Op.Or
  | "xor" -> Dfg.N_alu T1000_isa.Op.Xor
  | "nor" -> Dfg.N_alu T1000_isa.Op.Nor
  | "slt" -> Dfg.N_alu T1000_isa.Op.Slt
  | "sltu" -> Dfg.N_alu T1000_isa.Op.Sltu
  | "sll" -> Dfg.N_shift T1000_isa.Op.Sll
  | "srl" -> Dfg.N_shift T1000_isa.Op.Srl
  | "sra" -> Dfg.N_shift T1000_isa.Op.Sra
  | _ -> tfail "bad node op %S" tok

(* key=value fields on a line *)
let fields tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
          Some
            ( String.sub tok 0 i,
              String.sub tok (i + 1) (String.length tok - i - 1) )
      | None -> None)
    tokens

let field name fs =
  match List.assoc_opt name fs with
  | Some v -> v
  | None -> tfail "missing field %S" name

let parse_reg tok =
  if String.length tok >= 2 && tok.[0] = 'r' then
    T1000_isa.Reg.of_int
      (int_of_string (String.sub tok 1 (String.length tok - 1)))
  else tfail "bad register %S" tok

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let of_text text =
  (* accumulate entries; within an entry, nodes then occurrences *)
  let entries = ref [] in
  let cur = ref None in
  (* (eid, latency, n_inputs, nodes rev, occs rev) *)
  let flush () =
    match !cur with
    | None -> ()
    | Some (eid, latency, n_inputs, nodes, occs) ->
        let dfg = Dfg.make ~n_inputs (Array.of_list (List.rev nodes)) in
        let key = Canon.key dfg in
        let occs =
          List.rev_map
            (fun (block, root, members, out_reg, input_regs) ->
              {
                Extract.block;
                members;
                root;
                internal_edges = [];
                dfg;
                input_regs;
                out_reg;
                key;
              })
            occs
        in
        entries :=
          {
            eid;
            key;
            dfg;
            latency;
            lut_cost = T1000_hwcost.Lut.cost dfg;
            occs;
          }
          :: !entries;
        cur := None
  in
  try
    String.split_on_char '\n' text
    |> List.iteri (fun lineno line ->
           try
             (* '#' introduces a comment only at the start of a line
                ('#' elsewhere marks constants) *)
             let line =
               let trimmed = String.trim line in
               if String.length trimmed > 0 && trimmed.[0] = '#' then ""
               else line
             in
             match split_ws line with
             | [] -> ()
             | "ext" :: eid :: rest ->
                 flush ();
                 let fs = fields rest in
                 cur :=
                   Some
                     ( int_of_string eid,
                       int_of_string (field "latency" fs),
                       int_of_string (field "inputs" fs),
                       [],
                       [] )
             | "node" :: op :: rest -> (
                 match !cur with
                 | None -> tfail "node outside an ext entry"
                 | Some (eid, lat, n_inputs, nodes, occs) ->
                     let fs = fields rest in
                     let node =
                       {
                         Dfg.op = parse_node_op op;
                         a = parse_operand (field "a" fs);
                         b = parse_operand (field "b" fs);
                         width = int_of_string (field "w" fs);
                       }
                     in
                     cur := Some (eid, lat, n_inputs, node :: nodes, occs))
             | "occ" :: rest -> (
                 match !cur with
                 | None -> tfail "occ outside an ext entry"
                 | Some (eid, lat, n_inputs, nodes, occs) ->
                     let fs = fields rest in
                     let members =
                       String.split_on_char ',' (field "members" fs)
                       |> List.map int_of_string
                     in
                     let input_regs =
                       match List.assoc_opt "in" fs with
                       | None | Some "" -> [||]
                       | Some s ->
                           String.split_on_char ',' s
                           |> List.map parse_reg |> Array.of_list
                     in
                     let occ =
                       ( int_of_string (field "block" fs),
                         int_of_string (field "root" fs),
                         members,
                         parse_reg (field "out" fs),
                         input_regs )
                     in
                     cur := Some (eid, lat, n_inputs, nodes, occ :: occs))
             | tok :: _ -> tfail "unexpected token %S" tok
           with
           | Table_error msg ->
               raise
                 (Table_error (Printf.sprintf "line %d: %s" (lineno + 1) msg))
           | Failure _ ->
               raise
                 (Table_error
                    (Printf.sprintf "line %d: malformed number" (lineno + 1))));
    flush ();
    let arr =
      Array.of_list (List.rev !entries)
    in
    Array.iteri
      (fun i e -> if e.eid <> i then tfail "entry ids must be dense: %d" e.eid)
      arr;
    Ok { entries = arr }
  with Table_error msg -> Error msg
