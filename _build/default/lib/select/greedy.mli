(** The greedy selection algorithm (paper Section 4).

    Selects {e every} maximal candidate sequence that satisfies the
    three criteria: members are profiled narrow-width ALU/shift
    instructions, at most two register inputs and one output, and
    maximal length.  The number of available PFUs and the
    reconfiguration cost are deliberately ignored — with limited PFUs
    this algorithm thrashes, which is precisely the behaviour Figure 2's
    third bar demonstrates and the selective algorithm fixes. *)

open T1000_asm
open T1000_profile
open T1000_dfg

type result = {
  table : Extinstr.t;
  maximal : Extract.occ list;  (** all maximal occurrences found *)
  rejected_lut : int;  (** occurrences dropped for exceeding the PFU's
                           LUT budget *)
}

val select :
  ?config:Extract.config ->
  ?lut_budget:int ->
  Cfg.t ->
  Liveness.t ->
  Profile.t ->
  result
(** Default extraction config is {!Extract.default_config}; default LUT
    budget is {!T1000_hwcost.Lut.default_budget}. *)
