(** Program rewriting: collapse selected occurrences into extended
    instructions.

    Each occurrence's root slot is replaced by an [Ext] instruction
    (destination and input registers from the occurrence, id from the
    table entry) and its other member slots are removed.  Branch and
    jump targets are remapped; a deleted branch target resolves to the
    next surviving slot, which is always correct because deleted members
    are interior to a basic block except possibly its first slots —
    control entering the block must reach the first surviving
    instruction.

    Occurrences are applied in ascending root order; any occurrence
    overlapping an already-applied one is skipped (the selection
    normally guarantees disjointness; the check makes rewriting total). *)

open T1000_asm

type result = {
  program : Program.t;  (** the rewritten program *)
  collapsed : int;  (** occurrences actually rewritten *)
  skipped : int;  (** occurrences skipped because of overlap *)
  deleted_slots : int;  (** instructions removed *)
  prefetches_inserted : int;  (** [cfgld] hints added *)
}

val apply : ?prefetch:(int * int) list -> Program.t -> Extinstr.t -> result
(** [prefetch] lists [(slot, eid)] pairs: a [cfgld eid] hint is inserted
    immediately {e before} the given (pre-rewrite) slot.  Because branch
    targets are remapped to the slot itself, a hint placed before a loop
    header executes only on fall-through entry — i.e. in the loop
    preheader — not on every back edge.
    @raise Invalid_argument if an occurrence or prefetch references
    slots outside the program. *)
