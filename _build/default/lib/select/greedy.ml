open T1000_dfg

type result = {
  table : Extinstr.t;
  maximal : Extract.occ list;
  rejected_lut : int;
}

let select ?(config = Extract.default_config)
    ?(lut_budget = T1000_hwcost.Lut.default_budget) cfg live profile =
  let maximal = Extract.maximal config cfg live profile in
  let fits, rejected =
    List.partition
      (fun (o : Extract.occ) ->
        T1000_hwcost.Lut.fits ~budget:lut_budget o.Extract.dfg)
      maximal
  in
  {
    table = Extinstr.of_selection fits;
    maximal;
    rejected_lut = List.length rejected;
  }
