(** Extended-instruction tables.

    A table assigns an id (the [Conf] field of the encoding) to every
    distinct PFU configuration chosen by a selection algorithm, merges
    the profiled widths of occurrences that share a configuration, and
    carries the occurrence list the rewriter will collapse.  It also
    provides the evaluation callback the functional interpreter needs to
    execute the rewritten program. *)

open T1000_isa
open T1000_dfg

type entry = {
  eid : int;  (** table index = configuration id *)
  key : string;  (** canonical configuration key *)
  dfg : Dfg.t;  (** normalized; node widths merged across occurrences *)
  latency : int;  (** PFU execution latency (1, paper Section 3.1) *)
  lut_cost : int;  (** LUT estimate at the merged widths *)
  occs : Extract.occ list;  (** the sites rewritten to this entry *)
}

type t

val of_selection : Extract.occ list -> t
(** Group occurrences by canonical key.  Occurrence order is preserved
    within an entry; entries are numbered in order of first
    occurrence. *)

val empty : t
val count : t -> int
val get : t -> int -> entry
(** @raise Invalid_argument on a bad id. *)

val entries : t -> entry list
val eval : t -> int -> Word.t -> Word.t -> Word.t
(** [eval t eid v1 v2]: evaluation callback for
    {!T1000_machine.Interp.create}. *)

val total_occurrences : t -> int
val pp : Format.formatter -> t -> unit

(** {1 Table files}

    The paper's simulator "takes as input ... object code files.  A
    second input file specifies the instruction sequences that have
    been selected as extended instructions" (Section 3.1).  These
    functions implement that second file: a selection made once can be
    saved and replayed against the program later (see the CLI's
    [mine -o] / [replay]). *)

val to_text : t -> string
(** Line-oriented rendering of the table: one [ext] header per entry,
    its dataflow nodes, and every occurrence with its member slots and
    register bindings. *)

val of_text : string -> (t, string) result
(** Inverse of {!to_text}.  Occurrences are reconstructed with enough
    information for {!Rewrite.apply} (members, root, registers);
    containment edges, which only matter during selection, are not
    preserved. *)
