lib/ooo/pfu_file.ml: Array Format Hashtbl List Mconfig
