lib/ooo/sim.mli: Mconfig Memory Program Regfile Stats T1000_asm T1000_isa T1000_machine Word
