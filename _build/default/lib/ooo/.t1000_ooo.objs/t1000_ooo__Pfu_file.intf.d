lib/ooo/pfu_file.mli: Format Mconfig
