lib/ooo/ruu.mli: Instr T1000_isa
