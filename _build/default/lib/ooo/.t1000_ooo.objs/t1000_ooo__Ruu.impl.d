lib/ooo/ruu.ml: Array Instr Printf T1000_isa
