lib/ooo/sim.ml: Array Cache Encoding Hashtbl Hierarchy Instr Interp List Mconfig Memory Op Pfu_file Queue Regfile Ruu Stats T1000_cache T1000_isa T1000_machine Tlb Trace
