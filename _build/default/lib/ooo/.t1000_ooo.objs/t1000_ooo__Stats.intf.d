lib/ooo/stats.mli: Format
