lib/ooo/mconfig.mli: Format T1000_cache
