lib/ooo/mconfig.ml: Format T1000_cache
