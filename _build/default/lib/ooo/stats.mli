(** Simulation statistics. *)

type t = {
  cycles : int;
  committed : int;  (** instructions committed (extended instructions
                        count as one, as in the paper) *)
  ext_committed : int;
  ipc : float;
  pfu_hits : int;
  pfu_misses : int;  (** = reconfigurations *)
  pfu_stalls : int;  (** dispatch stalls waiting for an unpinned PFU *)
  ruu_full_stalls : int;  (** dispatch attempts blocked by a full RUU *)
  branch_mispredicts : int;  (** always 0 under perfect prediction *)
  fetch_stall_cycles : int;
      (** cycles the fetch stage spent blocked on instruction-cache
          misses or branch-redirect resolution *)
  avg_ruu_occupancy : float;  (** mean in-flight instructions per cycle *)
  l1i_miss_rate : float;
  l1d_miss_rate : float;
  l2_miss_rate : float;
  itlb_miss_rate : float;
  dtlb_miss_rate : float;
}

val speedup : baseline:t -> t -> float
(** [baseline.cycles / t.cycles] — execution-time speedup as plotted in
    the paper's figures. *)

val pp : Format.formatter -> t -> unit
