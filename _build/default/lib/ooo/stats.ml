type t = {
  cycles : int;
  committed : int;
  ext_committed : int;
  ipc : float;
  pfu_hits : int;
  pfu_misses : int;
  pfu_stalls : int;
  ruu_full_stalls : int;
  branch_mispredicts : int;
  fetch_stall_cycles : int;
  avg_ruu_occupancy : float;
  l1i_miss_rate : float;
  l1d_miss_rate : float;
  l2_miss_rate : float;
  itlb_miss_rate : float;
  dtlb_miss_rate : float;
}

let speedup ~baseline t =
  if t.cycles = 0 then 0.0
  else float_of_int baseline.cycles /. float_of_int t.cycles

let pp ppf t =
  Format.fprintf ppf
    "@[<v>cycles            %d@,\
     committed         %d (%d extended)@,\
     ipc               %.3f@,\
     pfu hits/misses   %d / %d (stalls %d)@,\
     ruu-full stalls   %d@,\
     mispredicts       %d@,\
     fetch stalls      %d cycles@,\
     avg window        %.1f in flight@,\
     miss rates        l1i %.3f%% l1d %.3f%% l2 %.3f%% itlb %.3f%% dtlb %.3f%%@]"
    t.cycles t.committed t.ext_committed t.ipc t.pfu_hits t.pfu_misses
    t.pfu_stalls t.ruu_full_stalls t.branch_mispredicts
    t.fetch_stall_cycles t.avg_ruu_occupancy
    (100. *. t.l1i_miss_rate)
    (100. *. t.l1d_miss_rate) (100. *. t.l2_miss_rate)
    (100. *. t.itlb_miss_rate) (100. *. t.dtlb_miss_rate)
