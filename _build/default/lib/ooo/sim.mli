(** Cycle-level, trace-driven simulation of the T1000 core.

    Pipeline model per cycle (walked back-to-front so that results
    produced in cycle [c] can feed instructions issuing in cycle [c]
    through the bypass network, and newly dispatched instructions issue
    no earlier than the following cycle):

    + {b commit} — up to [commit_width] completed entries leave the RUU
      head in order;
    + {b issue} — up to [issue_width] ready entries start execution,
      oldest first, subject to functional-unit availability; loads and
      stores probe the data cache here; extended instructions
      additionally require their configuration to be loaded
      ([min_issue]) and their PFU free this cycle;
    + {b dispatch} — up to [decode_width] instructions move from the
      fetch queue into the RUU; extended instructions perform the
      decode-stage configuration check against the {!Pfu_file} (a miss
      starts a reconfiguration; a fully pinned file stalls dispatch);
      register and store-to-load dependences are recorded;
    + {b fetch} — up to [fetch_width] instructions enter the fetch
      queue, stopping at taken branches and stalling on instruction-
      cache misses.  Branch prediction is perfect (paper Section 3.1),
      so fetch follows the committed path exactly.

    Memory disambiguation is perfect: effective addresses come from the
    functional interpreter, and a load waits only for older in-flight
    stores to the same word. *)

open T1000_isa
open T1000_asm
open T1000_machine

val run :
  ?mconfig:Mconfig.t ->
  ?ext_latency:(int -> int) ->
  ?ext_eval:(int -> Word.t -> Word.t -> Word.t) ->
  init:(Memory.t -> Regfile.t -> unit) ->
  Program.t ->
  Stats.t
(** Simulate the program to completion.
    @raise T1000_machine.Interp.Fault on architectural faults.
    @raise Failure if [mconfig.max_cycles] is exceeded. *)
