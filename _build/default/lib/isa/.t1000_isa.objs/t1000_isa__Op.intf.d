lib/isa/op.mli: Format
