lib/isa/reg.ml: Format Stdlib
