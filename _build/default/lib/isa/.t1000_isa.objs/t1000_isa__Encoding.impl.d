lib/isa/encoding.ml: Format Instr Op Reg Word
