lib/isa/instr.ml: Format Op Reg
