type ext = {
  eid : int;
  dst : Reg.t;
  src1 : Reg.t;
  src2 : Reg.t;
}

type t =
  | Alu_rrr of Op.alu * Reg.t * Reg.t * Reg.t
  | Alu_rri of Op.alu * Reg.t * Reg.t * int
  | Shift_imm of Op.shift * Reg.t * Reg.t * int
  | Shift_reg of Op.shift * Reg.t * Reg.t * Reg.t
  | Lui of Reg.t * int
  | Muldiv of Op.muldiv * Reg.t * Reg.t
  | Mfhi of Reg.t
  | Mflo of Reg.t
  | Load of Op.load_width * Reg.t * Reg.t * int
  | Store of Op.store_width * Reg.t * Reg.t * int
  | Branch of Op.branch_cond * Reg.t * Reg.t * int
  | Jump of int
  | Jal of int
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t
  | Ext of ext
  | Cfgld of int
  | Nop
  | Halt

let hi_reg = 32
let lo_reg = 33
let dep_reg_count = 34

let gpr r = Reg.to_int r

let def1 r = if Reg.equal r Reg.zero then [] else [ gpr r ]

let defs = function
  | Alu_rrr (_, rd, _, _) -> def1 rd
  | Alu_rri (_, rt, _, _) -> def1 rt
  | Shift_imm (_, rd, _, _) -> def1 rd
  | Shift_reg (_, rd, _, _) -> def1 rd
  | Lui (rt, _) -> def1 rt
  | Muldiv _ -> [ hi_reg; lo_reg ]
  | Mfhi rd -> def1 rd
  | Mflo rd -> def1 rd
  | Load (_, rt, _, _) -> def1 rt
  | Store _ -> []
  | Branch _ -> []
  | Jump _ -> []
  | Jal _ -> [ gpr Reg.ra ]
  | Jr _ -> []
  | Jalr (rd, _) -> def1 rd
  | Ext { dst; _ } -> def1 dst
  | Cfgld _ | Nop | Halt -> []

let uses = function
  | Alu_rrr (_, _, rs, rt) -> [ gpr rs; gpr rt ]
  | Alu_rri (_, _, rs, _) -> [ gpr rs ]
  | Shift_imm (_, _, rt, _) -> [ gpr rt ]
  | Shift_reg (_, _, rt, rs) -> [ gpr rt; gpr rs ]
  | Lui _ -> []
  | Muldiv (_, rs, rt) -> [ gpr rs; gpr rt ]
  | Mfhi _ -> [ hi_reg ]
  | Mflo _ -> [ lo_reg ]
  | Load (_, _, rs, _) -> [ gpr rs ]
  | Store (_, rt, rs, _) -> [ gpr rt; gpr rs ]
  | Branch (cond, rs, rt, _) -> (
      match cond with
      | Op.Beq | Op.Bne -> [ gpr rs; gpr rt ]
      | Op.Blez | Op.Bgtz | Op.Bltz | Op.Bgez -> [ gpr rs ])
  | Jump _ -> []
  | Jal _ -> []
  | Jr rs -> [ gpr rs ]
  | Jalr (_, rs) -> [ gpr rs ]
  | Ext { src1; src2; _ } ->
      if Reg.equal src2 Reg.zero then [ gpr src1 ] else [ gpr src1; gpr src2 ]
  | Cfgld _ | Nop | Halt -> []

let fu_class = function
  | Alu_rrr _ | Alu_rri _ | Shift_imm _ | Shift_reg _ | Lui _ | Mfhi _
  | Mflo _ ->
      Op.Fu_int_alu
  | Muldiv (op, _, _) -> (
      match op with
      | Op.Mult | Op.Multu -> Op.Fu_int_mult
      | Op.Div | Op.Divu -> Op.Fu_int_div)
  | Load _ -> Op.Fu_mem_read
  | Store _ -> Op.Fu_mem_write
  | Branch _ | Jump _ | Jal _ | Jr _ | Jalr _ -> Op.Fu_branch
  | Ext _ -> Op.Fu_pfu
  | Cfgld _ | Nop | Halt -> Op.Fu_none

let latency = function
  | Alu_rrr (op, _, _, _) | Alu_rri (op, _, _, _) -> Op.alu_latency op
  | Shift_imm (op, _, _, _) | Shift_reg (op, _, _, _) -> Op.shift_latency op
  | Lui _ | Mfhi _ | Mflo _ -> 1
  | Muldiv (op, _, _) -> Op.muldiv_latency op
  | Load _ -> 1
  | Store _ -> 1
  | Branch _ | Jump _ | Jal _ | Jr _ | Jalr _ -> 1
  | Ext _ -> 1
  | Cfgld _ | Nop | Halt -> 1

let is_control = function
  | Branch _ | Jump _ | Jal _ | Jr _ | Jalr _ -> true
  | Alu_rrr _ | Alu_rri _ | Shift_imm _ | Shift_reg _ | Lui _ | Muldiv _
  | Mfhi _ | Mflo _ | Load _ | Store _ | Ext _ | Cfgld _ | Nop | Halt ->
      false

let map_targets f = function
  | Branch (c, rs, rt, tgt) -> Branch (c, rs, rt, f tgt)
  | Jump tgt -> Jump (f tgt)
  | Jal tgt -> Jal (f tgt)
  | ( Alu_rrr _ | Alu_rri _ | Shift_imm _ | Shift_reg _ | Lui _ | Muldiv _
    | Mfhi _ | Mflo _ | Load _ | Store _ | Jr _ | Jalr _ | Ext _ | Cfgld _
    | Nop | Halt ) as i ->
      i

let equal (a : t) b = a = b

let pp ppf i =
  let r = Reg.pp in
  match i with
  | Alu_rrr (op, rd, rs, rt) ->
      Format.fprintf ppf "%a %a, %a, %a" Op.pp_alu op r rd r rs r rt
  | Alu_rri (op, rt, rs, imm) ->
      Format.fprintf ppf "%ai %a, %a, %d" Op.pp_alu op r rt r rs imm
  | Shift_imm (op, rd, rt, sh) ->
      Format.fprintf ppf "%a %a, %a, %d" Op.pp_shift op r rd r rt sh
  | Shift_reg (op, rd, rt, rs) ->
      Format.fprintf ppf "%av %a, %a, %a" Op.pp_shift op r rd r rt r rs
  | Lui (rt, imm) -> Format.fprintf ppf "lui %a, %d" r rt imm
  | Muldiv (op, rs, rt) ->
      Format.fprintf ppf "%a %a, %a" Op.pp_muldiv op r rs r rt
  | Mfhi rd -> Format.fprintf ppf "mfhi %a" r rd
  | Mflo rd -> Format.fprintf ppf "mflo %a" r rd
  | Load (w, rt, rs, off) ->
      Format.fprintf ppf "%a %a, %d(%a)" Op.pp_load_width w r rt off r rs
  | Store (w, rt, rs, off) ->
      Format.fprintf ppf "%a %a, %d(%a)" Op.pp_store_width w r rt off r rs
  | Branch (c, rs, rt, tgt) -> (
      match c with
      | Op.Beq | Op.Bne ->
          Format.fprintf ppf "%a %a, %a, @%d" Op.pp_branch_cond c r rs r rt
            tgt
      | Op.Blez | Op.Bgtz | Op.Bltz | Op.Bgez ->
          Format.fprintf ppf "%a %a, @%d" Op.pp_branch_cond c r rs tgt)
  | Jump tgt -> Format.fprintf ppf "j @%d" tgt
  | Jal tgt -> Format.fprintf ppf "jal @%d" tgt
  | Jr rs -> Format.fprintf ppf "jr %a" r rs
  | Jalr (rd, rs) -> Format.fprintf ppf "jalr %a, %a" r rd r rs
  | Ext { eid; dst; src1; src2 } ->
      Format.fprintf ppf "ext#%d %a, %a, %a" eid r dst r src1 r src2
  | Cfgld eid -> Format.fprintf ppf "cfgld#%d" eid
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"

let to_string i = Format.asprintf "%a" pp i
