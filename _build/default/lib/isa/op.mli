(** Operation kinds of the T1000 base ISA.

    The base ISA is a MIPS/PISA-like RISC instruction set, matching the
    SimpleScalar PISA substrate used by the paper.  Operation kinds are
    shared between the instruction representation ({!Instr}), the dataflow
    graphs extracted for extended instructions ({!T1000_dfg.Dfg}), and the
    hardware cost model. *)

(** Three-register / register-immediate ALU operations. *)
type alu =
  | Add  (** signed add (traps ignored; same result as [Addu]) *)
  | Addu
  | Sub
  | Subu
  | And
  | Or
  | Xor
  | Nor
  | Slt  (** set-less-than, signed *)
  | Sltu (** set-less-than, unsigned *)

(** Shift operations. *)
type shift =
  | Sll
  | Srl
  | Sra

(** Multiply/divide operations targeting HI/LO. *)
type muldiv =
  | Mult
  | Multu
  | Div
  | Divu

(** Load widths. *)
type load_width =
  | LB
  | LBU
  | LH
  | LHU
  | LW

(** Store widths. *)
type store_width =
  | SB
  | SH
  | SW

(** Branch comparison conditions.  Two-register conditions ([Beq], [Bne])
    compare rs with rt; the single-register conditions compare rs with
    zero and ignore rt. *)
type branch_cond =
  | Beq
  | Bne
  | Blez
  | Bgtz
  | Bltz
  | Bgez

(** Functional-unit classes used by the timing model. *)
type fu_class =
  | Fu_int_alu    (** single-cycle integer ALU / shifter *)
  | Fu_int_mult   (** multiplier *)
  | Fu_int_div    (** divider *)
  | Fu_mem_read   (** load port *)
  | Fu_mem_write  (** store port *)
  | Fu_branch     (** branch/jump resolution (uses an int ALU slot) *)
  | Fu_pfu        (** programmable functional unit *)
  | Fu_none       (** consumes no functional unit (nop) *)

val alu_latency : alu -> int
(** Execution latency in cycles of an ALU operation on the base machine. *)

val shift_latency : shift -> int
val muldiv_latency : muldiv -> int

val pp_alu : Format.formatter -> alu -> unit
val pp_shift : Format.formatter -> shift -> unit
val pp_muldiv : Format.formatter -> muldiv -> unit
val pp_load_width : Format.formatter -> load_width -> unit
val pp_store_width : Format.formatter -> store_width -> unit
val pp_branch_cond : Format.formatter -> branch_cond -> unit

val alu_commutative : alu -> bool
(** Whether the operation is commutative in its two operands; used when
    canonicalizing dataflow graphs so that mirrored sequences share a PFU
    configuration. *)

val equal_alu : alu -> alu -> bool
val equal_shift : shift -> shift -> bool
val equal_muldiv : muldiv -> muldiv -> bool
val equal_load_width : load_width -> load_width -> bool
val equal_store_width : store_width -> store_width -> bool
val equal_branch_cond : branch_cond -> branch_cond -> bool

val alu_to_string : alu -> string
val shift_to_string : shift -> string
