(** Instructions of the T1000 ISA.

    Instructions are held in a resolved form: branch and jump targets are
    indices into the enclosing program's instruction array (one slot per
    instruction; the encoding maps a slot to an 8-byte PISA-style text
    address).  The {!T1000_asm.Builder} DSL produces this form from
    label-based source.

    Extended instructions ([Ext]) are register-register operations with a
    [Conf] field ({!field-eid}) naming a PFU configuration, exactly as in
    Section 2.2 of the paper.  Their dataflow semantics live in an external
    table (see {!T1000_select.Extinstr}); the ISA layer only knows their
    register ports. *)

type ext = {
  eid : int;  (** index into the program's extended-instruction table; the
                  decode-stage [Conf] tag is derived from the configuration
                  this table entry names *)
  dst : Reg.t;
  src1 : Reg.t;
  src2 : Reg.t;  (** second input port; [Reg.zero] when the extended
                     instruction uses a single register input *)
}

type t =
  | Alu_rrr of Op.alu * Reg.t * Reg.t * Reg.t
      (** [Alu_rrr (op, rd, rs, rt)]: [rd <- rs op rt] *)
  | Alu_rri of Op.alu * Reg.t * Reg.t * int
      (** [Alu_rri (op, rt, rs, imm)]: [rt <- rs op imm] with a 16-bit
          immediate (sign-extended for arithmetic/comparison, zero-extended
          for logical operations, as on MIPS) *)
  | Shift_imm of Op.shift * Reg.t * Reg.t * int
      (** [Shift_imm (op, rd, rt, shamt)]: [rd <- rt op shamt],
          [0 <= shamt < 32] *)
  | Shift_reg of Op.shift * Reg.t * Reg.t * Reg.t
      (** [Shift_reg (op, rd, rt, rs)]: [rd <- rt op (rs land 31)] *)
  | Lui of Reg.t * int  (** [rt <- imm16 lsl 16] *)
  | Muldiv of Op.muldiv * Reg.t * Reg.t
      (** [(rs, rt)]: writes HI and LO *)
  | Mfhi of Reg.t
  | Mflo of Reg.t
  | Load of Op.load_width * Reg.t * Reg.t * int
      (** [Load (w, rt, rs, off)]: [rt <- mem[rs + off]] *)
  | Store of Op.store_width * Reg.t * Reg.t * int
      (** [Store (w, rt, rs, off)]: [mem[rs + off] <- rt] *)
  | Branch of Op.branch_cond * Reg.t * Reg.t * int
      (** [(cond, rs, rt, target)]; [target] is an instruction index *)
  | Jump of int  (** unconditional jump to instruction index *)
  | Jal of int   (** jump-and-link; writes the return slot index to [ra] *)
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t  (** [(rd, rs)] *)
  | Ext of ext
  | Cfgld of int
      (** configuration-prefetch hint: ask the PFU file to start loading
          the configuration of extended instruction [eid] without
          blocking.  Architecturally a no-op; inserted by the rewriter
          in loop preheaders when configuration prefetching is enabled *)
  | Nop
  | Halt  (** terminates simulation (stands for the exit syscall) *)

(* Dependence views.  Register names are encoded as ints: 0-31 are the
   GPRs, [hi_reg] (32) and [lo_reg] (33) the multiply/divide registers.
   Writes to r0 are discarded and never appear in [defs]. *)

val hi_reg : int
val lo_reg : int
val dep_reg_count : int
(** Total register namespace size for dependence tracking (34). *)

val defs : t -> int list
(** Registers written, in the encoding above. *)

val uses : t -> int list
(** Registers read (r0 included when syntactically present, since reading
    r0 is harmless but keeps the views total). *)

val fu_class : t -> Op.fu_class
val latency : t -> int
(** Execution latency on the base machine.  Loads return the cache-hit
    assumption (1); the timing simulator adds memory-hierarchy delay.
    [Ext] returns 1 (paper Section 3.1). *)

val is_control : t -> bool
(** Branches and jumps. *)

val map_targets : (int -> int) -> t -> t
(** Rewrite branch/jump target indices; used by the program rewriter when
    instructions are deleted or inserted. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
