(** 32-bit machine words represented as native OCaml [int]s.

    Every value handled by the simulator is kept sign-extended to 32 bits:
    the representation invariant is [-2{^31} <= v < 2{^31}].  Using native
    ints instead of [int32] avoids boxing on the simulator's hot paths. *)

type t = int
(** A 32-bit word, sign-extended into a native int. *)

val sext32 : int -> t
(** Truncate to 32 bits and sign-extend.  Canonicalizes any int into the
    representation invariant. *)

val to_u32 : t -> int
(** The unsigned 32-bit value, in [0, 2{^32}). *)

val add : t -> t -> t
val sub : t -> t -> t
val mul_lo : t -> t -> t
(** Low 32 bits of the 64-bit product. *)

val mul_hi_signed : t -> t -> t
(** High 32 bits of the signed 64-bit product. *)

val mul_hi_unsigned : t -> t -> t
(** High 32 bits of the unsigned 64-bit product. *)

val div_signed : t -> t -> t * t
(** [(quotient, remainder)], truncating division.  Division by zero yields
    [(0, numerator)] (the hardware result is undefined; we pick a total
    deterministic one). *)

val div_unsigned : t -> t -> t * t

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognor : t -> t -> t

val sll : t -> int -> t
(** Logical left shift; only the low 5 bits of the shift amount are used,
    as on MIPS. *)

val srl : t -> int -> t
(** Logical right shift (5-bit shift amount). *)

val sra : t -> int -> t
(** Arithmetic right shift (5-bit shift amount). *)

val slt : t -> t -> t
(** Signed less-than, returning 0 or 1. *)

val sltu : t -> t -> t
(** Unsigned less-than, returning 0 or 1. *)

val sext8 : int -> t
val sext16 : int -> t
val zext8 : int -> t
val zext16 : int -> t

val width_signed : t -> int
(** Number of significant bits needed to represent the value in two's
    complement, counting the sign bit: [width_signed 0 = 1],
    [width_signed (-1) = 1], [width_signed 255 = 9]. *)

val width_unsigned : t -> int
(** Number of significant bits of the unsigned 32-bit interpretation:
    [width_unsigned 0 = 1], [width_unsigned 255 = 8]. *)

val pp : Format.formatter -> t -> unit
(** Hex rendering of the unsigned 32-bit value, e.g. [0x0000ff00]. *)
