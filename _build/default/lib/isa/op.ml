type alu =
  | Add
  | Addu
  | Sub
  | Subu
  | And
  | Or
  | Xor
  | Nor
  | Slt
  | Sltu

type shift =
  | Sll
  | Srl
  | Sra

type muldiv =
  | Mult
  | Multu
  | Div
  | Divu

type load_width =
  | LB
  | LBU
  | LH
  | LHU
  | LW

type store_width =
  | SB
  | SH
  | SW

type branch_cond =
  | Beq
  | Bne
  | Blez
  | Bgtz
  | Bltz
  | Bgez

type fu_class =
  | Fu_int_alu
  | Fu_int_mult
  | Fu_int_div
  | Fu_mem_read
  | Fu_mem_write
  | Fu_branch
  | Fu_pfu
  | Fu_none

let alu_latency = function
  | Add | Addu | Sub | Subu | And | Or | Xor | Nor | Slt | Sltu -> 1

let shift_latency = function Sll | Srl | Sra -> 1

let muldiv_latency = function
  | Mult | Multu -> 3
  | Div | Divu -> 20

let alu_to_string = function
  | Add -> "add"
  | Addu -> "addu"
  | Sub -> "sub"
  | Subu -> "subu"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Nor -> "nor"
  | Slt -> "slt"
  | Sltu -> "sltu"

let shift_to_string = function
  | Sll -> "sll"
  | Srl -> "srl"
  | Sra -> "sra"

let muldiv_to_string = function
  | Mult -> "mult"
  | Multu -> "multu"
  | Div -> "div"
  | Divu -> "divu"

let load_width_to_string = function
  | LB -> "lb"
  | LBU -> "lbu"
  | LH -> "lh"
  | LHU -> "lhu"
  | LW -> "lw"

let store_width_to_string = function
  | SB -> "sb"
  | SH -> "sh"
  | SW -> "sw"

let branch_cond_to_string = function
  | Beq -> "beq"
  | Bne -> "bne"
  | Blez -> "blez"
  | Bgtz -> "bgtz"
  | Bltz -> "bltz"
  | Bgez -> "bgez"

let pp_alu ppf op = Format.pp_print_string ppf (alu_to_string op)
let pp_shift ppf op = Format.pp_print_string ppf (shift_to_string op)
let pp_muldiv ppf op = Format.pp_print_string ppf (muldiv_to_string op)

let pp_load_width ppf w = Format.pp_print_string ppf (load_width_to_string w)

let pp_store_width ppf w =
  Format.pp_print_string ppf (store_width_to_string w)

let pp_branch_cond ppf c =
  Format.pp_print_string ppf (branch_cond_to_string c)

let alu_commutative = function
  | Add | Addu | And | Or | Xor | Nor -> true
  | Sub | Subu | Slt | Sltu -> false

let equal_alu (a : alu) b = a = b
let equal_shift (a : shift) b = a = b
let equal_muldiv (a : muldiv) b = a = b
let equal_load_width (a : load_width) b = a = b
let equal_store_width (a : store_width) b = a = b
let equal_branch_cond (a : branch_cond) b = a = b
