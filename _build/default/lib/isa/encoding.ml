exception Unencodable of string

let fail fmt = Format.kasprintf (fun s -> raise (Unencodable s)) fmt

let text_base = 0x0040_0000
let bytes_per_slot = 8
let address_of_index i = text_base + (i * bytes_per_slot)

let index_of_address a =
  if a < text_base || (a - text_base) mod bytes_per_slot <> 0 then
    fail "not a text address: 0x%x" a
  else (a - text_base) / bytes_per_slot

(* Major opcodes. *)
let op_special = 0x00
let op_j = 0x02
let op_jal = 0x03
let op_beq = 0x04
let op_bne = 0x05
let op_blez = 0x06
let op_bgtz = 0x07
let op_addi = 0x08
let op_addiu = 0x09
let op_slti = 0x0A
let op_sltiu = 0x0B
let op_andi = 0x0C
let op_ori = 0x0D
let op_xori = 0x0E
let op_lui = 0x0F
let op_regimm = 0x01 (* bltz / bgez via rt field *)
let op_lb = 0x20
let op_lh = 0x21
let op_lw = 0x23
let op_lbu = 0x24
let op_lhu = 0x25
let op_sb = 0x28
let op_sh = 0x29
let op_sw = 0x2B
let op_ext = 0x3E
let op_cfgld = 0x3C
let op_halt = 0x3F

(* SPECIAL functct codes. *)
let f_sll = 0x00
let f_srl = 0x02
let f_sra = 0x03
let f_sllv = 0x04
let f_srlv = 0x06
let f_srav = 0x07
let f_jr = 0x08
let f_jalr = 0x09
let f_mfhi = 0x10
let f_mflo = 0x12
let f_mult = 0x18
let f_multu = 0x19
let f_div = 0x1A
let f_divu = 0x1B
let f_add = 0x20
let f_addu = 0x21
let f_sub = 0x22
let f_subu = 0x23
let f_and = 0x24
let f_or = 0x25
let f_xor = 0x26
let f_nor = 0x27
let f_slt = 0x2A
let f_sltu = 0x2B

let alu_funct : Op.alu -> int = function
  | Op.Add -> f_add
  | Op.Addu -> f_addu
  | Op.Sub -> f_sub
  | Op.Subu -> f_subu
  | Op.And -> f_and
  | Op.Or -> f_or
  | Op.Xor -> f_xor
  | Op.Nor -> f_nor
  | Op.Slt -> f_slt
  | Op.Sltu -> f_sltu

let alu_of_funct f =
  if f = f_add then Some Op.Add
  else if f = f_addu then Some Op.Addu
  else if f = f_sub then Some Op.Sub
  else if f = f_subu then Some Op.Subu
  else if f = f_and then Some Op.And
  else if f = f_or then Some Op.Or
  else if f = f_xor then Some Op.Xor
  else if f = f_nor then Some Op.Nor
  else if f = f_slt then Some Op.Slt
  else if f = f_sltu then Some Op.Sltu
  else None

let alu_imm_opcode : Op.alu -> int = function
  | Op.Add -> op_addi
  | Op.Addu -> op_addiu
  | Op.Slt -> op_slti
  | Op.Sltu -> op_sltiu
  | Op.And -> op_andi
  | Op.Or -> op_ori
  | Op.Xor -> op_xori
  | (Op.Sub | Op.Subu | Op.Nor) as op ->
      fail "no immediate form for %s" (Op.alu_to_string op)

let r = Reg.to_int
let reg = Reg.of_int

let check_shamt sh =
  if sh < 0 || sh > 31 then fail "shift amount out of range: %d" sh

let imm16_signed v =
  if v < -32768 || v > 32767 then fail "signed imm16 out of range: %d" v
  else v land 0xFFFF

let imm16_unsigned v =
  if v < 0 || v > 0xFFFF then fail "unsigned imm16 out of range: %d" v
  else v

let logical_imm : Op.alu -> bool = function
  | Op.And | Op.Or | Op.Xor -> true
  | Op.Add | Op.Addu | Op.Sub | Op.Subu | Op.Nor | Op.Slt | Op.Sltu -> false

let rtype ~rs ~rt ~rd ~shamt ~funct =
  (op_special lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor (rd lsl 11)
  lor (shamt lsl 6) lor funct

let itype ~op ~rs ~rt ~imm =
  (op lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor (imm land 0xFFFF)

let branch_disp ~index tgt =
  let d = tgt - (index + 1) in
  if d < -32768 || d > 32767 then fail "branch displacement out of range"
  else d land 0xFFFF

let jump_target tgt =
  if tgt < 0 || tgt >= 1 lsl 26 then fail "jump target out of range"
  else tgt

let encode ~index (i : Instr.t) =
  match i with
  | Instr.Alu_rrr (op, rd, rs, rt) ->
      rtype ~rs:(r rs) ~rt:(r rt) ~rd:(r rd) ~shamt:0 ~funct:(alu_funct op)
  | Instr.Alu_rri (op, rt, rs, imm) ->
      let imm =
        if logical_imm op then imm16_unsigned imm else imm16_signed imm
      in
      itype ~op:(alu_imm_opcode op) ~rs:(r rs) ~rt:(r rt) ~imm
  | Instr.Shift_imm (op, rd, rt, sh) ->
      check_shamt sh;
      let funct =
        match op with Op.Sll -> f_sll | Op.Srl -> f_srl | Op.Sra -> f_sra
      in
      rtype ~rs:0 ~rt:(r rt) ~rd:(r rd) ~shamt:sh ~funct
  | Instr.Shift_reg (op, rd, rt, rs) ->
      let funct =
        match op with
        | Op.Sll -> f_sllv
        | Op.Srl -> f_srlv
        | Op.Sra -> f_srav
      in
      rtype ~rs:(r rs) ~rt:(r rt) ~rd:(r rd) ~shamt:0 ~funct
  | Instr.Lui (rt, imm) ->
      itype ~op:op_lui ~rs:0 ~rt:(r rt) ~imm:(imm16_unsigned imm)
  | Instr.Muldiv (op, rs, rt) ->
      let funct =
        match op with
        | Op.Mult -> f_mult
        | Op.Multu -> f_multu
        | Op.Div -> f_div
        | Op.Divu -> f_divu
      in
      rtype ~rs:(r rs) ~rt:(r rt) ~rd:0 ~shamt:0 ~funct
  | Instr.Mfhi rd -> rtype ~rs:0 ~rt:0 ~rd:(r rd) ~shamt:0 ~funct:f_mfhi
  | Instr.Mflo rd -> rtype ~rs:0 ~rt:0 ~rd:(r rd) ~shamt:0 ~funct:f_mflo
  | Instr.Load (w, rt, rs, off) ->
      let op =
        match w with
        | Op.LB -> op_lb
        | Op.LBU -> op_lbu
        | Op.LH -> op_lh
        | Op.LHU -> op_lhu
        | Op.LW -> op_lw
      in
      itype ~op ~rs:(r rs) ~rt:(r rt) ~imm:(imm16_signed off)
  | Instr.Store (w, rt, rs, off) ->
      let op =
        match w with Op.SB -> op_sb | Op.SH -> op_sh | Op.SW -> op_sw
      in
      itype ~op ~rs:(r rs) ~rt:(r rt) ~imm:(imm16_signed off)
  | Instr.Branch (c, rs, rt, tgt) -> (
      let disp = branch_disp ~index tgt in
      match c with
      | Op.Beq -> itype ~op:op_beq ~rs:(r rs) ~rt:(r rt) ~imm:disp
      | Op.Bne -> itype ~op:op_bne ~rs:(r rs) ~rt:(r rt) ~imm:disp
      | Op.Blez -> itype ~op:op_blez ~rs:(r rs) ~rt:0 ~imm:disp
      | Op.Bgtz -> itype ~op:op_bgtz ~rs:(r rs) ~rt:0 ~imm:disp
      | Op.Bltz -> itype ~op:op_regimm ~rs:(r rs) ~rt:0 ~imm:disp
      | Op.Bgez -> itype ~op:op_regimm ~rs:(r rs) ~rt:1 ~imm:disp)
  | Instr.Jump tgt -> (op_j lsl 26) lor jump_target tgt
  | Instr.Jal tgt -> (op_jal lsl 26) lor jump_target tgt
  | Instr.Jr rs -> rtype ~rs:(r rs) ~rt:0 ~rd:0 ~shamt:0 ~funct:f_jr
  | Instr.Jalr (rd, rs) ->
      rtype ~rs:(r rs) ~rt:0 ~rd:(r rd) ~shamt:0 ~funct:f_jalr
  | Instr.Ext { eid; dst; src1; src2 } ->
      if eid < 0 || eid > 0x7FF then fail "ext id out of range: %d" eid;
      (op_ext lsl 26) lor (r src1 lsl 21) lor (r src2 lsl 16)
      lor (r dst lsl 11) lor eid
  | Instr.Cfgld eid ->
      if eid < 0 || eid > 0x7FF then fail "cfgld id out of range: %d" eid
      else (op_cfgld lsl 26) lor eid
  | Instr.Nop -> 0
  | Instr.Halt -> op_halt lsl 26

let decode ~index word =
  let op = (word lsr 26) land 0x3F in
  let rs = reg ((word lsr 21) land 0x1F) in
  let rt = reg ((word lsr 16) land 0x1F) in
  let rd = reg ((word lsr 11) land 0x1F) in
  let shamt = (word lsr 6) land 0x1F in
  let funct = word land 0x3F in
  let imm_u = word land 0xFFFF in
  let imm_s = Word.sext16 imm_u in
  let btarget = index + 1 + imm_s in
  if op = op_special then (
    if word = 0 then Instr.Nop
    else
      match alu_of_funct funct with
      | Some a -> Instr.Alu_rrr (a, rd, rs, rt)
      | None ->
          if funct = f_sll then Instr.Shift_imm (Op.Sll, rd, rt, shamt)
          else if funct = f_srl then Instr.Shift_imm (Op.Srl, rd, rt, shamt)
          else if funct = f_sra then Instr.Shift_imm (Op.Sra, rd, rt, shamt)
          else if funct = f_sllv then Instr.Shift_reg (Op.Sll, rd, rt, rs)
          else if funct = f_srlv then Instr.Shift_reg (Op.Srl, rd, rt, rs)
          else if funct = f_srav then Instr.Shift_reg (Op.Sra, rd, rt, rs)
          else if funct = f_jr then Instr.Jr rs
          else if funct = f_jalr then Instr.Jalr (rd, rs)
          else if funct = f_mfhi then Instr.Mfhi rd
          else if funct = f_mflo then Instr.Mflo rd
          else if funct = f_mult then Instr.Muldiv (Op.Mult, rs, rt)
          else if funct = f_multu then Instr.Muldiv (Op.Multu, rs, rt)
          else if funct = f_div then Instr.Muldiv (Op.Div, rs, rt)
          else if funct = f_divu then Instr.Muldiv (Op.Divu, rs, rt)
          else fail "unknown SPECIAL funct 0x%02x" funct)
  else if op = op_regimm then
    match Reg.to_int rt with
    | 0 -> Instr.Branch (Op.Bltz, rs, Reg.zero, btarget)
    | 1 -> Instr.Branch (Op.Bgez, rs, Reg.zero, btarget)
    | n -> fail "unknown REGIMM rt field %d" n
  else if op = op_j then Instr.Jump (word land 0x3FF_FFFF)
  else if op = op_jal then Instr.Jal (word land 0x3FF_FFFF)
  else if op = op_beq then Instr.Branch (Op.Beq, rs, rt, btarget)
  else if op = op_bne then Instr.Branch (Op.Bne, rs, rt, btarget)
  else if op = op_blez then Instr.Branch (Op.Blez, rs, Reg.zero, btarget)
  else if op = op_bgtz then Instr.Branch (Op.Bgtz, rs, Reg.zero, btarget)
  else if op = op_addi then Instr.Alu_rri (Op.Add, rt, rs, imm_s)
  else if op = op_addiu then Instr.Alu_rri (Op.Addu, rt, rs, imm_s)
  else if op = op_slti then Instr.Alu_rri (Op.Slt, rt, rs, imm_s)
  else if op = op_sltiu then Instr.Alu_rri (Op.Sltu, rt, rs, imm_s)
  else if op = op_andi then Instr.Alu_rri (Op.And, rt, rs, imm_u)
  else if op = op_ori then Instr.Alu_rri (Op.Or, rt, rs, imm_u)
  else if op = op_xori then Instr.Alu_rri (Op.Xor, rt, rs, imm_u)
  else if op = op_lui then Instr.Lui (rt, imm_u)
  else if op = op_lb then Instr.Load (Op.LB, rt, rs, imm_s)
  else if op = op_lbu then Instr.Load (Op.LBU, rt, rs, imm_s)
  else if op = op_lh then Instr.Load (Op.LH, rt, rs, imm_s)
  else if op = op_lhu then Instr.Load (Op.LHU, rt, rs, imm_s)
  else if op = op_lw then Instr.Load (Op.LW, rt, rs, imm_s)
  else if op = op_sb then Instr.Store (Op.SB, rt, rs, imm_s)
  else if op = op_sh then Instr.Store (Op.SH, rt, rs, imm_s)
  else if op = op_sw then Instr.Store (Op.SW, rt, rs, imm_s)
  else if op = op_ext then
    Instr.Ext { eid = word land 0x7FF; dst = rd; src1 = rs; src2 = rt }
  else if op = op_cfgld then Instr.Cfgld (word land 0x7FF)
  else if op = op_halt then Instr.Halt
  else fail "unknown opcode 0x%02x" op
