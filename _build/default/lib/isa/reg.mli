(** Architectural general-purpose registers.

    The T1000 ISA exposes 32 general-purpose registers in the MIPS
    convention; register 0 is hard-wired to zero.  HI and LO (the
    multiply/divide result registers) are modelled separately by the
    machine state, not as members of this type. *)

type t = private int
(** A register number in [0, 31]. *)

val of_int : int -> t
(** @raise Invalid_argument if the number is outside [0, 31]. *)

val to_int : t -> int

val zero : t
(** Register 0, hard-wired to the value 0. *)

val count : int
(** Number of general-purpose registers (32). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints in assembler syntax, e.g. [r7]. *)

(* Conventional names, following the MIPS o32 ABI, for readable kernels. *)

val at : t
val v0 : t
val v1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val t0 : t
val t1 : t
val t2 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t
val t7 : t
val s0 : t
val s1 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val t8 : t
val t9 : t
val k0 : t
val k1 : t
val gp : t
val sp : t
val fp : t
val ra : t
