type t = int

let count = 32

let of_int n =
  if n < 0 || n >= count then invalid_arg "Reg.of_int: out of range"
  else n

let to_int r = r
let zero = 0
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let pp ppf r = Format.fprintf ppf "r%d" r

let at = 1
let v0 = 2
let v1 = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let t0 = 8
let t1 = 9
let t2 = 10
let t3 = 11
let t4 = 12
let t5 = 13
let t6 = 14
let t7 = 15
let s0 = 16
let s1 = 17
let s2 = 18
let s3 = 19
let s4 = 20
let s5 = 21
let s6 = 22
let s7 = 23
let t8 = 24
let t9 = 25
let k0 = 26
let k1 = 27
let gp = 28
let sp = 29
let fp = 30
let ra = 31
