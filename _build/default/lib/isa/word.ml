type t = int

let mask32 = 0xFFFF_FFFF

let sext32 v =
  let v = v land mask32 in
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let to_u32 v = v land mask32

let add a b = sext32 (a + b)
let sub a b = sext32 (a - b)
let mul_lo a b = sext32 (a * b)

let mul_hi_signed a b =
  (* Products of two 32-bit values fit in a 63-bit OCaml int only up to
     62 bits of magnitude; 32x32 -> 64 can overflow by one bit.  Split one
     operand to stay exact. *)
  let a_lo = a land 0xFFFF and a_hi = a asr 16 in
  let p_lo = a_lo * b and p_hi = a_hi * b in
  let full_shifted = p_hi + (p_lo asr 16) in
  sext32 (full_shifted asr 16)

let mul_hi_unsigned a b =
  let a = to_u32 a and b = to_u32 b in
  let a_lo = a land 0xFFFF and a_hi = a lsr 16 in
  let p_lo = a_lo * b and p_hi = a_hi * b in
  let full_shifted = p_hi + (p_lo lsr 16) in
  sext32 (full_shifted lsr 16)

let div_signed a b =
  if b = 0 then (0, a)
  else (sext32 (a / b), sext32 (a mod b))

let div_unsigned a b =
  let a = to_u32 a and b = to_u32 b in
  if b = 0 then (0, sext32 a)
  else (sext32 (a / b), sext32 (a mod b))

let logand a b = sext32 (a land b)
let logor a b = sext32 (a lor b)
let logxor a b = sext32 (a lxor b)
let lognor a b = sext32 (lnot (a lor b))

let sll a sh = sext32 (a lsl (sh land 31))
let srl a sh = sext32 (to_u32 a lsr (sh land 31))
let sra a sh = sext32 (a asr (sh land 31))
let slt a b = if a < b then 1 else 0
let sltu a b = if to_u32 a < to_u32 b then 1 else 0

let sext8 v =
  let v = v land 0xFF in
  if v land 0x80 <> 0 then v - 0x100 else v

let sext16 v =
  let v = v land 0xFFFF in
  if v land 0x8000 <> 0 then v - 0x1_0000 else v

let zext8 v = v land 0xFF
let zext16 v = v land 0xFFFF

let bits_for_nonneg v =
  (* Minimum bits to hold a non-negative value (ignoring sign bit). *)
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  if v = 0 then 0 else go v 0

let width_signed v =
  if v >= 0 then 1 + bits_for_nonneg v
  else 1 + bits_for_nonneg (lnot v)

let width_unsigned v =
  let v = to_u32 v in
  if v = 0 then 1 else bits_for_nonneg v

let pp ppf v = Format.fprintf ppf "0x%08x" (to_u32 v)
