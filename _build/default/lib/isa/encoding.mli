(** Binary encoding of T1000 instructions.

    The encoding is 32-bit, MIPS-style: R-type
    [op(6) rs(5) rt(5) rd(5) shamt(5) funct(6)], I-type
    [op(6) rs(5) rt(5) imm(16)], J-type [op(6) target(26)].  Extended
    instructions use the reserved opcode [0x3e] with an 11-bit [Conf]
    field, giving the encoding format of paper Section 2.2 (a
    register-register operation with an additional configuration field).

    Branch displacements are encoded relative to the next instruction
    slot, as on MIPS; jump targets are absolute slot indices.  [index] is
    the slot of the instruction being encoded/decoded. *)

exception Unencodable of string
(** Raised when a field does not fit its encoding (e.g. a 16-bit
    immediate out of range, an extended-instruction id above 2047, or a
    branch displacement beyond 15 bits). *)

val encode : index:int -> Instr.t -> int
(** The 32-bit instruction word, in [0, 2{^32}).
    @raise Unencodable when a field does not fit. *)

val decode : index:int -> int -> Instr.t
(** Inverse of {!encode}.
    @raise Unencodable on an unknown opcode/funct combination. *)

val text_base : int
(** Base byte address of the text segment (PISA convention). *)

val bytes_per_slot : int
(** Byte footprint of one instruction slot in the simulated address space.
    PISA uses 8-byte instruction slots; instruction-cache behaviour in the
    timing model follows this. *)

val address_of_index : int -> int
(** Text address of an instruction slot. *)

val index_of_address : int -> int
(** Inverse of {!address_of_index}. *)
