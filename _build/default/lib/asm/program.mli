(** Resolved T1000 programs.

    A program is a dense array of instructions whose branch/jump targets
    are instruction indices, together with the table of extended
    instructions it references.  Programs are immutable once built; the
    rewriter in {!T1000_select.Rewrite} produces new programs. *)

open T1000_isa

type t

val make : ?name:string -> Instr.t array -> t
(** Copies the array.  Validates that every control-flow target is a
    valid index and that the last reachable paths end in [Halt] is {e not}
    checked here (the interpreter raises if execution falls off the end).
    @raise Invalid_argument on an out-of-range branch/jump target. *)

val name : t -> string
val length : t -> int

val get : t -> int -> Instr.t
(** @raise Invalid_argument when out of range. *)

val instrs : t -> Instr.t array
(** A fresh copy of the instruction array. *)

val fold : (int -> Instr.t -> 'a -> 'a) -> t -> 'a -> 'a
val iteri : (int -> Instr.t -> unit) -> t -> unit

val max_ext_id : t -> int
(** Largest extended-instruction id referenced, or [-1] if none. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing, one instruction per line with slot indices. *)
