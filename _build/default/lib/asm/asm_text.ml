open T1000_isa

(* ---------- printing ---------- *)

let reg_name r = Printf.sprintf "r%d" (Reg.to_int r)

let collect_targets program =
  Program.fold
    (fun _ instr acc ->
      match instr with
      | Instr.Branch (_, _, _, t) | Instr.Jump t | Instr.Jal t -> t :: acc
      | Instr.Alu_rrr _ | Instr.Alu_rri _ | Instr.Shift_imm _
      | Instr.Shift_reg _ | Instr.Lui _ | Instr.Muldiv _ | Instr.Mfhi _
      | Instr.Mflo _ | Instr.Load _ | Instr.Store _ | Instr.Jr _
      | Instr.Jalr _ | Instr.Ext _ | Instr.Cfgld _ | Instr.Nop
      | Instr.Halt ->
          acc)
    program []
  |> List.sort_uniq compare

let to_string program =
  let targets = collect_targets program in
  let label_of = Hashtbl.create 8 in
  List.iteri (fun i t -> Hashtbl.replace label_of t (Printf.sprintf "L%d" i))
    targets;
  let buf = Buffer.create 1024 in
  let target t =
    match Hashtbl.find_opt label_of t with
    | Some l -> l
    | None -> "@" ^ string_of_int t
  in
  let line fmt = Printf.ksprintf (fun s ->
      Buffer.add_string buf "    ";
      Buffer.add_string buf s;
      Buffer.add_char buf '\n') fmt
  in
  Program.iteri
    (fun i instr ->
      (match Hashtbl.find_opt label_of i with
      | Some l ->
          Buffer.add_string buf l;
          Buffer.add_string buf ":\n"
      | None -> ());
      let r = reg_name in
      match instr with
      | Instr.Alu_rrr (op, rd, rs, rt) ->
          line "%-6s %s, %s, %s" (Op.alu_to_string op) (r rd) (r rs) (r rt)
      | Instr.Alu_rri (op, rt, rs, imm) ->
          line "%-6s %s, %s, %d" (Op.alu_to_string op ^ "i") (r rt) (r rs) imm
      | Instr.Shift_imm (op, rd, rt, sh) ->
          line "%-6s %s, %s, %d" (Op.shift_to_string op) (r rd) (r rt) sh
      | Instr.Shift_reg (op, rd, rt, rs) ->
          line "%-6s %s, %s, %s" (Op.shift_to_string op ^ "v") (r rd) (r rt)
            (r rs)
      | Instr.Lui (rt, imm) -> line "%-6s %s, %d" "lui" (r rt) imm
      | Instr.Muldiv (op, rs, rt) ->
          let name =
            match op with
            | Op.Mult -> "mult"
            | Op.Multu -> "multu"
            | Op.Div -> "div"
            | Op.Divu -> "divu"
          in
          line "%-6s %s, %s" name (r rs) (r rt)
      | Instr.Mfhi rd -> line "%-6s %s" "mfhi" (r rd)
      | Instr.Mflo rd -> line "%-6s %s" "mflo" (r rd)
      | Instr.Load (w, rt, rs, off) ->
          let name =
            match w with
            | Op.LB -> "lb"
            | Op.LBU -> "lbu"
            | Op.LH -> "lh"
            | Op.LHU -> "lhu"
            | Op.LW -> "lw"
          in
          line "%-6s %s, %d(%s)" name (r rt) off (r rs)
      | Instr.Store (w, rt, rs, off) ->
          let name =
            match w with Op.SB -> "sb" | Op.SH -> "sh" | Op.SW -> "sw"
          in
          line "%-6s %s, %d(%s)" name (r rt) off (r rs)
      | Instr.Branch (c, rs, rt, tgt) -> (
          match c with
          | Op.Beq | Op.Bne ->
              line "%-6s %s, %s, %s"
                (match c with Op.Beq -> "beq" | _ -> "bne")
                (r rs) (r rt) (target tgt)
          | Op.Blez | Op.Bgtz | Op.Bltz | Op.Bgez ->
              let name =
                match c with
                | Op.Blez -> "blez"
                | Op.Bgtz -> "bgtz"
                | Op.Bltz -> "bltz"
                | Op.Bgez -> "bgez"
                | Op.Beq | Op.Bne -> assert false
              in
              line "%-6s %s, %s" name (r rs) (target tgt))
      | Instr.Jump tgt -> line "%-6s %s" "j" (target tgt)
      | Instr.Jal tgt -> line "%-6s %s" "jal" (target tgt)
      | Instr.Jr rs -> line "%-6s %s" "jr" (r rs)
      | Instr.Jalr (rd, rs) -> line "%-6s %s, %s" "jalr" (r rd) (r rs)
      | Instr.Ext { eid; dst; src1; src2 } ->
          line "ext#%d %s, %s, %s" eid (r dst) (r src1) (r src2)
      | Instr.Cfgld eid -> line "cfgld#%d" eid
      | Instr.Nop -> line "nop"
      | Instr.Halt -> line "halt")
    program;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let named_regs =
  [
    ("zero", 0); ("at", 1); ("v0", 2); ("v1", 3); ("a0", 4); ("a1", 5);
    ("a2", 6); ("a3", 7); ("t0", 8); ("t1", 9); ("t2", 10); ("t3", 11);
    ("t4", 12); ("t5", 13); ("t6", 14); ("t7", 15); ("s0", 16); ("s1", 17);
    ("s2", 18); ("s3", 19); ("s4", 20); ("s5", 21); ("s6", 22); ("s7", 23);
    ("t8", 24); ("t9", 25); ("k0", 26); ("k1", 27); ("gp", 28); ("sp", 29);
    ("fp", 30); ("ra", 31);
  ]

let parse_reg tok =
  let tok = String.lowercase_ascii tok in
  match List.assoc_opt tok named_regs with
  | Some n -> Reg.of_int n
  | None ->
      if String.length tok >= 2 && tok.[0] = 'r' then
        match int_of_string_opt (String.sub tok 1 (String.length tok - 1)) with
        | Some n when n >= 0 && n < 32 -> Reg.of_int n
        | Some _ | None -> fail "bad register %S" tok
      else fail "bad register %S" tok

let parse_int tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> fail "bad integer %S" tok

(* strip comments, return (label option, mnemonic+operand tokens) *)
let split_line line =
  (* '#' starts a comment only at the start of a line or after
     whitespace, so the ext#N mnemonic survives *)
  let line =
    let n = String.length line in
    let rec find i =
      if i >= n then line
      else if line.[i] = '#' && (i = 0 || line.[i - 1] = ' ' || line.[i - 1] = '\t')
      then String.sub line 0 i
      else find (i + 1)
    in
    find 0
  in
  let line =
    match String.index_opt line ';' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then (None, [])
  else begin
    let label, rest =
      match String.index_opt line ':' with
      | Some i ->
          let l = String.trim (String.sub line 0 i) in
          let r =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          if l = "" then fail "empty label" else (Some l, r)
      | None -> (None, line)
    in
    if rest = "" then (label, [])
    else begin
      (* split mnemonic from operands; operands separated by commas,
         with the load/store "off(reg)" form broken apart *)
      let mnemonic, operands =
        match String.index_opt rest ' ' with
        | None -> (rest, "")
        | Some i ->
            ( String.sub rest 0 i,
              String.trim (String.sub rest (i + 1) (String.length rest - i - 1))
            )
      in
      let pieces =
        String.split_on_char ',' operands
        |> List.concat_map (fun piece ->
               let piece = String.trim piece in
               (* off(reg) -> [off; reg] *)
               match String.index_opt piece '(' with
               | Some i when String.length piece > 0
                             && piece.[String.length piece - 1] = ')' ->
                   [
                     String.trim (String.sub piece 0 i);
                     String.trim
                       (String.sub piece (i + 1)
                          (String.length piece - i - 2));
                   ]
               | Some _ | None -> [ piece ])
        |> List.filter (fun s -> s <> "")
      in
      (label, String.lowercase_ascii mnemonic :: pieces)
    end
  end

type pending_target =
  | Abs of int
  | Lbl of string

let parse_target tok =
  if String.length tok > 1 && tok.[0] = '@' then
    Abs (parse_int (String.sub tok 1 (String.length tok - 1)))
  else Lbl tok

(* one instruction with possibly-unresolved target *)
type pre =
  | Ready of Instr.t
  | Branch_p of Op.branch_cond * Reg.t * Reg.t * pending_target
  | Jump_p of pending_target
  | Jal_p of pending_target

let alu_rrr_ops =
  [
    ("add", Op.Add); ("addu", Op.Addu); ("sub", Op.Sub); ("subu", Op.Subu);
    ("and", Op.And); ("or", Op.Or); ("xor", Op.Xor); ("nor", Op.Nor);
    ("slt", Op.Slt); ("sltu", Op.Sltu);
  ]

let alu_rri_ops =
  [
    ("addi", Op.Add); ("addui", Op.Addu); ("addiu", Op.Addu);
    ("andi", Op.And); ("ori", Op.Or); ("xori", Op.Xor); ("slti", Op.Slt);
    ("sltui", Op.Sltu); ("sltiu", Op.Sltu); ("subi", Op.Sub);
    ("subui", Op.Subu); ("nori", Op.Nor);
  ]

let shift_imm_ops = [ ("sll", Op.Sll); ("srl", Op.Srl); ("sra", Op.Sra) ]

let shift_reg_ops = [ ("sllv", Op.Sll); ("srlv", Op.Srl); ("srav", Op.Sra) ]

let load_ops =
  [ ("lb", Op.LB); ("lbu", Op.LBU); ("lh", Op.LH); ("lhu", Op.LHU);
    ("lw", Op.LW) ]

let store_ops = [ ("sb", Op.SB); ("sh", Op.SH); ("sw", Op.SW) ]

let muldiv_ops =
  [ ("mult", Op.Mult); ("multu", Op.Multu); ("div", Op.Div);
    ("divu", Op.Divu) ]

let cond2_ops = [ ("beq", Op.Beq); ("bne", Op.Bne) ]

let cond1_ops =
  [ ("blez", Op.Blez); ("bgtz", Op.Bgtz); ("bltz", Op.Bltz);
    ("bgez", Op.Bgez) ]

let parse_instr mnemonic args =
  let nargs n =
    if List.length args <> n then
      fail "%s expects %d operand(s), got %d" mnemonic n (List.length args)
  in
  let arg i = List.nth args i in
  match List.assoc_opt mnemonic alu_rrr_ops with
  | Some op ->
      nargs 3;
      Ready
        (Instr.Alu_rrr (op, parse_reg (arg 0), parse_reg (arg 1),
                        parse_reg (arg 2)))
  | None ->
  match List.assoc_opt mnemonic alu_rri_ops with
  | Some op ->
      nargs 3;
      Ready
        (Instr.Alu_rri (op, parse_reg (arg 0), parse_reg (arg 1),
                        parse_int (arg 2)))
  | None ->
  match List.assoc_opt mnemonic shift_imm_ops with
  | Some op ->
      nargs 3;
      Ready
        (Instr.Shift_imm (op, parse_reg (arg 0), parse_reg (arg 1),
                          parse_int (arg 2)))
  | None ->
  match List.assoc_opt mnemonic shift_reg_ops with
  | Some op ->
      nargs 3;
      Ready
        (Instr.Shift_reg (op, parse_reg (arg 0), parse_reg (arg 1),
                          parse_reg (arg 2)))
  | None ->
  match List.assoc_opt mnemonic load_ops with
  | Some w ->
      nargs 3;
      (* rt, off, base (off(base) was split by split_line) *)
      Ready
        (Instr.Load (w, parse_reg (arg 0), parse_reg (arg 2),
                     parse_int (arg 1)))
  | None ->
  match List.assoc_opt mnemonic store_ops with
  | Some w ->
      nargs 3;
      Ready
        (Instr.Store (w, parse_reg (arg 0), parse_reg (arg 2),
                      parse_int (arg 1)))
  | None ->
  match List.assoc_opt mnemonic muldiv_ops with
  | Some op ->
      nargs 2;
      Ready (Instr.Muldiv (op, parse_reg (arg 0), parse_reg (arg 1)))
  | None ->
  match List.assoc_opt mnemonic cond2_ops with
  | Some c ->
      nargs 3;
      Branch_p (c, parse_reg (arg 0), parse_reg (arg 1), parse_target (arg 2))
  | None ->
  match List.assoc_opt mnemonic cond1_ops with
  | Some c ->
      nargs 2;
      Branch_p (c, parse_reg (arg 0), Reg.zero, parse_target (arg 1))
  | None -> (
      match mnemonic with
      | "lui" ->
          nargs 2;
          Ready (Instr.Lui (parse_reg (arg 0), parse_int (arg 1)))
      | "mfhi" ->
          nargs 1;
          Ready (Instr.Mfhi (parse_reg (arg 0)))
      | "mflo" ->
          nargs 1;
          Ready (Instr.Mflo (parse_reg (arg 0)))
      | "j" ->
          nargs 1;
          Jump_p (parse_target (arg 0))
      | "jal" ->
          nargs 1;
          Jal_p (parse_target (arg 0))
      | "jr" ->
          nargs 1;
          Ready (Instr.Jr (parse_reg (arg 0)))
      | "jalr" ->
          nargs 2;
          Ready (Instr.Jalr (parse_reg (arg 0), parse_reg (arg 1)))
      | "nop" ->
          nargs 0;
          Ready Instr.Nop
      | "halt" ->
          nargs 0;
          Ready Instr.Halt
      | _ ->
          (* ext#N *)
          if
            String.length mnemonic > 6 && String.sub mnemonic 0 6 = "cfgld#"
          then begin
            nargs 0;
            Ready
              (Instr.Cfgld
                 (parse_int
                    (String.sub mnemonic 6 (String.length mnemonic - 6))))
          end
          else if
            String.length mnemonic > 4 && String.sub mnemonic 0 4 = "ext#"
          then begin
            nargs 3;
            let eid =
              parse_int (String.sub mnemonic 4 (String.length mnemonic - 4))
            in
            Ready
              (Instr.Ext
                 {
                   eid;
                   dst = parse_reg (arg 0);
                   src1 = parse_reg (arg 1);
                   src2 = parse_reg (arg 2);
                 })
          end
          else fail "unknown mnemonic %S" mnemonic)

let parse ?(name = "parsed") source =
  let lines = String.split_on_char '\n' source in
  let labels = Hashtbl.create 16 in
  let pres = ref [] in
  let n_instrs = ref 0 in
  try
    List.iteri
      (fun lineno line ->
        try
          let label, tokens = split_line line in
          (match label with
          | Some l ->
              if Hashtbl.mem labels l then fail "duplicate label %S" l
              else Hashtbl.replace labels l !n_instrs
          | None -> ());
          match tokens with
          | [] -> ()
          | mnemonic :: args ->
              pres := parse_instr mnemonic args :: !pres;
              incr n_instrs
        with Parse_error msg ->
          raise (Parse_error (Printf.sprintf "line %d: %s" (lineno + 1) msg)))
      lines;
    let resolve = function
      | Abs i -> i
      | Lbl l -> (
          match Hashtbl.find_opt labels l with
          | Some i -> i
          | None -> fail "undefined label %S" l)
    in
    let code =
      List.rev !pres
      |> List.map (function
           | Ready i -> i
           | Branch_p (c, rs, rt, t) -> Instr.Branch (c, rs, rt, resolve t)
           | Jump_p t -> Instr.Jump (resolve t)
           | Jal_p t -> Instr.Jal (resolve t))
      |> Array.of_list
    in
    match Program.make ~name code with
    | p -> Ok p
    | exception Invalid_argument msg -> Error msg
  with Parse_error msg -> Error msg

let parse_exn ?name source =
  match parse ?name source with
  | Ok p -> p
  | Error msg -> invalid_arg ("Asm_text.parse: " ^ msg)
