(** An embedded assembler for writing T1000 kernels.

    The builder accumulates instructions with string labels for control
    flow and backpatches targets at {!build} time.  All emit functions
    append one instruction (pseudo-instructions may append two and say
    so).  Register arguments follow assembler order: destination first.

    Example — a counted loop:
    {[
      let b = Builder.create ~name:"sum" () in
      Builder.li b Reg.t0 0;                (* acc *)
      Builder.li b Reg.t1 100;              (* n *)
      Builder.label b "loop";
      Builder.addu b Reg.t0 Reg.t0 Reg.t1;
      Builder.addiu b Reg.t1 Reg.t1 (-1);
      Builder.bgtz b Reg.t1 "loop";
      Builder.halt b;
      let program = Builder.build b
    ]} *)

open T1000_isa

type t

val create : ?name:string -> unit -> t

val label : t -> string -> unit
(** Define a label at the current position.
    @raise Invalid_argument if the label is already defined. *)

val fresh_label : t -> string -> string
(** A label name unique within this builder, derived from the prefix. *)

val here : t -> int
(** Index of the next instruction to be emitted. *)

val build : t -> Program.t
(** Resolve all labels and produce the program.
    @raise Invalid_argument on an undefined label. *)

(** {1 ALU, three-register} *)

val add : t -> Reg.t -> Reg.t -> Reg.t -> unit
val addu : t -> Reg.t -> Reg.t -> Reg.t -> unit
val sub : t -> Reg.t -> Reg.t -> Reg.t -> unit
val subu : t -> Reg.t -> Reg.t -> Reg.t -> unit
val and_ : t -> Reg.t -> Reg.t -> Reg.t -> unit
val or_ : t -> Reg.t -> Reg.t -> Reg.t -> unit
val xor : t -> Reg.t -> Reg.t -> Reg.t -> unit
val nor : t -> Reg.t -> Reg.t -> Reg.t -> unit
val slt : t -> Reg.t -> Reg.t -> Reg.t -> unit
val sltu : t -> Reg.t -> Reg.t -> Reg.t -> unit

(** {1 ALU, immediate} *)

val addi : t -> Reg.t -> Reg.t -> int -> unit
val addiu : t -> Reg.t -> Reg.t -> int -> unit
val andi : t -> Reg.t -> Reg.t -> int -> unit
val ori : t -> Reg.t -> Reg.t -> int -> unit
val xori : t -> Reg.t -> Reg.t -> int -> unit
val slti : t -> Reg.t -> Reg.t -> int -> unit
val sltiu : t -> Reg.t -> Reg.t -> int -> unit
val lui : t -> Reg.t -> int -> unit

(** {1 Shifts} *)

val sll : t -> Reg.t -> Reg.t -> int -> unit
val srl : t -> Reg.t -> Reg.t -> int -> unit
val sra : t -> Reg.t -> Reg.t -> int -> unit
val sllv : t -> Reg.t -> Reg.t -> Reg.t -> unit
val srlv : t -> Reg.t -> Reg.t -> Reg.t -> unit
val srav : t -> Reg.t -> Reg.t -> Reg.t -> unit

(** {1 Multiply / divide} *)

val mult : t -> Reg.t -> Reg.t -> unit
val multu : t -> Reg.t -> Reg.t -> unit
val div : t -> Reg.t -> Reg.t -> unit
val divu : t -> Reg.t -> Reg.t -> unit
val mfhi : t -> Reg.t -> unit
val mflo : t -> Reg.t -> unit

(** {1 Memory} *)

val lb : t -> Reg.t -> int -> Reg.t -> unit
(** [lb b rt off rs]: [rt <- sext8 mem\[rs+off\]]; note assembler operand
    order [rt, off(rs)]. *)

val lbu : t -> Reg.t -> int -> Reg.t -> unit
val lh : t -> Reg.t -> int -> Reg.t -> unit
val lhu : t -> Reg.t -> int -> Reg.t -> unit
val lw : t -> Reg.t -> int -> Reg.t -> unit
val sb : t -> Reg.t -> int -> Reg.t -> unit
val sh : t -> Reg.t -> int -> Reg.t -> unit
val sw : t -> Reg.t -> int -> Reg.t -> unit

(** {1 Control flow} *)

val beq : t -> Reg.t -> Reg.t -> string -> unit
val bne : t -> Reg.t -> Reg.t -> string -> unit
val blez : t -> Reg.t -> string -> unit
val bgtz : t -> Reg.t -> string -> unit
val bltz : t -> Reg.t -> string -> unit
val bgez : t -> Reg.t -> string -> unit
val j : t -> string -> unit
val jal : t -> string -> unit
val jr : t -> Reg.t -> unit
val jalr : t -> Reg.t -> Reg.t -> unit

(** {1 Misc} *)

val ext : t -> int -> Reg.t -> Reg.t -> Reg.t -> unit
(** [ext b eid dst src1 src2]: extended instruction (normally produced by
    the rewriter, exposed for tests and hand-written examples). *)

val nop : t -> unit
val halt : t -> unit

(** {1 Pseudo-instructions} *)

val li : t -> Reg.t -> int -> unit
(** Load a 32-bit constant: one instruction when it fits 16 bits
    ([addiu]/[ori]), otherwise [lui] + [ori]. *)

val move : t -> Reg.t -> Reg.t -> unit
(** [addu rd, rs, r0]. *)

val raw : t -> Instr.t -> unit
(** Append an already-resolved instruction (targets must be final). *)
