(** Natural-loop detection.

    A back edge is an edge [n -> h] whose target [h] dominates its source
    [n]; the natural loop of [h] is the set of blocks that can reach some
    back-edge source without passing through [h].  Back edges sharing a
    header are merged into one loop, and loops are nested by body
    inclusion.  The paper's selective algorithm walks loop bodies one at
    a time (Figure 5); this module provides those bodies. *)

type loop = {
  header : int;  (** header block id *)
  body : int list;  (** block ids, header included, ascending *)
  depth : int;  (** nesting depth; outermost loops have depth 1 *)
  parent : int option;  (** index (into {!loops}) of the enclosing loop *)
}

type t

val compute : Cfg.t -> Dominators.t -> t

val loops : t -> loop array
(** All loops, ordered innermost-first (deepest nesting first, then by
    header block id).  A fresh copy. *)

val innermost_at_instr : t -> int -> int option
(** Index into {!loops} of the innermost loop containing the instruction
    slot, if any. *)

val loop_of_header : t -> int -> int option
(** Index into {!loops} of the loop whose header is the given block. *)

val instr_in_loop : t -> loop_idx:int -> int -> bool
(** Whether an instruction slot belongs to the loop's body. *)

val pp : Format.formatter -> t -> unit
