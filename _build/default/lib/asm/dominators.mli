(** Dominator analysis over a control-flow graph.

    Implements the classic iterative dataflow formulation (Cooper, Harvey
    & Kennedy style, with intersection over reverse postorder), adequate
    for kernel-sized programs.  Blocks unreachable from the entry have no
    immediate dominator and dominate nothing. *)

type t

val compute : Cfg.t -> t

val idom : t -> int -> int option
(** Immediate dominator of a block; [None] for the entry block and for
    unreachable blocks. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does block [a] dominate block [b]?  Reflexive for
    reachable blocks. *)

val reachable : t -> int -> bool
(** Whether the block is reachable from the entry. *)

val reverse_postorder : t -> int array
(** Reachable blocks in reverse postorder. *)
