(** Backward live-register dataflow analysis.

    Used by the program rewriter to prove that the intermediate results
    of a collapsed instruction sequence are dead after the sequence —
    the condition under which deleting the intermediate writes is safe.

    Conservative choices: blocks ending in an indirect jump ([jr]/
    [jalr]) are given a full live-out set, and [Halt] blocks an empty
    one.  Dependence registers are the 34-register namespace of
    {!T1000_isa.Instr}; r0 (hard-wired zero) is never considered used
    or live. *)

type t

val compute : Cfg.t -> t

val live_in : t -> int -> Regset.t
(** Registers live on entry to a block. *)

val live_out : t -> int -> Regset.t
(** Registers live on exit from a block. *)

val live_after_instr : t -> int -> Regset.t
(** Registers live immediately {e after} the given instruction slot
    executes (before any later instruction of the same block).  Computed
    by walking backward from the block's live-out. *)

val pp : Format.formatter -> t -> unit
