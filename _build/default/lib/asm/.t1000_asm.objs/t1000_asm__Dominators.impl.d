lib/asm/dominators.ml: Array Cfg List
