lib/asm/regset.ml: Format Instr List Printf String T1000_isa
