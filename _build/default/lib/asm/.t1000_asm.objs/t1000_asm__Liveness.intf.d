lib/asm/liveness.mli: Cfg Format Regset
