lib/asm/liveness.ml: Array Cfg Format Instr List Program Regset T1000_isa
