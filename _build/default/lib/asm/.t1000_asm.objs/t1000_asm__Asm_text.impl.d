lib/asm/asm_text.ml: Array Buffer Hashtbl Instr List Op Printf Program Reg String T1000_isa
