lib/asm/builder.ml: Array Hashtbl Instr Op Printf Program Reg T1000_isa Word
