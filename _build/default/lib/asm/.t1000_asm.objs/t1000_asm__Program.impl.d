lib/asm/program.ml: Array Format Instr Printf T1000_isa
