lib/asm/cfg.mli: Format Program
