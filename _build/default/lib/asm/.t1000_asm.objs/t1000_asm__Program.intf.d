lib/asm/program.mli: Format Instr T1000_isa
