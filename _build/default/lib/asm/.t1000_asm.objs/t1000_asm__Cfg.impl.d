lib/asm/cfg.ml: Array Buffer Format Instr List Printf Program String T1000_isa
