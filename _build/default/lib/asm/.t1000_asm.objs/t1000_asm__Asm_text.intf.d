lib/asm/asm_text.mli: Program
