lib/asm/builder.mli: Instr Program Reg T1000_isa
