lib/asm/dominators.mli: Cfg
