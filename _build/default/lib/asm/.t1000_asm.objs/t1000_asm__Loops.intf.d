lib/asm/loops.mli: Cfg Dominators Format
