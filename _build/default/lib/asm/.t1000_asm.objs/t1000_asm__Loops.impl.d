lib/asm/loops.ml: Array Cfg Dominators Format Int List Map Option Set String
