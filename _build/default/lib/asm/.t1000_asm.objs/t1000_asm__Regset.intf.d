lib/asm/regset.mli: Format
