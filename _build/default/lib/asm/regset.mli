(** Sets of dependence registers (GPRs 0-31 plus HI/LO), packed into a
    native-int bitmask.  The namespace matches
    {!T1000_isa.Instr.dep_reg_count}. *)

type t = private int

val empty : t
val full : t
(** All 34 dependence registers. *)

val singleton : int -> t
val add : int -> t -> t
val remove : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val of_list : int list -> t
val elements : t -> int list
val cardinal : t -> int
val is_empty : t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
