open T1000_isa

type block = {
  id : int;
  first : int;
  last : int;
  succ : int list;
  pred : int list;
}

type t = {
  program : Program.t;
  blocks : block array;
  block_of : int array;
}

let of_program program =
  let n = Program.length program in
  if n = 0 then invalid_arg "Cfg.of_program: empty program";
  let leader = Array.make n false in
  leader.(0) <- true;
  (* Return sites: the slot after each jal, used as conservative targets
     of indirect jumps. *)
  let return_sites = ref [] in
  Program.iteri
    (fun i instr ->
      match instr with
      | Instr.Branch (_, _, _, tgt) ->
          leader.(tgt) <- true;
          if i + 1 < n then leader.(i + 1) <- true
      | Instr.Jump tgt ->
          leader.(tgt) <- true;
          if i + 1 < n then leader.(i + 1) <- true
      | Instr.Jal tgt ->
          leader.(tgt) <- true;
          if i + 1 < n then begin
            leader.(i + 1) <- true;
            return_sites := (i + 1) :: !return_sites
          end
      | Instr.Jr _ | Instr.Jalr _ | Instr.Halt ->
          if i + 1 < n then leader.(i + 1) <- true
      | Instr.Alu_rrr _ | Instr.Alu_rri _ | Instr.Shift_imm _
      | Instr.Shift_reg _ | Instr.Lui _ | Instr.Muldiv _ | Instr.Mfhi _
      | Instr.Mflo _ | Instr.Load _ | Instr.Store _ | Instr.Ext _
      | Instr.Cfgld _ | Instr.Nop ->
          ())
    program;
  let block_of = Array.make n 0 in
  let nblocks = ref 0 in
  for i = 0 to n - 1 do
    if leader.(i) then incr nblocks;
    block_of.(i) <- !nblocks - 1
  done;
  let nblocks = !nblocks in
  let first = Array.make nblocks 0 and last = Array.make nblocks 0 in
  for i = n - 1 downto 0 do
    let b = block_of.(i) in
    first.(b) <- i
  done;
  for i = 0 to n - 1 do
    let b = block_of.(i) in
    last.(b) <- i
  done;
  let return_site_blocks =
    List.sort_uniq compare (List.map (fun i -> block_of.(i)) !return_sites)
  in
  let succ_of b =
    let term = last.(b) in
    match Program.get program term with
    | Instr.Branch (_, _, _, tgt) ->
        let fall = if term + 1 < n then [ block_of.(term + 1) ] else [] in
        List.sort_uniq compare (block_of.(tgt) :: fall)
    | Instr.Jump tgt -> [ block_of.(tgt) ]
    | Instr.Jal tgt -> [ block_of.(tgt) ]
    | Instr.Jr _ | Instr.Jalr _ -> return_site_blocks
    | Instr.Halt -> []
    | Instr.Alu_rrr _ | Instr.Alu_rri _ | Instr.Shift_imm _
    | Instr.Shift_reg _ | Instr.Lui _ | Instr.Muldiv _ | Instr.Mfhi _
    | Instr.Mflo _ | Instr.Load _ | Instr.Store _ | Instr.Ext _
    | Instr.Cfgld _ | Instr.Nop ->
        if term + 1 < n then [ block_of.(term + 1) ] else []
  in
  let succ = Array.init nblocks succ_of in
  let pred = Array.make nblocks [] in
  Array.iteri
    (fun b ss -> List.iter (fun s -> pred.(s) <- b :: pred.(s)) ss)
    succ;
  let blocks =
    Array.init nblocks (fun id ->
        {
          id;
          first = first.(id);
          last = last.(id);
          succ = succ.(id);
          pred = List.rev pred.(id);
        })
  in
  { program; blocks; block_of }

let program t = t.program
let n_blocks t = Array.length t.blocks

let block t i =
  if i < 0 || i >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Cfg.block: %d" i)
  else t.blocks.(i)

let blocks t = Array.copy t.blocks

let block_of_instr t i =
  if i < 0 || i >= Array.length t.block_of then
    invalid_arg (Printf.sprintf "Cfg.block_of_instr: %d" i)
  else t.block_of.(i)

let entry _ = 0

let instr_indices b =
  let rec go i acc = if i < b.first then acc else go (i - 1) (i :: acc) in
  go b.last []

let has_indirect_jump t b =
  match Program.get t.program (block t b).last with
  | Instr.Jr _ | Instr.Jalr _ -> true
  | Instr.Alu_rrr _ | Instr.Alu_rri _ | Instr.Shift_imm _ | Instr.Shift_reg _
  | Instr.Lui _ | Instr.Muldiv _ | Instr.Mfhi _ | Instr.Mflo _ | Instr.Load _
  | Instr.Store _ | Instr.Branch _ | Instr.Jump _ | Instr.Jal _ | Instr.Ext _
  | Instr.Cfgld _ | Instr.Nop | Instr.Halt ->
      false

let pp ppf t =
  Format.fprintf ppf "@[<v>cfg of %s (%d blocks)@," (Program.name t.program)
    (n_blocks t);
  Array.iter
    (fun b ->
      Format.fprintf ppf "B%d: [%d..%d] succ=[%s] pred=[%s]@," b.id b.first
        b.last
        (String.concat "," (List.map string_of_int b.succ))
        (String.concat "," (List.map string_of_int b.pred)))
    t.blocks;
  Format.fprintf ppf "@]"

let to_dot t =
  let buf = Buffer.create 512 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "digraph %S {\n  node [shape=box, fontname=monospace];\n"
    (Program.name t.program);
  Array.iter
    (fun b ->
      let body =
        List.map
          (fun i ->
            Printf.sprintf "%d: %s" i
              (String.concat "\\"
                 (String.split_on_char '"'
                    (T1000_isa.Instr.to_string (Program.get t.program i)))))
          (instr_indices b)
        |> String.concat "\\l"
      in
      bpf "  B%d [label=\"B%d\\l%s\\l\"];\n" b.id b.id body;
      List.iter (fun s -> bpf "  B%d -> B%d;\n" b.id s) b.succ)
    t.blocks;
  bpf "}\n";
  Buffer.contents buf
