open T1000_isa

type t = int

let empty = 0
let full = (1 lsl Instr.dep_reg_count) - 1

let check r =
  if r < 0 || r >= Instr.dep_reg_count then
    invalid_arg (Printf.sprintf "Regset: register %d out of range" r)

let singleton r =
  check r;
  1 lsl r

let add r s = singleton r lor s
let remove r s = s land lnot (singleton r)

let mem r s =
  check r;
  s land (1 lsl r) <> 0

let union a b = a lor b
let inter a b = a land b
let diff a b = a land lnot b
let of_list l = List.fold_left (fun s r -> add r s) empty l

let elements s =
  let rec go r acc =
    if r < 0 then acc
    else go (r - 1) (if s land (1 lsl r) <> 0 then r :: acc else acc)
  in
  go (Instr.dep_reg_count - 1) []

let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s land (s - 1)) (acc + 1) in
  go s 0

let is_empty s = s = 0
let subset a b = a land lnot b = 0
let equal (a : t) b = a = b

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat ","
       (List.map
          (fun r ->
            if r = Instr.hi_reg then "hi"
            else if r = Instr.lo_reg then "lo"
            else "r" ^ string_of_int r)
          (elements s)))
