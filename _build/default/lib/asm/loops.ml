type loop = {
  header : int;
  body : int list;
  depth : int;
  parent : int option;
}

module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

type t = {
  cfg : Cfg.t;
  loops : loop array;
  (* innermost loop index per block, -1 when the block is in no loop *)
  innermost : int array;
}

let natural_loop cfg dom ~header ~sources =
  (* Blocks that reach a back-edge source without passing through the
     header: reverse DFS from each source, stopping at the header. *)
  let body = ref (Int_set.singleton header) in
  let rec walk b =
    if not (Int_set.mem b !body) then begin
      body := Int_set.add b !body;
      List.iter walk (Cfg.block cfg b).Cfg.pred
    end
  in
  List.iter walk sources;
  ignore dom;
  !body

let compute cfg dom =
  let n = Cfg.n_blocks cfg in
  (* Collect back edges grouped by header. *)
  let by_header = ref Int_map.empty in
  for b = 0 to n - 1 do
    if Dominators.reachable dom b then
      List.iter
        (fun s ->
          if Dominators.dominates dom s b then
            by_header :=
              Int_map.update s
                (function None -> Some [ b ] | Some l -> Some (b :: l))
                !by_header)
        (Cfg.block cfg b).Cfg.succ
  done;
  let raw =
    Int_map.fold
      (fun header sources acc ->
        (header, natural_loop cfg dom ~header ~sources) :: acc)
      !by_header []
  in
  (* Nesting: loop A is inside loop B iff A's body is a subset of B's and
     A <> B.  With natural loops sharing no header after merging, subset
     ordering is a forest. *)
  let arr = Array.of_list raw in
  let count = Array.length arr in
  let subset a b = Int_set.subset (snd arr.(a)) (snd arr.(b)) in
  let parent = Array.make count None in
  for a = 0 to count - 1 do
    for b = 0 to count - 1 do
      if a <> b && subset a b then
        match parent.(a) with
        | None -> parent.(a) <- Some b
        | Some p ->
            (* pick the smallest enclosing loop *)
            if subset b p then parent.(a) <- Some b
    done
  done;
  let rec depth_of i =
    match parent.(i) with None -> 1 | Some p -> 1 + depth_of p
  in
  let depths = Array.init count depth_of in
  (* Order loops innermost-first and remap parents. *)
  let order = Array.init count (fun i -> i) in
  Array.sort
    (fun a b ->
      match compare depths.(b) depths.(a) with
      | 0 -> compare (fst arr.(a)) (fst arr.(b))
      | c -> c)
    order;
  let new_index = Array.make count 0 in
  Array.iteri (fun pos old -> new_index.(old) <- pos) order;
  let loops =
    Array.map
      (fun old ->
        let header, body = arr.(old) in
        {
          header;
          body = Int_set.elements body;
          depth = depths.(old);
          parent = Option.map (fun p -> new_index.(p)) parent.(old);
        })
      order
  in
  (* Innermost loop per block: loops are innermost-first, so the first
     loop containing a block wins. *)
  let innermost = Array.make n (-1) in
  for b = 0 to n - 1 do
    let rec find i =
      if i >= Array.length loops then -1
      else if List.mem b loops.(i).body then i
      else find (i + 1)
    in
    innermost.(b) <- find 0
  done;
  { cfg; loops; innermost }

let loops t = Array.copy t.loops

let innermost_at_instr t i =
  let b = Cfg.block_of_instr t.cfg i in
  if t.innermost.(b) < 0 then None else Some t.innermost.(b)

let loop_of_header t h =
  let rec find i =
    if i >= Array.length t.loops then None
    else if t.loops.(i).header = h then Some i
    else find (i + 1)
  in
  find 0

let instr_in_loop t ~loop_idx i =
  let b = Cfg.block_of_instr t.cfg i in
  List.mem b t.loops.(loop_idx).body

let pp ppf t =
  Format.fprintf ppf "@[<v>%d loops@," (Array.length t.loops);
  Array.iteri
    (fun i l ->
      Format.fprintf ppf "L%d: header=B%d depth=%d parent=%s body=[%s]@," i
        l.header l.depth
        (match l.parent with None -> "-" | Some p -> "L" ^ string_of_int p)
        (String.concat "," (List.map string_of_int l.body)))
    t.loops;
  Format.fprintf ppf "@]"
