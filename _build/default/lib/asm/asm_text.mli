(** Textual assembly: print programs as assembler source and parse them
    back.

    The format is line-oriented MIPS-style assembly:

    {v
    # comment
    loop:                       ; labels end with ':'
        lh    r11, 0(r9)
        sll   r13, r11, 2
        addu  r13, r13, r12
        bgtz  r8, loop          ; branch targets: label or @index
        ext#3 r2, r9, r10       ; extended instruction, Conf field 3
        halt
    v}

    [#] and [;] start comments.  Register names are [r0]-[r31] or the
    MIPS conventional names ([zero at v0 v1 a0-a3 t0-t9 s0-s7 k0 k1 gp
    sp fp ra]).  Immediates are decimal or [0x] hexadecimal.
    Immediate-form ALU mnemonics are accepted in both the printer's
    spelling ([addui], [sltui]) and the conventional one ([addiu],
    [sltiu]).

    [to_string] and [parse] round-trip: [parse (to_string p)] yields a
    program equal to [p]. *)

val to_string : Program.t -> string
(** Assembler source with an [L<n>:] label at every branch/jump
    target. *)

val parse : ?name:string -> string -> (Program.t, string) result
(** Parse assembler source.  On failure the error message carries the
    offending line number. *)

val parse_exn : ?name:string -> string -> Program.t
(** @raise Invalid_argument on a parse error. *)
