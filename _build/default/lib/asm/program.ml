open T1000_isa

type t = {
  name : string;
  code : Instr.t array;
}

let validate code =
  let n = Array.length code in
  let check_target i tgt =
    if tgt < 0 || tgt >= n then
      invalid_arg
        (Printf.sprintf "Program.make: instruction %d targets slot %d/%d" i
           tgt n)
  in
  Array.iteri
    (fun i instr ->
      match instr with
      | Instr.Branch (_, _, _, tgt) | Instr.Jump tgt | Instr.Jal tgt ->
          check_target i tgt
      | Instr.Alu_rrr _ | Instr.Alu_rri _ | Instr.Shift_imm _
      | Instr.Shift_reg _ | Instr.Lui _ | Instr.Muldiv _ | Instr.Mfhi _
      | Instr.Mflo _ | Instr.Load _ | Instr.Store _ | Instr.Jr _
      | Instr.Jalr _ | Instr.Ext _ | Instr.Cfgld _ | Instr.Nop
      | Instr.Halt ->
          ())
    code

let make ?(name = "anonymous") code =
  let code = Array.copy code in
  validate code;
  { name; code }

let name t = t.name
let length t = Array.length t.code

let get t i =
  if i < 0 || i >= Array.length t.code then
    invalid_arg (Printf.sprintf "Program.get: slot %d" i)
  else t.code.(i)

let instrs t = Array.copy t.code

let fold f t init =
  let acc = ref init in
  Array.iteri (fun i instr -> acc := f i instr !acc) t.code;
  !acc

let iteri f t = Array.iteri f t.code

let max_ext_id t =
  fold
    (fun _ instr acc ->
      match instr with
      | Instr.Ext { eid; _ } -> max eid acc
      | Instr.Alu_rrr _ | Instr.Alu_rri _ | Instr.Shift_imm _
      | Instr.Shift_reg _ | Instr.Lui _ | Instr.Muldiv _ | Instr.Mfhi _
      | Instr.Mflo _ | Instr.Load _ | Instr.Store _ | Instr.Branch _
      | Instr.Jump _ | Instr.Jal _ | Instr.Jr _ | Instr.Jalr _
      | Instr.Cfgld _ | Instr.Nop | Instr.Halt ->
          acc)
    t (-1)

let pp ppf t =
  Format.fprintf ppf "@[<v>program %s (%d instructions)@," t.name
    (Array.length t.code);
  Array.iteri
    (fun i instr -> Format.fprintf ppf "%4d: %a@," i Instr.pp instr)
    t.code;
  Format.fprintf ppf "@]"
