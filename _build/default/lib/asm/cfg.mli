(** Control-flow graph over basic blocks.

    Blocks partition the program's instruction slots.  Leaders are: slot
    0, every branch/jump target, and every slot following a control
    instruction or [Halt].  Indirect jumps ([jr]/[jalr]) are handled
    conservatively: their successors are every return site (the slot
    after each [jal]); liveness additionally treats them as having all
    registers live (see {!Liveness}). *)

type block = {
  id : int;
  first : int;  (** index of the first instruction in the block *)
  last : int;   (** index of the last instruction (inclusive) *)
  succ : int list;  (** successor block ids *)
  pred : int list;  (** predecessor block ids *)
}

type t

val of_program : Program.t -> t
val program : t -> Program.t
val n_blocks : t -> int
val block : t -> int -> block
val blocks : t -> block array
(** Fresh copy. *)

val block_of_instr : t -> int -> int
(** Id of the block containing an instruction slot. *)

val entry : t -> int
(** Id of the entry block (always 0, containing slot 0). *)

val instr_indices : block -> int list
(** The slots of a block, in program order. *)

val has_indirect_jump : t -> int -> bool
(** Whether the given block ends in [jr]/[jalr]. *)

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** Graphviz rendering: one record node per basic block listing its
    instructions, edges for control flow. *)
