open T1000_isa

type t = {
  cfg : Cfg.t;
  live_in : Regset.t array;
  live_out : Regset.t array;
}

(* r0 is hard-wired to zero: reading it is not a real use. *)
let instr_use i =
  Regset.remove 0 (Regset.of_list (Instr.uses i))
let instr_def i = Regset.of_list (Instr.defs i)

let block_use_def cfg b =
  (* use = registers read before any write in the block;
     def = registers written anywhere in the block. *)
  let blk = Cfg.block cfg b in
  let program = Cfg.program cfg in
  let use = ref Regset.empty and def = ref Regset.empty in
  List.iter
    (fun i ->
      let instr = Program.get program i in
      use := Regset.union !use (Regset.diff (instr_use instr) !def);
      def := Regset.union !def (instr_def instr))
    (Cfg.instr_indices blk);
  (!use, !def)

let compute cfg =
  let n = Cfg.n_blocks cfg in
  let use = Array.make n Regset.empty and def = Array.make n Regset.empty in
  for b = 0 to n - 1 do
    let u, d = block_use_def cfg b in
    use.(b) <- u;
    def.(b) <- d
  done;
  let live_in = Array.make n Regset.empty in
  let live_out = Array.make n Regset.empty in
  let base_out b =
    if Cfg.has_indirect_jump cfg b then Regset.full else Regset.empty
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = n - 1 downto 0 do
      let out =
        List.fold_left
          (fun acc s -> Regset.union acc live_in.(s))
          (base_out b) (Cfg.block cfg b).Cfg.succ
      in
      let inn = Regset.union use.(b) (Regset.diff out def.(b)) in
      if not (Regset.equal out live_out.(b) && Regset.equal inn live_in.(b))
      then begin
        live_out.(b) <- out;
        live_in.(b) <- inn;
        changed := true
      end
    done
  done;
  { cfg; live_in; live_out }

let live_in t b = t.live_in.(b)
let live_out t b = t.live_out.(b)

let live_after_instr t i =
  let b = Cfg.block_of_instr t.cfg i in
  let blk = Cfg.block t.cfg b in
  let program = Cfg.program t.cfg in
  (* Walk backward from the block end to just after slot [i]. *)
  let live = ref t.live_out.(b) in
  let j = ref blk.Cfg.last in
  while !j > i do
    let instr = Program.get program !j in
    live :=
      Regset.union (instr_use instr) (Regset.diff !live (instr_def instr));
    decr j
  done;
  !live

let pp ppf t =
  Format.fprintf ppf "@[<v>liveness (%d blocks)@," (Cfg.n_blocks t.cfg);
  Array.iteri
    (fun b inn ->
      Format.fprintf ppf "B%d: in=%a out=%a@," b Regset.pp inn Regset.pp
        t.live_out.(b))
    t.live_in;
  Format.fprintf ppf "@]"
