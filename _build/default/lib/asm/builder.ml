open T1000_isa

(* An unresolved instruction is either final or carries a symbolic
   control-flow target to be backpatched at [build] time. *)
type pending =
  | Final of Instr.t
  | Branch_to of Op.branch_cond * Reg.t * Reg.t * string
  | Jump_to of string
  | Jal_to of string

type t = {
  name : string;
  mutable code : pending array;
  mutable len : int;
  labels : (string, int) Hashtbl.t;
  mutable gensym : int;
}

let create ?(name = "anonymous") () =
  {
    name;
    code = Array.make 64 (Final Instr.Nop);
    len = 0;
    labels = Hashtbl.create 16;
    gensym = 0;
  }

let push b p =
  if b.len = Array.length b.code then begin
    let bigger = Array.make (2 * b.len) (Final Instr.Nop) in
    Array.blit b.code 0 bigger 0 b.len;
    b.code <- bigger
  end;
  b.code.(b.len) <- p;
  b.len <- b.len + 1

let label b name =
  if Hashtbl.mem b.labels name then
    invalid_arg (Printf.sprintf "Builder.label: %S already defined" name)
  else Hashtbl.add b.labels name b.len

let fresh_label b prefix =
  b.gensym <- b.gensym + 1;
  Printf.sprintf "%s$%d" prefix b.gensym

let here b = b.len

let build b =
  let resolve name =
    match Hashtbl.find_opt b.labels name with
    | Some i -> i
    | None ->
        invalid_arg (Printf.sprintf "Builder.build: undefined label %S" name)
  in
  let code =
    Array.init b.len (fun i ->
        match b.code.(i) with
        | Final instr -> instr
        | Branch_to (c, rs, rt, l) -> Instr.Branch (c, rs, rt, resolve l)
        | Jump_to l -> Instr.Jump (resolve l)
        | Jal_to l -> Instr.Jal (resolve l))
  in
  Program.make ~name:b.name code

let raw b i = push b (Final i)

let add b rd rs rt = raw b (Instr.Alu_rrr (Op.Add, rd, rs, rt))
let addu b rd rs rt = raw b (Instr.Alu_rrr (Op.Addu, rd, rs, rt))
let sub b rd rs rt = raw b (Instr.Alu_rrr (Op.Sub, rd, rs, rt))
let subu b rd rs rt = raw b (Instr.Alu_rrr (Op.Subu, rd, rs, rt))
let and_ b rd rs rt = raw b (Instr.Alu_rrr (Op.And, rd, rs, rt))
let or_ b rd rs rt = raw b (Instr.Alu_rrr (Op.Or, rd, rs, rt))
let xor b rd rs rt = raw b (Instr.Alu_rrr (Op.Xor, rd, rs, rt))
let nor b rd rs rt = raw b (Instr.Alu_rrr (Op.Nor, rd, rs, rt))
let slt b rd rs rt = raw b (Instr.Alu_rrr (Op.Slt, rd, rs, rt))
let sltu b rd rs rt = raw b (Instr.Alu_rrr (Op.Sltu, rd, rs, rt))

let addi b rt rs imm = raw b (Instr.Alu_rri (Op.Add, rt, rs, imm))
let addiu b rt rs imm = raw b (Instr.Alu_rri (Op.Addu, rt, rs, imm))
let andi b rt rs imm = raw b (Instr.Alu_rri (Op.And, rt, rs, imm))
let ori b rt rs imm = raw b (Instr.Alu_rri (Op.Or, rt, rs, imm))
let xori b rt rs imm = raw b (Instr.Alu_rri (Op.Xor, rt, rs, imm))
let slti b rt rs imm = raw b (Instr.Alu_rri (Op.Slt, rt, rs, imm))
let sltiu b rt rs imm = raw b (Instr.Alu_rri (Op.Sltu, rt, rs, imm))
let lui b rt imm = raw b (Instr.Lui (rt, imm))

let sll b rd rt sh = raw b (Instr.Shift_imm (Op.Sll, rd, rt, sh))
let srl b rd rt sh = raw b (Instr.Shift_imm (Op.Srl, rd, rt, sh))
let sra b rd rt sh = raw b (Instr.Shift_imm (Op.Sra, rd, rt, sh))
let sllv b rd rt rs = raw b (Instr.Shift_reg (Op.Sll, rd, rt, rs))
let srlv b rd rt rs = raw b (Instr.Shift_reg (Op.Srl, rd, rt, rs))
let srav b rd rt rs = raw b (Instr.Shift_reg (Op.Sra, rd, rt, rs))

let mult b rs rt = raw b (Instr.Muldiv (Op.Mult, rs, rt))
let multu b rs rt = raw b (Instr.Muldiv (Op.Multu, rs, rt))
let div b rs rt = raw b (Instr.Muldiv (Op.Div, rs, rt))
let divu b rs rt = raw b (Instr.Muldiv (Op.Divu, rs, rt))
let mfhi b rd = raw b (Instr.Mfhi rd)
let mflo b rd = raw b (Instr.Mflo rd)

let lb b rt off rs = raw b (Instr.Load (Op.LB, rt, rs, off))
let lbu b rt off rs = raw b (Instr.Load (Op.LBU, rt, rs, off))
let lh b rt off rs = raw b (Instr.Load (Op.LH, rt, rs, off))
let lhu b rt off rs = raw b (Instr.Load (Op.LHU, rt, rs, off))
let lw b rt off rs = raw b (Instr.Load (Op.LW, rt, rs, off))
let sb b rt off rs = raw b (Instr.Store (Op.SB, rt, rs, off))
let sh b rt off rs = raw b (Instr.Store (Op.SH, rt, rs, off))
let sw b rt off rs = raw b (Instr.Store (Op.SW, rt, rs, off))

let beq b rs rt l = push b (Branch_to (Op.Beq, rs, rt, l))
let bne b rs rt l = push b (Branch_to (Op.Bne, rs, rt, l))
let blez b rs l = push b (Branch_to (Op.Blez, rs, Reg.zero, l))
let bgtz b rs l = push b (Branch_to (Op.Bgtz, rs, Reg.zero, l))
let bltz b rs l = push b (Branch_to (Op.Bltz, rs, Reg.zero, l))
let bgez b rs l = push b (Branch_to (Op.Bgez, rs, Reg.zero, l))
let j b l = push b (Jump_to l)
let jal b l = push b (Jal_to l)
let jr b rs = raw b (Instr.Jr rs)
let jalr b rd rs = raw b (Instr.Jalr (rd, rs))

let ext b eid dst src1 src2 = raw b (Instr.Ext { eid; dst; src1; src2 })
let nop b = raw b Instr.Nop
let halt b = raw b Instr.Halt

let li b rd v =
  let v32 = Word.sext32 v in
  if v32 >= -32768 && v32 <= 32767 then addiu b rd Reg.zero v32
  else if v32 >= 0 && v32 <= 0xFFFF then ori b rd Reg.zero v32
  else begin
    let u = Word.to_u32 v32 in
    lui b rd (u lsr 16);
    let low = u land 0xFFFF in
    if low <> 0 then ori b rd rd low
  end

let move b rd rs = addu b rd rs Reg.zero
