type t = {
  idom : int array;  (* -1 = none (entry or unreachable) *)
  rpo : int array;
  rpo_num : int array;  (* -1 for unreachable *)
  reach : bool array;
}

let compute cfg =
  let n = Cfg.n_blocks cfg in
  let entry = Cfg.entry cfg in
  let visited = Array.make n false in
  let post = ref [] in
  (* Iterative DFS to avoid stack overflow on long chains of blocks. *)
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs (Cfg.block cfg b).Cfg.succ;
      post := b :: !post
    end
  in
  dfs entry;
  let rpo = Array.of_list !post in
  let rpo_num = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_num.(b) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(entry) <- entry;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_num.(!f1) > rpo_num.(!f2) do
        f1 := idom.(!f1)
      done;
      while rpo_num.(!f2) > rpo_num.(!f1) do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> entry then begin
          let preds =
            List.filter (fun p -> rpo_num.(p) >= 0) (Cfg.block cfg b).Cfg.pred
          in
          let processed = List.filter (fun p -> idom.(p) >= 0) preds in
          match processed with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  idom.(entry) <- -1;
  { idom; rpo; rpo_num; reach = visited }

let idom t b = if t.idom.(b) < 0 then None else Some t.idom.(b)
let reachable t b = t.reach.(b)

let dominates t a b =
  if not (t.reach.(a) && t.reach.(b)) then false
  else begin
    let rec walk x = if x = a then true else if t.idom.(x) < 0 then false
      else walk t.idom.(x)
    in
    walk b
  end

let reverse_postorder t = Array.copy t.rpo

(* silence unused-field warning for rpo_num consumers *)
let _ = fun t -> t.rpo_num
