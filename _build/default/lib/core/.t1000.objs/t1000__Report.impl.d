lib/core/report.ml: Experiment Format List String T1000_hwcost
