lib/core/runner.mli: Cfg Extinstr Liveness Loops Mconfig Profile Program Stats T1000_asm T1000_dfg T1000_ooo T1000_profile T1000_select T1000_workloads Workload
