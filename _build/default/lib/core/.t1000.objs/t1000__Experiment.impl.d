lib/core/experiment.ml: Hashtbl List Mconfig Printf Registry Runner T1000_dfg T1000_hwcost T1000_ooo T1000_select T1000_workloads Workload
