lib/core/t1000.ml: Experiment Report Runner
