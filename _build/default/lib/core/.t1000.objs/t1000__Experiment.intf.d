lib/core/experiment.mli: T1000_hwcost T1000_ooo T1000_workloads Workload
