(** Entry point of the [t1000] library.

    - {!Runner} — run a workload under a named configuration
      (baseline / greedy / selective x PFU count x penalty);
    - {!Experiment} — drivers that regenerate every figure and table of
      the paper, plus the ablations listed in DESIGN.md;
    - {!Report} — text rendering of experiment results. *)

module Runner = Runner
module Experiment = Experiment
module Report = Report
