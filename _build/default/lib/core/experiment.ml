open T1000_ooo
open T1000_workloads

type ctx = {
  suite : Workload.t list;
  analyses : (string, Runner.analysis) Hashtbl.t;
  baselines : (string, Runner.run) Hashtbl.t;
}

let create_ctx ?(workloads = Registry.all) () =
  {
    suite = workloads;
    analyses = Hashtbl.create 8;
    baselines = Hashtbl.create 8;
  }

let workloads ctx = ctx.suite

let analysis ctx (w : Workload.t) =
  match Hashtbl.find_opt ctx.analyses w.Workload.name with
  | Some a -> a
  | None ->
      let a = Runner.analyze w in
      Hashtbl.replace ctx.analyses w.Workload.name a;
      a

let baseline ctx (w : Workload.t) =
  match Hashtbl.find_opt ctx.baselines w.Workload.name with
  | Some r -> r
  | None ->
      let r =
        Runner.run ~analysis:(analysis ctx w) w (Runner.setup Runner.Baseline)
      in
      Hashtbl.replace ctx.baselines w.Workload.name r;
      r

let baseline_stats ctx w = (baseline ctx w).Runner.stats
let run_setup ctx w setup = Runner.run ~analysis:(analysis ctx w) w setup

let speedup_of ctx w setup =
  let r = run_setup ctx w setup in
  Runner.speedup ~baseline:(baseline ctx w) r

(* -------- Figure 2 -------- *)

type f2_row = {
  f2_name : string;
  f2_greedy_unlimited : float;
  f2_greedy_2pfu : float;
}

let figure2 ctx =
  List.map
    (fun w ->
      {
        f2_name = w.Workload.name;
        f2_greedy_unlimited =
          speedup_of ctx w (Runner.setup ~n_pfus:None ~penalty:0 Runner.Greedy);
        f2_greedy_2pfu =
          speedup_of ctx w
            (Runner.setup ~n_pfus:(Some 2) ~penalty:10 Runner.Greedy);
      })
    ctx.suite

(* -------- Section 4.1 table -------- *)

type t41_row = {
  t41_name : string;
  t41_distinct : int;
  t41_shortest : int;
  t41_longest : int;
  t41_occurrences : int;
}

let table41 ctx =
  List.map
    (fun w ->
      let a = analysis ctx w in
      let r =
        T1000_select.Greedy.select a.Runner.cfg a.Runner.live a.Runner.profile
      in
      let entries = T1000_select.Extinstr.entries r.T1000_select.Greedy.table in
      let sizes =
        List.map
          (fun e -> T1000_dfg.Dfg.size e.T1000_select.Extinstr.dfg)
          entries
      in
      {
        t41_name = w.Workload.name;
        t41_distinct = List.length entries;
        t41_shortest = List.fold_left min max_int sizes;
        t41_longest = List.fold_left max 0 sizes;
        t41_occurrences =
          T1000_select.Extinstr.total_occurrences r.T1000_select.Greedy.table;
      })
    ctx.suite

(* -------- Figure 6 -------- *)

type f6_row = {
  f6_name : string;
  f6_sel_2 : float;
  f6_sel_4 : float;
  f6_sel_unlimited : float;
}

let figure6 ctx =
  List.map
    (fun w ->
      let sel n = Runner.setup ~n_pfus:n ~penalty:10 Runner.Selective in
      {
        f6_name = w.Workload.name;
        f6_sel_2 = speedup_of ctx w (sel (Some 2));
        f6_sel_4 = speedup_of ctx w (sel (Some 4));
        f6_sel_unlimited = speedup_of ctx w (sel None);
      })
    ctx.suite

(* -------- Section 5.2 penalty sweep -------- *)

type s52_row = {
  s52_name : string;
  s52_points : (int * float * float) list;
}

let penalty_sweep ?(penalties = [ 10; 50; 100; 250; 500 ]) ctx =
  List.map
    (fun w ->
      {
        s52_name = w.Workload.name;
        s52_points =
          List.map
            (fun p ->
              ( p,
                speedup_of ctx w
                  (Runner.setup ~n_pfus:(Some 2) ~penalty:p Runner.Selective),
                speedup_of ctx w
                  (Runner.setup ~n_pfus:(Some 2) ~penalty:p Runner.Greedy) ))
            penalties;
      })
    ctx.suite

(* -------- Figure 7 -------- *)

type f7_result = {
  f7_costs : (string * int list) list;
  f7_histogram : T1000_hwcost.Area.t;
  f7_max : int;
}

let figure7 ctx =
  let costs =
    List.map
      (fun w ->
        let r =
          run_setup ctx w (Runner.setup ~n_pfus:(Some 4) Runner.Selective)
        in
        ( w.Workload.name,
          List.map
            (fun e -> e.T1000_select.Extinstr.lut_cost)
            (T1000_select.Extinstr.entries r.Runner.table) ))
      ctx.suite
  in
  let all = List.concat_map snd costs in
  {
    f7_costs = costs;
    f7_histogram = T1000_hwcost.Area.histogram all;
    f7_max = List.fold_left max 0 all;
  }

(* -------- Ablations -------- *)

type sweep_row = {
  sweep_name : string;
  sweep_points : (string * float) list;
}

let pfu_count_sweep ?(counts = [ 1; 2; 3; 4; 6; 8 ]) ctx =
  List.map
    (fun w ->
      {
        sweep_name = w.Workload.name;
        sweep_points =
          List.map
            (fun n ->
              ( string_of_int n,
                speedup_of ctx w
                  (Runner.setup ~n_pfus:(Some n) Runner.Selective) ))
            counts;
      })
    ctx.suite

let width_threshold_sweep ?(widths = [ 8; 12; 18; 24; 32 ]) ctx =
  List.map
    (fun w ->
      {
        sweep_name = w.Workload.name;
        sweep_points =
          List.map
            (fun width ->
              let s = Runner.setup ~n_pfus:None ~penalty:0 Runner.Greedy in
              let s =
                {
                  s with
                  Runner.extract =
                    {
                      s.Runner.extract with
                      T1000_dfg.Extract.width_threshold = width;
                    };
                }
              in
              (string_of_int width, speedup_of ctx w s))
            widths;
      })
    ctx.suite

let gain_threshold_sweep ?(thresholds = [ 0.001; 0.005; 0.02 ]) ctx =
  List.map
    (fun w ->
      {
        sweep_name = w.Workload.name;
        sweep_points =
          List.map
            (fun th ->
              let s = Runner.setup ~n_pfus:(Some 2) Runner.Selective in
              let s = { s with Runner.gain_threshold = th } in
              (Printf.sprintf "%.3f" th, speedup_of ctx w s))
            thresholds;
      })
    ctx.suite

let replacement_sweep ctx =
  let policies =
    [
      ("lru", Mconfig.Lru);
      ("fifo", Mconfig.Fifo);
      ("rand", Mconfig.Random_det);
    ]
  in
  List.map
    (fun w ->
      {
        sweep_name = w.Workload.name;
        sweep_points =
          List.map
            (fun (label, pol) ->
              let s = Runner.setup ~n_pfus:(Some 2) Runner.Selective in
              let s = { s with Runner.replacement = pol } in
              (label, speedup_of ctx w s))
            policies;
      })
    ctx.suite

let machine_sweep ctx =
  let machines =
    [
      ( "2-wide/ruu32",
        {
          Mconfig.default with
          Mconfig.fetch_width = 2;
          decode_width = 2;
          issue_width = 2;
          commit_width = 2;
          ruu_size = 32;
          n_int_alu = 2;
          n_mem_ports = 1;
        } );
      ("4-wide/ruu64", Mconfig.default);
      ( "8-wide/ruu128",
        {
          Mconfig.default with
          Mconfig.fetch_width = 8;
          decode_width = 8;
          issue_width = 8;
          commit_width = 8;
          ruu_size = 128;
          n_int_alu = 8;
          n_mem_ports = 4;
        } );
    ]
  in
  List.map
    (fun w ->
      {
        sweep_name = w.Workload.name;
        sweep_points =
          List.map
            (fun (label, m) ->
              (* Compare like with like: the no-PFU baseline must run on
                 the same machine width. *)
              let base_setup =
                { (Runner.setup Runner.Baseline) with Runner.machine = m }
              in
              let sel_setup =
                {
                  (Runner.setup ~n_pfus:(Some 4) Runner.Selective) with
                  Runner.machine = m;
                }
              in
              let b = run_setup ctx w base_setup in
              let r = run_setup ctx w sel_setup in
              (label, Runner.speedup ~baseline:b r))
            machines;
      })
    ctx.suite

let latency_model_sweep ctx =
  let models = [ ("1-cycle", `Single_cycle); ("lut-levels", `Lut_levels) ] in
  List.map
    (fun w ->
      {
        sweep_name = w.Workload.name;
        sweep_points =
          List.map
            (fun (label, m) ->
              let s = Runner.setup ~n_pfus:(Some 4) Runner.Selective in
              let s = { s with Runner.ext_timing = m } in
              (label, speedup_of ctx w s))
            models;
      })
    ctx.suite

let branch_predictor_sweep ctx =
  let preds =
    [ ("perfect", Mconfig.Perfect); ("bimodal-2k", Mconfig.Bimodal 2048) ]
  in
  List.map
    (fun w ->
      {
        sweep_name = w.Workload.name;
        sweep_points =
          List.map
            (fun (label, bp) ->
              let machine = { Mconfig.default with Mconfig.branch_pred = bp } in
              let base_setup =
                { (Runner.setup Runner.Baseline) with Runner.machine = machine }
              in
              let sel_setup =
                {
                  (Runner.setup ~n_pfus:(Some 4) Runner.Selective) with
                  Runner.machine = machine;
                }
              in
              let b = run_setup ctx w base_setup in
              let r = run_setup ctx w sel_setup in
              (label, Runner.speedup ~baseline:b r))
            preds;
      })
    ctx.suite

let prefetch_sweep ?(penalties = [ 100; 500 ]) ctx =
  List.map
    (fun w ->
      {
        sweep_name = w.Workload.name;
        sweep_points =
          List.concat_map
            (fun pen ->
              List.map
                (fun (label, pf) ->
                  let s =
                    Runner.setup ~n_pfus:(Some 2) ~penalty:pen
                      Runner.Selective
                  in
                  let s = { s with Runner.config_prefetch = pf } in
                  (Printf.sprintf "%d%s" pen label, speedup_of ctx w s))
                [ ("cyc", false); ("cyc+pf", true) ])
            penalties;
      })
    ctx.suite
