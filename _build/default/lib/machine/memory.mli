(** Sparse byte-addressable memory.

    Pages (4 KiB) are allocated on first touch, so the full 32-bit
    address space is usable without preallocation.  All multi-byte
    accesses are little-endian and need not be aligned (the ISA's loads
    and stores in practice are; the interpreter checks alignment
    separately). *)

type t

val create : unit -> t

val load_byte : t -> int -> int
(** Unsigned byte in [0, 255].  Untouched memory reads as zero. *)

val store_byte : t -> int -> int -> unit
(** [store_byte m addr v] writes the low 8 bits of [v]. *)

val load_half : t -> int -> int
(** Unsigned 16-bit little-endian value. *)

val store_half : t -> int -> int -> unit

val load_word : t -> int -> T1000_isa.Word.t
(** Sign-extended 32-bit little-endian value. *)

val store_word : t -> int -> T1000_isa.Word.t -> unit

val clear : t -> unit
(** Drop every page, resetting all of memory to zero. *)

val touched_pages : t -> int
(** Number of 4 KiB pages allocated so far (for stats and tests). *)

val page_bytes : int

val blit_words : t -> int -> T1000_isa.Word.t array -> unit
(** Store an array of 32-bit words at consecutive word addresses starting
    at the given byte address. *)

val read_words : t -> int -> int -> T1000_isa.Word.t array
(** [read_words m addr n] reads [n] consecutive words. *)
