open T1000_isa

let page_bits = 12
let page_bytes = 1 lsl page_bits
let page_mask = page_bytes - 1

type t = { pages : (int, Bytes.t) Hashtbl.t }

let create () = { pages = Hashtbl.create 64 }

let page_of t addr =
  let key = addr lsr page_bits in
  match Hashtbl.find_opt t.pages key with
  | Some p -> p
  | None ->
      let p = Bytes.make page_bytes '\000' in
      Hashtbl.add t.pages key p;
      p

let normalize addr = addr land 0xFFFF_FFFF

let load_byte t addr =
  let addr = normalize addr in
  match Hashtbl.find_opt t.pages (addr lsr page_bits) with
  | None -> 0
  | Some p -> Char.code (Bytes.unsafe_get p (addr land page_mask))

let store_byte t addr v =
  let addr = normalize addr in
  let p = page_of t addr in
  Bytes.unsafe_set p (addr land page_mask) (Char.unsafe_chr (v land 0xFF))

let load_half t addr = load_byte t addr lor (load_byte t (addr + 1) lsl 8)

let store_half t addr v =
  store_byte t addr v;
  store_byte t (addr + 1) (v lsr 8)

let load_word t addr =
  let addr = normalize addr in
  (* Fast path: word within one page. *)
  if addr land page_mask <= page_bytes - 4 then
    match Hashtbl.find_opt t.pages (addr lsr page_bits) with
    | None -> 0
    | Some p ->
        let off = addr land page_mask in
        let b0 = Char.code (Bytes.unsafe_get p off)
        and b1 = Char.code (Bytes.unsafe_get p (off + 1))
        and b2 = Char.code (Bytes.unsafe_get p (off + 2))
        and b3 = Char.code (Bytes.unsafe_get p (off + 3)) in
        Word.sext32 (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))
  else
    Word.sext32
      (load_byte t addr
      lor (load_byte t (addr + 1) lsl 8)
      lor (load_byte t (addr + 2) lsl 16)
      lor (load_byte t (addr + 3) lsl 24))

let store_word t addr v =
  let addr = normalize addr in
  let v = Word.to_u32 v in
  if addr land page_mask <= page_bytes - 4 then begin
    let p = page_of t addr in
    let off = addr land page_mask in
    Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xFF));
    Bytes.unsafe_set p (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
    Bytes.unsafe_set p (off + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
    Bytes.unsafe_set p (off + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))
  end
  else begin
    store_byte t addr v;
    store_byte t (addr + 1) (v lsr 8);
    store_byte t (addr + 2) (v lsr 16);
    store_byte t (addr + 3) (v lsr 24)
  end

let clear t = Hashtbl.reset t.pages
let touched_pages t = Hashtbl.length t.pages

let blit_words t addr ws =
  Array.iteri (fun i w -> store_word t (addr + (4 * i)) w) ws

let read_words t addr n = Array.init n (fun i -> load_word t (addr + (4 * i)))
