(** Dynamic instruction trace entries.

    The functional interpreter ({!Interp}) produces one entry per
    executed instruction; the timing simulator ({!T1000_ooo.Sim})
    consumes them in order.  Because the paper simulates with perfect
    branch prediction, this committed-order stream is exactly the fetch
    stream, making trace-driven timing exact (DESIGN.md Section 5). *)

open T1000_isa

type entry = {
  index : int;  (** static instruction slot *)
  instr : Instr.t;
  mem_addr : int;  (** effective byte address of a load/store, [-1] if the
                       instruction accesses no memory *)
}

val pp_entry : Format.formatter -> entry -> unit

(** Observation record for profiling hooks: the entry plus the dynamic
    operand and result values. *)
type obs = {
  entry : entry;
  src1 : Word.t;  (** first register operand value (0 when absent) *)
  src2 : Word.t;  (** second register operand value (0 when absent) *)
  result : Word.t;  (** value written (0 when the instruction writes
                        no register) *)
}
