open T1000_isa
open T1000_asm

exception Fault of string

let fault fmt = Format.kasprintf (fun s -> raise (Fault s)) fmt

type t = {
  program : Program.t;
  code : Instr.t array;  (* unshared copy for fast unsafe access *)
  regs : Regfile.t;
  mem : Memory.t;
  ext_eval : int -> Word.t -> Word.t -> Word.t;
  mutable pc : int;
  mutable halted : bool;
  mutable steps : int;
  mutable observer : (Trace.obs -> unit) option;
}

let no_ext eid _ _ = fault "extended instruction %d has no evaluator" eid

let create ?regs ?mem ?(ext_eval = no_ext) program =
  let regs = match regs with Some r -> r | None -> Regfile.create () in
  let mem = match mem with Some m -> m | None -> Memory.create () in
  {
    program;
    code = Program.instrs program;
    regs;
    mem;
    ext_eval;
    pc = 0;
    halted = false;
    steps = 0;
    observer = None;
  }

let set_observer t f = t.observer <- Some f
let clear_observer t = t.observer <- None
let pc t = t.pc
let halted t = t.halted
let steps t = t.steps
let mem t = t.mem
let regs t = t.regs
let program t = t.program

let check_align addr n =
  if addr land (n - 1) <> 0 then
    fault "unaligned %d-byte access at 0x%08x" n addr

let alu_eval (op : Op.alu) a b =
  match op with
  | Op.Add | Op.Addu -> Word.add a b
  | Op.Sub | Op.Subu -> Word.sub a b
  | Op.And -> Word.logand a b
  | Op.Or -> Word.logor a b
  | Op.Xor -> Word.logxor a b
  | Op.Nor -> Word.lognor a b
  | Op.Slt -> Word.slt a b
  | Op.Sltu -> Word.sltu a b

let shift_eval (op : Op.shift) v sh =
  match op with
  | Op.Sll -> Word.sll v sh
  | Op.Srl -> Word.srl v sh
  | Op.Sra -> Word.sra v sh

let step t =
  if t.halted then None
  else begin
    let n = Array.length t.code in
    if t.pc < 0 || t.pc >= n then
      fault "execution left the program at slot %d" t.pc;
    let index = t.pc in
    let instr = Array.unsafe_get t.code index in
    let regs = t.regs in
    let g r = Regfile.get regs r in
    (* Observation bookkeeping (cheap; only consulted when an observer is
       installed). *)
    let o_src1 = ref 0 and o_src2 = ref 0 and o_result = ref 0 in
    let mem_addr = ref (-1) in
    let next = ref (index + 1) in
    (match instr with
    | Instr.Alu_rrr (op, rd, rs, rt) ->
        let a = g rs and b = g rt in
        let v = alu_eval op a b in
        o_src1 := a;
        o_src2 := b;
        o_result := v;
        Regfile.set regs rd v
    | Instr.Alu_rri (op, rt, rs, imm) ->
        let a = g rs in
        let v = alu_eval op a (Word.sext32 imm) in
        o_src1 := a;
        o_src2 := imm;
        o_result := v;
        Regfile.set regs rt v
    | Instr.Shift_imm (op, rd, rt, sh) ->
        let a = g rt in
        let v = shift_eval op a sh in
        o_src1 := a;
        o_src2 := sh;
        o_result := v;
        Regfile.set regs rd v
    | Instr.Shift_reg (op, rd, rt, rs) ->
        let a = g rt and sh = g rs in
        let v = shift_eval op a (sh land 31) in
        o_src1 := a;
        o_src2 := sh;
        o_result := v;
        Regfile.set regs rd v
    | Instr.Lui (rt, imm) ->
        let v = Word.sext32 (imm lsl 16) in
        o_result := v;
        Regfile.set regs rt v
    | Instr.Muldiv (op, rs, rt) ->
        let a = g rs and b = g rt in
        o_src1 := a;
        o_src2 := b;
        (match op with
        | Op.Mult ->
            Regfile.set_lo regs (Word.mul_lo a b);
            Regfile.set_hi regs (Word.mul_hi_signed a b)
        | Op.Multu ->
            Regfile.set_lo regs (Word.mul_lo a b);
            Regfile.set_hi regs (Word.mul_hi_unsigned a b)
        | Op.Div ->
            let q, r = Word.div_signed a b in
            Regfile.set_lo regs q;
            Regfile.set_hi regs r
        | Op.Divu ->
            let q, r = Word.div_unsigned a b in
            Regfile.set_lo regs q;
            Regfile.set_hi regs r);
        o_result := Regfile.lo regs
    | Instr.Mfhi rd ->
        let v = Regfile.hi regs in
        o_result := v;
        Regfile.set regs rd v
    | Instr.Mflo rd ->
        let v = Regfile.lo regs in
        o_result := v;
        Regfile.set regs rd v
    | Instr.Load (w, rt, rs, off) ->
        let base = g rs in
        let addr = Word.to_u32 (Word.add base (Word.sext32 off)) in
        mem_addr := addr;
        o_src1 := base;
        let v =
          match w with
          | Op.LB -> Word.sext8 (Memory.load_byte t.mem addr)
          | Op.LBU -> Memory.load_byte t.mem addr
          | Op.LH ->
              check_align addr 2;
              Word.sext16 (Memory.load_half t.mem addr)
          | Op.LHU ->
              check_align addr 2;
              Memory.load_half t.mem addr
          | Op.LW ->
              check_align addr 4;
              Memory.load_word t.mem addr
        in
        o_result := v;
        Regfile.set regs rt v
    | Instr.Store (w, rt, rs, off) ->
        let base = g rs in
        let addr = Word.to_u32 (Word.add base (Word.sext32 off)) in
        let v = g rt in
        mem_addr := addr;
        o_src1 := base;
        o_src2 := v;
        (match w with
        | Op.SB -> Memory.store_byte t.mem addr v
        | Op.SH ->
            check_align addr 2;
            Memory.store_half t.mem addr v
        | Op.SW ->
            check_align addr 4;
            Memory.store_word t.mem addr v)
    | Instr.Branch (c, rs, rt, tgt) ->
        let a = g rs and b = g rt in
        o_src1 := a;
        o_src2 := b;
        let taken =
          match c with
          | Op.Beq -> a = b
          | Op.Bne -> a <> b
          | Op.Blez -> a <= 0
          | Op.Bgtz -> a > 0
          | Op.Bltz -> a < 0
          | Op.Bgez -> a >= 0
        in
        if taken then next := tgt
    | Instr.Jump tgt -> next := tgt
    | Instr.Jal tgt ->
        let ret = Encoding.address_of_index (index + 1) in
        o_result := ret;
        Regfile.set regs Reg.ra (Word.sext32 ret);
        next := tgt
    | Instr.Jr rs ->
        let a = g rs in
        o_src1 := a;
        next := Encoding.index_of_address (Word.to_u32 a)
    | Instr.Jalr (rd, rs) ->
        let a = g rs in
        let ret = Encoding.address_of_index (index + 1) in
        o_src1 := a;
        o_result := ret;
        Regfile.set regs rd (Word.sext32 ret);
        next := Encoding.index_of_address (Word.to_u32 a)
    | Instr.Ext { eid; dst; src1; src2 } ->
        let a = g src1 and b = g src2 in
        let v = t.ext_eval eid a b in
        o_src1 := a;
        o_src2 := b;
        o_result := v;
        Regfile.set regs dst v
    | Instr.Cfgld _ | Instr.Nop -> ()
    | Instr.Halt -> t.halted <- true);
    t.pc <- !next;
    t.steps <- t.steps + 1;
    let entry = { Trace.index; instr; mem_addr = !mem_addr } in
    (match t.observer with
    | None -> ()
    | Some f ->
        f { Trace.entry; src1 = !o_src1; src2 = !o_src2; result = !o_result });
    Some entry
  end

let run ?(max_steps = 1_000_000_000) t =
  let start = t.steps in
  let rec go () =
    if t.halted then t.steps - start
    else if t.steps - start >= max_steps then
      fault "program did not halt within %d steps" max_steps
    else begin
      ignore (step t);
      go ()
    end
  in
  go ()
