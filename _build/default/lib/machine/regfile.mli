(** Architectural register file: 32 GPRs (r0 hard-wired to zero) plus the
    HI and LO multiply/divide registers. *)

open T1000_isa

type t

val create : unit -> t

val get : t -> Reg.t -> Word.t
val set : t -> Reg.t -> Word.t -> unit
(** Writes to r0 are silently discarded. *)

val hi : t -> Word.t
val lo : t -> Word.t
val set_hi : t -> Word.t -> unit
val set_lo : t -> Word.t -> unit

val reset : t -> unit
val copy : t -> t
val pp : Format.formatter -> t -> unit
