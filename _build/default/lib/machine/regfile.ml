open T1000_isa

(* Slots 0-31 are the GPRs; 32 is HI, 33 is LO. *)
type t = { regs : int array }

let create () = { regs = Array.make Instr.dep_reg_count 0 }
let get t r = Array.unsafe_get t.regs (Reg.to_int r)

let set t r v =
  let i = Reg.to_int r in
  if i <> 0 then Array.unsafe_set t.regs i v

let hi t = t.regs.(Instr.hi_reg)
let lo t = t.regs.(Instr.lo_reg)
let set_hi t v = t.regs.(Instr.hi_reg) <- v
let set_lo t v = t.regs.(Instr.lo_reg) <- v
let reset t = Array.fill t.regs 0 (Array.length t.regs) 0
let copy t = { regs = Array.copy t.regs }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to 31 do
    Format.fprintf ppf "r%-2d = %a@," i Word.pp t.regs.(i)
  done;
  Format.fprintf ppf "hi  = %a@,lo  = %a@]" Word.pp (hi t) Word.pp (lo t)
