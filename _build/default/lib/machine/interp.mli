(** Functional (architectural) interpreter.

    Executes a {!T1000_asm.Program} over a {!Memory} and {!Regfile},
    producing a pull-based dynamic trace.  The timing simulator and the
    profiler both consume this stream; memory usage is O(1) in trace
    length.

    Extended instructions are evaluated through the [ext_eval] callback
    (the dataflow-graph evaluators built by {!T1000_select.Extinstr});
    programs without extended instructions can omit it. *)

open T1000_isa

exception Fault of string
(** Raised on: execution falling off the end of the program, an
    unaligned halfword/word access, a [jr] to a non-text address, an
    extended instruction with no evaluator, or exceeding [max_steps]. *)

type t

val create :
  ?regs:Regfile.t ->
  ?mem:Memory.t ->
  ?ext_eval:(int -> Word.t -> Word.t -> Word.t) ->
  T1000_asm.Program.t ->
  t
(** [ext_eval eid v1 v2] must return the result of extended instruction
    [eid] on operand values [v1], [v2]. *)

val step : t -> Trace.entry option
(** Execute one instruction; [None] once halted.  Idempotent after
    halt. *)

val run : ?max_steps:int -> t -> int
(** Run to [Halt]; returns the number of instructions executed
    (default [max_steps] = 1 billion).
    @raise Fault if the program does not halt within [max_steps]. *)

val set_observer : t -> (Trace.obs -> unit) -> unit
(** Install a profiling hook called after every executed instruction. *)

val clear_observer : t -> unit

val pc : t -> int
(** Slot index of the next instruction. *)

val halted : t -> bool
val steps : t -> int
(** Instructions executed so far. *)

val mem : t -> Memory.t
val regs : t -> Regfile.t
val program : t -> T1000_asm.Program.t
