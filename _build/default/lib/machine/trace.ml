open T1000_isa

type entry = {
  index : int;
  instr : Instr.t;
  mem_addr : int;
}

let pp_entry ppf e =
  if e.mem_addr >= 0 then
    Format.fprintf ppf "%6d: %a  [0x%08x]" e.index Instr.pp e.instr e.mem_addr
  else Format.fprintf ppf "%6d: %a" e.index Instr.pp e.instr

type obs = {
  entry : entry;
  src1 : Word.t;
  src2 : Word.t;
  result : Word.t;
}
