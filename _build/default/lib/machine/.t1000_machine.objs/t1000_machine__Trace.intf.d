lib/machine/trace.mli: Format Instr T1000_isa Word
