lib/machine/trace.ml: Format Instr T1000_isa Word
