lib/machine/memory.mli: T1000_isa
