lib/machine/memory.ml: Array Bytes Char Hashtbl T1000_isa Word
