lib/machine/regfile.mli: Format Reg T1000_isa Word
