lib/machine/interp.mli: Memory Regfile T1000_asm T1000_isa Trace Word
