lib/machine/regfile.ml: Array Format Instr Reg T1000_isa Word
