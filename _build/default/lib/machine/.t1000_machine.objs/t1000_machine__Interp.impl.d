lib/machine/interp.ml: Array Encoding Format Instr Memory Op Program Reg Regfile T1000_asm T1000_isa Trace Word
