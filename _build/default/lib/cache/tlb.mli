(** Translation lookaside buffer timing model.

    Fully-associative, LRU, fixed page size.  Like {!Cache}, only
    hit/miss timing is modelled — there is no real address translation
    in the simulator (the paper's SimpleScalar substrate behaves the
    same way). *)

type t

val create : name:string -> entries:int -> page_bytes:int -> t
(** @raise Invalid_argument unless [entries > 0] and [page_bytes] is a
    power of two. *)

val access : t -> addr:int -> bool
(** [true] on hit; a miss installs the page. *)

val name : t -> string
val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset_stats : t -> unit
val flush : t -> unit
val pp_stats : Format.formatter -> t -> unit
