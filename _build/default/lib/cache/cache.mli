(** Set-associative cache timing model.

    Write-back, write-allocate, true-LRU replacement.  Only tags are
    modelled (the simulator keeps data in {!T1000_machine.Memory}); the
    cache answers hit/miss and tracks dirty evictions so the hierarchy
    can charge write-back traffic. *)

type t

type access_result = {
  hit : bool;
  dirty_evict : int;
      (** address of a dirty line written back by this access's fill,
          [-1] if none *)
}

val create :
  name:string -> sets:int -> ways:int -> line_bytes:int -> t
(** [sets], [ways] and [line_bytes] must be positive; [sets] and
    [line_bytes] powers of two.
    @raise Invalid_argument otherwise. *)

val access : t -> addr:int -> write:bool -> access_result
(** Look up the line containing [addr]; on a miss, fill it, evicting the
    LRU way. *)

val probe : t -> addr:int -> bool
(** Hit/miss without updating any state. *)

val name : t -> string
val size_bytes : t -> int
val line_bytes : t -> int

val accesses : t -> int
val misses : t -> int
val writebacks : t -> int
val miss_rate : t -> float
val reset_stats : t -> unit
val flush : t -> unit
(** Invalidate every line (statistics are kept). *)

val pp_stats : Format.formatter -> t -> unit
