type t = {
  name : string;
  page_shift : int;
  pages : int array;  (* -1 = empty *)
  lru : int array;
  mutable accesses : int;
  mutable misses : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let create ~name ~entries ~page_bytes =
  if entries <= 0 then invalid_arg "Tlb.create: entries <= 0";
  if not (is_pow2 page_bytes) then
    invalid_arg "Tlb.create: page_bytes not a power of 2";
  {
    name;
    page_shift = log2 page_bytes;
    pages = Array.make entries (-1);
    lru = Array.init entries (fun i -> i);
    accesses = 0;
    misses = 0;
  }

let touch t i =
  let age = t.lru.(i) in
  for j = 0 to Array.length t.lru - 1 do
    if t.lru.(j) < age then t.lru.(j) <- t.lru.(j) + 1
  done;
  t.lru.(i) <- 0

let access t ~addr =
  t.accesses <- t.accesses + 1;
  let page = addr lsr t.page_shift in
  let n = Array.length t.pages in
  let rec find i = if i >= n then -1 else if t.pages.(i) = page then i else find (i + 1) in
  let i = find 0 in
  if i >= 0 then begin
    touch t i;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* victim: empty entry if any, else oldest *)
    let rec victim i best best_age =
      if i >= n then best
      else if t.pages.(i) = -1 then i
      else if t.lru.(i) > best_age then victim (i + 1) i t.lru.(i)
      else victim (i + 1) best best_age
    in
    let v = victim 0 0 (-1) in
    t.pages.(v) <- page;
    touch t v;
    false
  end

let name t = t.name
let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0

let flush t = Array.fill t.pages 0 (Array.length t.pages) (-1)

let pp_stats ppf t =
  Format.fprintf ppf "%s: %d accesses, %d misses (%.2f%%)" t.name t.accesses
    t.misses (100.0 *. miss_rate t)
