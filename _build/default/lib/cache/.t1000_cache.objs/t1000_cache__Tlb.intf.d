lib/cache/tlb.mli: Format
