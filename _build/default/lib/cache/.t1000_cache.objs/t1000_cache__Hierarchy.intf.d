lib/cache/hierarchy.mli: Cache Format Tlb
