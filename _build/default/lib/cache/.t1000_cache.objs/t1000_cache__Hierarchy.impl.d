lib/cache/hierarchy.ml: Cache Format Tlb
