lib/cache/tlb.ml: Array Format
