lib/cache/cache.ml: Array Format
