(** Two-level memory hierarchy with TLBs.

    Separate L1 instruction and data caches backed by a unified L2, plus
    instruction and data TLBs — the configuration simulated in Section 3
    of the paper.  Latencies are additive: an access that misses at L1
    and hits at L2 costs [l1_hit + l2_hit]; an L2 miss adds [mem]; a TLB
    miss adds [tlb_miss] on top.  Dirty write-backs are counted but
    buffered (they add no latency to the triggering access). *)

type config = {
  l1i_sets : int;
  l1i_ways : int;
  l1i_line : int;
  l1d_sets : int;
  l1d_ways : int;
  l1d_line : int;
  l2_sets : int;
  l2_ways : int;
  l2_line : int;
  itlb_entries : int;
  dtlb_entries : int;
  page_bytes : int;
  l1_hit : int;  (** L1 hit latency, cycles *)
  l2_hit : int;  (** additional cycles for an L2 hit *)
  mem : int;  (** additional cycles for an L2 miss *)
  tlb_miss : int;  (** cycles added by a TLB miss *)
}

val default_config : config
(** 16 KiB 2-way L1s with 32-byte lines, 256 KiB 4-way unified L2 with
    64-byte lines, 32/64-entry I/D TLBs with 4 KiB pages; latencies
    1 / +6 / +34 / 30 — the SimpleScalar-era defaults the paper's
    methodology section describes. *)

type t

val create : config -> t

val fetch_latency : t -> addr:int -> int
(** Latency of fetching the instruction block containing [addr]. *)

val load_latency : t -> addr:int -> int
val store_latency : t -> addr:int -> int

val l1i : t -> Cache.t
val l1d : t -> Cache.t
val l2 : t -> Cache.t
val itlb : t -> Tlb.t
val dtlb : t -> Tlb.t

val reset_stats : t -> unit
val flush : t -> unit
val pp_stats : Format.formatter -> t -> unit
