type t = {
  name : string;
  sets : int;
  ways : int;
  line_bytes : int;
  line_shift : int;
  set_mask : int;
  (* tags.(set * ways + way): line address (addr lsr line_shift), -1 empty *)
  tags : int array;
  (* lru.(set * ways + way): age, 0 = most recent *)
  lru : int array;
  dirty : bool array;
  mutable accesses : int;
  mutable misses : int;
  mutable writebacks : int;
}

type access_result = {
  hit : bool;
  dirty_evict : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let create ~name ~sets ~ways ~line_bytes =
  if not (is_pow2 sets) then invalid_arg "Cache.create: sets not a power of 2";
  if ways <= 0 then invalid_arg "Cache.create: ways <= 0";
  if not (is_pow2 line_bytes) then
    invalid_arg "Cache.create: line_bytes not a power of 2";
  {
    name;
    sets;
    ways;
    line_bytes;
    line_shift = log2 line_bytes;
    set_mask = sets - 1;
    tags = Array.make (sets * ways) (-1);
    lru = Array.init (sets * ways) (fun i -> i mod ways);
    dirty = Array.make (sets * ways) false;
    accesses = 0;
    misses = 0;
    writebacks = 0;
  }

let find_way t set line =
  let base = set * t.ways in
  let rec go w =
    if w >= t.ways then -1
    else if t.tags.(base + w) = line then w
    else go (w + 1)
  in
  go 0

let touch t set way =
  (* Make [way] most-recently-used: increment ages below its current age. *)
  let base = set * t.ways in
  let age = t.lru.(base + way) in
  for w = 0 to t.ways - 1 do
    if t.lru.(base + w) < age then t.lru.(base + w) <- t.lru.(base + w) + 1
  done;
  t.lru.(base + way) <- 0

let victim_way t set =
  let base = set * t.ways in
  let rec go w best best_age =
    if w >= t.ways then best
    else if t.tags.(base + w) = -1 then w (* prefer an empty way *)
    else if t.lru.(base + w) > best_age then go (w + 1) w t.lru.(base + w)
    else go (w + 1) best best_age
  in
  go 0 0 (-1)

let access t ~addr ~write =
  t.accesses <- t.accesses + 1;
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  let way = find_way t set line in
  if way >= 0 then begin
    touch t set way;
    if write then t.dirty.((set * t.ways) + way) <- true;
    { hit = true; dirty_evict = -1 }
  end
  else begin
    t.misses <- t.misses + 1;
    let way = victim_way t set in
    let slot = (set * t.ways) + way in
    let evicted =
      if t.tags.(slot) >= 0 && t.dirty.(slot) then begin
        t.writebacks <- t.writebacks + 1;
        t.tags.(slot) lsl t.line_shift
      end
      else -1
    in
    t.tags.(slot) <- line;
    t.dirty.(slot) <- write;
    touch t set way;
    { hit = false; dirty_evict = evicted }
  end

let probe t ~addr =
  let line = addr lsr t.line_shift in
  let set = line land t.set_mask in
  find_way t set line >= 0

let name t = t.name
let size_bytes t = t.sets * t.ways * t.line_bytes
let line_bytes t = t.line_bytes
let accesses t = t.accesses
let misses t = t.misses
let writebacks t = t.writebacks

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.dirty 0 (Array.length t.dirty) false

let pp_stats ppf t =
  Format.fprintf ppf "%s: %d accesses, %d misses (%.2f%%), %d writebacks"
    t.name t.accesses t.misses (100.0 *. miss_rate t) t.writebacks
