type config = {
  l1i_sets : int;
  l1i_ways : int;
  l1i_line : int;
  l1d_sets : int;
  l1d_ways : int;
  l1d_line : int;
  l2_sets : int;
  l2_ways : int;
  l2_line : int;
  itlb_entries : int;
  dtlb_entries : int;
  page_bytes : int;
  l1_hit : int;
  l2_hit : int;
  mem : int;
  tlb_miss : int;
}

let default_config =
  {
    l1i_sets = 256;
    l1i_ways = 2;
    l1i_line = 32;
    l1d_sets = 256;
    l1d_ways = 2;
    l1d_line = 32;
    l2_sets = 1024;
    l2_ways = 4;
    l2_line = 64;
    itlb_entries = 32;
    dtlb_entries = 64;
    page_bytes = 4096;
    l1_hit = 1;
    l2_hit = 6;
    mem = 34;
    tlb_miss = 30;
  }

type t = {
  cfg : config;
  l1i : Cache.t;
  l1d : Cache.t;
  l2 : Cache.t;
  itlb : Tlb.t;
  dtlb : Tlb.t;
}

let create cfg =
  {
    cfg;
    l1i =
      Cache.create ~name:"l1i" ~sets:cfg.l1i_sets ~ways:cfg.l1i_ways
        ~line_bytes:cfg.l1i_line;
    l1d =
      Cache.create ~name:"l1d" ~sets:cfg.l1d_sets ~ways:cfg.l1d_ways
        ~line_bytes:cfg.l1d_line;
    l2 =
      Cache.create ~name:"l2u" ~sets:cfg.l2_sets ~ways:cfg.l2_ways
        ~line_bytes:cfg.l2_line;
    itlb =
      Tlb.create ~name:"itlb" ~entries:cfg.itlb_entries
        ~page_bytes:cfg.page_bytes;
    dtlb =
      Tlb.create ~name:"dtlb" ~entries:cfg.dtlb_entries
        ~page_bytes:cfg.page_bytes;
  }

let through_l2 t ~addr ~write base =
  let r2 = Cache.access t.l2 ~addr ~write in
  (* A dirty L2 eviction is buffered; it costs no latency here. *)
  if r2.Cache.hit then base + t.cfg.l2_hit else base + t.cfg.l2_hit + t.cfg.mem

let data_access t ~addr ~write =
  let tlb_pen = if Tlb.access t.dtlb ~addr then 0 else t.cfg.tlb_miss in
  let r1 = Cache.access t.l1d ~addr ~write in
  let lat =
    if r1.Cache.hit then t.cfg.l1_hit
    else begin
      (* Write back a dirty L1 victim into L2 (counted, not timed). *)
      if r1.Cache.dirty_evict >= 0 then
        ignore (Cache.access t.l2 ~addr:r1.Cache.dirty_evict ~write:true);
      through_l2 t ~addr ~write:false t.cfg.l1_hit
    end
  in
  lat + tlb_pen

let fetch_latency t ~addr =
  let tlb_pen = if Tlb.access t.itlb ~addr then 0 else t.cfg.tlb_miss in
  let r1 = Cache.access t.l1i ~addr ~write:false in
  let lat =
    if r1.Cache.hit then t.cfg.l1_hit
    else through_l2 t ~addr ~write:false t.cfg.l1_hit
  in
  lat + tlb_pen

let load_latency t ~addr = data_access t ~addr ~write:false
let store_latency t ~addr = data_access t ~addr ~write:true

let l1i t = t.l1i
let l1d t = t.l1d
let l2 t = t.l2
let itlb t = t.itlb
let dtlb t = t.dtlb

let reset_stats t =
  Cache.reset_stats t.l1i;
  Cache.reset_stats t.l1d;
  Cache.reset_stats t.l2;
  Tlb.reset_stats t.itlb;
  Tlb.reset_stats t.dtlb

let flush t =
  Cache.flush t.l1i;
  Cache.flush t.l1d;
  Cache.flush t.l2;
  Tlb.flush t.itlb;
  Tlb.flush t.dtlb

let pp_stats ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@,%a@,%a@,%a@]" Cache.pp_stats t.l1i
    Cache.pp_stats t.l1d Cache.pp_stats t.l2 Tlb.pp_stats t.itlb Tlb.pp_stats
    t.dtlb
