lib/dfg/canon.mli: Dfg
