lib/dfg/dfg.ml: Array Buffer Format Op Printf T1000_isa Word
