lib/dfg/extract.mli: Cfg Dfg Instr Liveness Profile Reg T1000_asm T1000_isa T1000_profile
