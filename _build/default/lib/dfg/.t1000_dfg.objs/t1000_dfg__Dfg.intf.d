lib/dfg/dfg.mli: Format Op T1000_isa Word
