lib/dfg/canon.ml: Array Buffer Dfg Op String T1000_isa
