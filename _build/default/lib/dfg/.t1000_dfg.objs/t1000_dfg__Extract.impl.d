lib/dfg/extract.ml: Array Canon Cfg Dfg Hashtbl Instr Int List Liveness Option Profile Program Reg Regset Set T1000_asm T1000_isa T1000_profile Word
