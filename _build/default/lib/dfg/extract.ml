open T1000_isa
open T1000_asm
open T1000_profile

type config = {
  width_threshold : int;
  max_len : int;
  min_len : int;
}

let default_config = { width_threshold = 18; max_len = 8; min_len = 2 }

type occ = {
  block : int;
  members : int list;
  root : int;
  internal_edges : (int * int) list;
  dfg : Dfg.t;
  input_regs : Reg.t array;
  out_reg : Reg.t;
  key : string;
}

module Int_set = Set.Make (Int)

let dest = function
  | Instr.Alu_rrr (_, rd, _, _)
  | Instr.Alu_rri (_, rd, _, _)
  | Instr.Shift_imm (_, rd, _, _)
  | Instr.Shift_reg (_, rd, _, _) ->
      Some rd
  | Instr.Lui _ | Instr.Muldiv _ | Instr.Mfhi _ | Instr.Mflo _ | Instr.Load _
  | Instr.Store _ | Instr.Branch _ | Instr.Jump _ | Instr.Jal _ | Instr.Jr _
  | Instr.Jalr _ | Instr.Ext _ | Instr.Cfgld _ | Instr.Nop | Instr.Halt ->
      None

let candidate cfg profile slot instr =
  Profile.count profile slot > 0
  && Profile.operand_width profile slot <= cfg.width_threshold
  &&
  match dest instr with
  | Some rd -> not (Reg.equal rd Reg.zero)
  | None -> false

(* Reaching-definition view of one basic block: for every slot, the list
   of (register, defining slot) pairs for its register uses, where -1
   means the value is live-in to the block. *)
let block_use_defs g b =
  let program = Cfg.program g in
  let blk = Cfg.block g b in
  let last_def = Array.make Instr.dep_reg_count (-1) in
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun slot ->
      let instr = Program.get program slot in
      let uses = List.map (fun r -> (r, last_def.(r))) (Instr.uses instr) in
      Hashtbl.replace tbl slot uses;
      List.iter (fun d -> last_def.(d) <- slot) (Instr.defs instr))
    (Cfg.instr_indices blk);
  tbl

(* All block slots that consume the value defined by [producer]. *)
let consumers_of use_defs blk producer =
  List.filter
    (fun u ->
      List.exists
        (fun (_, d) -> d = producer)
        (match Hashtbl.find_opt use_defs u with Some l -> l | None -> []))
    (Cfg.instr_indices blk)

let check cfg g live profile members =
  match List.sort_uniq compare members with
  | [] -> None
  | sorted -> (
      let program = Cfg.program g in
      let b = Cfg.block_of_instr g (List.hd sorted) in
      let root = List.fold_left max (List.hd sorted) sorted in
      let n_members = List.length sorted in
      let member_set = Int_set.of_list sorted in
      let is_member s = Int_set.mem s member_set in
      let ok =
        n_members >= cfg.min_len
        && n_members <= cfg.max_len
        && List.for_all
             (fun s ->
               Cfg.block_of_instr g s = b
               && candidate cfg profile s (Program.get program s))
             sorted
      in
      if not ok then None
      else begin
        let blk = Cfg.block g b in
        let use_defs = block_use_defs g b in
        let out_reg =
          match dest (Program.get program root) with
          | Some r -> r
          | None -> assert false
        in
        let exception Reject in
        try
          (* 1. Intermediates: every consumer of an intermediate value is
             itself a member, and the value is dead after the root. *)
          let live_after_root = Liveness.live_after_instr live root in
          List.iter
            (fun p ->
              if p <> root then begin
                let d =
                  match dest (Program.get program p) with
                  | Some r -> Reg.to_int r
                  | None -> assert false
                in
                let cons = consumers_of use_defs blk p in
                if cons = [] then raise Reject;
                if not (List.for_all is_member cons) then raise Reject;
                if
                  d <> Reg.to_int out_reg
                  && Regset.mem d live_after_root
                then raise Reject
              end)
            sorted;
          (* 2. Classify member operands; collect external ports. *)
          let ports = ref [] in
          (* (reg_int, port) assoc, in first-use order *)
          let port_of r =
            let ri = Reg.to_int r in
            match List.assoc_opt ri !ports with
            | Some p -> p
            | None ->
                let p = List.length !ports in
                if p >= 2 then raise Reject;
                ports := !ports @ [ (ri, p) ];
                p
          in
          let node_idx = Hashtbl.create 8 in
          List.iteri (fun i s -> Hashtbl.replace node_idx s i) sorted;
          let internal_edges = ref [] in
          let def_of_use m r =
            match Hashtbl.find_opt use_defs m with
            | None -> -1
            | Some l -> (
                match List.assoc_opt (Reg.to_int r) l with
                | Some d -> d
                | None -> -1)
          in
          (* External-input clobber check: no non-member definition of the
             input register between the use and the root. *)
          let check_clobber r m =
            let ri = Reg.to_int r in
            List.iter
              (fun s ->
                if
                  s > m && s <= root
                  && (not (is_member s))
                  && List.mem ri (Instr.defs (Program.get program s))
                then raise Reject)
              (Cfg.instr_indices blk)
          in
          let operand_of m r =
            if Reg.equal r Reg.zero then Dfg.Const 0
            else begin
              let d = def_of_use m r in
              if d >= 0 && is_member d then begin
                internal_edges := (d, m) :: !internal_edges;
                Dfg.Node (Hashtbl.find node_idx d)
              end
              else begin
                check_clobber r m;
                Dfg.Input (port_of r)
              end
            end
          in
          let nodes =
            List.map
              (fun m ->
                let width = Profile.instr_width profile m in
                match Program.get program m with
                | Instr.Alu_rrr (op, _, rs, rt) ->
                    let a = operand_of m rs in
                    let bo = operand_of m rt in
                    { Dfg.op = Dfg.N_alu op; a; b = bo; width }
                | Instr.Alu_rri (op, _, rs, imm) ->
                    let a = operand_of m rs in
                    {
                      Dfg.op = Dfg.N_alu op;
                      a;
                      b = Dfg.Const (Word.sext32 imm);
                      width;
                    }
                | Instr.Shift_imm (op, _, rt, sh) ->
                    let a = operand_of m rt in
                    { Dfg.op = Dfg.N_shift op; a; b = Dfg.Const sh; width }
                | Instr.Shift_reg (op, _, rt, rs) ->
                    let a = operand_of m rt in
                    let bo = operand_of m rs in
                    { Dfg.op = Dfg.N_shift op; a; b = bo; width }
                | Instr.Lui _ | Instr.Muldiv _ | Instr.Mfhi _ | Instr.Mflo _
                | Instr.Load _ | Instr.Store _ | Instr.Branch _
                | Instr.Jump _ | Instr.Jal _ | Instr.Jr _ | Instr.Jalr _
                | Instr.Ext _ | Instr.Cfgld _ | Instr.Nop | Instr.Halt ->
                    raise Reject)
              sorted
          in
          (* 3. Connectivity: every non-root member must feed some member. *)
          let edge_count = List.length !internal_edges in
          if edge_count < n_members - 1 then raise Reject;
          let n_inputs = List.length !ports in
          let raw_dfg = Dfg.make ~n_inputs (Array.of_list nodes) in
          let norm = Canon.normalize raw_dfg in
          let perm = Canon.input_permutation raw_dfg in
          let input_regs = Array.make n_inputs Reg.zero in
          List.iter
            (fun (ri, p) -> input_regs.(perm.(p)) <- Reg.of_int ri)
            !ports;
          Some
            {
              block = b;
              members = sorted;
              root;
              internal_edges = List.sort_uniq compare !internal_edges;
              dfg = norm;
              input_regs;
              out_reg;
              key = Canon.key raw_dfg;
            }
        with Reject -> None
      end)

(* Enumerate candidate member subsets for a root within its closure and
   return the best valid occurrence (largest, then longest base
   latency). *)
let best_occ_for_root cfg g live profile ~root ~closure ~consumers =
  let below = List.filter (fun s -> s <> root) closure in
  (* Descending slot order so consumers are decided before producers. *)
  let below = List.sort (fun a b -> compare b a) below in
  let best = ref None in
  let consider members =
    match check cfg g live profile members with
    | None -> ()
    | Some o ->
        let rank = (List.length o.members, Dfg.base_latency o.dfg) in
        let better =
          match !best with
          | None -> true
          | Some (r, _) -> rank > r
        in
        if better then best := Some (rank, o)
  in
  let rec go remaining chosen =
    match remaining with
    | [] -> consider (root :: chosen)
    | p :: rest ->
        (* Include p only if all of its consumers are already chosen (or
           are the root): otherwise deleting p breaks a remaining use. *)
        let cons = consumers p in
        let can_include =
          cons <> []
          && List.for_all (fun c -> c = root || List.mem c chosen) cons
        in
        go rest chosen;
        if can_include then go rest (p :: chosen)
  in
  go below [];
  Option.map snd !best

let closure_cap = 12

let maximal cfg g live profile =
  let program = Cfg.program g in
  let occs = ref [] in
  for b = 0 to Cfg.n_blocks g - 1 do
    let blk = Cfg.block g b in
    let slots = Cfg.instr_indices blk in
    let cands =
      List.filter (fun s -> candidate cfg profile s (Program.get program s))
        slots
    in
    if List.length cands >= cfg.min_len then begin
      let use_defs = block_use_defs g b in
      let cand_set = Int_set.of_list cands in
      let consumers p = consumers_of use_defs blk p in
      (* Partition candidates into root-closures. *)
      let covered = ref Int_set.empty in
      let roots = ref [] in
      (* Descending order: consumers (higher slots) are rooted first. *)
      let desc = List.sort (fun a b -> compare b a) cands in
      let absorbable p =
        let cons = consumers p in
        cons <> []
        && List.for_all
             (fun c -> Int_set.mem c cand_set && not (Int_set.mem c !covered))
             cons
      in
      let grow root =
        let closure = ref (Int_set.singleton root) in
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun p ->
              if
                (not (Int_set.mem p !closure))
                && (not (Int_set.mem p !covered))
                && consumers p <> []
                && List.for_all (fun c -> Int_set.mem c !closure) (consumers p)
              then begin
                closure := Int_set.add p !closure;
                changed := true
              end)
            cands
        done;
        !closure
      in
      let rec pass todo =
        match todo with
        | [] -> ()
        | p :: rest ->
            if (not (Int_set.mem p !covered)) && not (absorbable p) then begin
              let closure = grow p in
              covered := Int_set.union !covered closure;
              roots := (p, closure) :: !roots
            end;
            pass rest
      in
      (* Repeat passes until every candidate is covered (candidates whose
         consumers straddle two closures become their own roots). *)
      let rec fix () =
        pass desc;
        let uncovered =
          List.filter (fun p -> not (Int_set.mem p !covered)) desc
        in
        match uncovered with
        | [] -> ()
        | p :: _ ->
            let closure = grow p in
            covered := Int_set.union !covered closure;
            roots := (p, closure) :: !roots;
            fix ()
      in
      fix ();
      List.iter
        (fun (root, closure) ->
          (* Cap very large closures: keep the members closest to the
             root (breadth-first by consumer distance). *)
          let closure = Int_set.elements closure in
          let closure =
            if List.length closure <= closure_cap then closure
            else begin
              let dist = Hashtbl.create 16 in
              Hashtbl.replace dist root 0;
              let changed = ref true in
              while !changed do
                changed := false;
                List.iter
                  (fun p ->
                    if not (Hashtbl.mem dist p) then
                      let ds =
                        List.filter_map (Hashtbl.find_opt dist) (consumers p)
                      in
                      match ds with
                      | [] -> ()
                      | d :: rest ->
                          Hashtbl.replace dist p
                            (1 + List.fold_left min d rest);
                          changed := true)
                  closure
              done;
              let with_d =
                List.map
                  (fun p ->
                    ( (match Hashtbl.find_opt dist p with
                      | Some d -> d
                      | None -> max_int),
                      p ))
                  closure
              in
              let sorted = List.sort compare with_d in
              List.filteri (fun i _ -> i < closure_cap) sorted
              |> List.map snd
            end
          in
          match
            best_occ_for_root cfg g live profile ~root ~closure ~consumers
          with
          | Some o -> occs := o :: !occs
          | None -> ())
        !roots
    end
  done;
  List.sort (fun a b -> compare a.root b.root) !occs

let subsequences cfg g live profile (o : occ) =
  (* Producer adjacency inside the occurrence. *)
  let producers_of v =
    List.filter_map
      (fun (p, c) -> if c = v then Some p else None)
      o.internal_edges
  in
  let results = Hashtbl.create 16 in
  let consider members =
    let sorted = List.sort_uniq compare members in
    if not (Hashtbl.mem results sorted) then
      match check cfg g live profile sorted with
      | Some sub -> Hashtbl.replace results sorted sub
      | None -> ()
  in
  (* For each member as sub-root, enumerate connected producer subsets. *)
  let rec expand frontier chosen =
    match frontier with
    | [] -> consider chosen
    | p :: rest ->
        (* exclude p's subtree *)
        expand rest chosen;
        (* include p: its producers join the frontier *)
        expand (producers_of p @ rest) (p :: chosen)
  in
  List.iter (fun v -> expand (producers_of v) [ v ]) o.members;
  Hashtbl.fold (fun _ sub acc -> sub :: acc) results []
  |> List.sort (fun a b -> compare (a.root, a.members) (b.root, b.members))
