(** Canonicalization of dataflow graphs.

    Two extended-instruction occurrences share a PFU configuration when
    they perform the same computation ("the latter two sequences perform
    the same operation, they share an identical PFU configuration",
    paper Section 5.1).  This module provides the equality used for that
    sharing: operands of commutative operations are put in a canonical
    order and input ports are renumbered by first use, then the graph is
    serialized into a key.  Node order is left as extracted (program
    order), so the equivalence is structural rather than full graph
    isomorphism — a sound under-approximation: equal keys always mean
    equal computations. *)

val normalize : Dfg.t -> Dfg.t
(** Canonical operand order and input-port numbering.  Evaluation
    semantics are preserved up to the induced permutation of input
    ports; callers must permute their input-register lists with
    {!input_permutation}. *)

val input_permutation : Dfg.t -> int array
(** [p = input_permutation d] maps old port numbers to the normalized
    ports: new port [p.(i)] carries what old port [i] carried.  Length
    equals [Dfg.n_inputs d]. *)

val key : Dfg.t -> string
(** Serialization of the normalized graph, excluding node widths (two
    occurrences differing only in profiled width share hardware sized
    for the wider one). *)

val equal : Dfg.t -> Dfg.t -> bool
(** [key a = key b]. *)

val merge_widths : Dfg.t -> Dfg.t -> Dfg.t
(** Pointwise maximum of node widths of two normalized graphs with equal
    keys; used when occurrences with the same computation were profiled
    at different widths.
    @raise Invalid_argument if the keys differ. *)
