open T1000_isa

let operand_rank = function
  | Dfg.Node i -> (0, i)
  | Dfg.Input p -> (1, p)
  | Dfg.Const c -> (2, c)

let commutative = function
  | Dfg.N_alu op -> Op.alu_commutative op
  | Dfg.N_shift _ -> false

(* Order commutative operands canonically; then renumber inputs by first
   appearance in node order. *)
let normalize_with_perm d =
  let nodes = Dfg.nodes d in
  let swapped =
    Array.map
      (fun nd ->
        if commutative nd.Dfg.op && operand_rank nd.Dfg.a > operand_rank nd.Dfg.b
        then { nd with Dfg.a = nd.Dfg.b; b = nd.Dfg.a }
        else nd)
      nodes
  in
  let n_inputs = Dfg.n_inputs d in
  let perm = Array.make n_inputs (-1) in
  let next = ref 0 in
  let renumber = function
    | Dfg.Input p ->
        if perm.(p) < 0 then begin
          perm.(p) <- !next;
          incr next
        end;
        Dfg.Input perm.(p)
    | (Dfg.Const _ | Dfg.Node _) as o -> o
  in
  let renumbered =
    Array.map
      (fun nd -> { nd with Dfg.a = renumber nd.Dfg.a; b = renumber nd.Dfg.b })
      swapped
  in
  (* Unused ports (possible when n_inputs over-counts) keep identity. *)
  Array.iteri
    (fun i p ->
      if p < 0 then begin
        perm.(i) <- !next;
        incr next
      end)
    perm;
  (Dfg.make ~n_inputs renumbered, perm)

let normalize d = fst (normalize_with_perm d)
let input_permutation d = snd (normalize_with_perm d)

let string_of_operand = function
  | Dfg.Input p -> "i" ^ string_of_int p
  | Dfg.Const c -> "#" ^ string_of_int c
  | Dfg.Node i -> "n" ^ string_of_int i

let string_of_op = function
  | Dfg.N_alu op -> Op.alu_to_string op
  | Dfg.N_shift op -> Op.shift_to_string op

let key d =
  let d = normalize d in
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int (Dfg.n_inputs d));
  Buffer.add_char buf '|';
  Array.iter
    (fun nd ->
      Buffer.add_string buf (string_of_op nd.Dfg.op);
      Buffer.add_char buf '(';
      Buffer.add_string buf (string_of_operand nd.Dfg.a);
      Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_operand nd.Dfg.b);
      Buffer.add_string buf ");")
    (Dfg.nodes d);
  Buffer.contents buf

let equal a b = String.equal (key a) (key b)

let merge_widths a b =
  if not (equal a b) then invalid_arg "Canon.merge_widths: different keys";
  let na = Dfg.nodes (normalize a) and nb = Dfg.nodes (normalize b) in
  let merged =
    Array.mapi
      (fun i nd -> { nd with Dfg.width = max nd.Dfg.width nb.(i).Dfg.width })
      na
  in
  Dfg.make ~n_inputs:(Dfg.n_inputs a) merged
