open T1000_isa

type operand =
  | Input of int
  | Const of int
  | Node of int

type node_op =
  | N_alu of Op.alu
  | N_shift of Op.shift

type node = {
  op : node_op;
  a : operand;
  b : operand;
  width : int;
}

type t = {
  nodes : node array;
  n_inputs : int;
}

let check_operand ~n_inputs ~pos = function
  | Input p ->
      if p < 0 || p >= n_inputs then
        invalid_arg (Printf.sprintf "Dfg.make: input port %d out of range" p)
  | Const _ -> ()
  | Node i ->
      if i < 0 || i >= pos then
        invalid_arg
          (Printf.sprintf "Dfg.make: node %d referenced at position %d" i pos)

let make ~n_inputs nodes =
  if Array.length nodes = 0 then invalid_arg "Dfg.make: empty node array";
  if n_inputs < 0 || n_inputs > 2 then
    invalid_arg "Dfg.make: n_inputs must be 0-2";
  Array.iteri
    (fun pos n ->
      check_operand ~n_inputs ~pos n.a;
      check_operand ~n_inputs ~pos n.b)
    nodes;
  { nodes = Array.copy nodes; n_inputs }

let nodes t = Array.copy t.nodes
let n_inputs t = t.n_inputs
let size t = Array.length t.nodes
let root t = Array.length t.nodes - 1

let node_eval op a b =
  match op with
  | N_alu Op.Add | N_alu Op.Addu -> Word.add a b
  | N_alu Op.Sub | N_alu Op.Subu -> Word.sub a b
  | N_alu Op.And -> Word.logand a b
  | N_alu Op.Or -> Word.logor a b
  | N_alu Op.Xor -> Word.logxor a b
  | N_alu Op.Nor -> Word.lognor a b
  | N_alu Op.Slt -> Word.slt a b
  | N_alu Op.Sltu -> Word.sltu a b
  | N_shift Op.Sll -> Word.sll a (b land 31)
  | N_shift Op.Srl -> Word.srl a (b land 31)
  | N_shift Op.Sra -> Word.sra a (b land 31)

let eval t v0 v1 =
  let n = Array.length t.nodes in
  let results = Array.make n 0 in
  let operand = function
    | Input 0 -> v0
    | Input _ -> v1
    | Const c -> Word.sext32 c
    | Node i -> results.(i)
  in
  for i = 0 to n - 1 do
    let nd = Array.unsafe_get t.nodes i in
    results.(i) <- node_eval nd.op (operand nd.a) (operand nd.b)
  done;
  results.(n - 1)

let node_latency = function
  | N_alu op -> Op.alu_latency op
  | N_shift op -> Op.shift_latency op

let base_latency t =
  let n = Array.length t.nodes in
  let depth = Array.make n 0 in
  let operand_depth = function
    | Input _ | Const _ -> 0
    | Node i -> depth.(i)
  in
  for i = 0 to n - 1 do
    let nd = t.nodes.(i) in
    depth.(i) <-
      node_latency nd.op + max (operand_depth nd.a) (operand_depth nd.b)
  done;
  depth.(n - 1)

let serial_latency t =
  Array.fold_left (fun acc nd -> acc + node_latency nd.op) 0 t.nodes

let max_width t = Array.fold_left (fun acc nd -> max acc nd.width) 0 t.nodes

let pp_operand ppf = function
  | Input p -> Format.fprintf ppf "in%d" p
  | Const c -> Format.fprintf ppf "#%d" c
  | Node i -> Format.fprintf ppf "n%d" i

let pp_node_op ppf = function
  | N_alu op -> Op.pp_alu ppf op
  | N_shift op -> Op.pp_shift ppf op

let pp ppf t =
  Format.fprintf ppf "@[<v>dfg(%d inputs, %d nodes)@," t.n_inputs
    (Array.length t.nodes);
  Array.iteri
    (fun i nd ->
      Format.fprintf ppf "n%d = %a %a, %a  [w%d]@," i pp_node_op nd.op
        pp_operand nd.a pp_operand nd.b nd.width)
    t.nodes;
  Format.fprintf ppf "@]"

let to_dot ?(name = "extinstr") t =
  let buf = Buffer.create 256 in
  let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  bpf "digraph %S {\n  rankdir=BT;\n  node [fontname=monospace];\n" name;
  for p = 0 to t.n_inputs - 1 do
    bpf "  in%d [shape=invtriangle, label=\"in%d\"];\n" p p
  done;
  Array.iteri
    (fun i nd ->
      let label = Format.asprintf "%a" pp_node_op nd.op in
      let shape =
        if i = Array.length t.nodes - 1 then
          "shape=doublecircle, style=bold"
        else "shape=circle"
      in
      bpf "  n%d [%s, label=\"%s\\nw%d\"];\n" i shape label nd.width;
      let edge tag = function
        | Input p -> bpf "  in%d -> n%d [label=\"%s\"];\n" p i tag
        | Const c ->
            bpf "  c%d_%s [shape=plaintext, label=\"#%d\"];\n" i tag c;
            bpf "  c%d_%s -> n%d;\n" i tag i
        | Node j -> bpf "  n%d -> n%d [label=\"%s\"];\n" j i tag
      in
      edge "a" nd.a;
      edge "b" nd.b)
    t.nodes;
  bpf "}\n";
  Buffer.contents buf
