(** Candidate-sequence extraction.

    Finds, inside each basic block, the data-dependent sequences of
    profiled narrow-width ALU/shift instructions that can be collapsed
    into extended instructions, under the paper's constraints
    (Section 4): at most two input registers, one output register, and
    maximal length.  It also enumerates the valid subsequences of a
    maximal sequence, which the selective algorithm's containment matrix
    ranks (Section 5.1).

    Safety: a sequence is only reported when collapsing it at its root
    slot is semantics-preserving — every intermediate result is consumed
    solely inside the sequence and is dead after the root (liveness-
    checked), and no external input register is clobbered between its
    use and the root. *)

open T1000_isa
open T1000_asm
open T1000_profile

type config = {
  width_threshold : int;
      (** max profiled operand/result width of member instructions;
          paper default 18 *)
  max_len : int;  (** longest sequence considered; paper reports 2-8 *)
  min_len : int;  (** shortest useful sequence (2) *)
}

val default_config : config
(** [{ width_threshold = 18; max_len = 8; min_len = 2 }] *)

(** One occurrence of a collapsible sequence. *)
type occ = {
  block : int;  (** basic-block id *)
  members : int list;  (** member instruction slots, ascending *)
  root : int;  (** last member slot — the rewrite anchor *)
  internal_edges : (int * int) list;
      (** (producer slot, consumer slot) value edges inside the
          sequence *)
  dfg : Dfg.t;  (** normalized dataflow graph *)
  input_regs : Reg.t array;  (** register per normalized input port *)
  out_reg : Reg.t;
  key : string;  (** canonical configuration key ({!Canon.key}) *)
}

val candidate : config -> Profile.t -> int -> Instr.t -> bool
(** Is the instruction at this slot a candidate sequence member?  True
    for executed ALU/shift instructions within the width threshold whose
    destination is not r0. *)

val check : config -> Cfg.t -> Liveness.t -> Profile.t -> int list -> occ option
(** Validate an arbitrary member-slot set (same block) and build its
    occurrence; [None] if any constraint fails. *)

val maximal : config -> Cfg.t -> Liveness.t -> Profile.t -> occ list
(** All maximal occurrences in the program, in ascending root order.
    Maximality: growing any reported occurrence by another candidate
    would violate a constraint (ports, length, or safety). *)

val subsequences :
  config -> Cfg.t -> Liveness.t -> Profile.t -> occ -> occ list
(** All valid connected rooted sub-sequences of a maximal occurrence
    with at least [min_len] members, the occurrence itself included.
    Used to populate the selective algorithm's containment matrix. *)
