(** Dataflow graphs of candidate extended instructions.

    A DFG is the computation performed by one extended instruction: a
    topologically ordered array of binary operation nodes over at most
    two external register inputs plus compile-time constants (immediates
    are wired into the PFU configuration, paper Section 2.2).  The last
    node is the root and produces the instruction's single result.

    The same structure drives four consumers: functional evaluation
    (interpreter callback), the cycle-gain model, canonical hashing
    (configuration sharing), and LUT cost estimation. *)

open T1000_isa

type operand =
  | Input of int  (** external input port, 0 or 1 *)
  | Const of int  (** constant folded into the configuration *)
  | Node of int   (** result of an earlier node *)

type node_op =
  | N_alu of Op.alu
  | N_shift of Op.shift

type node = {
  op : node_op;
  a : operand;
  b : operand;
  width : int;
      (** profiled maximum significant bits flowing through this node;
          sizes the PFU hardware, does not affect semantics *)
}

type t

val make : n_inputs:int -> node array -> t
(** Nodes must be in topological order ([Node i] only refers to earlier
    indices); the array must be non-empty.
    @raise Invalid_argument otherwise, or if [n_inputs] is not 0-2, or
    an [Input] port is out of range. *)

val nodes : t -> node array
(** Fresh copy. *)

val n_inputs : t -> int
val size : t -> int
(** Number of operation nodes (the paper's "sequence length"). *)

val root : t -> int
(** Index of the root node (always [size - 1]). *)

val eval : t -> Word.t -> Word.t -> Word.t
(** Evaluate on input port values (port 1 ignored when [n_inputs < 2]).
    Matches the base ISA's semantics operation for operation. *)

val base_latency : t -> int
(** Critical-path latency of the computation on the base machine's
    functional units — the cycles the sequence needs when fully
    data-dependent.  The per-execution cycle gain of the extended
    instruction is [base_latency - 1] (the PFU evaluates in one cycle,
    paper Section 3.1). *)

val serial_latency : t -> int
(** Sum of all node latencies (equals {!base_latency} for pure chains). *)

val max_width : t -> int
(** Largest node width. *)

val pp : Format.formatter -> t -> unit

val to_dot : ?name:string -> t -> string
(** Graphviz rendering of the dataflow graph: operation nodes, input
    ports and constants, with the root highlighted. *)
