(* GSM decoder-like kernel (short-term synthesis + postfilter).

   The synthesis loop carries an 8-op predictor chain through the
   filter state plus a 4-op and a 3-op chain per sample; a separate
   postfilter loop adds three more distinct chains.  The highest
   foldable fraction of the suite - this is the gsm_decode of the
   paper's Figure 2, with the largest speedup (paper: 44%). *)

open T1000_isa
open T1000_asm
module R = Reg

let n = 4096 (* halfword samples *)
let passes = 3
let out_len = (3 * n) + n

let program =
  let b = Builder.create ~name:"gsm_dec" () in
  Builder.li b R.a0 Kit.src_base;
  Builder.li b R.a1 Kit.out_base;
  Builder.li b R.a2 (Kit.out_base + (3 * n));
  Builder.li b R.a3 Kit.aux_base (* reflection table *);
  Builder.li b R.s0 passes;
  Builder.li b R.s3 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s4 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s5 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s6 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s7 0x100000 (* wide-seeded checksum accumulator *);
  Builder.label b "pass";
  (* --- synthesis loop --- *)
  Builder.li b R.t0 n;
  Builder.move b R.t1 R.a0;
  Builder.move b R.t2 R.a1;
  Builder.li b R.s1 0 (* filter state *);
  Builder.label b "synth";
  Builder.lh b R.t3 0 R.t1;
  Builder.lh b R.t4 2 R.t1;
  (* chain R (8 ops): predictor recurrence; inputs s1 (state), t3 *)
  Builder.sll b R.t5 R.s1 1;
  Builder.addu b R.t5 R.t5 R.t3;
  Builder.sra b R.t5 R.t5 1;
  Builder.xori b R.t5 R.t5 0x2A;
  Builder.addu b R.t5 R.t5 R.t3;
  Builder.andi b R.t5 R.t5 0x1FFF;
  Builder.sra b R.t5 R.t5 1;
  Builder.subu b R.s1 R.t5 R.t3;
  (* chain S (4 ops): residual shaping; inputs t3, t4 *)
  Builder.subu b R.t6 R.t4 R.t3;
  Builder.sll b R.t6 R.t6 2;
  Builder.addiu b R.t6 R.t6 128;
  Builder.andi b R.t8 R.t6 0xFFF;
  (* chain Q (3 ops): de-emphasis; input t4 *)
  Builder.sra b R.t7 R.t4 2;
  Builder.xori b R.t7 R.t7 0x1F;
  Builder.addu b R.t9 R.t7 R.t4;
  (* non-foldable work: table lookup, long multiply, accumulators *)
  Builder.andi b R.v0 R.t4 0x1E;
  Builder.addu b R.v0 R.a3 R.v0;
  Builder.lh b R.v1 0 R.v0;
  Builder.mult b R.v1 R.t9;
  Builder.mflo b R.v1;
  Builder.addu b R.s3 R.s3 R.v1;
  Builder.addu b R.s4 R.s4 R.s1;
  Builder.addu b R.s5 R.s5 R.t8;
  Builder.sh b R.s1 0 R.t2;
  Builder.sh b R.t8 2 R.t2;
  Builder.sh b R.t9 4 R.t2;
  Builder.addiu b R.t1 R.t1 4;
  Builder.addiu b R.t2 R.t2 6;
  Builder.addiu b R.t0 R.t0 (-2);
  Builder.bgtz b R.t0 "synth";
  (* --- postfilter loop --- *)
  Builder.li b R.t0 n;
  Builder.move b R.t1 R.a1;
  Builder.move b R.t2 R.a2;
  Builder.label b "postf";
  Builder.lh b R.t3 0 R.t1;
  Builder.lh b R.t4 2 R.t1;
  (* chain P1 (4 ops) *)
  Builder.addu b R.t5 R.t3 R.t4;
  Builder.sra b R.t5 R.t5 1;
  Builder.xori b R.t5 R.t5 0x0D;
  Builder.andi b R.t6 R.t5 0x7FF;
  (* chain P2 (3 ops) *)
  Builder.subu b R.t5 R.t3 R.t4;
  Builder.sll b R.t5 R.t5 1;
  Builder.andi b R.t7 R.t5 0xFFF;
  (* chain P3 (2 ops) *)
  Builder.sra b R.t5 R.t4 3;
  Builder.xori b R.t8 R.t5 0x21;
  (* non-foldable mixing *)
  Builder.sll b R.v0 R.t6 16;
  Builder.or_ b R.v0 R.v0 R.t7;
  Builder.addu b R.s6 R.s6 R.v0;
  Builder.addu b R.s7 R.s7 R.t8;
  Builder.sh b R.t6 0 R.t2;
  Builder.addiu b R.t1 R.t1 6;
  Builder.addiu b R.t2 R.t2 2;
  Builder.addiu b R.t0 R.t0 (-3);
  Builder.bgtz b R.t0 "postf";
  Builder.addiu b R.s0 R.s0 (-1);
  Builder.bgtz b R.s0 "pass";
  Builder.halt b;
  Builder.build b

let init mem _regs =
  Kit.store_halfwords mem Kit.src_base
    (Kit.xorshift ~seed:0x65D0 ~n ~mask:0x7FF);
  Kit.store_halfwords mem Kit.aux_base (Array.init 16 (fun i -> 7 + (3 * i)))

let workload =
  {
    Workload.name = "gsm_dec";
    description = "synthesis filter + postfilter (8/4/3 + 4/3/2-op chains)";
    program;
    init;
    out_base = Kit.out_base;
    out_len;
  }
