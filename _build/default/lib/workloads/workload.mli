(** Workload descriptors.

    A workload bundles a program with its deterministic input
    initializer and the memory range holding its outputs, so tests can
    compare baseline and rewritten executions byte for byte, and the
    experiment drivers can run it under any machine configuration. *)

open T1000_asm
open T1000_machine

type t = {
  name : string;
  description : string;
  program : Program.t;
  init : Memory.t -> Regfile.t -> unit;
  out_base : int;  (** first byte of the output region *)
  out_len : int;  (** output region length in bytes *)
}

val output : t -> Memory.t -> string
(** The output region as raw bytes, for equivalence checks. *)
