let all =
  [
    Unepic.workload;
    Epic.workload;
    Gsm_dec.workload;
    Gsm_enc.workload;
    G721_dec.workload;
    G721_enc.workload;
    Mpeg2_dec.workload;
    Mpeg2_enc.workload;
  ]

let find name =
  List.find_opt (fun w -> String.equal w.Workload.name name) all

let names = List.map (fun w -> w.Workload.name) all
