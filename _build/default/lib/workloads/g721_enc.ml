(* G.721 ADPCM encoder-like kernel.

   The encoder adds a quantization step to the decoder's predictor
   loop: one 4-op quantize chain and one 2-op index chain fold, the
   rest (table lookup, multiply, sign logic, state update) does not -
   a small-speedup benchmark, slightly above its decoder. *)

open T1000_isa
open T1000_asm
module R = Reg

let n = 4096
let passes = 4
let table_len = 16
let out_len = 3 * n

let program =
  let b = Builder.create ~name:"g721_enc" () in
  Builder.li b R.a0 Kit.src_base;
  Builder.li b R.a1 Kit.out_base;
  Builder.li b R.a2 Kit.aux_base;
  Builder.li b R.s0 passes;
  Builder.li b R.s2 0x100000 (* wide-seeded checksum accumulator *);
  Builder.label b "pass";
  (* --- pre-emphasis loop: flatten the spectrum before coding --- *)
  Builder.li b R.t0 n;
  Builder.move b R.t1 R.a0;
  Builder.li b R.t2 (Kit.out_base + n);
  Builder.label b "preemph";
  Builder.lh b R.t3 0 R.t1;
  Builder.lh b R.t4 2 R.t1;
  (* emphasis chain (3 ops) *)
  Builder.sra b R.t5 R.t4 2;
  Builder.subu b R.t5 R.t3 R.t5;
  Builder.andi b R.t6 R.t5 0x1FFF;
  (* dither chain (2 ops) *)
  Builder.xori b R.t5 R.t3 0x155;
  Builder.sra b R.t7 R.t5 3;
  Builder.addu b R.s2 R.s2 R.t7;
  Builder.sh b R.t6 0 R.t2;
  Builder.addiu b R.t1 R.t1 2;
  Builder.addiu b R.t2 R.t2 2;
  Builder.addiu b R.t0 R.t0 (-2);
  Builder.bgtz b R.t0 "preemph";
  (* --- ADPCM loop over the pre-emphasized samples --- *)
  Builder.li b R.t0 n;
  Builder.li b R.t1 (Kit.out_base + n);
  Builder.move b R.t2 R.a1;
  Builder.li b R.s1 0 (* predictor *);
  Builder.label b "inner";
  Builder.lh b R.t3 0 R.t1 (* pre-emphasized sample *);
  (* prediction error (not foldable: s1 feeds branches below too) *)
  Builder.subu b R.t4 R.t3 R.s1;
  (* quantize chain (3 ops): inputs t4 *)
  Builder.sra b R.t5 R.t4 2;
  Builder.xori b R.t5 R.t5 0x21;
  Builder.andi b R.t6 R.t5 0xFF;
  (* second consumer of the quantized value keeps the chains separate *)
  Builder.addu b R.s2 R.s2 R.t6;
  (* index chain (2 ops) *)
  Builder.andi b R.t7 R.t6 0x07;
  Builder.sll b R.t8 R.t7 1;
  Builder.addu b R.t8 R.a2 R.t8;
  Builder.lh b R.t9 0 R.t8 (* step *);
  (* reconstruct via multiply *)
  Builder.mult b R.t9 R.t6;
  Builder.mflo b R.v0;
  Builder.sra b R.v0 R.v0 4;
  (* sign-dependent state update *)
  Builder.bltz b R.t4 "negative";
  Builder.addu b R.s1 R.s1 R.v0;
  Builder.j b "store";
  Builder.label b "negative";
  Builder.subu b R.s1 R.s1 R.v0;
  Builder.label b "store";
  Builder.andi b R.v1 R.s1 0xFFF (* bounded state for next iteration *);
  Builder.move b R.s1 R.v1;
  Builder.sb b R.t6 0 R.t2;
  Builder.addiu b R.t1 R.t1 2;
  Builder.addiu b R.t2 R.t2 1;
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "inner";
  Builder.addiu b R.s0 R.s0 (-1);
  Builder.bgtz b R.s0 "pass";
  Builder.halt b;
  Builder.build b

let init mem _regs =
  Kit.store_halfwords mem Kit.src_base
    (Kit.xorshift ~seed:0x6722 ~n ~mask:0x7FF);
  Kit.store_halfwords mem Kit.aux_base
    (Array.init table_len (fun i -> 12 + (i * i * 5)))

let workload =
  {
    Workload.name = "g721_enc";
    description = "ADPCM encode (4-op quantize + 2-op index chains)";
    program;
    init;
    out_base = Kit.out_base;
    out_len;
  }
