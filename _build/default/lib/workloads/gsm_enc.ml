(* GSM encoder-like kernel (long-term prediction search step).

   Three chains per sample that share a common 3-op subsequence
   (scale-accumulate-rescale), reproducing the paper's Figure 3
   situation: when PFUs are scarce the selective algorithm's
   containment matrix prefers the shared subsequence - it appears in
   every chain, so one configuration covers all three - over
   implementing each maximal chain separately. *)

open T1000_isa
open T1000_asm
module R = Reg

let n = 4096
let passes = 3
let out_len = (3 * n) + (n / 2)

let program =
  let b = Builder.create ~name:"gsm_enc" () in
  Builder.li b R.a0 Kit.src_base;
  Builder.li b R.a1 (Kit.src_base + (2 * n));
  Builder.li b R.a2 Kit.out_base;
  Builder.li b R.a3 Kit.aux_base (* weighting table *);
  Builder.li b R.s0 passes;
  Builder.li b R.s3 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s4 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s5 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s6 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s7 0x100000 (* wide-seeded checksum accumulator *);
  Builder.label b "pass";
  (* --- windowing pre-loop: taper the frame edges --- *)
  Builder.li b R.t0 (n / 4);
  Builder.move b R.t1 R.a0;
  Builder.li b R.t2 (Kit.out_base + (3 * n));
  Builder.label b "window";
  Builder.lh b R.t4 0 R.t1;
  (* taper chain (3 ops) *)
  Builder.sra b R.t6 R.t4 1;
  Builder.addu b R.t6 R.t6 R.t4;
  Builder.andi b R.t7 R.t6 0xFFF;
  (* parity chain (2 ops) *)
  Builder.xori b R.t6 R.t4 0x249;
  Builder.andi b R.t8 R.t6 0x3FF;
  Builder.addu b R.s3 R.s3 R.t8;
  Builder.sh b R.t7 0 R.t2;
  Builder.addiu b R.t1 R.t1 2;
  Builder.addiu b R.t2 R.t2 2;
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "window";
  (* --- LTP search loop --- *)
  Builder.li b R.t0 n;
  Builder.move b R.t1 R.a0;
  Builder.move b R.t2 R.a1;
  Builder.move b R.t3 R.a2;
  Builder.label b "inner";
  Builder.lh b R.t4 0 R.t1 (* target sample *);
  Builder.lh b R.t5 0 R.t2 (* reference sample *);
  (* chain C1 (5 ops) = shared prefix (sll 3 / addu / sra 2) + xori/addu *)
  Builder.sll b R.t6 R.t4 3;
  Builder.addu b R.t6 R.t6 R.t5;
  Builder.sra b R.t6 R.t6 2;
  Builder.xori b R.t6 R.t6 0x15;
  Builder.addu b R.t7 R.t6 R.t4;
  (* chain C2 (5 ops) = shared prefix + subu/andi *)
  Builder.sll b R.t6 R.t5 3;
  Builder.addu b R.t6 R.t6 R.t4;
  Builder.sra b R.t6 R.t6 2;
  Builder.subu b R.t6 R.t6 R.t5;
  Builder.andi b R.t8 R.t6 0x1FFF;
  (* chain C3 (4 ops) = shared prefix + addiu *)
  Builder.sll b R.t6 R.t4 3;
  Builder.addu b R.t6 R.t6 R.t5;
  Builder.sra b R.t6 R.t6 2;
  Builder.addiu b R.t9 R.t6 37;
  (* non-foldable work: weighting table, long multiply, accumulators *)
  Builder.andi b R.v0 R.t5 0x1E;
  Builder.addu b R.v0 R.a3 R.v0;
  Builder.lh b R.v1 0 R.v0;
  Builder.mult b R.v1 R.t9;
  Builder.mflo b R.v1;
  Builder.addu b R.s6 R.s6 R.v1;
  Builder.sll b R.v0 R.t7 16;
  Builder.or_ b R.v0 R.v0 R.t8;
  Builder.addu b R.s7 R.s7 R.v0;
  Builder.addu b R.s3 R.s3 R.t7;
  Builder.addu b R.s4 R.s4 R.t8;
  Builder.addu b R.s5 R.s5 R.t9;
  Builder.sh b R.t7 0 R.t3;
  Builder.sh b R.t8 2 R.t3;
  Builder.sh b R.t9 4 R.t3;
  Builder.addiu b R.t1 R.t1 2;
  Builder.addiu b R.t2 R.t2 2;
  Builder.addiu b R.t3 R.t3 6;
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "inner";
  Builder.addiu b R.s0 R.s0 (-1);
  Builder.bgtz b R.s0 "pass";
  Builder.halt b;
  Builder.build b

let init mem _regs =
  Kit.store_halfwords mem Kit.src_base
    (Kit.xorshift ~seed:0x65E0 ~n:(2 * n) ~mask:0x7FF);
  Kit.store_halfwords mem Kit.aux_base (Array.init 16 (fun i -> 9 + (2 * i)))

let workload =
  {
    Workload.name = "gsm_enc";
    description = "LTP search (three 5/5/4-op chains sharing a 3-op prefix)";
    program;
    init;
    out_base = Kit.out_base;
    out_len;
  }
