open T1000_asm
open T1000_machine

type t = {
  name : string;
  description : string;
  program : Program.t;
  init : Memory.t -> Regfile.t -> unit;
  out_base : int;
  out_len : int;
}

let output t mem =
  String.init t.out_len (fun i ->
      Char.chr (Memory.load_byte mem (t.out_base + i)))
