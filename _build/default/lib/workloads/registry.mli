(** The benchmark suite: all eight MediaBench-like kernels, in the
    paper's figure order. *)

val all : Workload.t list
(** unepic, epic, gsm_dec, gsm_enc, g721_dec, g721_enc, mpeg2_dec,
    mpeg2_enc. *)

val find : string -> Workload.t option
val names : string list
