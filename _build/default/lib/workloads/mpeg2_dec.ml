(* MPEG-2 decoder-like kernel (IDCT butterflies + motion compensation).

   Two hot loops.  The IDCT loop runs three distinct butterfly/
   saturation chains per sample pair; the motion-compensation loop adds
   two more (average and rounding).  Wide mixing, a multiply and the
   checksum accumulators dilute the foldable fraction to a mid-range
   speedup. *)

open T1000_isa
open T1000_asm
module R = Reg

let n = 4096
let passes = 3
let out_len = (2 * n) + n

let program =
  let b = Builder.create ~name:"mpeg2_dec" () in
  Builder.li b R.a0 Kit.src_base;
  Builder.li b R.a1 Kit.out_base;
  Builder.li b R.a2 (Kit.out_base + (2 * n));
  Builder.li b R.s0 passes;
  Builder.li b R.s3 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s4 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s5 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s6 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s7 0x100000 (* wide-seeded checksum accumulator *);
  Builder.label b "pass";
  (* --- IDCT butterfly loop --- *)
  Builder.li b R.t0 n;
  Builder.move b R.t1 R.a0;
  Builder.move b R.t2 R.a1;
  Builder.label b "idct";
  Builder.lh b R.t3 0 R.t1;
  Builder.lh b R.t4 2 R.t1;
  (* butterfly sum chain (4 ops) *)
  Builder.addu b R.t5 R.t3 R.t4;
  Builder.sra b R.t5 R.t5 1;
  Builder.addiu b R.t5 R.t5 4;
  Builder.andi b R.t6 R.t5 0xFFF;
  (* butterfly difference chain (3 ops) *)
  Builder.subu b R.t5 R.t3 R.t4;
  Builder.sll b R.t5 R.t5 1;
  Builder.andi b R.t7 R.t5 0x1FFF;
  (* saturation chain (2 ops) *)
  Builder.sra b R.t5 R.t3 3;
  Builder.xori b R.t8 R.t5 0x2B;
  (* wide mixing and multiply (not foldable) *)
  Builder.sll b R.v0 R.t6 16;
  Builder.or_ b R.v0 R.v0 R.t7;
  Builder.addu b R.s3 R.s3 R.v0;
  Builder.mult b R.t3 R.t4;
  Builder.mflo b R.v1;
  Builder.addu b R.s4 R.s4 R.v1;
  Builder.addu b R.s5 R.s5 R.t8;
  Builder.sh b R.t6 0 R.t2;
  Builder.sh b R.t8 2 R.t2;
  Builder.addiu b R.t1 R.t1 4;
  Builder.addiu b R.t2 R.t2 4;
  Builder.addiu b R.t0 R.t0 (-2);
  Builder.bgtz b R.t0 "idct";
  (* --- motion compensation loop --- *)
  Builder.li b R.t0 (n / 2);
  Builder.move b R.t1 R.a1;
  Builder.move b R.t2 R.a2;
  Builder.label b "mc";
  Builder.lh b R.t3 0 R.t1;
  Builder.lh b R.t4 2 R.t1;
  (* average chain (3 ops) *)
  Builder.addu b R.t5 R.t3 R.t4;
  Builder.addiu b R.t5 R.t5 1;
  Builder.sra b R.t6 R.t5 1;
  (* rounding chain (2 ops) *)
  Builder.xor b R.t5 R.t3 R.t4;
  Builder.andi b R.t7 R.t5 1;
  (* non-foldable *)
  Builder.addu b R.s6 R.s6 R.t6;
  Builder.addu b R.s7 R.s7 R.t7;
  Builder.sh b R.t6 0 R.t2;
  Builder.addiu b R.t1 R.t1 4;
  Builder.addiu b R.t2 R.t2 2;
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "mc";
  Builder.addiu b R.s0 R.s0 (-1);
  Builder.bgtz b R.s0 "pass";
  Builder.halt b;
  Builder.build b

let init mem _regs =
  Kit.store_halfwords mem Kit.src_base
    (Kit.xorshift ~seed:0x2DEC ~n ~mask:0x7FF)

let workload =
  {
    Workload.name = "mpeg2_dec";
    description = "IDCT + motion compensation (4/3/2 + 3/2-op chains)";
    program;
    init;
    out_base = Kit.out_base;
    out_len;
  }
