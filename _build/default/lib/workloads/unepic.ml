(* UNEPIC-like kernel: dequantization followed by reconstruction.

   Two hot loops, as in EPIC's decoder.  The dequantization loop has
   three distinct chains (so two PFUs thrash under greedy selection)
   and the reconstruction loop two more; table lookups and wide
   accumulation dilute the foldable fraction. *)

open T1000_isa
open T1000_asm
module R = Reg

let n = 4096 (* byte coefficients *)
let passes = 3
let out_len = (2 * n) + n

let program =
  let b = Builder.create ~name:"unepic" () in
  Builder.li b R.a0 Kit.src_base;
  Builder.li b R.a1 Kit.out_base;
  Builder.li b R.a2 (Kit.out_base + (2 * n));
  Builder.li b R.a3 Kit.aux_base (* scale table *);
  Builder.li b R.s0 passes;
  Builder.li b R.s3 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s4 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s5 0x100000 (* wide-seeded checksum accumulator *);
  Builder.label b "pass";
  (* loop 1: dequantize bytes into halfwords *)
  Builder.li b R.t0 n;
  Builder.move b R.t1 R.a0;
  Builder.move b R.t2 R.a1;
  Builder.label b "dequant";
  Builder.lbu b R.t3 0 R.t1;
  Builder.lbu b R.t4 1 R.t1;
  (* chain A (3 ops) *)
  Builder.sll b R.t5 R.t3 3;
  Builder.addu b R.t5 R.t5 R.t4;
  Builder.xori b R.t6 R.t5 0x33;
  (* chain B (3 ops) *)
  Builder.and_ b R.t5 R.t3 R.t4;
  Builder.ori b R.t5 R.t5 0x0F;
  Builder.sll b R.t7 R.t5 2;
  (* chain C (2 ops) *)
  Builder.subu b R.t5 R.t4 R.t3;
  Builder.andi b R.t8 R.t5 0xFF;
  (* table lookup + wide work (not foldable) *)
  Builder.andi b R.v0 R.t3 0x1E;
  Builder.addu b R.v0 R.a3 R.v0;
  Builder.lh b R.v1 0 R.v0;
  Builder.mult b R.v1 R.t8;
  Builder.mflo b R.v1;
  Builder.addu b R.s3 R.s3 R.v1;
  Builder.addu b R.s4 R.s4 R.t6;
  Builder.sh b R.t6 0 R.t2;
  Builder.sh b R.t7 2 R.t2;
  Builder.addiu b R.t1 R.t1 2;
  Builder.addiu b R.t2 R.t2 4;
  Builder.addiu b R.t0 R.t0 (-2);
  Builder.bgtz b R.t0 "dequant";
  (* loop 2: reconstruct adjacent halfword pairs *)
  Builder.li b R.t0 (n / 2);
  Builder.move b R.t1 R.a1;
  Builder.move b R.t2 R.a2;
  Builder.label b "recon";
  Builder.lh b R.t3 0 R.t1;
  Builder.lh b R.t4 2 R.t1;
  (* chain D (3 ops) *)
  Builder.subu b R.t5 R.t3 R.t4;
  Builder.sra b R.t5 R.t5 2;
  Builder.addu b R.t6 R.t5 R.t4;
  (* chain E (2 ops) *)
  Builder.xor b R.t5 R.t3 R.t4;
  Builder.andi b R.t7 R.t5 0x3FF;
  (* wide mixing (not foldable) *)
  Builder.sll b R.v0 R.t6 16;
  Builder.or_ b R.v0 R.v0 R.t7;
  Builder.addu b R.s5 R.s5 R.v0;
  Builder.sh b R.t6 0 R.t2;
  Builder.addiu b R.t1 R.t1 4;
  Builder.addiu b R.t2 R.t2 2;
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "recon";
  Builder.addiu b R.s0 R.s0 (-1);
  Builder.bgtz b R.s0 "pass";
  Builder.halt b;
  Builder.build b

let init mem _regs =
  Kit.store_bytes mem Kit.src_base (Kit.xorshift ~seed:0x0E51 ~n ~mask:0xFF);
  Kit.store_halfwords mem Kit.aux_base
    (Array.init 16 (fun i -> 3 + (5 * i)))

let workload =
  {
    Workload.name = "unepic";
    description = "dequantize + reconstruct (two loops; five chains)";
    program;
    init;
    out_base = Kit.out_base;
    out_len;
  }
