(** Shared helpers for writing kernels: memory-layout conventions and
    deterministic pseudo-random input generation.

    Every kernel reads its inputs from [src_base]/[aux_base] and writes
    its results to [out_base]; inputs are produced by a seeded xorshift
    generator so runs are bit-reproducible without any external data
    files (the MediaBench inputs are substituted per DESIGN.md). *)

open T1000_machine

val src_base : int
val aux_base : int
val out_base : int

val xorshift : seed:int -> n:int -> mask:int -> int array
(** [n] values in [[0, mask]]; [mask] must be [2{^k} - 1]. *)

val store_halfwords : Memory.t -> int -> int array -> unit
(** Little-endian halfwords at consecutive addresses. *)

val store_words : Memory.t -> int -> int array -> unit
val store_bytes : Memory.t -> int -> int array -> unit
