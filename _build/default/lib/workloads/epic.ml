(* EPIC-like image-pyramid kernel.

   Four pyramid levels, each a separate loop combining adjacent samples
   into smoothed/edge/coarse bands.  Every level uses different shift
   amounts and masks, so its three chains get distinct PFU
   configurations: twelve distinct extended instructions total, three
   live per loop - with two PFUs the greedy algorithm thrashes inside
   every level, while the selective algorithm keeps each level's two
   most profitable chains.  Wide mixing arithmetic and a running
   checksum dilute the foldable fraction to a mid-range speedup. *)

open T1000_isa
open T1000_asm
module R = Reg

let n = 4096 (* halfword samples at the finest level *)
let passes = 3
let out_len = 3 * n

(* One pyramid level: distinct constants give distinct configurations. *)
let emit_level b ~level ~count ~sh_a ~mask_a ~sh_b ~xor_b ~xor_c =
  let loop = Printf.sprintf "level%d" level in
  Builder.li b R.t0 count;
  Builder.move b R.t1 R.a0;
  Builder.move b R.t2 R.a1;
  Builder.label b loop;
  Builder.lh b R.t3 0 R.t1;
  Builder.lh b R.t4 2 R.t1;
  (* chain A (3 ops): smoothed band *)
  Builder.sll b R.t5 R.t3 sh_a;
  Builder.addu b R.t5 R.t5 R.t4;
  Builder.andi b R.t6 R.t5 mask_a;
  (* chain B (3 ops): edge band *)
  Builder.subu b R.t5 R.t3 R.t4;
  Builder.sll b R.t5 R.t5 sh_b;
  Builder.xori b R.t7 R.t5 xor_b;
  (* chain C (2 ops): coarse band *)
  Builder.sra b R.t5 R.t3 1;
  Builder.xori b R.t8 R.t5 xor_c;
  (* non-foldable work: wide mixing and checksum *)
  Builder.sll b R.v0 R.t6 16;
  Builder.or_ b R.v0 R.v0 R.t7;
  Builder.addu b R.s3 R.s3 R.v0;
  Builder.mult b R.t3 R.t4;
  Builder.mflo b R.v1;
  Builder.addu b R.s4 R.s4 R.v1;
  Builder.addu b R.s5 R.s5 R.t8;
  Builder.sh b R.t6 0 R.t2;
  Builder.sh b R.t7 2 R.t2;
  Builder.sh b R.t8 4 R.t2;
  Builder.addiu b R.t1 R.t1 4;
  Builder.addiu b R.t2 R.t2 6;
  Builder.addiu b R.t0 R.t0 (-2);
  Builder.bgtz b R.t0 loop

let program =
  let b = Builder.create ~name:"epic" () in
  Builder.li b R.a0 Kit.src_base;
  Builder.li b R.a1 Kit.out_base;
  Builder.li b R.s0 passes;
  Builder.li b R.s3 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s4 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s5 0x100000 (* wide-seeded checksum accumulator *);
  Builder.label b "pass";
  emit_level b ~level:0 ~count:n ~sh_a:2 ~mask_a:0xFFF ~sh_b:1 ~xor_b:0x55
    ~xor_c:0xF;
  emit_level b ~level:1 ~count:(n / 2) ~sh_a:3 ~mask_a:0x7FF ~sh_b:2
    ~xor_b:0x33 ~xor_c:0x1D;
  emit_level b ~level:2 ~count:(n / 4) ~sh_a:1 ~mask_a:0x1FFF ~sh_b:3
    ~xor_b:0x69 ~xor_c:0x2B;
  emit_level b ~level:3 ~count:(n / 8) ~sh_a:4 ~mask_a:0x3FF ~sh_b:1
    ~xor_b:0x47 ~xor_c:0x31;
  Builder.addiu b R.s0 R.s0 (-1);
  Builder.bgtz b R.s0 "pass";
  Builder.halt b;
  Builder.build b

let init mem _regs =
  Kit.store_halfwords mem Kit.src_base
    (Kit.xorshift ~seed:0xE51C ~n ~mask:0x7FF)

let workload =
  {
    Workload.name = "epic";
    description = "4-level pyramid decomposition (12 distinct 3/3/2-op chains)";
    program;
    init;
    out_base = Kit.out_base;
    out_len;
  }
