(* G.721 ADPCM decoder-like kernel.

   Dominated by table lookups, multiplies, branchy sign handling and
   clamping - very little of the loop is foldable (one 2-op index
   chain), so the speedup is the smallest of the suite, matching the
   paper's 4.5% for g721_decode. *)

open T1000_isa
open T1000_asm
module R = Reg

let n = 4096 (* 4-bit codes, one per byte *)
let passes = 4
let table_len = 16
let out_len = 2 * n

let program =
  let b = Builder.create ~name:"g721_dec" () in
  Builder.li b R.a0 Kit.src_base;
  Builder.li b R.a1 Kit.out_base;
  Builder.li b R.a2 Kit.aux_base (* step table *);
  Builder.li b R.s0 passes;
  Builder.label b "pass";
  Builder.li b R.t0 n;
  Builder.move b R.t1 R.a0;
  Builder.move b R.t2 R.a1;
  Builder.li b R.s1 0 (* predictor state *);
  Builder.label b "inner";
  Builder.lbu b R.t3 0 R.t1;
  (* index chain (2 ops): magnitude bits -> table offset *)
  Builder.andi b R.t4 R.t3 0x07;
  Builder.sll b R.t5 R.t4 1;
  Builder.addu b R.t5 R.a2 R.t5 (* wide: address *);
  Builder.lh b R.t6 0 R.t5 (* step size *);
  (* difference via multiply (not foldable) *)
  Builder.addiu b R.t7 R.t3 1;
  Builder.mult b R.t6 R.t7;
  Builder.mflo b R.t8;
  Builder.sra b R.t8 R.t8 3;
  (* sign handling *)
  Builder.andi b R.t9 R.t3 0x08;
  Builder.beq b R.t9 R.zero "positive";
  (* negative arm: 2-op scaled update chain *)
  Builder.addiu b R.v0 R.t8 33;
  Builder.subu b R.s1 R.s1 R.v0;
  Builder.j b "clamp";
  Builder.label b "positive";
  (* positive arm: a distinct 2-op chain *)
  Builder.xori b R.v0 R.t8 0x11;
  Builder.addu b R.s1 R.s1 R.v0;
  Builder.label b "clamp";
  Builder.slti b R.v0 R.s1 2048;
  Builder.bne b R.v0 R.zero "no_hi";
  Builder.li b R.s1 2047;
  Builder.label b "no_hi";
  Builder.addiu b R.v1 R.s1 2048;
  Builder.bgez b R.v1 "no_lo";
  Builder.li b R.s1 (-2048);
  Builder.label b "no_lo";
  Builder.sh b R.s1 0 R.t2;
  Builder.addiu b R.t1 R.t1 1;
  Builder.addiu b R.t2 R.t2 2;
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "inner";
  Builder.addiu b R.s0 R.s0 (-1);
  Builder.bgtz b R.s0 "pass";
  Builder.halt b;
  Builder.build b

let init mem _regs =
  Kit.store_bytes mem Kit.src_base (Kit.xorshift ~seed:0x6721 ~n ~mask:0xFF);
  (* exponential-ish step table, 16 halfwords *)
  Kit.store_halfwords mem Kit.aux_base
    (Array.init table_len (fun i -> 16 + (i * i * 7)))

let workload =
  {
    Workload.name = "g721_dec";
    description = "ADPCM decode (table lookups, mult, branchy clamp)";
    program;
    init;
    out_base = Kit.out_base;
    out_len;
  }
