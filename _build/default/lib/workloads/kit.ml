open T1000_machine

let src_base = 0x1000_0000
let aux_base = 0x1400_0000
let out_base = 0x2000_0000

let xorshift ~seed ~n ~mask =
  if mask land (mask + 1) <> 0 then invalid_arg "Kit.xorshift: bad mask";
  let state = ref (if seed = 0 then 0x9E3779B9 else seed) in
  Array.init n (fun _ ->
      let x = !state in
      let x = x lxor (x lsl 13) in
      let x = x lxor (x lsr 17) in
      let x = (x lxor (x lsl 5)) land 0x7FFF_FFFF in
      state := x;
      x land mask)

let store_halfwords mem base a =
  Array.iteri (fun i v -> Memory.store_half mem (base + (2 * i)) v) a

let store_words mem base a =
  Array.iteri (fun i v -> Memory.store_word mem (base + (4 * i)) v) a

let store_bytes mem base a =
  Array.iteri (fun i v -> Memory.store_byte mem (base + i) v) a
