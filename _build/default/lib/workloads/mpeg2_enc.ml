(* MPEG-2 encoder-like kernel (motion-estimation SAD step).

   Absolute pixel differences via the branch-free sra/xor/subu idiom -
   the two abs chains share one canonical configuration - plus a
   distinct weighting chain, accumulated into a wide SAD register. *)

open T1000_isa
open T1000_asm
module R = Reg

let n = 4096 (* pixel bytes per frame row set *)
let passes = 4
let out_len = n + (n / 2)

let program =
  let b = Builder.create ~name:"mpeg2_enc" () in
  Builder.li b R.a0 Kit.src_base (* current block *);
  Builder.li b R.a1 (Kit.src_base + n) (* reference block *);
  Builder.li b R.a2 Kit.out_base;
  Builder.li b R.s0 passes;
  Builder.li b R.s3 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s4 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s5 0x100000 (* wide-seeded checksum accumulator *);
  Builder.li b R.s7 0x100000 (* wide-seeded checksum accumulator *);
  Builder.label b "pass";
  Builder.li b R.t0 n;
  Builder.move b R.t1 R.a0;
  Builder.move b R.t2 R.a1;
  Builder.move b R.t3 R.a2;
  Builder.label b "inner";
  Builder.lbu b R.t4 0 R.t1;
  Builder.lbu b R.t5 0 R.t2;
  Builder.lbu b R.t6 1 R.t1;
  Builder.lbu b R.t7 1 R.t2;
  (* abs chain #1 (4 ops): |t4 - t5| *)
  Builder.subu b R.t8 R.t4 R.t5;
  Builder.sra b R.t9 R.t8 31;
  Builder.xor b R.t8 R.t8 R.t9;
  Builder.subu b R.v0 R.t8 R.t9;
  (* abs chain #2 (4 ops): |t6 - t7|, same configuration *)
  Builder.subu b R.t8 R.t6 R.t7;
  Builder.sra b R.t9 R.t8 31;
  Builder.xor b R.t8 R.t8 R.t9;
  Builder.subu b R.v1 R.t8 R.t9;
  (* weighting chain (3 ops): inputs t4, t6 *)
  Builder.addu b R.t8 R.t4 R.t6;
  Builder.sra b R.t8 R.t8 1;
  Builder.xori b R.s2 R.t8 0x5A;
  (* threshold chain (2 ops): inputs t5, t7 *)
  Builder.subu b R.t8 R.t5 R.t7;
  Builder.slti b R.s6 R.t8 16;
  (* non-foldable work: long multiply, wide mixing, accumulators *)
  Builder.mult b R.v0 R.v1;
  Builder.mflo b R.t8;
  Builder.addu b R.s7 R.s7 R.t8;
  Builder.sll b R.t8 R.v0 16;
  Builder.addu b R.s3 R.s3 R.t8;
  Builder.addu b R.s3 R.s3 R.v0;
  Builder.addu b R.s3 R.s3 R.v1;
  Builder.addu b R.s4 R.s4 R.s2;
  Builder.addu b R.s5 R.s5 R.s6;
  Builder.sb b R.s2 0 R.t3;
  Builder.addiu b R.t1 R.t1 2;
  Builder.addiu b R.t2 R.t2 2;
  Builder.addiu b R.t3 R.t3 1;
  Builder.addiu b R.t0 R.t0 (-2);
  Builder.bgtz b R.t0 "inner";
  (* --- half-pel interpolation loop --- *)
  Builder.li b R.t0 (n / 2);
  Builder.move b R.t1 R.a1;
  Builder.li b R.t2 (Kit.out_base + n);
  Builder.label b "halfpel";
  Builder.lbu b R.t4 0 R.t1;
  Builder.lbu b R.t5 1 R.t1;
  (* rounding-average chain (3 ops) *)
  Builder.addu b R.t8 R.t4 R.t5;
  Builder.addiu b R.t8 R.t8 1;
  Builder.sra b R.t6 R.t8 1;
  (* gradient chain (2 ops) *)
  Builder.subu b R.t8 R.t5 R.t4;
  Builder.sll b R.t7 R.t8 1;
  Builder.addu b R.s7 R.s7 R.t7;
  Builder.sb b R.t6 0 R.t2;
  Builder.addiu b R.t1 R.t1 2;
  Builder.addiu b R.t2 R.t2 1;
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "halfpel";
  Builder.addiu b R.s0 R.s0 (-1);
  Builder.bgtz b R.s0 "pass";
  Builder.halt b;
  Builder.build b

let init mem _regs =
  Kit.store_bytes mem Kit.src_base
    (Kit.xorshift ~seed:0x2E2C ~n:(2 * n) ~mask:0xFF)

let workload =
  {
    Workload.name = "mpeg2_enc";
    description = "SAD motion step (two shared abs chains + weight chain)";
    program;
    init;
    out_base = Kit.out_base;
    out_len;
  }
