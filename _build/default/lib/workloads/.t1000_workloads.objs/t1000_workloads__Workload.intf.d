lib/workloads/workload.mli: Memory Program Regfile T1000_asm T1000_machine
