lib/workloads/registry.ml: Epic G721_dec G721_enc Gsm_dec Gsm_enc List Mpeg2_dec Mpeg2_enc String Unepic Workload
