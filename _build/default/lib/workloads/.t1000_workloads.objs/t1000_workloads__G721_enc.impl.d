lib/workloads/g721_enc.ml: Array Builder Kit Reg T1000_asm T1000_isa Workload
