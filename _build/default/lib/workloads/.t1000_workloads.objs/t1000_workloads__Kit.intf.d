lib/workloads/kit.mli: Memory T1000_machine
