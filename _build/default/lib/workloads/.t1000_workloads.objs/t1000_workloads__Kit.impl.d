lib/workloads/kit.ml: Array Memory T1000_machine
