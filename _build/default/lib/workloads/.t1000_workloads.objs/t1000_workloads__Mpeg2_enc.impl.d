lib/workloads/mpeg2_enc.ml: Builder Kit Reg T1000_asm T1000_isa Workload
