lib/workloads/mpeg2_dec.ml: Builder Kit Reg T1000_asm T1000_isa Workload
