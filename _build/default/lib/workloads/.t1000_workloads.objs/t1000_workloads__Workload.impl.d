lib/workloads/workload.ml: Char Memory Program Regfile String T1000_asm T1000_machine
