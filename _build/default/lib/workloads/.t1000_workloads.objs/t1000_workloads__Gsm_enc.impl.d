lib/workloads/gsm_enc.ml: Array Builder Kit Reg T1000_asm T1000_isa Workload
