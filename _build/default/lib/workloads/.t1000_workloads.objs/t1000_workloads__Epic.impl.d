lib/workloads/epic.ml: Builder Kit Printf Reg T1000_asm T1000_isa Workload
