(* Tests for the cache layer: set-associative caches, TLBs and the
   two-level hierarchy's latency arithmetic. *)

open T1000_cache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let mk ?(sets = 4) ?(ways = 2) ?(line = 16) () =
  Cache.create ~name:"t" ~sets ~ways ~line_bytes:line

(* ---------- Cache ---------- *)

let test_cache_create_validation () =
  let bad f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check_bool "sets not pow2" true (bad (fun () -> mk ~sets:3 ()));
  check_bool "zero ways" true (bad (fun () -> mk ~ways:0 ()));
  check_bool "line not pow2" true (bad (fun () -> mk ~line:24 ()))

let test_cache_hit_after_miss () =
  let c = mk () in
  let r1 = Cache.access c ~addr:0x100 ~write:false in
  check_bool "first is miss" false r1.Cache.hit;
  let r2 = Cache.access c ~addr:0x104 ~write:false in
  check_bool "same line hits" true r2.Cache.hit;
  let r3 = Cache.access c ~addr:0x110 ~write:false in
  check_bool "next line misses" false r3.Cache.hit;
  check_int "accesses" 3 (Cache.accesses c);
  check_int "misses" 2 (Cache.misses c)

let test_cache_lru () =
  (* 4 sets x 16B lines: addresses with the same (addr/16) mod 4 share a
     set.  With 2 ways, the third distinct line in a set evicts the
     least recently used. *)
  let c = mk () in
  let a = 0x000 and b = 0x040 and d = 0x080 in
  ignore (Cache.access c ~addr:a ~write:false);
  ignore (Cache.access c ~addr:b ~write:false);
  (* touch a so b is LRU *)
  ignore (Cache.access c ~addr:a ~write:false);
  ignore (Cache.access c ~addr:d ~write:false);
  (* d evicted b *)
  check_bool "a survives" true (Cache.probe c ~addr:a);
  check_bool "b evicted" false (Cache.probe c ~addr:b);
  check_bool "d resident" true (Cache.probe c ~addr:d)

let test_cache_dirty_writeback () =
  let c = mk ~ways:1 () in
  ignore (Cache.access c ~addr:0x000 ~write:true);
  (* evict the dirty line with a conflicting one *)
  let r = Cache.access c ~addr:0x040 ~write:false in
  check_int "writeback address" 0x000 r.Cache.dirty_evict;
  check_int "writebacks counted" 1 (Cache.writebacks c);
  (* clean eviction reports none *)
  let r2 = Cache.access c ~addr:0x080 ~write:false in
  check_int "clean eviction" (-1) r2.Cache.dirty_evict

let test_cache_probe_no_side_effect () =
  let c = mk () in
  check_bool "probe miss" false (Cache.probe c ~addr:0x123);
  check_int "no access recorded" 0 (Cache.accesses c);
  check_bool "still miss" false (Cache.probe c ~addr:0x123)

let test_cache_flush_and_stats () =
  let c = mk () in
  ignore (Cache.access c ~addr:0 ~write:false);
  Cache.flush c;
  check_bool "flushed" false (Cache.probe c ~addr:0);
  check_int "stats kept" 1 (Cache.accesses c);
  Cache.reset_stats c;
  check_int "stats reset" 0 (Cache.accesses c);
  check_bool "miss rate zero" true (Cache.miss_rate c = 0.0)

let test_cache_geometry () =
  let c = mk ~sets:8 ~ways:4 ~line:32 () in
  check_int "size" (8 * 4 * 32) (Cache.size_bytes c);
  check_int "line" 32 (Cache.line_bytes c)

let test_cache_fills_capacity =
  (* after touching exactly sets*ways distinct conflicting-free lines,
     everything is still resident *)
  QCheck.Test.make ~name:"capacity residency" ~count:50
    (QCheck.make (QCheck.Gen.int_range 1 3))
    (fun ways ->
      let sets = 4 and line = 16 in
      let c = Cache.create ~name:"cap" ~sets ~ways ~line_bytes:line in
      for w = 0 to ways - 1 do
        for s = 0 to sets - 1 do
          ignore
            (Cache.access c ~addr:((w * sets * line) + (s * line))
               ~write:false)
        done
      done;
      let ok = ref true in
      for w = 0 to ways - 1 do
        for s = 0 to sets - 1 do
          if not (Cache.probe c ~addr:((w * sets * line) + (s * line))) then
            ok := false
        done
      done;
      !ok)

let test_cache_lru_reference =
  (* exact agreement with a list-based LRU model over random traces *)
  QCheck.Test.make ~name:"cache agrees with list-based LRU model" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 200)
        (pair (int_range 0 1023) bool))
    (fun trace ->
      let sets = 4 and ways = 2 and line = 16 in
      let c = Cache.create ~name:"ref" ~sets ~ways ~line_bytes:line in
      (* model: per set, a most-recent-first list of line addresses *)
      let model = Array.make sets [] in
      List.for_all
        (fun (addr, write) ->
          let lineaddr = addr / line in
          let set = lineaddr mod sets in
          let hit_model = List.mem lineaddr model.(set) in
          model.(set) <-
            lineaddr :: List.filter (fun l -> l <> lineaddr) model.(set);
          (if List.length model.(set) > ways then
             model.(set) <-
               List.filteri (fun i _ -> i < ways) model.(set));
          let r = Cache.access c ~addr ~write in
          r.Cache.hit = hit_model)
        trace)

(* ---------- Tlb ---------- *)

let test_tlb_basics () =
  let t = Tlb.create ~name:"t" ~entries:2 ~page_bytes:4096 in
  check_bool "first miss" false (Tlb.access t ~addr:0x1000);
  check_bool "same page hits" true (Tlb.access t ~addr:0x1FFF);
  check_bool "new page miss" false (Tlb.access t ~addr:0x2000);
  (* LRU: touch page1, then a third page evicts page2 *)
  check_bool "page1 hit" true (Tlb.access t ~addr:0x1000);
  check_bool "third page miss" false (Tlb.access t ~addr:0x3000);
  check_bool "page1 survives" true (Tlb.access t ~addr:0x1234);
  check_bool "page2 evicted" false (Tlb.access t ~addr:0x2500);
  check_int "accesses" 7 (Tlb.accesses t);
  Tlb.flush t;
  check_bool "flushed" false (Tlb.access t ~addr:0x1000)

let test_tlb_validation () =
  check_bool "bad entries" true
    (match Tlb.create ~name:"x" ~entries:0 ~page_bytes:4096 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "bad page size" true
    (match Tlb.create ~name:"x" ~entries:4 ~page_bytes:100 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Hierarchy ---------- *)

let small_config =
  {
    Hierarchy.default_config with
    Hierarchy.l1i_sets = 4;
    l1i_ways = 1;
    l1i_line = 32;
    l1d_sets = 4;
    l1d_ways = 1;
    l1d_line = 32;
    l2_sets = 16;
    l2_ways = 2;
    l2_line = 64;
    itlb_entries = 2;
    dtlb_entries = 2;
  }

let test_hierarchy_latencies () =
  let h = Hierarchy.create small_config in
  let cfg = small_config in
  let cold = Hierarchy.load_latency h ~addr:0x1000 in
  check_int "cold load: l1+l2+mem+tlb"
    (cfg.Hierarchy.l1_hit + cfg.Hierarchy.l2_hit + cfg.Hierarchy.mem
   + cfg.Hierarchy.tlb_miss)
    cold;
  let warm = Hierarchy.load_latency h ~addr:0x1000 in
  check_int "warm load: l1 hit" cfg.Hierarchy.l1_hit warm;
  (* evict from L1 (1-way, 4 sets x 32B: +4*32 conflicts) but stay in L2 *)
  ignore (Hierarchy.load_latency h ~addr:(0x1000 + 128));
  let l2hit = Hierarchy.load_latency h ~addr:0x1000 in
  check_int "l1 miss, l2 hit" (cfg.Hierarchy.l1_hit + cfg.Hierarchy.l2_hit)
    l2hit

let test_hierarchy_fetch_tlb () =
  let h = Hierarchy.create small_config in
  let cfg = small_config in
  let cold = Hierarchy.fetch_latency h ~addr:0x400000 in
  check_int "cold fetch"
    (cfg.Hierarchy.l1_hit + cfg.Hierarchy.l2_hit + cfg.Hierarchy.mem
   + cfg.Hierarchy.tlb_miss)
    cold;
  let warm = Hierarchy.fetch_latency h ~addr:0x400004 in
  check_int "warm fetch" cfg.Hierarchy.l1_hit warm

let test_hierarchy_store_writeback () =
  let h = Hierarchy.create small_config in
  ignore (Hierarchy.store_latency h ~addr:0x1000);
  (* conflicting line in the same L1 set evicts the dirty line into L2 *)
  ignore (Hierarchy.store_latency h ~addr:(0x1000 + 128));
  check_bool "l2 saw the writeback" true (Cache.accesses (Hierarchy.l2 h) >= 3)

let test_hierarchy_stats_reset () =
  let h = Hierarchy.create small_config in
  ignore (Hierarchy.load_latency h ~addr:0);
  Hierarchy.reset_stats h;
  check_int "l1d reset" 0 (Cache.accesses (Hierarchy.l1d h));
  check_int "dtlb reset" 0 (Tlb.accesses (Hierarchy.dtlb h));
  ignore (Hierarchy.load_latency h ~addr:0);
  check_bool "still resident after stats reset" true
    (Cache.probe (Hierarchy.l1d h) ~addr:0);
  Hierarchy.flush h;
  check_bool "flush empties" false (Cache.probe (Hierarchy.l1d h) ~addr:0)

let test_default_config_sizes () =
  let cfg = Hierarchy.default_config in
  let h = Hierarchy.create cfg in
  check_int "l1i 16KB" (16 * 1024) (Cache.size_bytes (Hierarchy.l1i h));
  check_int "l1d 16KB" (16 * 1024) (Cache.size_bytes (Hierarchy.l1d h));
  check_int "l2 256KB" (256 * 1024) (Cache.size_bytes (Hierarchy.l2 h))

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "t1000_cache"
    [
      ( "cache",
        [
          Alcotest.test_case "validation" `Quick test_cache_create_validation;
          Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
          Alcotest.test_case "lru" `Quick test_cache_lru;
          Alcotest.test_case "dirty writeback" `Quick
            test_cache_dirty_writeback;
          Alcotest.test_case "probe" `Quick test_cache_probe_no_side_effect;
          Alcotest.test_case "flush/stats" `Quick test_cache_flush_and_stats;
          Alcotest.test_case "geometry" `Quick test_cache_geometry;
        ]
        @ qsuite [ test_cache_fills_capacity; test_cache_lru_reference ] );
      ( "tlb",
        [
          Alcotest.test_case "basics" `Quick test_tlb_basics;
          Alcotest.test_case "validation" `Quick test_tlb_validation;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latencies" `Quick test_hierarchy_latencies;
          Alcotest.test_case "fetch/tlb" `Quick test_hierarchy_fetch_tlb;
          Alcotest.test_case "store writeback" `Quick
            test_hierarchy_store_writeback;
          Alcotest.test_case "stats reset" `Quick test_hierarchy_stats_reset;
          Alcotest.test_case "default sizes" `Quick test_default_config_sizes;
        ] );
    ]
