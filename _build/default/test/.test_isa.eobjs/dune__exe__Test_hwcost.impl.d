test/test_hwcost.ml: Alcotest Area Array Dfg Format Lut Op T1000_dfg T1000_hwcost T1000_isa
