test/test_workloads.ml: Alcotest Hashtbl List Registry String T1000 T1000_dfg T1000_hwcost T1000_machine T1000_select T1000_workloads Workload
