test/test_integration.ml: Alcotest Experiment Format Lazy List Option Report Runner Stats String T1000 T1000_asm T1000_dfg T1000_hwcost T1000_isa T1000_ooo T1000_profile T1000_select T1000_workloads
