test/test_dfg.ml: Alcotest Array Builder Canon Cfg Dfg Extract List Liveness Op QCheck QCheck_alcotest Reg String T1000_asm T1000_dfg T1000_isa T1000_profile Word
