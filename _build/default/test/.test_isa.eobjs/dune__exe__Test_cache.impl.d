test/test_cache.ml: Alcotest Array Cache Gen Hierarchy List QCheck QCheck_alcotest T1000_cache Tlb
