test/test_profile.ml: Alcotest Bitwidth Builder Format List Mix Profile Reg String T1000_asm T1000_isa T1000_machine T1000_profile Word
