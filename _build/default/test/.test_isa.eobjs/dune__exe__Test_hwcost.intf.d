test/test_hwcost.mli:
