test/test_machine.ml: Alcotest Array Builder Encoding Gen Hashtbl Interp List Memory Option Program QCheck QCheck_alcotest Reg Regfile T1000_asm T1000_isa T1000_machine Trace Word
