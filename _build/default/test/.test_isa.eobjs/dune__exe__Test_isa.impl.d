test/test_isa.ml: Alcotest Encoding Format Instr Int64 List Op QCheck QCheck_alcotest Reg T1000_isa Word
