test/test_ooo.ml: Alcotest Builder Instr Mconfig Pfu_file Reg Ruu Sim Stats T1000_asm T1000_cache T1000_isa T1000_ooo Word
