(* Tests for the assembler layer: programs, the builder DSL, control-flow
   graphs, dominators, natural loops, liveness and register sets. *)

open T1000_isa
open T1000_asm
module R = Reg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_ints = Alcotest.(check (list int))
let sorted = List.sort compare

(* ---------- Program ---------- *)

let test_program_basics () =
  let code = [| Instr.Nop; Instr.Halt |] in
  let p = Program.make ~name:"p" code in
  check_int "length" 2 (Program.length p);
  check_bool "get" true (Instr.equal Instr.Halt (Program.get p 1));
  check_int "max_ext_id none" (-1) (Program.max_ext_id p);
  (* the copy is deep: mutating the source array must not change it *)
  code.(0) <- Instr.Halt;
  check_bool "deep copy" true (Instr.equal Instr.Nop (Program.get p 0))

let test_program_validation () =
  check_bool "bad branch target" true
    (match
       Program.make [| Instr.Branch (Op.Beq, R.t0, R.t1, 9); Instr.Halt |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "bad jump target" true
    (match Program.make [| Instr.Jump (-1); Instr.Halt |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_program_max_ext_id () =
  let p =
    Program.make
      [|
        Instr.Ext { eid = 3; dst = R.t0; src1 = R.t1; src2 = R.zero };
        Instr.Ext { eid = 7; dst = R.t0; src1 = R.t1; src2 = R.zero };
        Instr.Halt;
      |]
  in
  check_int "max ext id" 7 (Program.max_ext_id p)

(* ---------- Builder ---------- *)

let test_builder_loop () =
  let b = Builder.create ~name:"loop" () in
  Builder.li b R.t0 3;
  Builder.label b "top";
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "top";
  Builder.halt b;
  let p = Builder.build b in
  check_int "length" 4 (Program.length p);
  match Program.get p 2 with
  | Instr.Branch (Op.Bgtz, _, _, 1) -> ()
  | i -> Alcotest.failf "expected backward branch to 1, got %a" Instr.pp i

let test_builder_forward_label () =
  let b = Builder.create () in
  Builder.j b "end";
  Builder.nop b;
  Builder.label b "end";
  Builder.halt b;
  let p = Builder.build b in
  match Program.get p 0 with
  | Instr.Jump 2 -> ()
  | i -> Alcotest.failf "expected jump to 2, got %a" Instr.pp i

let test_builder_errors () =
  let b = Builder.create () in
  Builder.label b "dup";
  check_bool "duplicate label" true
    (match Builder.label b "dup" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let b2 = Builder.create () in
  Builder.j b2 "missing";
  check_bool "undefined label" true
    (match Builder.build b2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_builder_li () =
  let run_li v =
    let b = Builder.create () in
    Builder.li b R.t0 v;
    Builder.halt b;
    let p = Builder.build b in
    let mem = T1000_machine.Memory.create () in
    let regs = T1000_machine.Regfile.create () in
    let i = T1000_machine.Interp.create ~mem ~regs p in
    ignore (T1000_machine.Interp.run i);
    T1000_machine.Regfile.get regs R.t0
  in
  check_int "small" 42 (run_li 42);
  check_int "negative" (-3) (run_li (-3));
  check_int "16-bit unsigned" 0xFFFF (run_li 0xFFFF);
  check_int "32-bit" 0x12345678 (run_li 0x12345678);
  check_int "high only" 0x40000 (run_li 0x40000);
  check_int "negative large" (-2147483648) (run_li (-2147483648))

let test_fresh_label () =
  let b = Builder.create () in
  let l1 = Builder.fresh_label b "x" and l2 = Builder.fresh_label b "x" in
  check_bool "unique" true (not (String.equal l1 l2))

(* ---------- Cfg ---------- *)

let diamond () =
  (* 0: beq -> 2 | 1: j 3 | 2: nop | 3: halt  => 4 blocks *)
  Program.make
    [|
      Instr.Branch (Op.Beq, R.t0, R.t1, 2);
      Instr.Jump 3;
      Instr.Nop;
      Instr.Halt;
    |]

let test_cfg_single_block () =
  let p = Program.make [| Instr.Nop; Instr.Nop; Instr.Halt |] in
  let g = Cfg.of_program p in
  check_int "one block" 1 (Cfg.n_blocks g);
  check_ints "slots" [ 0; 1; 2 ] (Cfg.instr_indices (Cfg.block g 0));
  check_ints "no succ" [] (Cfg.block g 0).Cfg.succ

let test_cfg_diamond () =
  let g = Cfg.of_program (diamond ()) in
  check_int "four blocks" 4 (Cfg.n_blocks g);
  check_ints "entry succ" [ 1; 2 ] (sorted (Cfg.block g 0).Cfg.succ);
  check_ints "left succ" [ 3 ] (Cfg.block g 1).Cfg.succ;
  check_ints "right succ" [ 3 ] (Cfg.block g 2).Cfg.succ;
  check_ints "join preds" [ 1; 2 ] (sorted (Cfg.block g 3).Cfg.pred);
  check_int "block_of_instr" 2 (Cfg.block_of_instr g 2)

let test_cfg_loop () =
  let b = Builder.create () in
  Builder.li b R.t0 3;
  Builder.label b "top";
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "top";
  Builder.halt b;
  let g = Cfg.of_program (Builder.build b) in
  check_int "three blocks" 3 (Cfg.n_blocks g);
  check_ints "loop block succ" [ 1; 2 ] (sorted (Cfg.block g 1).Cfg.succ);
  check_ints "loop block self-pred" [ 0; 1 ] (sorted (Cfg.block g 1).Cfg.pred)

let test_cfg_jal_jr () =
  let b = Builder.create () in
  Builder.jal b "fn";
  Builder.halt b;
  Builder.label b "fn";
  Builder.jr b R.ra;
  let p = Builder.build b in
  let g = Cfg.of_program p in
  (* jr's conservative successors are the return sites (slot after jal) *)
  let jr_block = Cfg.block_of_instr g 2 in
  let ret_block = Cfg.block_of_instr g 1 in
  check_bool "jr -> return site" true
    (List.mem ret_block (Cfg.block g jr_block).Cfg.succ);
  check_bool "has_indirect_jump" true (Cfg.has_indirect_jump g jr_block);
  check_bool "entry not indirect" false (Cfg.has_indirect_jump g 0)

let test_cfg_pred_succ_duality () =
  let g = Cfg.of_program (diamond ()) in
  for b = 0 to Cfg.n_blocks g - 1 do
    List.iter
      (fun s ->
        check_bool "succ implies pred" true
          (List.mem b (Cfg.block g s).Cfg.pred))
      (Cfg.block g b).Cfg.succ
  done

let test_cfg_to_dot () =
  let g = Cfg.of_program (diamond ()) in
  let dot = Cfg.to_dot g in
  check_bool "digraph" true (String.sub dot 0 7 = "digraph");
  let contains sub =
    let rec find i =
      i + String.length sub <= String.length dot
      && (String.equal (String.sub dot i (String.length sub)) sub
         || find (i + 1))
    in
    find 0
  in
  check_bool "block nodes" true (contains "B3");
  check_bool "edges" true (contains "B0 -> B")

(* ---------- Dominators ---------- *)

let test_dominators_diamond () =
  let g = Cfg.of_program (diamond ()) in
  let d = Dominators.compute g in
  check_bool "entry has no idom" true (Dominators.idom d 0 = None);
  check_bool "idom left" true (Dominators.idom d 1 = Some 0);
  check_bool "idom right" true (Dominators.idom d 2 = Some 0);
  check_bool "idom join is entry" true (Dominators.idom d 3 = Some 0);
  check_bool "entry dominates all" true
    (Dominators.dominates d 0 3 && Dominators.dominates d 0 1);
  check_bool "left does not dominate join" false (Dominators.dominates d 1 3);
  check_bool "reflexive" true (Dominators.dominates d 2 2)

let test_dominators_unreachable () =
  (* slot 1 is unreachable (jump over it) *)
  let p = Program.make [| Instr.Jump 2; Instr.Nop; Instr.Halt |] in
  let g = Cfg.of_program p in
  let d = Dominators.compute g in
  let unreachable = Cfg.block_of_instr g 1 in
  check_bool "unreachable" false (Dominators.reachable d unreachable);
  check_bool "no idom" true (Dominators.idom d unreachable = None);
  check_bool "rpo excludes it" true
    (not (Array.exists (fun b -> b = unreachable) (Dominators.reverse_postorder d)))

(* Random CFGs: a program of [n] slots where every slot is either a
   conditional branch to a random target, a jump, or a nop; the last
   slot is halt.  Dominance is then checked against the definition: [a]
   dominates [b] iff removing [a] makes [b] unreachable from the
   entry. *)
let random_cfg_gen =
  let open QCheck.Gen in
  let slot n =
    frequency
      [
        (3, return `Nop);
        (2, map (fun t -> `Branch t) (int_range 0 (n - 1)));
        (1, map (fun t -> `Jump t) (int_range 0 (n - 1)));
      ]
  in
  sized_size (int_range 4 12) (fun n ->
      map
        (fun slots ->
          let code =
            Array.of_list
              (List.mapi
                 (fun i s ->
                   if i = n - 1 then Instr.Halt
                   else
                     match s with
                     | `Nop -> Instr.Nop
                     | `Branch t -> Instr.Branch (Op.Bgtz, R.t0, R.zero, t)
                     | `Jump t -> Instr.Jump t)
                 slots)
          in
          Program.make code)
        (list_repeat n (slot n)))

let test_dominators_brute_force =
  QCheck.Test.make ~name:"dominators match brute-force reachability"
    ~count:300 (QCheck.make random_cfg_gen) (fun p ->
      let g = Cfg.of_program p in
      let d = Dominators.compute g in
      let n = Cfg.n_blocks g in
      (* reachability from entry avoiding [avoid] (-1 = avoid nothing) *)
      let reachable_avoiding avoid =
        let seen = Array.make n false in
        let rec dfs b =
          if (not seen.(b)) && b <> avoid then begin
            seen.(b) <- true;
            List.iter dfs (Cfg.block g b).Cfg.succ
          end
        in
        if avoid <> 0 then dfs 0;
        seen
      in
      let plain = reachable_avoiding (-1) in
      let ok = ref true in
      for a = 0 to n - 1 do
        let without_a = reachable_avoiding a in
        for b = 0 to n - 1 do
          if plain.(b) then begin
            let dominates_ref =
              if a = b then plain.(a) else plain.(a) && not without_a.(b)
            in
            if Dominators.dominates d a b <> dominates_ref then ok := false
          end
        done
      done;
      !ok)

(* ---------- Loops ---------- *)

let nested_loops_program () =
  let b = Builder.create () in
  Builder.li b R.t0 3;
  Builder.label b "outer";
  Builder.li b R.t1 3;
  Builder.label b "inner";
  Builder.addiu b R.t1 R.t1 (-1);
  Builder.bgtz b R.t1 "inner";
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "outer";
  Builder.halt b;
  Builder.build b

let test_loops_simple () =
  let b = Builder.create () in
  Builder.li b R.t0 3;
  Builder.label b "top";
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "top";
  Builder.halt b;
  let g = Cfg.of_program (Builder.build b) in
  let d = Dominators.compute g in
  let l = Loops.compute g d in
  check_int "one loop" 1 (Array.length (Loops.loops l));
  let loop = (Loops.loops l).(0) in
  check_int "depth" 1 loop.Loops.depth;
  check_bool "body has header" true (List.mem loop.Loops.header loop.Loops.body);
  check_bool "instr in loop" true
    (Loops.innermost_at_instr l 1 <> None);
  check_bool "halt not in loop" true (Loops.innermost_at_instr l 3 = None)

let test_loops_nested () =
  let g = Cfg.of_program (nested_loops_program ()) in
  let d = Dominators.compute g in
  let l = Loops.compute g d in
  let loops = Loops.loops l in
  check_int "two loops" 2 (Array.length loops);
  (* innermost-first ordering *)
  check_int "first is inner (depth 2)" 2 loops.(0).Loops.depth;
  check_int "second is outer (depth 1)" 1 loops.(1).Loops.depth;
  check_bool "inner's parent is outer" true (loops.(0).Loops.parent = Some 1);
  check_bool "outer has no parent" true (loops.(1).Loops.parent = None);
  (* inner body is a subset of outer body *)
  check_bool "nesting subset" true
    (List.for_all (fun b -> List.mem b loops.(1).Loops.body) loops.(0).Loops.body);
  (* the inner decrement belongs to the inner loop *)
  check_bool "innermost_at_instr" true (Loops.innermost_at_instr l 2 = Some 0)

let test_loops_multi_backedge () =
  (* a loop with a 'continue': two back edges to one header must merge
     into a single natural loop *)
  let b = Builder.create () in
  Builder.li b R.t0 10;
  Builder.label b "head";
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.andi b R.t1 R.t0 1;
  Builder.bgtz b R.t1 "head" (* continue for odd counts *);
  Builder.nop b;
  Builder.bgtz b R.t0 "head" (* normal back edge *);
  Builder.halt b;
  let g = Cfg.of_program (Builder.build b) in
  let d = Dominators.compute g in
  let l = Loops.compute g d in
  check_int "one merged loop" 1 (Array.length (Loops.loops l));
  let loop = (Loops.loops l).(0) in
  (* both back-edge sources are in the body *)
  check_bool "continue block in body" true
    (List.mem (Cfg.block_of_instr g 3) loop.Loops.body);
  check_bool "latch block in body" true
    (List.mem (Cfg.block_of_instr g 5) loop.Loops.body)

let test_loops_branch_inside () =
  (* an if/else inside a loop: all four blocks belong to the loop *)
  let b = Builder.create () in
  Builder.li b R.t0 6;
  Builder.label b "head";
  Builder.andi b R.t1 R.t0 1;
  Builder.beq b R.t1 R.zero "even";
  Builder.addiu b R.t2 R.t2 1;
  Builder.j b "join";
  Builder.label b "even";
  Builder.addiu b R.t3 R.t3 1;
  Builder.label b "join";
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "head";
  Builder.halt b;
  let g = Cfg.of_program (Builder.build b) in
  let d = Dominators.compute g in
  let l = Loops.compute g d in
  check_int "one loop" 1 (Array.length (Loops.loops l));
  let loop = (Loops.loops l).(0) in
  List.iter
    (fun slot ->
      check_bool
        (Printf.sprintf "slot %d inside the loop" slot)
        true
        (List.mem (Cfg.block_of_instr g slot) loop.Loops.body))
    [ 1; 3; 5; 6; 7 ];
  (* the header dominates every block of its body *)
  List.iter
    (fun blk ->
      check_bool "header dominates body" true
        (Dominators.dominates d loop.Loops.header blk))
    loop.Loops.body

let test_loops_none () =
  let g = Cfg.of_program (diamond ()) in
  let d = Dominators.compute g in
  let l = Loops.compute g d in
  check_int "no loops" 0 (Array.length (Loops.loops l))

(* ---------- Regset ---------- *)

let test_regset_basics () =
  let s = Regset.of_list [ 1; 5; Instr.hi_reg ] in
  check_bool "mem 5" true (Regset.mem 5 s);
  check_bool "mem hi" true (Regset.mem Instr.hi_reg s);
  check_bool "not mem 2" false (Regset.mem 2 s);
  check_int "cardinal" 3 (Regset.cardinal s);
  check_ints "elements" [ 1; 5; Instr.hi_reg ] (Regset.elements s);
  check_bool "empty" true (Regset.is_empty Regset.empty);
  check_int "full cardinal" Instr.dep_reg_count (Regset.cardinal Regset.full);
  check_bool "remove" false (Regset.mem 5 (Regset.remove 5 s));
  check_bool "subset" true (Regset.subset (Regset.singleton 1) s);
  check_bool "out of range" true
    (match Regset.add 40 Regset.empty with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_regset_ops =
  let reg = QCheck.Gen.int_range 0 (Instr.dep_reg_count - 1) in
  let set_gen = QCheck.Gen.(map Regset.of_list (list_size (0 -- 10) reg)) in
  QCheck.Test.make ~name:"regset ops agree with list model" ~count:500
    (QCheck.make (QCheck.Gen.pair set_gen set_gen))
    (fun (a, b) ->
      let la = Regset.elements a and lb = Regset.elements b in
      let module S = Set.Make (Int) in
      let sa = S.of_list la and sb = S.of_list lb in
      Regset.elements (Regset.union a b) = S.elements (S.union sa sb)
      && Regset.elements (Regset.inter a b) = S.elements (S.inter sa sb)
      && Regset.elements (Regset.diff a b) = S.elements (S.diff sa sb))

(* ---------- Liveness ---------- *)

let test_liveness_straightline () =
  (* t0 <- 1; t1 <- t0+t0; halt : t1 dead, t0 dead at exit *)
  let b = Builder.create () in
  Builder.li b R.t0 1;
  Builder.addu b R.t1 R.t0 R.t0;
  Builder.halt b;
  let g = Cfg.of_program (Builder.build b) in
  let live = Liveness.compute g in
  check_bool "nothing live in" true (Regset.is_empty (Liveness.live_in live 0));
  check_bool "nothing live out" true
    (Regset.is_empty (Liveness.live_out live 0))

let test_liveness_loop_carried () =
  let b = Builder.create () in
  Builder.li b R.t0 3;
  Builder.label b "top";
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "top";
  Builder.halt b;
  let g = Cfg.of_program (Builder.build b) in
  let live = Liveness.compute g in
  let loop_block = Cfg.block_of_instr g 1 in
  check_bool "t0 live into loop" true
    (Regset.mem (Reg.to_int R.t0) (Liveness.live_in live loop_block));
  check_bool "t0 live out of loop (back edge)" true
    (Regset.mem (Reg.to_int R.t0) (Liveness.live_out live loop_block))

let test_liveness_indirect_jump () =
  let b = Builder.create () in
  Builder.jal b "fn";
  Builder.halt b;
  Builder.label b "fn";
  Builder.jr b R.ra;
  let g = Cfg.of_program (Builder.build b) in
  let live = Liveness.compute g in
  let jr_block = Cfg.block_of_instr g 2 in
  (* conservative: everything live at an indirect jump *)
  check_bool "full live out at jr" true
    (Regset.equal Regset.full (Liveness.live_out live jr_block))

let test_live_after_instr () =
  (* block: t0 <- 1; t1 <- t0+1; t0 <- 2; store t0; halt
     after slot 1, t0's first value is dead (redefined at 2) but t1...
     t1 is never used, so only the second t0 matters. *)
  let b = Builder.create () in
  Builder.li b R.t0 1;
  Builder.addiu b R.t1 R.t0 1;
  Builder.li b R.t0 2;
  Builder.sw b R.t0 0 R.zero;
  Builder.halt b;
  let g = Cfg.of_program (Builder.build b) in
  let live = Liveness.compute g in
  let after1 = Liveness.live_after_instr live 1 in
  check_bool "t0 dead after slot 1 (redefined)" false
    (Regset.mem (Reg.to_int R.t0) after1);
  let after2 = Liveness.live_after_instr live 2 in
  check_bool "t0 live after slot 2 (store reads it)" true
    (Regset.mem (Reg.to_int R.t0) after2)


(* ---------- Asm_text ---------- *)

let test_asm_text_roundtrip_workloads () =
  (* every benchmark's program survives print -> parse unchanged *)
  List.iter
    (fun w ->
      let p = w.T1000_workloads.Workload.program in
      let text = Asm_text.to_string p in
      match Asm_text.parse text with
      | Error msg -> Alcotest.failf "%s: %s" (Program.name p) msg
      | Ok q ->
          check_int
            (w.T1000_workloads.Workload.name ^ " length")
            (Program.length p) (Program.length q);
          Program.iteri
            (fun i instr ->
              if not (Instr.equal instr (Program.get q i)) then
                Alcotest.failf "%s slot %d: %a <> %a"
                  w.T1000_workloads.Workload.name i Instr.pp instr Instr.pp
                  (Program.get q i))
            p)
    T1000_workloads.Registry.all

let test_asm_text_parse_source () =
  let src =
    {|
# sum 1..5
        addiu t0, zero, 5
        addiu t1, zero, 0
loop:   addu  t1, t1, t0      ; accumulate
        addiu t0, t0, -1
        bgtz  t0, loop
        sw    t1, 0(sp)
        halt
|}
  in
  let p = Asm_text.parse_exn src in
  check_int "seven instructions" 7 (Program.length p);
  (match Program.get p 4 with
  | Instr.Branch (Op.Bgtz, _, _, 2) -> ()
  | i -> Alcotest.failf "branch: %a" Instr.pp i);
  (* run it *)
  let mem = T1000_machine.Memory.create () in
  let regs = T1000_machine.Regfile.create () in
  T1000_machine.Regfile.set regs R.sp 0x1000;
  let i = T1000_machine.Interp.create ~mem ~regs p in
  ignore (T1000_machine.Interp.run i);
  check_int "sum" 15 (T1000_machine.Memory.load_word mem 0x1000)

let test_asm_text_named_and_numeric_regs () =
  let p1 = Asm_text.parse_exn "addu t0, v0, a1
halt" in
  let p2 = Asm_text.parse_exn "addu r8, r2, r5
halt" in
  check_bool "aliases agree" true
    (Instr.equal (Program.get p1 0) (Program.get p2 0))

let test_asm_text_absolute_targets () =
  let p = Asm_text.parse_exn "j @2
nop
halt" in
  match Program.get p 0 with
  | Instr.Jump 2 -> ()
  | i -> Alcotest.failf "jump: %a" Instr.pp i

let test_asm_text_ext () =
  let p = Asm_text.parse_exn "ext#7 t0, t1, zero
halt" in
  match Program.get p 0 with
  | Instr.Ext { eid = 7; _ } -> ()
  | i -> Alcotest.failf "ext: %a" Instr.pp i

let test_asm_text_errors () =
  let fails s =
    match Asm_text.parse s with Error _ -> true | Ok _ -> false
  in
  check_bool "unknown mnemonic" true (fails "frobnicate t0, t1");
  check_bool "bad register" true (fails "addu t0, t1, r99\nhalt");
  check_bool "undefined label" true (fails "j nowhere\nhalt");
  check_bool "duplicate label" true (fails "x:\nnop\nx:\nhalt");
  check_bool "wrong arity" true (fails "addu t0, t1\nhalt");
  check_bool "error carries line number" true
    (match Asm_text.parse "nop\nbogus t0" with
    | Error msg ->
        let sub = "line 2" in
        let rec find i =
          i + String.length sub <= String.length msg
          && (String.equal (String.sub msg i (String.length sub)) sub
             || find (i + 1))
        in
        find 0
    | Ok _ -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "t1000_asm"
    [
      ( "program",
        [
          Alcotest.test_case "basics" `Quick test_program_basics;
          Alcotest.test_case "validation" `Quick test_program_validation;
          Alcotest.test_case "max_ext_id" `Quick test_program_max_ext_id;
        ] );
      ( "builder",
        [
          Alcotest.test_case "loop" `Quick test_builder_loop;
          Alcotest.test_case "forward label" `Quick test_builder_forward_label;
          Alcotest.test_case "errors" `Quick test_builder_errors;
          Alcotest.test_case "li" `Quick test_builder_li;
          Alcotest.test_case "fresh_label" `Quick test_fresh_label;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "single block" `Quick test_cfg_single_block;
          Alcotest.test_case "diamond" `Quick test_cfg_diamond;
          Alcotest.test_case "loop" `Quick test_cfg_loop;
          Alcotest.test_case "jal/jr" `Quick test_cfg_jal_jr;
          Alcotest.test_case "pred/succ duality" `Quick
            test_cfg_pred_succ_duality;
          Alcotest.test_case "to_dot" `Quick test_cfg_to_dot;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "unreachable" `Quick test_dominators_unreachable;
        ]
        @ qsuite [ test_dominators_brute_force ] );
      ( "loops",
        [
          Alcotest.test_case "simple" `Quick test_loops_simple;
          Alcotest.test_case "nested" `Quick test_loops_nested;
          Alcotest.test_case "multi-backedge" `Quick
            test_loops_multi_backedge;
          Alcotest.test_case "branch inside" `Quick
            test_loops_branch_inside;
          Alcotest.test_case "none" `Quick test_loops_none;
        ] );
      ( "regset",
        [ Alcotest.test_case "basics" `Quick test_regset_basics ]
        @ qsuite [ test_regset_ops ] );
      ( "asm_text",
        [
          Alcotest.test_case "workload round trips" `Quick
            test_asm_text_roundtrip_workloads;
          Alcotest.test_case "parse source" `Quick test_asm_text_parse_source;
          Alcotest.test_case "register aliases" `Quick
            test_asm_text_named_and_numeric_regs;
          Alcotest.test_case "absolute targets" `Quick
            test_asm_text_absolute_targets;
          Alcotest.test_case "ext" `Quick test_asm_text_ext;
          Alcotest.test_case "errors" `Quick test_asm_text_errors;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "straight line" `Quick test_liveness_straightline;
          Alcotest.test_case "loop carried" `Quick test_liveness_loop_carried;
          Alcotest.test_case "indirect jump" `Quick
            test_liveness_indirect_jump;
          Alcotest.test_case "live_after_instr" `Quick test_live_after_instr;
        ] );
    ]
