(* Unit and property tests for the ISA layer: 32-bit word arithmetic,
   registers, instruction dependence views, and the binary encoding. *)

open T1000_isa

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Word ---------- *)

let test_sext32 () =
  check_int "identity small" 42 (Word.sext32 42);
  check_int "negative" (-1) (Word.sext32 0xFFFF_FFFF);
  check_int "msb set" (-2147483648) (Word.sext32 0x8000_0000);
  check_int "max positive" 2147483647 (Word.sext32 0x7FFF_FFFF);
  check_int "truncates" 1 (Word.sext32 0x1_0000_0001)

let test_to_u32 () =
  check_int "positive" 42 (Word.to_u32 42);
  check_int "negative wraps" 0xFFFF_FFFF (Word.to_u32 (-1));
  check_int "min int32" 0x8000_0000 (Word.to_u32 (-2147483648))

let test_add_sub_wrap () =
  check_int "add wraps" (-2147483648) (Word.add 2147483647 1);
  check_int "sub wraps" 2147483647 (Word.sub (-2147483648) 1);
  check_int "add neg" (-3) (Word.add (-1) (-2))

let test_mul () =
  check_int "mul_lo small" 56 (Word.mul_lo 7 8);
  check_int "mul_lo wraps" 0 (Word.mul_lo 0x10000 0x10000);
  check_int "mul_hi_signed" 1 (Word.mul_hi_signed 0x10000 0x10000);
  check_int "mul_hi_signed neg" (-1) (Word.mul_hi_signed (-2) 0x4000_0000)

let test_mul_hi_reference =
  QCheck.Test.make ~name:"mul_hi agrees with Int64" ~count:1000
    (QCheck.pair QCheck.int QCheck.int)
    (fun (a, b) ->
      let a = Word.sext32 a and b = Word.sext32 b in
      let signed_ref =
        Int64.to_int
          (Int64.shift_right (Int64.mul (Int64.of_int a) (Int64.of_int b)) 32)
      in
      let unsigned_ref =
        Int64.to_int
          (Int64.shift_right_logical
             (Int64.mul
                (Int64.of_int (Word.to_u32 a))
                (Int64.of_int (Word.to_u32 b)))
             32)
      in
      Word.mul_hi_signed a b = Word.sext32 signed_ref
      && Word.mul_hi_unsigned a b = Word.sext32 unsigned_ref)

let test_div () =
  check_int "quot" 3 (fst (Word.div_signed 7 2));
  check_int "rem" 1 (snd (Word.div_signed 7 2));
  check_int "neg quot" (-3) (fst (Word.div_signed (-7) 2));
  check_int "div by zero quot" 0 (fst (Word.div_signed 5 0));
  check_int "div by zero rem" 5 (snd (Word.div_signed 5 0));
  check_int "divu large" 1 (fst (Word.div_unsigned (-1) 0xFFFF_FFFE));
  check_int "divu rem" 1 (snd (Word.div_unsigned (-1) 0xFFFF_FFFE))

let test_logic () =
  check_int "and" 0b1000 (Word.logand 0b1100 0b1010);
  check_int "or" 0b1110 (Word.logor 0b1100 0b1010);
  check_int "xor" 0b0110 (Word.logxor 0b1100 0b1010);
  check_int "nor" (-15) (Word.lognor 0b1100 0b1010)

let test_shifts () =
  check_int "sll" 0b1000 (Word.sll 1 3);
  check_int "sll masks amount" 2 (Word.sll 1 33);
  check_int "srl sign" 0x7FFF_FFFF (Word.srl (-1) 1);
  check_int "sra sign" (-1) (Word.sra (-1) 1);
  check_int "sra normal" (-2) (Word.sra (-8) 2);
  check_int "srl masks amount" (Word.srl (-1) 1) (Word.srl (-1) 33)

let test_compare () =
  check_int "slt true" 1 (Word.slt (-1) 0);
  check_int "slt false" 0 (Word.slt 0 (-1));
  check_int "sltu wraps" 0 (Word.sltu (-1) 0);
  check_int "sltu true" 1 (Word.sltu 0 (-1))

let test_extend () =
  check_int "sext8 neg" (-1) (Word.sext8 0xFF);
  check_int "sext8 pos" 127 (Word.sext8 0x7F);
  check_int "sext16 neg" (-32768) (Word.sext16 0x8000);
  check_int "zext8" 0xFF (Word.zext8 (-1));
  check_int "zext16" 0xFFFF (Word.zext16 (-1))

let test_width () =
  check_int "width_signed 0" 1 (Word.width_signed 0);
  check_int "width_signed -1" 1 (Word.width_signed (-1));
  check_int "width_signed 1" 2 (Word.width_signed 1);
  check_int "width_signed 255" 9 (Word.width_signed 255);
  check_int "width_signed -256" 9 (Word.width_signed (-256));
  check_int "width_signed min32" 32 (Word.width_signed (-2147483648));
  check_int "width_unsigned 0" 1 (Word.width_unsigned 0);
  check_int "width_unsigned 255" 8 (Word.width_unsigned 255);
  check_int "width_unsigned -1" 32 (Word.width_unsigned (-1))

let test_width_bounds =
  QCheck.Test.make ~name:"widths within 1..32" ~count:1000 QCheck.int
    (fun v ->
      let v = Word.sext32 v in
      let ws = Word.width_signed v and wu = Word.width_unsigned v in
      ws >= 1 && ws <= 32 && wu >= 1 && wu <= 32)

let test_width_minimal =
  QCheck.Test.make ~name:"width_signed is minimal" ~count:1000
    QCheck.(int_range (-1000000) 1000000)
    (fun v ->
      let w = Word.width_signed v in
      let fits bits = v >= -(1 lsl (bits - 1)) && v < 1 lsl (bits - 1) in
      fits w && (w = 1 || not (fits (w - 1))))

(* ---------- Reg ---------- *)

let test_reg () =
  check_int "r0" 0 (Reg.to_int Reg.zero);
  check_int "ra" 31 (Reg.to_int Reg.ra);
  check_bool "equal" true (Reg.equal Reg.t0 (Reg.of_int 8));
  Alcotest.check_raises "of_int 32"
    (Invalid_argument "Reg.of_int: out of range") (fun () ->
      ignore (Reg.of_int 32));
  Alcotest.check_raises "of_int -1"
    (Invalid_argument "Reg.of_int: out of range") (fun () ->
      ignore (Reg.of_int (-1)));
  Alcotest.(check string) "pp" "r7" (Format.asprintf "%a" Reg.pp Reg.a3)

(* ---------- Instr ---------- *)

let sorted = List.sort compare

let test_defs_uses () =
  let check_du name i defs uses =
    Alcotest.(check (list int))
      (name ^ " defs") (sorted defs)
      (sorted (Instr.defs i));
    Alcotest.(check (list int))
      (name ^ " uses") (sorted uses)
      (sorted (Instr.uses i))
  in
  check_du "alu_rrr"
    (Instr.Alu_rrr (Op.Add, Reg.t0, Reg.t1, Reg.t2))
    [ 8 ] [ 9; 10 ];
  check_du "write to r0 discarded"
    (Instr.Alu_rrr (Op.Add, Reg.zero, Reg.t1, Reg.t2))
    [] [ 9; 10 ];
  check_du "muldiv writes hilo"
    (Instr.Muldiv (Op.Mult, Reg.t0, Reg.t1))
    [ Instr.hi_reg; Instr.lo_reg ]
    [ 8; 9 ];
  check_du "mfhi" (Instr.Mfhi Reg.t3) [ 11 ] [ Instr.hi_reg ];
  check_du "load" (Instr.Load (Op.LW, Reg.t0, Reg.sp, 4)) [ 8 ] [ 29 ];
  check_du "store" (Instr.Store (Op.SW, Reg.t0, Reg.sp, 4)) [] [ 8; 29 ];
  check_du "beq uses both"
    (Instr.Branch (Op.Beq, Reg.t0, Reg.t1, 3))
    [] [ 8; 9 ];
  check_du "blez uses one"
    (Instr.Branch (Op.Blez, Reg.t0, Reg.zero, 3))
    [] [ 8 ];
  check_du "jal defs ra" (Instr.Jal 5) [ 31 ] [];
  check_du "ext one input"
    (Instr.Ext { eid = 0; dst = Reg.t0; src1 = Reg.t1; src2 = Reg.zero })
    [ 8 ] [ 9 ];
  check_du "ext two inputs"
    (Instr.Ext { eid = 0; dst = Reg.t0; src1 = Reg.t1; src2 = Reg.t2 })
    [ 8 ] [ 9; 10 ];
  check_du "cfgld" (Instr.Cfgld 3) [] [];
  check_du "nop" Instr.Nop [] []

let test_fu_class () =
  let fu = Instr.fu_class in
  check_bool "alu" true
    (fu (Instr.Alu_rrr (Op.Add, Reg.t0, Reg.t1, Reg.t2)) = Op.Fu_int_alu);
  check_bool "mult" true
    (fu (Instr.Muldiv (Op.Mult, Reg.t0, Reg.t1)) = Op.Fu_int_mult);
  check_bool "div" true
    (fu (Instr.Muldiv (Op.Div, Reg.t0, Reg.t1)) = Op.Fu_int_div);
  check_bool "load" true
    (fu (Instr.Load (Op.LW, Reg.t0, Reg.t1, 0)) = Op.Fu_mem_read);
  check_bool "store" true
    (fu (Instr.Store (Op.SW, Reg.t0, Reg.t1, 0)) = Op.Fu_mem_write);
  check_bool "branch" true
    (fu (Instr.Branch (Op.Beq, Reg.t0, Reg.t1, 0)) = Op.Fu_branch);
  check_bool "ext" true
    (fu (Instr.Ext { eid = 0; dst = Reg.t0; src1 = Reg.t1; src2 = Reg.zero })
    = Op.Fu_pfu);
  check_bool "nop" true (fu Instr.Nop = Op.Fu_none)

let test_latency () =
  check_int "alu" 1
    (Instr.latency (Instr.Alu_rrr (Op.Add, Reg.t0, Reg.t1, Reg.t2)));
  check_int "mult" 3 (Instr.latency (Instr.Muldiv (Op.Mult, Reg.t0, Reg.t1)));
  check_int "div" 20 (Instr.latency (Instr.Muldiv (Op.Div, Reg.t0, Reg.t1)));
  check_int "ext is single cycle" 1
    (Instr.latency
       (Instr.Ext { eid = 0; dst = Reg.t0; src1 = Reg.t1; src2 = Reg.zero }))

let test_map_targets () =
  let f t = t + 10 in
  (match Instr.map_targets f (Instr.Branch (Op.Bne, Reg.t0, Reg.t1, 5)) with
  | Instr.Branch (Op.Bne, _, _, 15) -> ()
  | i -> Alcotest.failf "branch remap: %a" Instr.pp i);
  (match Instr.map_targets f (Instr.Jump 7) with
  | Instr.Jump 17 -> ()
  | i -> Alcotest.failf "jump remap: %a" Instr.pp i);
  check_bool "non-control unchanged" true
    (Instr.equal
       (Instr.map_targets f (Instr.Load (Op.LW, Reg.t0, Reg.t1, 0)))
       (Instr.Load (Op.LW, Reg.t0, Reg.t1, 0)))

let test_is_control () =
  check_bool "branch" true
    (Instr.is_control (Instr.Branch (Op.Beq, Reg.t0, Reg.t1, 0)));
  check_bool "jr" true (Instr.is_control (Instr.Jr Reg.ra));
  check_bool "alu" false
    (Instr.is_control (Instr.Alu_rrr (Op.Add, Reg.t0, Reg.t1, Reg.t2)));
  check_bool "halt" false (Instr.is_control Instr.Halt)

(* ---------- Encoding ---------- *)

let reg_gen = QCheck.Gen.map Reg.of_int (QCheck.Gen.int_range 0 31)

let instr_gen : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let alu = oneofl Op.[ Add; Addu; Sub; Subu; And; Or; Xor; Nor; Slt; Sltu ] in
  let alu_imm = oneofl Op.[ Add; Addu; Slt; Sltu ] in
  let logic_imm = oneofl Op.[ And; Or; Xor ] in
  let shift = oneofl Op.[ Sll; Srl; Sra ] in
  let muldiv = oneofl Op.[ Mult; Multu; Div; Divu ] in
  let lwidth = oneofl Op.[ LB; LBU; LH; LHU; LW ] in
  let swidth = oneofl Op.[ SB; SH; SW ] in
  let cond2 = oneofl Op.[ Beq; Bne ] in
  let cond1 = oneofl Op.[ Blez; Bgtz; Bltz; Bgez ] in
  let simm = int_range (-32768) 32767 in
  let uimm = int_range 0 65535 in
  let target = int_range 0 99 in
  frequency
    [
      ( 4,
        map2
          (fun op (a, b, c) -> Instr.Alu_rrr (op, a, b, c))
          alu
          (triple reg_gen reg_gen reg_gen) );
      ( 2,
        map2
          (fun op (a, b, i) -> Instr.Alu_rri (op, a, b, i))
          alu_imm
          (triple reg_gen reg_gen simm) );
      ( 2,
        map2
          (fun op (a, b, i) -> Instr.Alu_rri (op, a, b, i))
          logic_imm
          (triple reg_gen reg_gen uimm) );
      ( 2,
        map2
          (fun op (a, b, s) -> Instr.Shift_imm (op, a, b, s))
          shift
          (triple reg_gen reg_gen (int_range 0 31)) );
      ( 2,
        map2
          (fun op (a, b, c) -> Instr.Shift_reg (op, a, b, c))
          shift
          (triple reg_gen reg_gen reg_gen) );
      (1, map2 (fun r i -> Instr.Lui (r, i)) reg_gen uimm);
      ( 1,
        map2 (fun op (a, b) -> Instr.Muldiv (op, a, b)) muldiv
          (pair reg_gen reg_gen) );
      (1, map (fun r -> Instr.Mfhi r) reg_gen);
      (1, map (fun r -> Instr.Mflo r) reg_gen);
      ( 2,
        map2
          (fun w (a, b, o) -> Instr.Load (w, a, b, o))
          lwidth
          (triple reg_gen reg_gen simm) );
      ( 2,
        map2
          (fun w (a, b, o) -> Instr.Store (w, a, b, o))
          swidth
          (triple reg_gen reg_gen simm) );
      ( 1,
        map2
          (fun c (a, b, t) -> Instr.Branch (c, a, b, t))
          cond2
          (triple reg_gen reg_gen target) );
      ( 1,
        map2
          (fun c (a, t) -> Instr.Branch (c, a, Reg.zero, t))
          cond1 (pair reg_gen target) );
      (1, map (fun t -> Instr.Jump t) target);
      (1, map (fun t -> Instr.Jal t) target);
      (1, map (fun r -> Instr.Jr r) reg_gen);
      (1, map2 (fun a b -> Instr.Jalr (a, b)) reg_gen reg_gen);
      ( 1,
        map
          (fun (e, (d, s1, s2)) ->
            Instr.Ext { eid = e; dst = d; src1 = s1; src2 = s2 })
          (pair (int_range 0 2047) (triple reg_gen reg_gen reg_gen)) );
      (1, map (fun e -> Instr.Cfgld e) (int_range 0 2047));
      (1, return Instr.Nop);
      (1, return Instr.Halt);
    ]

let test_encode_roundtrip =
  QCheck.Test.make ~name:"encode/decode round trip" ~count:2000
    (QCheck.make instr_gen) (fun i ->
      let index = 50 in
      let word = Encoding.encode ~index i in
      word >= 0
      && word < 0x1_0000_0000
      && Instr.equal (Encoding.decode ~index word) i)

let test_encode_specific () =
  check_int "nop is zero" 0 (Encoding.encode ~index:0 Instr.Nop);
  let add = Instr.Alu_rrr (Op.Addu, Reg.v0, Reg.a0, Reg.a1) in
  check_int "addu encoding" 0x00851021 (Encoding.encode ~index:0 add);
  check_bool "halt decodes" true
    (Instr.equal Instr.Halt
       (Encoding.decode ~index:0 (Encoding.encode ~index:0 Instr.Halt)))

let test_encode_errors () =
  let fails f = match f () with exception Encoding.Unencodable _ -> true | _ -> false in
  check_bool "imm too large" true
    (fails (fun () ->
         Encoding.encode ~index:0
           (Instr.Alu_rri (Op.Add, Reg.t0, Reg.t1, 40000))));
  check_bool "no immediate sub" true
    (fails (fun () ->
         Encoding.encode ~index:0 (Instr.Alu_rri (Op.Sub, Reg.t0, Reg.t1, 1))));
  check_bool "branch too far" true
    (fails (fun () ->
         Encoding.encode ~index:0
           (Instr.Branch (Op.Beq, Reg.t0, Reg.t1, 100000))));
  check_bool "ext id too big" true
    (fails (fun () ->
         Encoding.encode ~index:0
           (Instr.Ext { eid = 4096; dst = Reg.t0; src1 = Reg.t1; src2 = Reg.t2 })));
  check_bool "unknown opcode" true
    (fails (fun () -> ignore (Encoding.decode ~index:0 (0x3A lsl 26))))

let test_addresses () =
  check_int "slot 0" Encoding.text_base (Encoding.address_of_index 0);
  check_int "slot 5" (Encoding.text_base + 40) (Encoding.address_of_index 5);
  check_int "round trip" 17
    (Encoding.index_of_address (Encoding.address_of_index 17));
  check_bool "bad address" true
    (match Encoding.index_of_address 3 with
    | exception Encoding.Unencodable _ -> true
    | _ -> false)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "t1000_isa"
    [
      ( "word",
        [
          Alcotest.test_case "sext32" `Quick test_sext32;
          Alcotest.test_case "to_u32" `Quick test_to_u32;
          Alcotest.test_case "add/sub wrap" `Quick test_add_sub_wrap;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "div" `Quick test_div;
          Alcotest.test_case "logic" `Quick test_logic;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "compare" `Quick test_compare;
          Alcotest.test_case "extend" `Quick test_extend;
          Alcotest.test_case "width" `Quick test_width;
        ]
        @ qsuite
            [ test_mul_hi_reference; test_width_bounds; test_width_minimal ]
      );
      ("reg", [ Alcotest.test_case "basics" `Quick test_reg ]);
      ( "instr",
        [
          Alcotest.test_case "defs/uses" `Quick test_defs_uses;
          Alcotest.test_case "fu_class" `Quick test_fu_class;
          Alcotest.test_case "latency" `Quick test_latency;
          Alcotest.test_case "map_targets" `Quick test_map_targets;
          Alcotest.test_case "is_control" `Quick test_is_control;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "specific" `Quick test_encode_specific;
          Alcotest.test_case "errors" `Quick test_encode_errors;
          Alcotest.test_case "addresses" `Quick test_addresses;
        ]
        @ qsuite [ test_encode_roundtrip ] );
    ]
