(* Tests for the profiler: execution counts and dynamic bitwidths. *)

open T1000_isa
open T1000_asm
open T1000_profile
module R = Reg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build f =
  let b = Builder.create () in
  f b;
  Builder.build b

let collect ?(init = fun _ _ -> ()) p = Profile.collect ~init p

let test_counts () =
  (* 5-iteration loop: body executes 5x, prologue once *)
  let p =
    build (fun b ->
        Builder.li b R.t0 5;
        Builder.label b "top";
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let prof = collect p in
  check_int "prologue once" 1 (Profile.count prof 0);
  check_int "body 5x" 5 (Profile.count prof 1);
  check_int "branch 5x" 5 (Profile.count prof 2);
  check_int "halt once" 1 (Profile.count prof 3);
  check_int "total" 12 (Profile.total_instrs prof)

let test_total_weight () =
  (* weight counts base latencies: mult = 3, alu = 1 *)
  let p =
    build (fun b ->
        Builder.li b R.t0 4;
        Builder.mult b R.t0 R.t0;
        Builder.halt b)
  in
  let prof = collect p in
  check_int "weight" (1 + 3 + 1) (Profile.total_weight prof)

let test_bitwidths () =
  let p =
    build (fun b ->
        Builder.li b R.t0 255;
        (* slot 1: operands 255 (9 bits signed), result 255<<4 (13 bits) *)
        Builder.sll b R.t1 R.t0 4;
        Builder.halt b)
  in
  let prof = collect p in
  check_int "operand width" 9 (Profile.operand_width prof 1);
  check_int "result width" 13
    (T1000_profile.Bitwidth.result_width (Profile.bitwidth prof) 1);
  check_int "instr width is max" 13 (Profile.instr_width prof 1)

let test_bitwidth_max_over_run () =
  (* the slot's width is the max over executions *)
  let p =
    build (fun b ->
        Builder.li b R.t0 1;
        Builder.li b R.t1 2;
        Builder.label b "top";
        Builder.addu b R.t0 R.t0 R.t0 (* doubles every iteration *);
        Builder.addiu b R.t1 R.t1 (-1);
        Builder.bgtz b R.t1 "top";
        Builder.halt b)
  in
  let prof = collect p in
  (* t0: 1 -> 2 -> 4; operands max 2 -> width 3 (signed), result max 4 *)
  check_int "operand max" 3 (Profile.operand_width prof 2);
  check_int "result max" 4
    (T1000_profile.Bitwidth.result_width (Profile.bitwidth prof) 2)

let test_unexecuted_conservative () =
  let p =
    build (fun b ->
        Builder.j b "end";
        Builder.addu b R.t0 R.t1 R.t2 (* never executed *);
        Builder.label b "end";
        Builder.halt b)
  in
  let prof = collect p in
  check_int "count zero" 0 (Profile.count prof 1);
  check_bool "not executed" false
    (Bitwidth.executed (Profile.bitwidth prof) 1);
  check_int "width conservative" 32 (Profile.instr_width prof 1)

let test_init_data () =
  let p =
    build (fun b ->
        Builder.li b R.t0 0x1000;
        Builder.lw b R.t1 0 R.t0;
        Builder.halt b)
  in
  let prof =
    Profile.collect
      ~init:(fun mem _ -> T1000_machine.Memory.store_word mem 0x1000 12345)
      p
  in
  (* load result width reflects the initialized data *)
  check_int "load result width" (Word.width_signed 12345)
    (Bitwidth.result_width (Profile.bitwidth prof) 1)

let test_pp_hot () =
  let p =
    build (fun b ->
        Builder.li b R.t0 3;
        Builder.label b "top";
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let prof = collect p in
  let s = Format.asprintf "%a" (Profile.pp_hot ~limit:2) prof in
  check_bool "mentions the hot slot" true
    (String.length s > 0 && String.index_opt s '3' <> None)

let test_mix () =
  let p =
    build (fun b ->
        Builder.li b R.t0 2;
        Builder.label b "top";
        Builder.lw b R.t1 0 R.zero;
        Builder.addu b R.t2 R.t1 R.t1;
        Builder.sw b R.t2 4 R.zero;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let s = Mix.static_mix p in
  check_int "static total" 7 s.Mix.total;
  check_int "static loads" 1 (List.assoc Mix.Cat_load s.Mix.counts);
  check_int "static branches" 1 (List.assoc Mix.Cat_branch s.Mix.counts);
  let prof = collect p in
  let d = Mix.dynamic_mix prof in
  check_int "dynamic total" (Profile.total_instrs prof) d.Mix.total;
  check_int "dynamic loads (2 iterations)" 2
    (List.assoc Mix.Cat_load d.Mix.counts);
  check_bool "alu fraction dominates" true
    (Mix.fraction d Mix.Cat_alu > Mix.fraction d Mix.Cat_load);
  ignore (Format.asprintf "%a" Mix.pp d)

let () =
  Alcotest.run "t1000_profile"
    [
      ( "profile",
        [
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "total weight" `Quick test_total_weight;
          Alcotest.test_case "bitwidths" `Quick test_bitwidths;
          Alcotest.test_case "max over run" `Quick test_bitwidth_max_over_run;
          Alcotest.test_case "unexecuted conservative" `Quick
            test_unexecuted_conservative;
          Alcotest.test_case "init data" `Quick test_init_data;
          Alcotest.test_case "pp_hot" `Quick test_pp_hot;
          Alcotest.test_case "instruction mix" `Quick test_mix;
        ] );
    ]
