(* End-to-end integration tests: the full profile -> select -> rewrite
   -> simulate pipeline must reproduce the paper's qualitative results
   on at least one benchmark, and the experiment drivers must hold
   their structural invariants on a reduced suite. *)

open T1000
open T1000_ooo

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let workload name = Option.get (T1000_workloads.Registry.find name)

(* Cache runs across test cases: the suite exercises one benchmark under
   several setups. *)
let gsm = lazy (workload "gsm_dec")
let analysis = lazy (Runner.analyze (Lazy.force gsm))

let run_setup setup =
  Runner.run ~analysis:(Lazy.force analysis) (Lazy.force gsm) setup

let baseline = lazy (run_setup (Runner.setup Runner.Baseline))
let greedy_unl = lazy (run_setup (Runner.setup ~n_pfus:None ~penalty:0 Runner.Greedy))
let greedy_2 = lazy (run_setup (Runner.setup ~n_pfus:(Some 2) Runner.Greedy))
let sel_2 = lazy (run_setup (Runner.setup ~n_pfus:(Some 2) Runner.Selective))
let sel_4 = lazy (run_setup (Runner.setup ~n_pfus:(Some 4) Runner.Selective))

let speedup r = Runner.speedup ~baseline:(Lazy.force baseline) (Lazy.force r)

let test_baseline_sanity () =
  let b = Lazy.force baseline in
  check_int "no ext instrs" 0 (T1000_select.Extinstr.count b.Runner.table);
  check_int "no pfu activity" 0 b.Runner.stats.Stats.pfu_misses;
  check_bool "ipc within width" true (b.Runner.stats.Stats.ipc <= 4.0);
  check_bool "committed matches profile" true
    (b.Runner.stats.Stats.committed
    = T1000_profile.Profile.total_instrs
        (Lazy.force analysis).Runner.profile)

let test_greedy_unlimited_speeds_up () =
  check_bool "speedup > 1.2" true (speedup greedy_unl > 1.2)

let test_greedy_2pfu_thrashes () =
  (* the paper's Figure 2 third bar: substantially worse than baseline *)
  check_bool "slower than baseline" true (speedup greedy_2 < 1.0);
  check_bool "reconfigures constantly" true
    ((Lazy.force greedy_2).Runner.stats.Stats.pfu_misses > 1000)

let test_selective_recovers () =
  let s2 = speedup sel_2 in
  check_bool "2 PFUs beat baseline" true (s2 > 1.0);
  check_bool "selective reconfigures rarely" true
    ((Lazy.force sel_2).Runner.stats.Stats.pfu_misses
    < (Lazy.force greedy_2).Runner.stats.Stats.pfu_misses / 10)

let test_four_pfus_close_to_unlimited () =
  let s4 = speedup sel_4 in
  let sunl =
    Runner.speedup ~baseline:(Lazy.force baseline)
      (run_setup (Runner.setup ~n_pfus:None Runner.Selective))
  in
  check_bool "4 PFUs within 5% of unlimited" true (sunl -. s4 < 0.05)

let test_penalty_insensitive () =
  (* the paper: selective speedups survive 500-cycle reconfiguration *)
  let s10 = speedup sel_2 in
  let s500 =
    Runner.speedup ~baseline:(Lazy.force baseline)
      (run_setup (Runner.setup ~n_pfus:(Some 2) ~penalty:500 Runner.Selective))
  in
  check_bool "still profitable at 500 cycles" true (s500 > 1.0);
  check_bool "within 10% of the 10-cycle speedup" true
    (s10 -. s500 < 0.10 *. s10)

let test_config_prefetch_end_to_end () =
  (* enabling cfgld prefetch must keep outputs identical (checked inside
     Runner.run) and never hurt by more than noise *)
  let base = Lazy.force sel_2 in
  let pf =
    run_setup
      {
        (Runner.setup ~n_pfus:(Some 2) ~penalty:500 Runner.Selective) with
        Runner.config_prefetch = true;
      }
  in
  let nopf = run_setup (Runner.setup ~n_pfus:(Some 2) ~penalty:500 Runner.Selective) in
  check_bool "prefetch never slower than 1% worse" true
    (float_of_int pf.Runner.stats.Stats.cycles
    <= 1.01 *. float_of_int nopf.Runner.stats.Stats.cycles);
  check_bool "hints present in the program" true
    (let has_cfgld = ref false in
     T1000_asm.Program.iteri
       (fun _ i ->
         match i with
         | T1000_isa.Instr.Cfgld _ -> has_cfgld := true
         | _ -> ())
       pf.Runner.program;
     !has_cfgld);
  ignore base

let test_selected_instrs_well_formed () =
  List.iter
    (fun (e : T1000_select.Extinstr.entry) ->
      check_bool "fits the PFU" true
        (e.T1000_select.Extinstr.lut_cost <= 150);
      check_bool "single-cycle" true (e.T1000_select.Extinstr.latency = 1);
      let d = e.T1000_select.Extinstr.dfg in
      check_bool "2-8 ops" true
        (T1000_dfg.Dfg.size d >= 2 && T1000_dfg.Dfg.size d <= 8);
      check_bool "at most 2 inputs" true (T1000_dfg.Dfg.n_inputs d <= 2))
    (T1000_select.Extinstr.entries (Lazy.force greedy_unl).Runner.table)

let test_verify_outputs_detects_divergence () =
  (* corrupting the table's semantics must be caught by verify_outputs *)
  let g = Lazy.force greedy_unl in
  let w = Lazy.force gsm in
  check_bool "corrupted table rejected" true
    (match
       (* a program rewritten for the real table, checked against an
          empty table: evaluation will fault or diverge *)
       Runner.verify_outputs w T1000_select.Extinstr.empty g.Runner.program
     with
    | exception _ -> true
    | () -> T1000_select.Extinstr.count g.Runner.table = 0)

(* ---- experiment drivers on a reduced suite (2 benchmarks) ---- *)

let small_ctx =
  lazy
    (Experiment.create_ctx
       ~workloads:[ workload "g721_dec"; workload "mpeg2_enc" ]
       ())

let test_experiment_figure2 () =
  let rows = Experiment.figure2 (Lazy.force small_ctx) in
  check_int "one row per benchmark" 2 (List.length rows);
  List.iter
    (fun (r : Experiment.f2_row) ->
      check_bool "unlimited >= 1" true (r.Experiment.f2_greedy_unlimited >= 1.0);
      check_bool "2-PFU worse than unlimited" true
        (r.Experiment.f2_greedy_2pfu <= r.Experiment.f2_greedy_unlimited))
    rows

let test_experiment_figure6 () =
  let rows = Experiment.figure6 (Lazy.force small_ctx) in
  List.iter
    (fun (r : Experiment.f6_row) ->
      check_bool "selective never hurts" true (r.Experiment.f6_sel_2 >= 0.99);
      check_bool "monotone in PFUs" true
        (r.Experiment.f6_sel_2 <= r.Experiment.f6_sel_4 +. 0.01
        && r.Experiment.f6_sel_4 <= r.Experiment.f6_sel_unlimited +. 0.01))
    rows

let test_experiment_figure7 () =
  let f7 = Experiment.figure7 (Lazy.force small_ctx) in
  check_bool "all costs under budget" true (f7.Experiment.f7_max <= 150);
  check_int "per-benchmark cost lists" 2
    (List.length f7.Experiment.f7_costs);
  check_bool "histogram total matches" true
    (f7.Experiment.f7_histogram.T1000_hwcost.Area.total
    = List.length (List.concat_map snd f7.Experiment.f7_costs))

let test_experiment_table41 () =
  let rows = Experiment.table41 (Lazy.force small_ctx) in
  List.iter
    (fun (r : Experiment.t41_row) ->
      check_bool "distinct >= 1" true (r.Experiment.t41_distinct >= 1);
      check_bool "lengths in 2-8" true
        (r.Experiment.t41_shortest >= 2 && r.Experiment.t41_longest <= 8);
      check_bool "occurrences >= distinct" true
        (r.Experiment.t41_occurrences >= r.Experiment.t41_distinct))
    rows

let test_reports_render () =
  let ctx = Lazy.force small_ctx in
  let s1 = Format.asprintf "%a" Report.pp_figure2 (Experiment.figure2 ctx) in
  let s2 = Format.asprintf "%a" Report.pp_figure6 (Experiment.figure6 ctx) in
  let s3 = Format.asprintf "%a" Report.pp_figure7 (Experiment.figure7 ctx) in
  let s4 = Format.asprintf "%a" Report.pp_table41 (Experiment.table41 ctx) in
  List.iter
    (fun s -> check_bool "non-empty render" true (String.length s > 50))
    [ s1; s2; s3; s4 ]

let () =
  Alcotest.run "t1000_integration"
    [
      ( "paper-shape",
        [
          Alcotest.test_case "baseline sanity" `Quick test_baseline_sanity;
          Alcotest.test_case "greedy unlimited speeds up" `Quick
            test_greedy_unlimited_speeds_up;
          Alcotest.test_case "greedy 2-PFU thrashes" `Quick
            test_greedy_2pfu_thrashes;
          Alcotest.test_case "selective recovers" `Quick
            test_selective_recovers;
          Alcotest.test_case "4 PFUs ~ unlimited" `Quick
            test_four_pfus_close_to_unlimited;
          Alcotest.test_case "penalty insensitive" `Quick
            test_penalty_insensitive;
          Alcotest.test_case "selected instrs well-formed" `Quick
            test_selected_instrs_well_formed;
          Alcotest.test_case "config prefetch end-to-end" `Quick
            test_config_prefetch_end_to_end;
          Alcotest.test_case "verification net" `Quick
            test_verify_outputs_detects_divergence;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "figure 2" `Quick test_experiment_figure2;
          Alcotest.test_case "figure 6" `Quick test_experiment_figure6;
          Alcotest.test_case "figure 7" `Quick test_experiment_figure7;
          Alcotest.test_case "table 4.1" `Quick test_experiment_table41;
          Alcotest.test_case "reports render" `Quick test_reports_render;
        ] );
    ]
