(* Tests for the selection layer: extended-instruction tables, the gain
   model, greedy selection, the containment matrix (replicating the
   paper's Figures 3-4), the selective algorithm, and the rewriter. *)

open T1000_isa
open T1000_asm
open T1000_dfg
open T1000_select
module R = Reg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The paper's Figure 3 loop: one maximal sequence I
   (sll 4 / addu / sll 2) and two standalone occurrences of its prefix
   J (sll 4 / addu). *)
let fig3_loop () =
  let b = Builder.create ~name:"fig3" () in
  Builder.li b R.s3 0x100000;
  Builder.li b R.s4 0x100000;
  Builder.li b R.s5 0x100000;
  Builder.li b R.t0 20;
  Builder.li b R.t3 5 (* r3 of the paper *);
  Builder.li b R.t1 9 (* r1 of the paper *);
  Builder.label b "top";
  (* Extinst_i *)
  Builder.sll b R.v0 R.t3 4;
  Builder.addu b R.v0 R.v0 R.t1;
  Builder.sll b R.v1 R.v0 2;
  Builder.addu b R.s3 R.s3 R.v1;
  (* Extinst_j, first standalone appearance *)
  Builder.sll b R.v0 R.t3 4;
  Builder.addu b R.a0 R.v0 R.t1;
  Builder.addu b R.s4 R.s4 R.a0;
  (* Extinst_j, second standalone appearance *)
  Builder.sll b R.v0 R.t3 4;
  Builder.addu b R.a1 R.v0 R.t1;
  Builder.addu b R.s5 R.s5 R.a1;
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "top";
  Builder.halt b;
  Builder.build b

let analyze p =
  let profile = T1000_profile.Profile.collect ~init:(fun _ _ -> ()) p in
  let cfg = Cfg.of_program p in
  let dom = Dominators.compute cfg in
  let loops = Loops.compute cfg dom in
  let live = Liveness.compute cfg in
  (profile, cfg, dom, loops, live)

let fig3_maximal () =
  let p = fig3_loop () in
  let profile, cfg, _, loops, live = analyze p in
  let occs = Extract.maximal Extract.default_config cfg live profile in
  (p, profile, cfg, loops, live, occs)

(* ---------- Extinstr ---------- *)

let test_extinstr_grouping () =
  let _, _, _, _, _, occs = fig3_maximal () in
  check_int "three maximal occurrences" 3 (List.length occs);
  let table = Extinstr.of_selection occs in
  check_int "two distinct configurations" 2 (Extinstr.count table);
  check_int "three occurrences total" 3 (Extinstr.total_occurrences table);
  let by_occs =
    List.sort
      (fun a b ->
        compare (List.length a.Extinstr.occs) (List.length b.Extinstr.occs))
      (Extinstr.entries table)
  in
  match by_occs with
  | [ i_entry; j_entry ] ->
      check_int "I occurs once" 1 (List.length i_entry.Extinstr.occs);
      check_int "J occurs twice" 2 (List.length j_entry.Extinstr.occs);
      check_int "J is 2 ops" 2 (Dfg.size j_entry.Extinstr.dfg);
      check_int "I is 3 ops" 3 (Dfg.size i_entry.Extinstr.dfg);
      (* table evaluation matches the sequences' computations *)
      check_int "J eval" ((5 lsl 4) + 9)
        (Extinstr.eval table j_entry.Extinstr.eid 5 9);
      check_int "I eval"
        (((5 lsl 4) + 9) lsl 2)
        (Extinstr.eval table i_entry.Extinstr.eid 5 9)
  | _ -> Alcotest.fail "expected two entries"

let test_extinstr_misc () =
  check_int "empty table" 0 (Extinstr.count Extinstr.empty);
  check_bool "bad id" true
    (match Extinstr.get Extinstr.empty 0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let _, _, _, _, _, occs = fig3_maximal () in
  let table = Extinstr.of_selection occs in
  List.iter
    (fun e ->
      check_int "latency 1" 1 e.Extinstr.latency;
      check_bool "lut cost positive" true (e.Extinstr.lut_cost >= 0))
    (Extinstr.entries table)

(* ---------- Gain ---------- *)

let test_gain () =
  let _, profile, _, _, _, occs = fig3_maximal () in
  let seq_i =
    List.find (fun (o : Extract.occ) -> List.length o.Extract.members = 3) occs
  in
  let seq_j =
    List.find (fun (o : Extract.occ) -> List.length o.Extract.members = 2) occs
  in
  check_int "I saves 2 cycles/exec" 2 (Gain.per_exec seq_i.Extract.dfg);
  check_int "J saves 1 cycle/exec" 1 (Gain.per_exec seq_j.Extract.dfg);
  check_int "I count = 20 iterations" 20 (Gain.occ_count profile seq_i);
  check_int "I total gain" 40 (Gain.occ_gain profile seq_i);
  check_bool "ratio positive" true (Gain.ratio profile 40 > 0.0);
  check_bool "ratio sane" true (Gain.ratio profile 40 <= 1.0)

(* ---------- Matrix (paper Figure 4) ---------- *)

let test_matrix_figure4 () =
  let _, profile, cfg, _, live, occs = fig3_maximal () in
  let m = Matrix.build Extract.default_config cfg live profile occs in
  let seq_i =
    List.find (fun (o : Extract.occ) -> List.length o.Extract.members = 3) occs
  in
  let seq_j =
    List.find (fun (o : Extract.occ) -> List.length o.Extract.members = 2) occs
  in
  let i_idx = Option.get (Matrix.index_of_key m seq_i.Extract.key) in
  let j_idx = Option.get (Matrix.index_of_key m seq_j.Extract.key) in
  (* Figure 4: [I,I] = 1; [J,J] = 2; [J,I] = 1; [I,J] = 0 *)
  check_int "[I,I]" 1 (Matrix.entry m i_idx i_idx);
  check_int "[J,J]" 2 (Matrix.entry m j_idx j_idx);
  check_int "[J,I]" 1 (Matrix.entry m j_idx i_idx);
  check_int "[I,J]" 0 (Matrix.entry m i_idx j_idx);
  check_int "row total J = 3 appearances" 3 (Matrix.row_total m j_idx);
  (* Section 5.1's example: J's total gain (3 appearances x 1 cycle)
     beats I's (1 appearance x 2 cycles) *)
  check_int "gain J" (3 * 20) (Matrix.total_gain m j_idx);
  check_int "gain I" (2 * 20) (Matrix.total_gain m i_idx);
  (match Matrix.rank m with
  | (first, _) :: _ -> check_int "J ranked first" j_idx first
  | [] -> Alcotest.fail "empty ranking");
  (* rendering works *)
  ignore (Format.asprintf "%a" Matrix.pp m)

(* ---------- Selective ---------- *)

let run_selective ?(threshold = 0.005) p n_pfus =
  let profile, cfg, _, loops, live = analyze p in
  let params =
    { Selective.default_params with Selective.gain_threshold = threshold }
  in
  Selective.select ~params ~n_pfus cfg loops live profile

let test_selective_one_pfu_chooses_j () =
  (* with a single PFU the matrix step picks the common subsequence J,
     covering all three appearances (the paper's Section 5.1 example) *)
  let p = fig3_loop () in
  let r = run_selective p (Some 1) in
  check_int "one configuration" 1 (Extinstr.count r.Selective.table);
  let e = Extinstr.get r.Selective.table 0 in
  check_int "it is the 2-op J" 2 (Dfg.size e.Extinstr.dfg);
  check_int "covering three sites" 3 (List.length e.Extinstr.occs)

let test_selective_unlimited_keeps_all () =
  let p = fig3_loop () in
  let r = run_selective p None in
  check_int "both configurations" 2 (Extinstr.count r.Selective.table);
  check_int "hot candidates" 2 r.Selective.n_hot

let test_selective_threshold_drops_cold () =
  let p = fig3_loop () in
  let r = run_selective ~threshold:0.9 p (Some 4) in
  check_int "nothing passes a 90% threshold" 0
    (Extinstr.count r.Selective.table)

let test_selective_respects_pfu_count () =
  let p = fig3_loop () in
  let r = run_selective p (Some 2) in
  check_bool "at most 2 configurations" true
    (Extinstr.count r.Selective.table <= 2)

(* ---------- Greedy ---------- *)

let test_greedy () =
  let p = fig3_loop () in
  let profile, cfg, _, _, live = analyze p in
  let r = Greedy.select cfg live profile in
  check_int "greedy keeps both configurations" 2
    (Extinstr.count r.Greedy.table);
  check_int "nothing rejected at default budget" 0 r.Greedy.rejected_lut;
  (* an absurdly small budget rejects everything *)
  let r2 = Greedy.select ~lut_budget:0 cfg live profile in
  check_int "all rejected" 0 (Extinstr.count r2.Greedy.table);
  check_int "rejection count" 3 r2.Greedy.rejected_lut

(* ---------- Rewrite ---------- *)

let run_functional ?(table = Extinstr.empty) p =
  let mem = T1000_machine.Memory.create () in
  let regs = T1000_machine.Regfile.create () in
  let i =
    T1000_machine.Interp.create ~mem ~regs ~ext_eval:(Extinstr.eval table) p
  in
  ignore (T1000_machine.Interp.run i);
  ( T1000_machine.Regfile.get regs R.s3,
    T1000_machine.Regfile.get regs R.s4,
    T1000_machine.Regfile.get regs R.s5 )

let test_rewrite_equivalence () =
  let p = fig3_loop () in
  let profile, cfg, _, _, live = analyze p in
  let r = Greedy.select cfg live profile in
  let rw = Rewrite.apply p r.Greedy.table in
  check_int "three sites collapsed" 3 rw.Rewrite.collapsed;
  check_int "no overlaps" 0 rw.Rewrite.skipped;
  (* I deletes 2 slots, each J deletes 1: four fewer instructions *)
  check_int "deleted slots" 4 rw.Rewrite.deleted_slots;
  check_int "shorter program" (Program.length p - 4)
    (Program.length rw.Rewrite.program);
  check_bool "rewritten program contains ext instrs" true
    (Program.max_ext_id rw.Rewrite.program >= 0);
  (* functional equivalence, including the branch whose target (the
     loop header) was a deleted slot *)
  Alcotest.(check (triple int int int))
    "same architectural results" (run_functional p)
    (run_functional ~table:r.Greedy.table rw.Rewrite.program)

let test_rewrite_selective_equivalence () =
  let p = fig3_loop () in
  let r = run_selective p (Some 1) in
  let rw = Rewrite.apply p r.Selective.table in
  check_int "three sites collapsed" 3 rw.Rewrite.collapsed;
  Alcotest.(check (triple int int int))
    "same architectural results" (run_functional p)
    (run_functional ~table:r.Selective.table rw.Rewrite.program)

let test_table_text_roundtrip () =
  let p = fig3_loop () in
  let profile, cfg, _, _, live = analyze p in
  let r = Greedy.select cfg live profile in
  let text = Extinstr.to_text r.Greedy.table in
  match Extinstr.of_text text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok table ->
      check_int "same entry count" (Extinstr.count r.Greedy.table)
        (Extinstr.count table);
      check_int "same occurrence count"
        (Extinstr.total_occurrences r.Greedy.table)
        (Extinstr.total_occurrences table);
      (* the reloaded table evaluates identically *)
      List.iter
        (fun e ->
          check_int
            (Printf.sprintf "eval ext#%d" e.Extinstr.eid)
            (Extinstr.eval r.Greedy.table e.Extinstr.eid 5 9)
            (Extinstr.eval table e.Extinstr.eid 5 9))
        (Extinstr.entries table);
      (* rewriting with the reloaded table yields the same program *)
      let rw1 = Rewrite.apply p r.Greedy.table in
      let rw2 = Rewrite.apply p table in
      check_int "same rewritten length"
        (Program.length rw1.Rewrite.program)
        (Program.length rw2.Rewrite.program);
      Alcotest.(check (triple int int int))
        "replayed table preserves semantics" (run_functional p)
        (run_functional ~table rw2.Rewrite.program)

let test_table_text_errors () =
  let bad s = match Extinstr.of_text s with Error _ -> true | Ok _ -> false in
  Alcotest.(check bool) "node outside entry" true (bad "node addu a=i0 b=i1 w=4");
  Alcotest.(check bool) "bad op" true (bad "ext 0 inputs=1 latency=1\nnode frob a=i0 b=#0 w=4");
  Alcotest.(check bool) "missing field" true (bad "ext 0 latency=1");
  Alcotest.(check bool) "garbage token" true (bad "wibble");
  Alcotest.(check bool) "non-dense ids" true
    (bad "ext 3 inputs=1 latency=1\nnode addu a=i0 b=#1 w=4");
  Alcotest.(check bool) "empty table ok" true
    (match Extinstr.of_text "# empty\n" with
    | Ok t -> Extinstr.count t = 0
    | Error _ -> false)

let test_rewrite_with_prefetch () =
  let p = fig3_loop () in
  let profile, cfg, _, _, live = analyze p in
  let r = Greedy.select cfg live profile in
  (* hint both configurations before the loop header (the first sll of
     the loop body); the back edge must skip the hints *)
  let header_slot = 6 in
  let rw =
    Rewrite.apply ~prefetch:[ (header_slot, 0); (header_slot, 1) ] p
      r.Greedy.table
  in
  check_int "hints inserted" 2 rw.Rewrite.prefetches_inserted;
  Alcotest.(check (triple int int int))
    "prefetch hints are semantically transparent" (run_functional p)
    (run_functional ~table:r.Greedy.table rw.Rewrite.program);
  (* hints must execute once, not per iteration: count dynamic cfglds *)
  let mem = T1000_machine.Memory.create () in
  let regs = T1000_machine.Regfile.create () in
  let interp =
    T1000_machine.Interp.create ~mem ~regs
      ~ext_eval:(Extinstr.eval r.Greedy.table)
      rw.Rewrite.program
  in
  let cfgld_count = ref 0 in
  T1000_machine.Interp.set_observer interp (fun o ->
      match o.T1000_machine.Trace.entry.T1000_machine.Trace.instr with
      | Instr.Cfgld _ -> incr cfgld_count
      | _ -> ());
  ignore (T1000_machine.Interp.run interp);
  check_int "hints run once (preheader, not loop body)" 2 !cfgld_count

let test_rewrite_empty_table () =
  let p = fig3_loop () in
  let rw = Rewrite.apply p Extinstr.empty in
  check_int "nothing collapsed" 0 rw.Rewrite.collapsed;
  check_int "same length" (Program.length p)
    (Program.length rw.Rewrite.program)

let () =
  Alcotest.run "t1000_select"
    [
      ( "extinstr",
        [
          Alcotest.test_case "grouping" `Quick test_extinstr_grouping;
          Alcotest.test_case "misc" `Quick test_extinstr_misc;
        ] );
      ("gain", [ Alcotest.test_case "model" `Quick test_gain ]);
      ( "matrix",
        [ Alcotest.test_case "figure 4" `Quick test_matrix_figure4 ] );
      ( "selective",
        [
          Alcotest.test_case "1 PFU chooses J" `Quick
            test_selective_one_pfu_chooses_j;
          Alcotest.test_case "unlimited keeps all" `Quick
            test_selective_unlimited_keeps_all;
          Alcotest.test_case "threshold" `Quick
            test_selective_threshold_drops_cold;
          Alcotest.test_case "PFU count respected" `Quick
            test_selective_respects_pfu_count;
        ] );
      ("greedy", [ Alcotest.test_case "basics" `Quick test_greedy ]);
      ( "rewrite",
        [
          Alcotest.test_case "greedy equivalence" `Quick
            test_rewrite_equivalence;
          Alcotest.test_case "selective equivalence" `Quick
            test_rewrite_selective_equivalence;
          Alcotest.test_case "empty table" `Quick test_rewrite_empty_table;
          Alcotest.test_case "prefetch hints" `Quick
            test_rewrite_with_prefetch;
          Alcotest.test_case "table file round trip" `Quick
            test_table_text_roundtrip;
          Alcotest.test_case "table file errors" `Quick
            test_table_text_errors;
        ] );
    ]
