(* Tests for the machine layer: sparse memory, register file and the
   functional interpreter. *)

open T1000_isa
open T1000_asm
open T1000_machine
module R = Reg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Memory ---------- *)

let test_memory_bytes () =
  let m = Memory.create () in
  check_int "untouched reads zero" 0 (Memory.load_byte m 0x1234);
  Memory.store_byte m 0x1234 0xAB;
  check_int "byte round trip" 0xAB (Memory.load_byte m 0x1234);
  Memory.store_byte m 0x1234 0x1FF;
  check_int "byte truncated" 0xFF (Memory.load_byte m 0x1234)

let test_memory_endianness () =
  let m = Memory.create () in
  Memory.store_word m 0x100 0x11223344;
  check_int "little-endian byte 0" 0x44 (Memory.load_byte m 0x100);
  check_int "little-endian byte 3" 0x11 (Memory.load_byte m 0x103);
  check_int "half low" 0x3344 (Memory.load_half m 0x100);
  check_int "half high" 0x1122 (Memory.load_half m 0x102)

let test_memory_word_sign () =
  let m = Memory.create () in
  Memory.store_word m 0x200 (-5);
  check_int "negative word" (-5) (Memory.load_word m 0x200)

let test_memory_cross_page () =
  let m = Memory.create () in
  let addr = Memory.page_bytes - 2 in
  Memory.store_word m addr 0x55667788;
  check_int "cross-page word" 0x55667788 (Memory.load_word m addr);
  check_int "two pages touched" 2 (Memory.touched_pages m)

let test_memory_clear () =
  let m = Memory.create () in
  Memory.store_word m 0x300 7;
  Memory.clear m;
  check_int "cleared" 0 (Memory.load_word m 0x300);
  check_int "no pages" 0 (Memory.touched_pages m)

let test_memory_blit () =
  let m = Memory.create () in
  Memory.blit_words m 0x400 [| 1; -2; 3 |];
  Alcotest.(check (array int))
    "read back" [| 1; -2; 3 |] (Memory.read_words m 0x400 3)

let test_memory_random =
  (* agreement with a Hashtbl byte-store model *)
  QCheck.Test.make ~name:"memory agrees with model" ~count:200
    QCheck.(
      list_of_size (Gen.int_range 1 100)
        (pair (int_range 0 100000) (int_range 0 255)))
    (fun writes ->
      let m = Memory.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (a, v) ->
          Memory.store_byte m a v;
          Hashtbl.replace model a v)
        writes;
      List.for_all
        (fun (a, _) ->
          Memory.load_byte m a = Option.value ~default:0 (Hashtbl.find_opt model a))
        writes)

(* ---------- Regfile ---------- *)

let test_regfile () =
  let r = Regfile.create () in
  check_int "initial zero" 0 (Regfile.get r R.t3);
  Regfile.set r R.t3 42;
  check_int "set/get" 42 (Regfile.get r R.t3);
  Regfile.set r R.zero 99;
  check_int "r0 writes discarded" 0 (Regfile.get r R.zero);
  Regfile.set_hi r 7;
  Regfile.set_lo r 8;
  check_int "hi" 7 (Regfile.hi r);
  check_int "lo" 8 (Regfile.lo r);
  let c = Regfile.copy r in
  Regfile.set r R.t3 0;
  check_int "copy independent" 42 (Regfile.get c R.t3);
  Regfile.reset r;
  check_int "reset" 0 (Regfile.hi r)

(* ---------- Interp ---------- *)

let run_program ?ext_eval build =
  let b = Builder.create () in
  build b;
  let p = Builder.build b in
  let mem = Memory.create () in
  let regs = Regfile.create () in
  let i = Interp.create ~mem ~regs ?ext_eval p in
  let steps = Interp.run i in
  (steps, regs, mem)

let test_interp_arith () =
  let _, regs, _ =
    run_program (fun b ->
        Builder.li b R.t0 6;
        Builder.li b R.t1 7;
        Builder.addu b R.t2 R.t0 R.t1;
        Builder.mult b R.t0 R.t1;
        Builder.mflo b R.t3;
        Builder.subu b R.t4 R.t0 R.t1;
        Builder.halt b)
  in
  check_int "add" 13 (Regfile.get regs R.t2);
  check_int "mult" 42 (Regfile.get regs R.t3);
  check_int "sub" (-1) (Regfile.get regs R.t4)

let test_interp_variable_shifts () =
  let _, regs, _ =
    run_program (fun b ->
        Builder.li b R.t0 0x80;
        Builder.li b R.t1 3;
        Builder.sllv b R.t2 R.t0 R.t1;
        Builder.srlv b R.t3 R.t0 R.t1;
        Builder.li b R.t4 (-64);
        Builder.srav b R.t5 R.t4 R.t1;
        (* shift amounts are masked to 5 bits *)
        Builder.li b R.t6 33;
        Builder.sllv b R.t7 R.t0 R.t6;
        Builder.halt b)
  in
  check_int "sllv" 0x400 (Regfile.get regs R.t2);
  check_int "srlv" 0x10 (Regfile.get regs R.t3);
  check_int "srav" (-8) (Regfile.get regs R.t5);
  check_int "masked amount" 0x100 (Regfile.get regs R.t7)

let test_interp_muldiv_unsigned () =
  let _, regs, _ =
    run_program (fun b ->
        Builder.li b R.t0 (-1) (* 0xFFFFFFFF unsigned *);
        Builder.li b R.t1 2;
        Builder.multu b R.t0 R.t1;
        Builder.mfhi b R.t2;
        Builder.mflo b R.t3;
        Builder.divu b R.t0 R.t1;
        Builder.mflo b R.t4 (* quotient *);
        Builder.mfhi b R.t5 (* remainder *);
        Builder.halt b)
  in
  check_int "multu hi" 1 (Regfile.get regs R.t2);
  check_int "multu lo" (-2) (Regfile.get regs R.t3);
  check_int "divu quotient" 0x7FFFFFFF (Regfile.get regs R.t4);
  check_int "divu remainder" 1 (Regfile.get regs R.t5)

let test_interp_slt_family () =
  let _, regs, _ =
    run_program (fun b ->
        Builder.li b R.t0 (-5);
        Builder.li b R.t1 3;
        Builder.slt b R.t2 R.t0 R.t1;
        Builder.sltu b R.t3 R.t0 R.t1 (* -5 unsigned is huge *);
        Builder.slti b R.t4 R.t1 10;
        Builder.sltiu b R.t5 R.t1 2;
        Builder.halt b)
  in
  check_int "slt" 1 (Regfile.get regs R.t2);
  check_int "sltu" 0 (Regfile.get regs R.t3);
  check_int "slti" 1 (Regfile.get regs R.t4);
  check_int "sltiu" 0 (Regfile.get regs R.t5)

let test_interp_branch_conditions () =
  (* each condition both ways *)
  let run_cond f =
    let _, regs, _ =
      run_program (fun b ->
          Builder.li b R.t9 0;
          f b;
          Builder.li b R.t9 1 (* skipped when the branch is taken *);
          Builder.label b "out";
          Builder.halt b)
    in
    Regfile.get regs R.t9
  in
  check_int "beq taken" 0
    (run_cond (fun b ->
         Builder.li b R.t0 7;
         Builder.li b R.t1 7;
         Builder.beq b R.t0 R.t1 "out"));
  check_int "bne not taken" 1
    (run_cond (fun b ->
         Builder.li b R.t0 7;
         Builder.li b R.t1 7;
         Builder.bne b R.t0 R.t1 "out"));
  check_int "blez taken on zero" 0
    (run_cond (fun b ->
         Builder.li b R.t0 0;
         Builder.blez b R.t0 "out"));
  check_int "bgtz not taken on zero" 1
    (run_cond (fun b ->
         Builder.li b R.t0 0;
         Builder.bgtz b R.t0 "out"));
  check_int "bltz taken" 0
    (run_cond (fun b ->
         Builder.li b R.t0 (-1);
         Builder.bltz b R.t0 "out"));
  check_int "bgez taken on zero" 0
    (run_cond (fun b ->
         Builder.li b R.t0 0;
         Builder.bgez b R.t0 "out"))

let test_interp_branches () =
  let _, regs, _ =
    run_program (fun b ->
        Builder.li b R.t0 0;
        Builder.li b R.t1 5;
        Builder.label b "top";
        Builder.addiu b R.t0 R.t0 2;
        Builder.addiu b R.t1 R.t1 (-1);
        Builder.bgtz b R.t1 "top";
        Builder.halt b)
  in
  check_int "loop sum" 10 (Regfile.get regs R.t0)

let test_interp_memory () =
  let _, regs, mem =
    run_program (fun b ->
        Builder.li b R.t0 0x1000;
        Builder.li b R.t1 (-300);
        Builder.sw b R.t1 4 R.t0;
        Builder.lw b R.t2 4 R.t0;
        Builder.lh b R.t3 4 R.t0;
        Builder.lhu b R.t4 4 R.t0;
        Builder.lb b R.t5 4 R.t0;
        Builder.lbu b R.t6 4 R.t0;
        Builder.halt b)
  in
  check_int "sw/lw" (-300) (Regfile.get regs R.t2);
  check_int "lh sign" (-300) (Regfile.get regs R.t3);
  check_int "lhu zero-extends" 0xFED4 (Regfile.get regs R.t4);
  check_int "lb sign" (Word.sext8 0xD4) (Regfile.get regs R.t5);
  check_int "lbu" 0xD4 (Regfile.get regs R.t6);
  check_int "memory state" (Word.to_u32 (-300) land 0xFFFF)
    (Memory.load_half mem 0x1004)

let test_interp_call () =
  let _, regs, _ =
    run_program (fun b ->
        Builder.li b R.a0 5;
        Builder.jal b "double";
        Builder.move b R.t0 R.v0;
        Builder.halt b;
        Builder.label b "double";
        Builder.addu b R.v0 R.a0 R.a0;
        Builder.jr b R.ra)
  in
  check_int "call result" 10 (Regfile.get regs R.t0)

let test_interp_ext () =
  let ext_eval eid v1 v2 =
    check_int "eid" 4 eid;
    (v1 * 10) + v2
  in
  let _, regs, _ =
    run_program ~ext_eval (fun b ->
        Builder.li b R.t1 3;
        Builder.li b R.t2 7;
        Builder.ext b 4 R.t0 R.t1 R.t2;
        Builder.halt b)
  in
  check_int "ext result" 37 (Regfile.get regs R.t0)

let test_interp_ext_missing () =
  check_bool "missing evaluator faults" true
    (match
       run_program (fun b ->
           Builder.ext b 0 R.t0 R.t1 R.t2;
           Builder.halt b)
     with
    | exception Interp.Fault _ -> true
    | _ -> false)

let test_interp_faults () =
  check_bool "fall off end" true
    (match run_program (fun b -> Builder.nop b) with
    | exception Interp.Fault _ -> true
    | _ -> false);
  check_bool "unaligned lw" true
    (match
       run_program (fun b ->
           Builder.li b R.t0 0x1001;
           Builder.lw b R.t1 0 R.t0;
           Builder.halt b)
     with
    | exception Interp.Fault _ -> true
    | _ -> false);
  (* infinite loop is stopped by max_steps *)
  let b = Builder.create () in
  Builder.label b "spin";
  Builder.j b "spin";
  Builder.halt b;
  let i = Interp.create (Builder.build b) in
  check_bool "max_steps" true
    (match Interp.run ~max_steps:100 i with
    | exception Interp.Fault _ -> true
    | _ -> false)

let test_interp_step_and_state () =
  let b = Builder.create () in
  Builder.li b R.t0 1;
  Builder.halt b;
  let p = Builder.build b in
  let i = Interp.create p in
  check_int "pc starts at 0" 0 (Interp.pc i);
  check_bool "not halted" false (Interp.halted i);
  (match Interp.step i with
  | Some e ->
      check_int "entry index" 0 e.Trace.index;
      check_int "no mem addr" (-1) e.Trace.mem_addr
  | None -> Alcotest.fail "expected an entry");
  ignore (Interp.step i);
  check_bool "halted" true (Interp.halted i);
  check_bool "step after halt" true (Interp.step i = None);
  check_int "steps" 2 (Interp.steps i)

let test_interp_trace_mem_addr () =
  let b = Builder.create () in
  Builder.li b R.t0 0x2000;
  Builder.sw b R.t0 8 R.t0;
  Builder.halt b;
  let p = Builder.build b in
  let i = Interp.create p in
  ignore (Interp.step i);
  (match Interp.step i with
  | Some e -> check_int "effective address" 0x2008 e.Trace.mem_addr
  | None -> Alcotest.fail "expected store entry");
  ignore (Interp.run i)

let test_interp_observer () =
  let seen = ref [] in
  let b = Builder.create () in
  Builder.li b R.t0 5;
  Builder.addiu b R.t1 R.t0 3;
  Builder.halt b;
  let p = Builder.build b in
  let i = Interp.create p in
  Interp.set_observer i (fun o -> seen := o.Trace.result :: !seen);
  ignore (Interp.run i);
  Alcotest.(check (list int)) "observed results" [ 0; 8; 5 ] !seen;
  (* clearing stops observation *)
  let i2 = Interp.create p in
  Interp.set_observer i2 (fun _ -> Alcotest.fail "observer not cleared");
  Interp.clear_observer i2;
  ignore (Interp.run i2)

(* decode(encode(p)) executes identically *)
let test_encoded_program_equivalence () =
  let b = Builder.create () in
  Builder.li b R.t0 10;
  Builder.li b R.t1 0;
  Builder.label b "top";
  Builder.addu b R.t1 R.t1 R.t0;
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "top";
  Builder.halt b;
  let p = Builder.build b in
  let roundtripped =
    Program.make
      (Array.init (Program.length p) (fun i ->
           Encoding.decode ~index:i
             (Encoding.encode ~index:i (Program.get p i))))
  in
  let run p =
    let regs = Regfile.create () in
    let i = Interp.create ~regs p in
    ignore (Interp.run i);
    Regfile.get regs R.t1
  in
  check_int "same result" (run p) (run roundtripped);
  check_int "sum value" 55 (run p)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "t1000_machine"
    [
      ( "memory",
        [
          Alcotest.test_case "bytes" `Quick test_memory_bytes;
          Alcotest.test_case "endianness" `Quick test_memory_endianness;
          Alcotest.test_case "word sign" `Quick test_memory_word_sign;
          Alcotest.test_case "cross page" `Quick test_memory_cross_page;
          Alcotest.test_case "clear" `Quick test_memory_clear;
          Alcotest.test_case "blit" `Quick test_memory_blit;
        ]
        @ qsuite [ test_memory_random ] );
      ("regfile", [ Alcotest.test_case "basics" `Quick test_regfile ]);
      ( "interp",
        [
          Alcotest.test_case "arithmetic" `Quick test_interp_arith;
          Alcotest.test_case "branches" `Quick test_interp_branches;
          Alcotest.test_case "variable shifts" `Quick
            test_interp_variable_shifts;
          Alcotest.test_case "unsigned mul/div" `Quick
            test_interp_muldiv_unsigned;
          Alcotest.test_case "slt family" `Quick test_interp_slt_family;
          Alcotest.test_case "branch conditions" `Quick
            test_interp_branch_conditions;
          Alcotest.test_case "memory" `Quick test_interp_memory;
          Alcotest.test_case "call/return" `Quick test_interp_call;
          Alcotest.test_case "extended instr" `Quick test_interp_ext;
          Alcotest.test_case "missing ext evaluator" `Quick
            test_interp_ext_missing;
          Alcotest.test_case "faults" `Quick test_interp_faults;
          Alcotest.test_case "step/state" `Quick test_interp_step_and_state;
          Alcotest.test_case "trace mem addr" `Quick
            test_interp_trace_mem_addr;
          Alcotest.test_case "observer" `Quick test_interp_observer;
          Alcotest.test_case "encoded equivalence" `Quick
            test_encoded_program_equivalence;
        ] );
    ]
