(* Tests for the LUT cost model and the area histogram. *)

open T1000_isa
open T1000_dfg
open T1000_hwcost

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let n_alu op a b width = { Dfg.op = Dfg.N_alu op; a; b; width }
let n_shift op a b width = { Dfg.op = Dfg.N_shift op; a; b; width }

let test_adder_cost () =
  let d =
    Dfg.make ~n_inputs:2 [| n_alu Op.Addu (Dfg.Input 0) (Dfg.Input 1) 16 |]
  in
  check_int "16-bit add = 16 LUTs" 16 (Lut.cost d);
  let d8 =
    Dfg.make ~n_inputs:2 [| n_alu Op.Subu (Dfg.Input 0) (Dfg.Input 1) 8 |]
  in
  check_int "8-bit sub = 8 LUTs" 8 (Lut.cost d8)

let test_const_shift_free () =
  let d =
    Dfg.make ~n_inputs:1 [| n_shift Op.Sll (Dfg.Input 0) (Dfg.Const 4) 16 |]
  in
  check_int "constant shift is wiring" 0 (Lut.cost d)

let test_variable_shift () =
  let d =
    Dfg.make ~n_inputs:2 [| n_shift Op.Srl (Dfg.Input 0) (Dfg.Input 1) 16 |]
  in
  check_int "barrel shifter 16 x ceil(log2 16)" (16 * 4) (Lut.cost d)

let test_slt_cost () =
  let d =
    Dfg.make ~n_inputs:2 [| n_alu Op.Slt (Dfg.Input 0) (Dfg.Input 1) 12 |]
  in
  check_int "comparator w+1" 13 (Lut.cost d)

let test_logic_packing () =
  (* one logic op: ceil(1/3) = 1 LUT per bit *)
  let one =
    Dfg.make ~n_inputs:2 [| n_alu Op.And (Dfg.Input 0) (Dfg.Input 1) 8 |]
  in
  check_int "single logic op" 8 (Lut.cost one);
  (* three chained logic ops pack into one 4-LUT level per bit *)
  let three =
    Dfg.make ~n_inputs:2
      [|
        n_alu Op.And (Dfg.Input 0) (Dfg.Input 1) 8;
        n_alu Op.Or (Dfg.Node 0) (Dfg.Input 0) 8;
        n_alu Op.Xor (Dfg.Node 1) (Dfg.Input 1) 8;
      |]
  in
  check_int "three chained logic ops still 8" 8 (Lut.cost three);
  (* four chained logic ops need a second level *)
  let four =
    Dfg.make ~n_inputs:2
      [|
        n_alu Op.And (Dfg.Input 0) (Dfg.Input 1) 8;
        n_alu Op.Or (Dfg.Node 0) (Dfg.Input 0) 8;
        n_alu Op.Xor (Dfg.Node 1) (Dfg.Input 1) 8;
        n_alu Op.Nor (Dfg.Node 2) (Dfg.Input 0) 8;
      |]
  in
  check_int "four chained logic ops = 16" 16 (Lut.cost four);
  (* an adder between logic ops splits the groups *)
  let split =
    Dfg.make ~n_inputs:2
      [|
        n_alu Op.And (Dfg.Input 0) (Dfg.Input 1) 8;
        n_alu Op.Addu (Dfg.Node 0) (Dfg.Input 1) 8;
        n_alu Op.Or (Dfg.Node 1) (Dfg.Input 0) 8;
      |]
  in
  check_int "split groups: 8 + 8 + 8" 24 (Lut.cost split)

let test_node_costs_sum () =
  let d =
    Dfg.make ~n_inputs:2
      [|
        n_shift Op.Sll (Dfg.Input 0) (Dfg.Const 2) 12;
        n_alu Op.Addu (Dfg.Node 0) (Dfg.Input 1) 14;
        n_alu Op.And (Dfg.Node 1) (Dfg.Const 255) 14;
      |]
  in
  let costs = Lut.node_costs d in
  check_int "per-node sums to total" (Lut.cost d)
    (Array.fold_left ( + ) 0 costs);
  check_int "shift node free" 0 costs.(0);
  check_int "add node" 14 costs.(1)

let test_width_clamp () =
  let d =
    Dfg.make ~n_inputs:2 [| n_alu Op.Addu (Dfg.Input 0) (Dfg.Input 1) 99 |]
  in
  check_int "width clamped to 32" 32 (Lut.cost d);
  let z =
    Dfg.make ~n_inputs:2 [| n_alu Op.Addu (Dfg.Input 0) (Dfg.Input 1) 0 |]
  in
  check_int "width clamped to 1" 1 (Lut.cost z)

let test_fits () =
  let wide =
    Dfg.make ~n_inputs:2
      (Array.init 8 (fun i ->
           n_alu Op.Addu
             (if i = 0 then Dfg.Input 0 else Dfg.Node (i - 1))
             (Dfg.Input 1) 32))
  in
  check_bool "8 32-bit adds exceed 150" false (Lut.fits wide);
  check_bool "with a bigger budget" true (Lut.fits ~budget:300 wide);
  check_int "default budget" 150 Lut.default_budget

let test_delay_model () =
  (* a 2-op add chain: 2 + 2 = 4 LUT levels -> exactly one cycle at the
     default 4 levels/cycle; a 4-op add chain: 8 levels -> 2 cycles *)
  let chain k =
    Dfg.make ~n_inputs:2
      (Array.init k (fun i ->
           n_alu Op.Addu
             (if i = 0 then Dfg.Input 0 else Dfg.Node (i - 1))
             (Dfg.Input 1) 12))
  in
  check_int "2 adds = 4 levels" 4 (Lut.levels (chain 2));
  check_int "1 cycle" 1 (Lut.latency_estimate (chain 2));
  check_int "4 adds = 8 levels" 8 (Lut.levels (chain 4));
  check_int "2 cycles" 2 (Lut.latency_estimate (chain 4));
  (* constant shifts add no delay *)
  let shifty =
    Dfg.make ~n_inputs:1
      [|
        n_shift Op.Sll (Dfg.Input 0) (Dfg.Const 4) 12;
        n_shift Op.Srl (Dfg.Node 0) (Dfg.Const 2) 12;
      |]
  in
  check_int "wiring only" 0 (Lut.levels shifty);
  check_int "still at least 1 cycle" 1 (Lut.latency_estimate shifty);
  (* chained logic shares levels like it shares LUTs *)
  let logic3 =
    Dfg.make ~n_inputs:2
      [|
        n_alu Op.And (Dfg.Input 0) (Dfg.Input 1) 8;
        n_alu Op.Or (Dfg.Node 0) (Dfg.Input 0) 8;
        n_alu Op.Xor (Dfg.Node 1) (Dfg.Input 1) 8;
      |]
  in
  check_int "3 chained logic ops = 1 level" 1 (Lut.levels logic3);
  check_int "levels/cycle override" 2
    (Lut.latency_estimate ~levels_per_cycle:2 (chain 2))

let test_histogram () =
  let h = Area.histogram ~bin_width:10 [ 0; 5; 10; 25; 105 ] in
  check_int "bin 0" 2 h.Area.bins.(0);
  check_int "bin 1" 1 h.Area.bins.(1);
  check_int "bin 2" 1 h.Area.bins.(2);
  check_int "bin 10" 1 h.Area.bins.(10);
  check_int "max" 105 h.Area.max_cost;
  check_int "total" 5 h.Area.total;
  check_bool "negative rejected" true
    (match Area.histogram [ -1 ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_bool "bad width rejected" true
    (match Area.histogram ~bin_width:0 [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* rendering doesn't raise *)
  ignore (Format.asprintf "%a" Area.pp h)

let () =
  Alcotest.run "t1000_hwcost"
    [
      ( "lut",
        [
          Alcotest.test_case "adder" `Quick test_adder_cost;
          Alcotest.test_case "const shift" `Quick test_const_shift_free;
          Alcotest.test_case "variable shift" `Quick test_variable_shift;
          Alcotest.test_case "slt" `Quick test_slt_cost;
          Alcotest.test_case "logic packing" `Quick test_logic_packing;
          Alcotest.test_case "node costs sum" `Quick test_node_costs_sum;
          Alcotest.test_case "width clamp" `Quick test_width_clamp;
          Alcotest.test_case "fits" `Quick test_fits;
          Alcotest.test_case "delay model" `Quick test_delay_model;
        ] );
      ("area", [ Alcotest.test_case "histogram" `Quick test_histogram ]);
    ]
