(* Tests for dataflow graphs, canonicalization, and candidate-sequence
   extraction — the substrate of both selection algorithms. *)

open T1000_isa
open T1000_asm
open T1000_dfg
module R = Reg

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- Dfg ---------- *)

let n_alu op a b width = { Dfg.op = Dfg.N_alu op; a; b; width }
let n_shift op a b width = { Dfg.op = Dfg.N_shift op; a; b; width }

(* The paper's Figure 3 computation: (in0 << 4) + in1 *)
let fig3_dfg =
  Dfg.make ~n_inputs:2
    [|
      n_shift Op.Sll (Dfg.Input 0) (Dfg.Const 4) 16;
      n_alu Op.Addu (Dfg.Node 0) (Dfg.Input 1) 16;
    |]

let test_dfg_make_validation () =
  let bad f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check_bool "empty" true (bad (fun () -> Dfg.make ~n_inputs:0 [||]));
  check_bool "bad input port" true
    (bad (fun () ->
         Dfg.make ~n_inputs:1
           [| n_alu Op.Add (Dfg.Input 1) (Dfg.Const 0) 8 |]));
  check_bool "forward node ref" true
    (bad (fun () ->
         Dfg.make ~n_inputs:0
           [| n_alu Op.Add (Dfg.Node 0) (Dfg.Const 0) 8 |]));
  check_bool "too many inputs" true
    (bad (fun () ->
         Dfg.make ~n_inputs:3
           [| n_alu Op.Add (Dfg.Input 0) (Dfg.Input 2) 8 |]))

let test_dfg_eval () =
  check_int "fig3" ((3 lsl 4) + 5) (Dfg.eval fig3_dfg 3 5);
  let sub =
    Dfg.make ~n_inputs:2
      [| n_alu Op.Subu (Dfg.Input 0) (Dfg.Input 1) 8 |]
  in
  check_int "sub order" 2 (Dfg.eval sub 5 3);
  let shift_var =
    Dfg.make ~n_inputs:2
      [| n_shift Op.Srl (Dfg.Input 0) (Dfg.Input 1) 8 |]
  in
  check_int "variable shift masks" (Word.srl 0x100 2)
    (Dfg.eval shift_var 0x100 34);
  let with_const =
    Dfg.make ~n_inputs:1
      [|
        n_alu Op.Xor (Dfg.Input 0) (Dfg.Const 0xFF) 8;
        n_alu Op.And (Dfg.Node 0) (Dfg.Const 0x0F) 8;
      |]
  in
  check_int "chained consts" ((0x3C lxor 0xFF) land 0x0F)
    (Dfg.eval with_const 0x3C 0)

let test_dfg_eval_matches_interp =
  (* every node kind computes exactly what the ISA instruction computes *)
  QCheck.Test.make ~name:"dfg eval matches Word semantics" ~count:500
    QCheck.(pair (int_range (-1000) 1000) (int_range (-1000) 1000))
    (fun (a, b) ->
      let mk op = Dfg.make ~n_inputs:2 [| n_alu op (Dfg.Input 0) (Dfg.Input 1) 16 |] in
      Dfg.eval (mk Op.Addu) a b = Word.add a b
      && Dfg.eval (mk Op.Subu) a b = Word.sub a b
      && Dfg.eval (mk Op.And) a b = Word.logand a b
      && Dfg.eval (mk Op.Or) a b = Word.logor a b
      && Dfg.eval (mk Op.Xor) a b = Word.logxor a b
      && Dfg.eval (mk Op.Nor) a b = Word.lognor a b
      && Dfg.eval (mk Op.Slt) a b = Word.slt a b
      && Dfg.eval (mk Op.Sltu) a b = Word.sltu a b)

let test_dfg_latency () =
  check_int "chain latency" 2 (Dfg.base_latency fig3_dfg);
  check_int "serial latency" 2 (Dfg.serial_latency fig3_dfg);
  (* a balanced tree: two independent ops feeding a third has depth 2
     but serial cost 3 *)
  let tree =
    Dfg.make ~n_inputs:2
      [|
        n_alu Op.Add (Dfg.Input 0) (Dfg.Const 1) 8;
        n_alu Op.Add (Dfg.Input 1) (Dfg.Const 2) 8;
        n_alu Op.Add (Dfg.Node 0) (Dfg.Node 1) 8;
      |]
  in
  check_int "tree critical path" 2 (Dfg.base_latency tree);
  check_int "tree serial" 3 (Dfg.serial_latency tree);
  check_int "max width" 16 (Dfg.max_width fig3_dfg)

let test_dfg_to_dot () =
  let dot = Dfg.to_dot ~name:"t" fig3_dfg in
  check_bool "digraph" true
    (String.length dot > 20 && String.sub dot 0 7 = "digraph");
  let contains sub =
    let rec find i =
      i + String.length sub <= String.length dot
      && (String.equal (String.sub dot i (String.length sub)) sub
         || find (i + 1))
    in
    find 0
  in
  check_bool "has input node" true (contains "in0");
  check_bool "has op node" true (contains "addu");
  check_bool "has const" true (contains "#4")

(* ---------- Canon ---------- *)

let test_canon_commutative () =
  let a =
    Dfg.make ~n_inputs:2
      [| n_alu Op.Addu (Dfg.Input 0) (Dfg.Input 1) 8 |]
  in
  let b =
    Dfg.make ~n_inputs:2
      [| n_alu Op.Addu (Dfg.Input 1) (Dfg.Input 0) 8 |]
  in
  check_bool "swapped addu operands share a key" true (Canon.equal a b);
  (* subu(in1, in0) also shares subu(in0, in1)'s configuration: input
     ports are renumbered by first use and each occurrence binds its
     registers per normalized port (see input_permutation), so the same
     hardware serves both with swapped port wiring *)
  let c =
    Dfg.make ~n_inputs:2
      [| n_alu Op.Subu (Dfg.Input 0) (Dfg.Input 1) 8 |]
  in
  let d =
    Dfg.make ~n_inputs:2
      [| n_alu Op.Subu (Dfg.Input 1) (Dfg.Input 0) 8 |]
  in
  check_bool "subu shares via port renumbering" true (Canon.equal c d);
  (* but a genuinely different use of one input does not collapse *)
  let e =
    Dfg.make ~n_inputs:2
      [| n_alu Op.Subu (Dfg.Input 0) (Dfg.Input 0) 8 |]
  in
  check_bool "different structure differs" false (Canon.equal c e)

let test_canon_constants_and_ops () =
  let mk sh =
    Dfg.make ~n_inputs:1
      [| n_shift Op.Sll (Dfg.Input 0) (Dfg.Const sh) 8 |]
  in
  check_bool "same const same key" true (Canon.equal (mk 4) (mk 4));
  check_bool "different const different key" false (Canon.equal (mk 4) (mk 2));
  let xor_v =
    Dfg.make ~n_inputs:1 [| n_alu Op.Xor (Dfg.Input 0) (Dfg.Const 4) 8 |]
  in
  check_bool "different op different key" false (Canon.equal (mk 4) xor_v)

let test_canon_width_irrelevant () =
  let mk w =
    Dfg.make ~n_inputs:2 [| n_alu Op.Addu (Dfg.Input 0) (Dfg.Input 1) w |]
  in
  check_bool "widths do not affect the key" true (Canon.equal (mk 8) (mk 16))

let test_canon_merge_widths () =
  let mk w =
    Dfg.make ~n_inputs:2 [| n_alu Op.Addu (Dfg.Input 0) (Dfg.Input 1) w |]
  in
  let merged = Canon.merge_widths (mk 8) (mk 16) in
  check_int "pointwise max" 16 (Dfg.max_width merged);
  check_bool "different keys rejected" true
    (match
       Canon.merge_widths (mk 8)
         (Dfg.make ~n_inputs:2
            [| n_alu Op.Subu (Dfg.Input 0) (Dfg.Input 1) 8 |])
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_canon_eval_preserved =
  QCheck.Test.make ~name:"normalize preserves evaluation (with permutation)"
    ~count:300
    QCheck.(pair (int_range (-100) 100) (int_range (-100) 100))
    (fun (a, b) ->
      (* input 1 appears first in the node list, so normalization permutes
         the ports *)
      let d =
        Dfg.make ~n_inputs:2
          [|
            n_shift Op.Sll (Dfg.Input 1) (Dfg.Const 2) 8;
            n_alu Op.Subu (Dfg.Node 0) (Dfg.Input 0) 8;
          |]
      in
      let norm = Canon.normalize d in
      let perm = Canon.input_permutation d in
      (* old port i's value must be fed to new port perm.(i) *)
      let inputs = Array.make 2 0 in
      inputs.(perm.(0)) <- a;
      inputs.(perm.(1)) <- b;
      Dfg.eval norm inputs.(0) inputs.(1) = Dfg.eval d a b)

(* ---------- Extract ---------- *)

let analyze f =
  let b = Builder.create () in
  f b;
  let p = Builder.build b in
  let profile = T1000_profile.Profile.collect ~init:(fun _ _ -> ()) p in
  let cfg = Cfg.of_program p in
  let live = Liveness.compute cfg in
  (cfg, live, profile)

let extract ?(config = Extract.default_config) f =
  let cfg, live, profile = analyze f in
  Extract.maximal config cfg live profile

(* a simple 3-op dependent chain, executed in a loop *)
let chain_loop b =
  Builder.li b R.s3 0x100000 (* wide accumulator: not a fold candidate *);
  Builder.li b R.t0 10;
  Builder.li b R.t1 5;
  Builder.li b R.t2 9;
  Builder.label b "top";
  Builder.sll b R.t3 R.t1 2;
  Builder.addu b R.t3 R.t3 R.t2;
  Builder.xori b R.t4 R.t3 0x0F;
  Builder.addu b R.s3 R.s3 R.t4 (* consumes the root *);
  Builder.addiu b R.t0 R.t0 (-1);
  Builder.bgtz b R.t0 "top";
  Builder.halt b

let test_extract_simple_chain () =
  match extract chain_loop with
  | [ occ ] ->
      check_int "three members" 3 (List.length occ.Extract.members);
      check_int "root is the xori slot" 6 occ.Extract.root;
      check_int "two inputs" 2 (Array.length occ.Extract.input_regs);
      check_bool "out reg" true (Reg.equal R.t4 occ.Extract.out_reg);
      (* evaluation matches the original computation *)
      let v = Dfg.eval occ.Extract.dfg in
      let direct t1 t2 = Word.logxor (Word.add (Word.sll t1 2) t2) 0x0F in
      let port0 = occ.Extract.input_regs.(0) in
      if Reg.equal port0 R.t1 then
        check_int "eval" (direct 5 9) (v 5 9)
      else check_int "eval (swapped ports)" (direct 5 9) (v 9 5)
  | occs -> Alcotest.failf "expected exactly one occurrence, got %d"
              (List.length occs)

let test_extract_rejects_wide () =
  (* same chain but with 20-bit data: candidates are filtered out *)
  let occs =
    extract (fun b ->
        Builder.li b R.s3 0x100000;
        Builder.li b R.t0 10;
        Builder.li b R.t1 0xF0000;
        Builder.li b R.t2 9;
        Builder.label b "top";
        Builder.sll b R.t3 R.t1 2;
        Builder.addu b R.t3 R.t3 R.t2;
        Builder.xori b R.t4 R.t3 0x0F;
        Builder.addu b R.s3 R.s3 R.t4;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  check_bool "no occurrence includes the wide sll" true
    (List.for_all
       (fun (o : Extract.occ) -> not (List.mem 4 o.Extract.members))
       occs)

let test_extract_respects_port_limit () =
  (* a tree combining three independent inputs: 3 external inputs
     cannot be folded whole *)
  let occs =
    extract (fun b ->
        Builder.li b R.s3 0x100000;
        Builder.li b R.t1 1;
        Builder.li b R.t2 2;
        Builder.li b R.t3 3;
        Builder.addu b R.t4 R.t1 R.t2;
        Builder.addu b R.t5 R.t4 R.t3;
        Builder.addu b R.s3 R.s3 R.t5;
        Builder.halt b)
  in
  List.iter
    (fun (o : Extract.occ) ->
      check_bool "inputs <= 2" true (Array.length o.Extract.input_regs <= 2))
    occs

let test_extract_rejects_live_intermediate () =
  (* the intermediate t3 is stored after the would-be root: no fold *)
  let occs =
    extract (fun b ->
        Builder.li b R.s3 0x100000;
        Builder.li b R.t1 5;
        Builder.li b R.t2 9;
        Builder.li b R.t5 0x1000;
        Builder.sll b R.t3 R.t1 2;
        Builder.addu b R.t4 R.t3 R.t2;
        Builder.sw b R.t3 0 R.t5 (* second use of the intermediate *);
        Builder.addu b R.s3 R.s3 R.t4;
        Builder.halt b)
  in
  check_bool "chain through t3 not collapsed" true
    (List.for_all
       (fun (o : Extract.occ) ->
         not
           (List.mem 4 o.Extract.members && List.mem 5 o.Extract.members))
       occs)

let test_extract_rejects_clobbered_input () =
  (* t2 (an external input of the 2nd member) is rewritten between the
     first member and the root by a non-member *)
  let occs =
    extract (fun b ->
        Builder.li b R.s3 0x100000;
        Builder.li b R.s4 0x100000;
        Builder.li b R.t1 5;
        Builder.li b R.t2 9;
        Builder.sll b R.t3 R.t1 2 (* member 1 *);
        Builder.li b R.t1 77 (* clobbers member 1's input before root *);
        Builder.addu b R.t4 R.t3 R.t2 (* root *);
        Builder.addu b R.s3 R.s3 R.t4;
        Builder.addu b R.s4 R.s4 R.t1;
        Builder.halt b)
  in
  check_bool "clobbered-input chain not collapsed" true
    (List.for_all
       (fun (o : Extract.occ) ->
         not (List.mem 4 o.Extract.members && List.mem 6 o.Extract.members))
       occs)

let test_extract_r0_is_constant () =
  (* li t1, 42 = addiu t1, r0, 42 inside a chain: r0 becomes Const 0,
     consuming no input port *)
  let occs =
    extract (fun b ->
        Builder.li b R.s3 0x100000;
        Builder.li b R.t0 4;
        Builder.label b "top";
        Builder.addiu b R.t1 R.zero 42;
        Builder.xori b R.t2 R.t1 0x3;
        Builder.addu b R.s3 R.s3 R.t2;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let with_const =
    List.filter
      (fun (o : Extract.occ) -> List.mem 2 o.Extract.members)
      occs
  in
  check_bool "found" true (with_const <> []);
  List.iter
    (fun (o : Extract.occ) ->
      check_int "no input ports for r0" 0 (Array.length o.Extract.input_regs))
    with_const

let test_extract_max_len () =
  (* a 6-op chain with max_len 4 is trimmed to at most 4 *)
  let config = { Extract.default_config with Extract.max_len = 4 } in
  let cfg, live, profile =
    analyze (fun b ->
        Builder.li b R.s3 0x100000;
        Builder.li b R.t1 3;
        Builder.label b "top";
        Builder.sll b R.t2 R.t1 1;
        Builder.addiu b R.t2 R.t2 1;
        Builder.xori b R.t2 R.t2 2;
        Builder.addiu b R.t2 R.t2 3;
        Builder.xori b R.t2 R.t2 4;
        Builder.andi b R.t3 R.t2 0xFF;
        Builder.addu b R.s3 R.s3 R.t3;
        Builder.addiu b R.t1 R.t1 (-1);
        Builder.bgtz b R.t1 "top";
        Builder.halt b)
  in
  let occs = Extract.maximal config cfg live profile in
  check_bool "some occurrence" true (occs <> []);
  List.iter
    (fun (o : Extract.occ) ->
      check_bool "length <= 4" true (List.length o.Extract.members <= 4))
    occs

let test_extract_subsequences_fig3 () =
  (* Figure 3: maximal = sll;addu;sll — its subsequences include the
     2-op prefix (sll 4 / addu) whose key matches a standalone
     occurrence elsewhere *)
  let cfg, live, profile =
    analyze (fun b ->
        Builder.li b R.s3 0x100000;
        Builder.li b R.s4 0x100000;
        Builder.li b R.t0 8;
        Builder.li b R.t3 5;
        Builder.li b R.t1 9;
        Builder.label b "top";
        (* Extinst_i: sll r2,r3,4; addu r2,r2,r1; sll r2,r2,2 *)
        Builder.sll b R.v0 R.t3 4;
        Builder.addu b R.v0 R.v0 R.t1;
        Builder.sll b R.v1 R.v0 2;
        Builder.addu b R.s3 R.s3 R.v1;
        (* standalone Extinst_j: sll r2,r3,4; addu r2,r2,r1 *)
        Builder.sll b R.v0 R.t3 4;
        Builder.addu b R.a3 R.v0 R.t1;
        Builder.addu b R.s4 R.s4 R.a3;
        Builder.addiu b R.t0 R.t0 (-1);
        Builder.bgtz b R.t0 "top";
        Builder.halt b)
  in
  let occs = Extract.maximal Extract.default_config cfg live profile in
  check_int "two maximal sequences" 2 (List.length occs);
  let seq_i =
    List.find
      (fun (o : Extract.occ) -> List.length o.Extract.members = 3)
      occs
  in
  let seq_j =
    List.find
      (fun (o : Extract.occ) -> List.length o.Extract.members = 2)
      occs
  in
  let subs =
    Extract.subsequences Extract.default_config cfg live profile seq_i
  in
  (* the 2-op prefix of I has the same configuration key as standalone J *)
  check_bool "shared subsequence key" true
    (List.exists
       (fun (s : Extract.occ) -> String.equal s.Extract.key seq_j.Extract.key)
       subs);
  (* subsequences include the full sequence itself *)
  check_bool "includes itself" true
    (List.exists
       (fun (s : Extract.occ) ->
         s.Extract.members = seq_i.Extract.members)
       subs)

let test_extract_dag_shape () =
  (* the branch-free abs idiom is a DAG, not a chain: subu feeds both
     sra and xor, sra feeds both xor and the final subu *)
  let occs =
    extract (fun b ->
        Builder.li b R.s3 0x100000;
        Builder.li b R.t1 5;
        Builder.li b R.t2 9;
        Builder.label b "top";
        Builder.subu b R.t3 R.t1 R.t2;
        Builder.sra b R.t4 R.t3 31;
        Builder.xor b R.t3 R.t3 R.t4;
        Builder.subu b R.t5 R.t3 R.t4;
        Builder.addu b R.s3 R.s3 R.t5;
        Builder.addiu b R.t1 R.t1 1;
        Builder.andi b R.t1 R.t1 0xFF;
        Builder.bgtz b R.t1 "top";
        Builder.halt b)
  in
  let abs_occ =
    List.find_opt
      (fun (o : Extract.occ) -> List.length o.Extract.members = 4)
      occs
  in
  match abs_occ with
  | None -> Alcotest.fail "abs DAG not extracted"
  | Some o ->
      check_int "two inputs" 2 (Array.length o.Extract.input_regs);
      (* the DAG evaluates to |a - b| *)
      let v a b =
        let inputs = o.Extract.input_regs in
        if Reg.equal inputs.(0) R.t1 then Dfg.eval o.Extract.dfg a b
        else Dfg.eval o.Extract.dfg b a
      in
      check_int "abs(5-9)" 4 (v 5 9);
      check_int "abs(9-5)" 4 (v 9 5);
      (* this DAG is path-dominated: subu -> sra -> xor -> subu *)
      check_int "critical path" 4 (Dfg.base_latency o.Extract.dfg);
      check_int "serial latency" 4 (Dfg.serial_latency o.Extract.dfg)

let test_extract_min_len () =
  (* single candidate instructions are never occurrences *)
  let occs =
    extract (fun b ->
        Builder.li b R.s3 0x100000;
        Builder.li b R.t1 5;
        Builder.sll b R.t2 R.t1 2;
        Builder.addu b R.s3 R.s3 R.t2;
        Builder.halt b)
  in
  List.iter
    (fun (o : Extract.occ) ->
      check_bool "length >= 2" true (List.length o.Extract.members >= 2))
    occs

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "t1000_dfg"
    [
      ( "dfg",
        [
          Alcotest.test_case "validation" `Quick test_dfg_make_validation;
          Alcotest.test_case "eval" `Quick test_dfg_eval;
          Alcotest.test_case "latency" `Quick test_dfg_latency;
          Alcotest.test_case "to_dot" `Quick test_dfg_to_dot;
        ]
        @ qsuite [ test_dfg_eval_matches_interp ] );
      ( "canon",
        [
          Alcotest.test_case "commutative" `Quick test_canon_commutative;
          Alcotest.test_case "constants/ops" `Quick
            test_canon_constants_and_ops;
          Alcotest.test_case "width irrelevant" `Quick
            test_canon_width_irrelevant;
          Alcotest.test_case "merge widths" `Quick test_canon_merge_widths;
        ]
        @ qsuite [ test_canon_eval_preserved ] );
      ( "extract",
        [
          Alcotest.test_case "simple chain" `Quick test_extract_simple_chain;
          Alcotest.test_case "width filter" `Quick test_extract_rejects_wide;
          Alcotest.test_case "port limit" `Quick
            test_extract_respects_port_limit;
          Alcotest.test_case "live intermediate" `Quick
            test_extract_rejects_live_intermediate;
          Alcotest.test_case "clobbered input" `Quick
            test_extract_rejects_clobbered_input;
          Alcotest.test_case "r0 as constant" `Quick
            test_extract_r0_is_constant;
          Alcotest.test_case "max length" `Quick test_extract_max_len;
          Alcotest.test_case "figure 3 subsequences" `Quick
            test_extract_subsequences_fig3;
          Alcotest.test_case "min length" `Quick test_extract_min_len;
          Alcotest.test_case "dag shape (abs idiom)" `Quick
            test_extract_dag_shape;
        ] );
    ]
