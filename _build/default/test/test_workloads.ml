(* Tests for the benchmark suite: every kernel must run to completion,
   be deterministic, produce non-trivial output, expose foldable chains
   to the greedy algorithm, and stay bit-identical when rewritten with
   either selection algorithm. *)

open T1000_workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let functional_output (w : Workload.t) table program =
  let mem = T1000_machine.Memory.create () in
  let regs = T1000_machine.Regfile.create () in
  w.Workload.init mem regs;
  let interp =
    T1000_machine.Interp.create ~mem ~regs
      ~ext_eval:(T1000_select.Extinstr.eval table)
      program
  in
  let steps = T1000_machine.Interp.run interp in
  (steps, Workload.output w mem)

let test_registry () =
  check_int "eight benchmarks" 8 (List.length Registry.all);
  check_bool "find works" true (Registry.find "gsm_dec" <> None);
  check_bool "find missing" true (Registry.find "nope" = None);
  Alcotest.(check (list string))
    "paper order"
    [
      "unepic"; "epic"; "gsm_dec"; "gsm_enc"; "g721_dec"; "g721_enc";
      "mpeg2_dec"; "mpeg2_enc";
    ]
    Registry.names

let test_runs_to_completion (w : Workload.t) () =
  let steps, out = functional_output w T1000_select.Extinstr.empty w.Workload.program in
  check_bool "executes a realistic trace" true (steps > 50_000);
  check_int "output length" w.Workload.out_len (String.length out);
  (* output is not all zeroes *)
  check_bool "non-trivial output" true
    (String.exists (fun c -> c <> '\000') out)

let test_deterministic (w : Workload.t) () =
  let _, o1 = functional_output w T1000_select.Extinstr.empty w.Workload.program in
  let _, o2 = functional_output w T1000_select.Extinstr.empty w.Workload.program in
  check_bool "same output twice" true (String.equal o1 o2)

let analysis_cache : (string, T1000.Runner.analysis) Hashtbl.t =
  Hashtbl.create 8

let analyze (w : Workload.t) =
  match Hashtbl.find_opt analysis_cache w.Workload.name with
  | Some a -> a
  | None ->
      let a = T1000.Runner.analyze w in
      Hashtbl.replace analysis_cache w.Workload.name a;
      a

let test_greedy_finds_chains (w : Workload.t) () =
  let a = analyze w in
  let r =
    T1000_select.Greedy.select a.T1000.Runner.cfg a.T1000.Runner.live
      a.T1000.Runner.profile
  in
  let n = T1000_select.Extinstr.count r.T1000_select.Greedy.table in
  check_bool "finds at least one configuration" true (n >= 1);
  (* every selected instruction fits the PFU budget *)
  List.iter
    (fun e ->
      check_bool "fits 150 LUTs" true
        (e.T1000_select.Extinstr.lut_cost <= T1000_hwcost.Lut.default_budget);
      check_bool "length 2-8" true
        (let s = T1000_dfg.Dfg.size e.T1000_select.Extinstr.dfg in
         s >= 2 && s <= 8))
    (T1000_select.Extinstr.entries r.T1000_select.Greedy.table)

let test_rewrite_equivalence method_ (w : Workload.t) () =
  let a = analyze w in
  let table =
    match method_ with
    | `Greedy ->
        (T1000_select.Greedy.select a.T1000.Runner.cfg a.T1000.Runner.live
           a.T1000.Runner.profile)
          .T1000_select.Greedy.table
    | `Selective ->
        (T1000_select.Selective.select ~n_pfus:(Some 2) a.T1000.Runner.cfg
           a.T1000.Runner.loops a.T1000.Runner.live a.T1000.Runner.profile)
          .T1000_select.Selective.table
  in
  let rw = T1000_select.Rewrite.apply w.Workload.program table in
  let steps_orig, out_orig =
    functional_output w T1000_select.Extinstr.empty w.Workload.program
  in
  let steps_rw, out_rw =
    functional_output w table rw.T1000_select.Rewrite.program
  in
  check_bool "outputs identical" true (String.equal out_orig out_rw);
  check_bool "rewritten executes fewer instructions" true
    (rw.T1000_select.Rewrite.collapsed = 0 || steps_rw < steps_orig)

let test_hot_loops_have_multiple_chains () =
  (* the thrashing experiment needs >2 distinct configurations in at
     least one loop for every benchmark except g721_dec (which stresses
     branchy code instead) *)
  List.iter
    (fun (w : Workload.t) ->
      let a = analyze w in
      let r =
        T1000_select.Greedy.select a.T1000.Runner.cfg a.T1000.Runner.live
          a.T1000.Runner.profile
      in
      let n = T1000_select.Extinstr.count r.T1000_select.Greedy.table in
      check_bool (w.Workload.name ^ " has >= 3 distinct configs") true
        (n >= 3))
    (List.filter
       (fun (w : Workload.t) -> w.Workload.name <> "g721_dec")
       Registry.all)

let per_workload name f =
  List.map
    (fun (w : Workload.t) ->
      Alcotest.test_case (name ^ "/" ^ w.Workload.name) `Quick (f w))
    Registry.all

let () =
  Alcotest.run "t1000_workloads"
    [
      ("registry", [ Alcotest.test_case "contents" `Quick test_registry ]);
      ("completion", per_workload "runs" test_runs_to_completion);
      ("determinism", per_workload "same" test_deterministic);
      ("chains", per_workload "greedy" test_greedy_finds_chains);
      ( "equivalence",
        per_workload "greedy" (test_rewrite_equivalence `Greedy)
        @ per_workload "selective" (test_rewrite_equivalence `Selective) );
      ( "diversity",
        [
          Alcotest.test_case "multiple chains per benchmark" `Quick
            test_hot_loops_have_multiple_chains;
        ] );
    ]
