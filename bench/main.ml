(* Benchmark harness: regenerates every table and figure of the paper
   (Figure 2, the Section 4.1 statistics, Figure 6, the Section 5.2
   penalty sensitivity, Figure 7) plus the DESIGN.md ablations A1-A7,
   and runs Bechamel micro-benchmarks of the system's own hot kernels.

   Usage:
     dune exec bench/main.exe              # all paper artifacts + ablations
     dune exec bench/main.exe -- f2        # one artifact (f2 t41 f6 s52 f7)
     dune exec bench/main.exe -- a1        # one ablation  (a1..a5)
     dune exec bench/main.exe -- paper     # paper artifacts only
     dune exec bench/main.exe -- perf      # Bechamel micro-benchmarks
     dune exec bench/main.exe -- speed     # engine timing -> BENCH_engine.json
     dune exec bench/main.exe -- serve     # daemon load    -> BENCH_serve.json

   Environment:
     T1000_NJOBS      worker count for the experiment engine (1 = serial)
     T1000_WORKLOADS  comma-separated subset of the benchmark suite,
                      e.g. T1000_WORKLOADS=unepic,epic for a smoke run *)

open T1000

let suite_workloads () =
  match Sys.getenv_opt "T1000_WORKLOADS" with
  | None -> T1000_workloads.Registry.all
  | Some s ->
      let names =
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun n -> n <> "")
      in
      if names = [] then T1000_workloads.Registry.all
      else
        List.map
          (fun n ->
            match T1000_workloads.Registry.find n with
            | Some w -> w
            | None ->
                Format.eprintf "unknown workload %S (known: %s)@." n
                  (String.concat ", " T1000_workloads.Registry.names);
                exit 2)
          names

let ctx = lazy (Experiment.create_ctx ~workloads:(suite_workloads ()) ())

let banner title = Format.printf "@.==== %s ====@.@." title

let run_f2 () =
  banner "F2: Figure 2 (greedy)";
  Format.printf "%a@." Report.pp_figure2 (Experiment.figure2 (Lazy.force ctx))

let run_t41 () =
  banner "T4.1: greedy instruction statistics";
  Format.printf "%a@." Report.pp_table41 (Experiment.table41 (Lazy.force ctx))

let run_f6 () =
  banner "F6: Figure 6 (selective)";
  Format.printf "%a@." Report.pp_figure6 (Experiment.figure6 (Lazy.force ctx))

let run_s52 () =
  banner "S5.2: reconfiguration-penalty sensitivity";
  Format.printf "%a@." Report.pp_penalty_sweep
    (Experiment.penalty_sweep (Lazy.force ctx))

let run_f7 () =
  banner "F7: Figure 7 (LUT cost distribution)";
  Format.printf "%a@." Report.pp_figure7 (Experiment.figure7 (Lazy.force ctx))

let run_a1 () =
  banner "A1: PFU-count sweep (selective)";
  Format.printf "%a@."
    (Report.pp_sweep ~title:"selective speedup vs number of PFUs")
    (Experiment.pfu_count_sweep (Lazy.force ctx))

let run_a2 () =
  banner "A2: bitwidth-threshold sweep (greedy, unlimited)";
  Format.printf "%a@."
    (Report.pp_sweep ~title:"greedy-unlimited speedup vs width threshold")
    (Experiment.width_threshold_sweep (Lazy.force ctx))

let run_a3 () =
  banner "A3: gain-threshold sweep (selective, 2 PFUs)";
  Format.printf "%a@."
    (Report.pp_sweep ~title:"selective speedup vs gain-ratio threshold")
    (Experiment.gain_threshold_sweep (Lazy.force ctx))

let run_a4 () =
  banner "A4: PFU replacement policy (selective, 2 PFUs)";
  Format.printf "%a@."
    (Report.pp_sweep ~title:"selective speedup vs replacement policy")
    (Experiment.replacement_sweep (Lazy.force ctx))

let run_a5 () =
  banner "A5: machine-width sensitivity (selective, 4 PFUs)";
  Format.printf "%a@."
    (Report.pp_sweep ~title:"speedup vs machine width (per-width baseline)")
    (Experiment.machine_sweep (Lazy.force ctx))

let run_a6 () =
  banner "A6: PFU delay model (selective, 4 PFUs)";
  Format.printf "%a@."
    (Report.pp_sweep
       ~title:"speedup: single-cycle PFU vs LUT-level delay model")
    (Experiment.latency_model_sweep (Lazy.force ctx))

let run_a7 () =
  banner "A7: branch prediction (selective, 4 PFUs, per-predictor baseline)";
  Format.printf "%a@."
    (Report.pp_sweep ~title:"speedup: perfect vs bimodal branch prediction")
    (Experiment.branch_predictor_sweep (Lazy.force ctx))

let run_a8 () =
  banner "A8: configuration prefetching (selective, 2 PFUs)";
  Format.printf "%a@."
    (Report.pp_sweep
       ~title:"speedup with/without cfgld preheader prefetch hints")
    (Experiment.prefetch_sweep (Lazy.force ctx))

(* Small budget: each design point simulates the whole suite, so this
   leg is the frontier of the coarse corner of the default space, not
   an exhaustive sweep — `t1000 dse` is the full-fat entry point. *)
let dse_budget = 8

let run_dse () =
  banner "DSE: design-space Pareto frontier (coarse, small budget)";
  Format.printf "%a@." T1000_dse.Engine.pp_frontier
    (T1000_dse.Engine.explore ~budget:dse_budget (Lazy.force ctx)
       T1000_dse.Space.default)

(* ---- Bechamel micro-benchmarks of the system's own hot paths ---- *)

let perf_tests () =
  let open Bechamel in
  let w =
    match T1000_workloads.Registry.find "epic" with
    | Some w -> w
    | None -> assert false
  in
  let analysis = Runner.analyze w in
  let program = w.T1000_workloads.Workload.program in
  let small_interp () =
    let mem = T1000_machine.Memory.create () in
    let regs = T1000_machine.Regfile.create () in
    w.T1000_workloads.Workload.init mem regs;
    let i = T1000_machine.Interp.create ~mem ~regs program in
    ignore (T1000_machine.Interp.run ~max_steps:50_000_000 i)
  in
  let timing_sim () =
    ignore
      (T1000_ooo.Sim.run
         ~init:(fun mem regs -> w.T1000_workloads.Workload.init mem regs)
         program)
  in
  let greedy_select () =
    ignore
      (T1000_select.Greedy.select analysis.Runner.cfg analysis.Runner.live
         analysis.Runner.profile)
  in
  let selective_select () =
    ignore
      (T1000_select.Selective.select ~n_pfus:(Some 2) analysis.Runner.cfg
         analysis.Runner.loops analysis.Runner.live analysis.Runner.profile)
  in
  let lut_cost () =
    let r =
      T1000_select.Greedy.select analysis.Runner.cfg analysis.Runner.live
        analysis.Runner.profile
    in
    List.iter
      (fun e -> ignore (T1000_hwcost.Lut.cost e.T1000_select.Extinstr.dfg))
      (T1000_select.Extinstr.entries r.T1000_select.Greedy.table)
  in
  let cache_sim () =
    let c =
      T1000_cache.Cache.create ~name:"bench" ~sets:256 ~ways:2 ~line_bytes:32
    in
    for i = 0 to 99_999 do
      ignore
        (T1000_cache.Cache.access c ~addr:(i * 48 land 0xFFFFF) ~write:false)
    done
  in
  [
    Test.make ~name:"interp/epic-run" (Staged.stage small_interp);
    Test.make ~name:"ooo-sim/epic-run" (Staged.stage timing_sim);
    Test.make ~name:"select/greedy" (Staged.stage greedy_select);
    Test.make ~name:"select/selective-2pfu" (Staged.stage selective_select);
    Test.make ~name:"hwcost/lut-table" (Staged.stage lut_cost);
    Test.make ~name:"cache/100k-accesses" (Staged.stage cache_sim);
  ]

let run_perf () =
  banner "PERF: Bechamel micro-benchmarks";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 1.0) ~kde:(Some 1000) ()
  in
  let tests = Test.make_grouped ~name:"t1000" ~fmt:"%s %s" (perf_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Format.printf "%-32s %12.0f ns/run@." name est
      | Some _ | None -> Format.printf "%-32s (no estimate)@." name)
    results

(* ---- engine speed benchmark (the `speed` target) ----

   Times the full paper-artifact suite twice -- once sequentially
   (T1000_NJOBS=1) and once on the worker pool -- with a fresh
   experiment context per leg so every leg pays the full analysis,
   selection and simulation cost, and writes BENCH_engine.json so the
   perf trajectory survives across PRs. *)

let speed_artifacts : (string * (Experiment.ctx -> unit)) list =
  [
    ("f2", fun c -> ignore (Experiment.figure2 c));
    ("t41", fun c -> ignore (Experiment.table41 c));
    ("f6", fun c -> ignore (Experiment.figure6 c));
    ("s52", fun c -> ignore (Experiment.penalty_sweep c));
    ("f7", fun c -> ignore (Experiment.figure7 c));
    ("a1", fun c -> ignore (Experiment.pfu_count_sweep c));
    ("a2", fun c -> ignore (Experiment.width_threshold_sweep c));
    ("a3", fun c -> ignore (Experiment.gain_threshold_sweep c));
    ("a4", fun c -> ignore (Experiment.replacement_sweep c));
    ("a5", fun c -> ignore (Experiment.machine_sweep c));
    ("a6", fun c -> ignore (Experiment.latency_model_sweep c));
    ("a7", fun c -> ignore (Experiment.branch_predictor_sweep c));
    ("a8", fun c -> ignore (Experiment.prefetch_sweep c));
  ]

(* Per-leg phase breakdown from the Obs accumulators Runner and
   Experiment feed ("<phase>.seconds" + "<phase>.calls"); time_suite
   resets the metrics first, so the snapshot covers that leg alone. *)
let leg_phases () =
  let s = Obs.Metrics.snapshot () in
  List.filter_map
    (fun (name, secs) ->
      match Filename.chop_suffix_opt ~suffix:".seconds" name with
      | None -> None
      | Some base ->
          let calls =
            Option.value ~default:0
              (List.assoc_opt (base ^ ".calls") s.Obs.Metrics.counters)
          in
          Some (base, secs, calls))
    s.Obs.Metrics.fcounters

let time_suite ~njobs =
  Unix.putenv "T1000_NJOBS" (string_of_int njobs);
  Obs.Metrics.reset ();
  let ctx = Experiment.create_ctx ~workloads:(suite_workloads ()) () in
  let timings =
    List.map
      (fun (name, f) ->
        let t0 = Unix.gettimeofday () in
        f ctx;
        let dt = Unix.gettimeofday () -. t0 in
        Format.printf "  njobs=%-2d %-4s %8.2f s@." njobs name dt;
        (name, dt))
      speed_artifacts
  in
  ( List.fold_left (fun acc (_, dt) -> acc +. dt) 0.0 timings,
    timings,
    leg_phases () )

let json_of_leg oc ~njobs ~total timings phases =
  Printf.fprintf oc
    "{ \"njobs\": %d, \"total_s\": %.3f, \"artifacts\": { %s }, \"phases\": \
     { %s } }"
    njobs total
    (String.concat ", "
       (List.map
          (fun (name, dt) -> Printf.sprintf "\"%s\": %.3f" name dt)
          timings))
    (String.concat ", "
       (List.map
          (fun (name, secs, calls) ->
            Printf.sprintf "\"%s\": { \"seconds\": %.3f, \"calls\": %d }" name
              secs calls)
          phases))

let run_speed () =
  banner "SPEED: experiment-engine wall clock (sequential vs parallel)";
  let saved_njobs = Sys.getenv_opt "T1000_NJOBS" in
  let par_njobs =
    match saved_njobs with
    | Some s when (try int_of_string (String.trim s) > 1 with _ -> false) ->
        int_of_string (String.trim s)
    | Some _ | None -> Domain.recommended_domain_count ()
  in
  let seq_total, seq_timings, seq_phases = time_suite ~njobs:1 in
  (* On a single-core machine a "parallel" leg would just re-time the
     sequential engine (or worse, pay domain overhead) and report a
     bogus slowdown as "speedup"; skip it and record null instead. *)
  let par =
    if par_njobs <= 1 then begin
      Format.printf "  (1 domain available: parallel leg skipped)@.";
      None
    end
    else Some (time_suite ~njobs:par_njobs)
  in
  (match saved_njobs with
  | Some s -> Unix.putenv "T1000_NJOBS" s
  | None -> Unix.putenv "T1000_NJOBS" "")
  ;
  let fuzz =
    let dir = Filename.temp_file "t1000_bench_fuzz" "" in
    Sys.remove dir;
    let o = T1000_fuzz.Fuzz.run_cases ~out_dir:dir ~seed:42 ~cases:100 () in
    Format.printf "  fuzz     100 cases %8.2f s  (%.0f cases/s)@."
      o.T1000_fuzz.Fuzz.elapsed_s o.T1000_fuzz.Fuzz.cases_per_s;
    o
  in
  let dse =
    let t0 = Unix.gettimeofday () in
    let ctx = Experiment.create_ctx ~workloads:(suite_workloads ()) () in
    let r =
      T1000_dse.Engine.explore ~budget:dse_budget ctx T1000_dse.Space.default
    in
    let dt = Unix.gettimeofday () -. t0 in
    Format.printf
      "  dse      budget=%d %8.2f s  (%d evaluated, %d pruned, frontier %d)@."
      dse_budget dt
      (List.length r.T1000_dse.Engine.measured)
      (List.length r.T1000_dse.Engine.pruned)
      (List.length r.T1000_dse.Engine.frontier);
    (r, dt)
  in
  let parallel_speedup =
    match par with
    | Some (par_total, _, _) when par_total > 0.0 ->
        Some (seq_total /. par_total)
    | Some _ | None -> None
  in
  let oc = open_out "BENCH_engine.json" in
  Printf.fprintf oc
    "{\n\
    \  \"generated_by\": \"dune exec bench/main.exe -- speed\",\n\
    \  \"recommended_domain_count\": %d,\n\
    \  \"workloads\": [ %s ],\n\
    \  \"sequential\": "
    (Domain.recommended_domain_count ())
    (String.concat ", "
       (List.map
          (fun (w : T1000_workloads.Workload.t) ->
            Printf.sprintf "\"%s\"" w.T1000_workloads.Workload.name)
          (suite_workloads ())));
  json_of_leg oc ~njobs:1 ~total:seq_total seq_timings seq_phases;
  Printf.fprintf oc ",\n  \"parallel\": ";
  (match par with
  | None -> Printf.fprintf oc "null"
  | Some (par_total, par_timings, par_phases) ->
      json_of_leg oc ~njobs:par_njobs ~total:par_total par_timings par_phases);
  Printf.fprintf oc
    ",\n\
    \  \"fuzz\": { \"cases\": %d, \"seconds\": %.3f, \"cases_per_s\": %.1f, \
     \"failures\": %d }"
    fuzz.T1000_fuzz.Fuzz.cases fuzz.T1000_fuzz.Fuzz.elapsed_s
    fuzz.T1000_fuzz.Fuzz.cases_per_s
    (List.length fuzz.T1000_fuzz.Fuzz.failures);
  (let r, dt = dse in
   Printf.fprintf oc
     ",\n\
     \  \"dse\": { \"budget\": %d, \"evaluated\": %d, \"pruned\": %d, \
      \"frontier\": %d, \"rounds\": %d, \"seconds\": %.3f }"
     dse_budget
     (List.length r.T1000_dse.Engine.measured)
     (List.length r.T1000_dse.Engine.pruned)
     (List.length r.T1000_dse.Engine.frontier)
     r.T1000_dse.Engine.rounds dt);
  Printf.fprintf oc ",\n  \"parallel_speedup\": %s\n}\n"
    (match parallel_speedup with
    | None -> "null"
    | Some s -> Printf.sprintf "%.3f" s);
  close_out oc;
  (match (par, parallel_speedup) with
  | Some (par_total, _, _), Some s ->
      Format.printf
        "@.sequential %.2f s | parallel (njobs=%d) %.2f s | speedup %.2fx@."
        seq_total par_njobs par_total s
  | _ ->
      Format.printf "@.sequential %.2f s | parallel leg skipped@." seq_total);
  Format.printf "wrote BENCH_engine.json@."

(* ---- serve daemon load benchmark (the `serve` target) ----

   Throughput and latency of the selection-as-a-service daemon at 1, 8
   and 64 concurrent clients, plus a deliberate-overload leg (one
   worker, queue depth 1) measuring the shed rate.  Requests carry
   distinct penalties so every one simulates (the analysis/baseline/
   table caches stay warm — the realistic multi-tenant pattern), and
   the results land in BENCH_serve.json. *)

module Sproto = T1000_serve.Protocol
module Sserver = T1000_serve.Server
module Sclient = T1000_serve.Client

let serve_bench_requests () =
  match Sys.getenv_opt "T1000_SERVE_BENCH_REQUESTS" with
  | None | Some "" -> 8
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          Format.eprintf
            "T1000_SERVE_BENCH_REQUESTS must be a positive integer@.";
          exit 2)

(* ~8k loop iterations: a simulation in the low tens of milliseconds,
   so a load leg exercises queueing rather than one giant sim. *)
let serve_bench_kernel =
  Sproto.Asm
    {
      name = "bench";
      text =
        "    addui r2, r0, 8192\n\
        \    addui r1, r0, 0\n\
         loop:\n\
        \    addui r1, r1, 1\n\
        \    bne r1, r2, loop\n\
        \    halt\n";
    }

let serve_leg ~clients ~requests ~queue ~njobs kernel =
  let path = Filename.temp_file "t1000_serve_bench" ".sock" in
  Sys.remove path;
  let srv =
    Sserver.create
      {
        Sserver.addrs = [ Sserver.Unix_sock path ];
        queue_depth = queue;
        njobs;
        default_deadline_ms = None;
        retries = None;
        max_steps = 10_000_000;
      }
  in
  let th = Thread.create Sserver.run srv in
  let latencies = Array.make (clients * requests) 0.0 in
  let ok = Atomic.make 0 and shed = Atomic.make 0 and errors = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init clients (fun ci ->
        Thread.create
          (fun () ->
            match Sclient.connect (Sserver.Unix_sock path) with
            | Error m ->
                Format.eprintf "serve bench: %s@." m;
                exit 1
            | Ok c ->
                for r = 0 to requests - 1 do
                  let i = (ci * requests) + r in
                  let sel =
                    {
                      Sproto.kernel;
                      method_ = `Selective;
                      pfus = Some 2;
                      penalty = i (* unique: defeat the result cache *);
                      max_cycles = None;
                      deadline_ms = None;
                    }
                  in
                  let s = Unix.gettimeofday () in
                  (match Sclient.request c sel with
                  | Ok (`Outcome _) -> Atomic.incr ok
                  | Ok (`Error (Sproto.Overloaded, _)) -> Atomic.incr shed
                  | Ok _ | Error _ -> Atomic.incr errors);
                  latencies.(i) <- (Unix.gettimeofday () -. s) *. 1e3
                done;
                Sclient.close c)
          ())
  in
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  Sserver.stop srv;
  Thread.join th;
  (try Sys.remove path with Sys_error _ -> ());
  Array.sort compare latencies;
  let pct p =
    let n = Array.length latencies in
    latencies.(max 0 (min (n - 1) (int_of_float (p /. 100. *. float_of_int n))))
  in
  ( elapsed,
    Atomic.get ok,
    Atomic.get shed,
    Atomic.get errors,
    pct 50.,
    pct 95.,
    latencies.(Array.length latencies - 1) )

let run_serve () =
  banner "SERVE: daemon load benchmark";
  let requests = serve_bench_requests () in
  let njobs = Pool.default_njobs () in
  let levels = [ 1; 8; 64 ] in
  let legs =
    List.map
      (fun clients ->
        let elapsed, ok, shed, errors, p50, p95, pmax =
          serve_leg ~clients ~requests ~queue:128 ~njobs serve_bench_kernel
        in
        let total = clients * requests in
        Format.printf
          "  %3d clients x %d req: %6.2f s  %7.1f req/s  p50 %6.1f ms  p95 \
           %6.1f ms  (ok %d, shed %d, errors %d)@."
          clients requests elapsed
          (float_of_int total /. elapsed)
          p50 p95 ok shed errors;
        (clients, total, elapsed, ok, shed, errors, p50, p95, pmax))
      levels
  in
  (* Overload: one worker, queue depth 1, everyone at once — the point
     is the shed rate, not throughput. *)
  let o_clients = 16 and o_requests = max 1 (requests / 4) in
  let o_elapsed, o_ok, o_shed, o_errors, _, _, _ =
    serve_leg ~clients:o_clients ~requests:o_requests ~queue:1 ~njobs:1
      serve_bench_kernel
  in
  let o_total = o_clients * o_requests in
  let o_rate = float_of_int o_shed /. float_of_int o_total in
  Format.printf
    "  overload %d clients x %d req (queue 1, 1 worker): %6.2f s  shed \
     %d/%d (%.0f%%), ok %d, errors %d@."
    o_clients o_requests o_elapsed o_shed o_total (100. *. o_rate) o_ok
    o_errors;
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"generated_by\": \"dune exec bench/main.exe -- serve\",\n\
    \  \"njobs\": %d,\n\
    \  \"requests_per_client\": %d,\n\
    \  \"levels\": [" njobs requests;
  List.iteri
    (fun i (clients, total, elapsed, ok, shed, errors, p50, p95, pmax) ->
      Printf.fprintf oc
        "%s\n\
        \    { \"clients\": %d, \"requests\": %d, \"seconds\": %.3f, \
         \"throughput_rps\": %.1f, \"ok\": %d, \"shed\": %d, \"errors\": \
         %d, \"latency_ms\": { \"p50\": %.2f, \"p95\": %.2f, \"max\": %.2f \
         } }"
        (if i = 0 then "" else ",")
        clients total elapsed
        (float_of_int total /. elapsed)
        ok shed errors p50 p95 pmax)
    legs;
  Printf.fprintf oc
    "\n\
    \  ],\n\
    \  \"overload\": { \"clients\": %d, \"requests\": %d, \"queue_depth\": \
     1, \"njobs\": 1, \"seconds\": %.3f, \"ok\": %d, \"shed\": %d, \
     \"errors\": %d, \"shed_rate\": %.3f }\n\
     }\n"
    o_clients o_total o_elapsed o_ok o_shed o_errors o_rate;
  close_out oc;
  Format.printf "wrote BENCH_serve.json@."

let paper () =
  run_f2 ();
  run_t41 ();
  run_f6 ();
  run_s52 ();
  run_f7 ()

let ablations () =
  run_a1 ();
  run_a2 ();
  run_a3 ();
  run_a4 ();
  run_a5 ();
  run_a6 ();
  run_a7 ();
  run_a8 ()

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  match args with
  | [] ->
      paper ();
      ablations ()
  | _ ->
      List.iter
        (function
          | "f2" -> run_f2 ()
          | "t41" -> run_t41 ()
          | "f6" -> run_f6 ()
          | "s52" -> run_s52 ()
          | "f7" -> run_f7 ()
          | "a1" -> run_a1 ()
          | "a2" -> run_a2 ()
          | "a3" -> run_a3 ()
          | "a4" -> run_a4 ()
          | "a5" -> run_a5 ()
          | "a6" -> run_a6 ()
          | "a7" -> run_a7 ()
          | "a8" -> run_a8 ()
          | "dse" -> run_dse ()
          | "paper" -> paper ()
          | "ablations" -> ablations ()
          | "perf" -> run_perf ()
          | "speed" -> run_speed ()
          | "serve" -> run_serve ()
          | other ->
              Format.eprintf
                "unknown experiment %S (expected f2 t41 f6 s52 f7 a1-a8 dse \
                 paper ablations perf speed serve)@."
                other;
              exit 2)
        args
